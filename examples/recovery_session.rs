//! Crash/recovery end to end: processes exchange messages and checkpoint
//! under FDAS + RDT-LGC, one crashes, the centralized recovery manager
//! computes the Lemma-1 recovery line, rolls processes back (Algorithm 3)
//! and the run continues.
//!
//! ```sh
//! cargo run --example recovery_session
//! ```

use rdt_checkpointing::prelude::*;

fn main() {
    let n = 4;
    let spec = WorkloadSpec::uniform_random(n, 1_500)
        .with_seed(2026)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(0.004);

    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(GcKind::RdtLgc)
        .recovery_mode(RecoveryMode::Coordinated)
        .run()
        .expect("simulation runs");

    println!("== recovery sessions (n = {n}) ==");
    println!("sessions: {}", report.recovery_sessions.len());
    for (k, session) in report.recovery_sessions.iter().enumerate() {
        let faulty: Vec<String> = session.faulty.iter().map(ToString::to_string).collect();
        println!();
        println!("session {}: failure of {}", k + 1, faulty.join(", "));
        println!(
            "  recovery line : {:?}",
            session.line.iter().map(|c| c.value()).collect::<Vec<_>>()
        );
        for (p, to) in &session.rolled_back {
            println!("  {p} rolled back to checkpoint {to}");
        }
        println!(
            "  checkpoints eliminated in the session: {}",
            session.eliminated.len()
        );
        if let Some(li) = &session.li {
            println!("  distributed {li}");
        }
    }

    println!();
    println!("after all sessions:");
    for (i, retained) in report.final_retained.iter().enumerate() {
        println!("  p{} retains {retained:?}", i + 1);
    }
    let max = report.metrics.max_retained_per_process();
    println!("max retained on any process: {max} (bound n+1 = {})", n + 1);
    assert!(max <= n + 1);
}
