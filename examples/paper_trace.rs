//! The paper's Figure 4: a step-by-step RDT-LGC execution, printing the
//! `DV` / `UC` tuples after every event — checkpoints are collected
//! on-the-fly, and one obsolete checkpoint survives because no causal
//! knowledge can identify it (the optimality gap Theorem 5 proves
//! unavoidable).
//!
//! ```sh
//! cargo run --example paper_trace
//! ```

use rdt_base::Payload;
use rdt_checkpointing::prelude::*;
use rdt_checkpointing::workloads::figures::figure4_script;
use rdt_checkpointing::workloads::ScriptOp;

fn fmt_uc(uc: &[Option<rdt_base::CheckpointIndex>]) -> String {
    let inner: Vec<String> = uc
        .iter()
        .map(|slot| slot.map_or_else(|| "∗".to_string(), |i| i.to_string()))
        .collect();
    format!("({})", inner.join(", "))
}

fn state_line(mws: &[Middleware]) -> String {
    mws.iter()
        .map(|mw| {
            format!(
                "{}: DV={} UC={}",
                mw.owner(),
                mw.dv(),
                fmt_uc(&mw.uc_snapshot().expect("RDT-LGC maintains UC")),
            )
        })
        .collect::<Vec<_>>()
        .join("   ")
}

fn main() {
    let n = 3;
    let script = figure4_script();
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
        .collect();
    let mut pending: Vec<Option<(ProcessId, rdt_checkpointing::protocols::Piggyback)>> = Vec::new();
    let mut eliminated: Vec<String> = Vec::new();

    println!("== Figure 4: RDT-LGC execution trace ==");
    println!("initial: {}", state_line(&mws));
    println!();

    for op in script.ops() {
        let describe = match *op {
            ScriptOp::Checkpoint(p) => {
                let report = mws[p.index()].basic_checkpoint().expect("alive");
                for idx in &report.eliminated {
                    eliminated.push(format!("s_{}^{}", p, idx));
                }
                format!(
                    "{p} takes s_{p}^{}{}",
                    report.stored,
                    if report.eliminated.is_empty() {
                        String::new()
                    } else {
                        format!("  → collects {:?}", report.eliminated)
                    }
                )
            }
            ScriptOp::Send { from, to } => {
                let pb = mws[from.index()].piggyback();
                let _ = mws[from.index()].send(to, Payload::empty());
                pending.push(Some((to, pb)));
                format!("{from} sends m{} to {to}", pending.len())
            }
            ScriptOp::Deliver { send_ordinal } => {
                let (to, pb) = pending[send_ordinal].take().expect("sent once");
                let report = mws[to.index()].receive_piggyback(&pb).expect("alive");
                for idx in &report.eliminated {
                    eliminated.push(format!("s_{}^{}", to, idx));
                }
                format!(
                    "{to} receives m{}{}",
                    send_ordinal + 1,
                    if report.eliminated.is_empty() {
                        String::new()
                    } else {
                        format!("  → collects {:?}", report.eliminated)
                    }
                )
            }
        };
        println!("{describe}");
        println!("    {}", state_line(&mws));
    }

    println!();
    println!("eliminated during execution: {eliminated:?}");
    for mw in &mws {
        println!(
            "{} retains {:?}",
            mw.owner(),
            mw.store().indices().map(|i| i.value()).collect::<Vec<_>>()
        );
    }
    println!();
    println!(
        "s_p2^1 is obsolete (p3 checkpointed on) but p2 cannot know: retained.\n\
         Theorem 5: no asynchronous collector can do better."
    );
}
