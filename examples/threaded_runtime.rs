//! The same middleware stack under real OS threads and crossbeam channels:
//! the paper's bounds are properties of the algorithm, not of the
//! deterministic simulator's schedule.
//!
//! ```sh
//! cargo run --example threaded_runtime
//! ```

use rdt_checkpointing::prelude::*;

fn main() {
    let n = 6;
    let ops = WorkloadSpec::uniform_random(n, 2_000)
        .with_seed(5)
        .with_checkpoint_prob(0.25)
        .generate();

    println!("== threaded runtime ==");
    println!(
        "running {} ops over {n} OS threads (FDAS + RDT-LGC)...",
        ops.len()
    );
    let report = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);

    for mw in &report.processes {
        println!(
            "  {} retained {:>2}  peak {:>2}  forced {:>3}  (bound: ≤ {} / {} transient)",
            mw.owner(),
            mw.store().len(),
            mw.store().peak(),
            mw.forced_count(),
            n,
            n + 1,
        );
        assert!(mw.store().len() <= n);
        assert!(mw.store().peak() <= n + 1);
    }
    println!("\nretention bounds held under genuine concurrency and reordering.");
}
