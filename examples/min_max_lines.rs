//! The decentralized min/max consistent-global-checkpoint queries the RDT
//! property enables (Wang [20]) — the machinery behind software error
//! recovery and causal distributed breakpoints that the paper's
//! introduction motivates.
//!
//! A "suspect" checkpoint is chosen on one process; the **maximum**
//! consistent global checkpoint containing it is the latest system state
//! in which that checkpoint's effects are visible (roll back *to* it to
//! re-examine the error), and the **minimum** is the earliest (a causal
//! breakpoint right after the suspect ran).
//!
//! ```sh
//! cargo run --example min_max_lines
//! ```

use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_protocols::Middleware;
use rdt_recovery::wang;

fn main() {
    let n = 4;
    let (p0, p1, p2) = (ProcessId::new(0), ProcessId::new(1), ProcessId::new(2));
    // Retain everything so every query target stays addressable.
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, ProtocolKind::Fdas, GcKind::None))
        .collect();

    // A causal chain p1 → p2 → p3 → back to p1, while p4 free-runs with no
    // communication at all — its checkpoints are concurrent with everything,
    // which is where the min/max slack comes from.
    mws[0].basic_checkpoint().unwrap();
    let m = mws[0].send(p1, Payload::label("a"));
    mws[1].receive(&m).unwrap();
    mws[1].basic_checkpoint().unwrap();
    let m = mws[1].send(p2, Payload::label("b"));
    mws[2].receive(&m).unwrap();
    mws[2].basic_checkpoint().unwrap();
    let m = mws[2].send(p0, Payload::label("c"));
    mws[0].receive(&m).unwrap();
    mws[0].basic_checkpoint().unwrap();
    for _ in 0..3 {
        mws[3].basic_checkpoint().unwrap(); // the free runner
    }

    println!("== decentralized min/max consistent global checkpoints ==\n");
    for (who, index) in [(p0, 1usize), (p1, 1), (p2, 1)] {
        let target = (who, CheckpointIndex::new(index));
        let max = wang::max_consistent_containing(&mws, &[target]).expect("consistent target");
        let min = wang::min_consistent_containing(&mws, &[target]).expect("consistent target");
        println!(
            "suspect s_{}^{}: min line {:?}  max line {:?}",
            who,
            index,
            min.iter().map(|c| c.value()).collect::<Vec<_>>(),
            max.iter().map(|c| c.value()).collect::<Vec<_>>(),
        );
        for (lo, hi) in min.iter().zip(&max) {
            assert!(lo <= hi, "min is componentwise below max");
        }
    }
    println!(
        "\np4 (the silent free-runner) spans the whole range: the minimum\n\
         pins it at s^0, the maximum at its latest state — any of its\n\
         checkpoints completes a consistent global checkpoint. Each query\n\
         ran from the dependency vectors stored with the checkpoints — no\n\
         coordinator, no extra messages: that is what rollback-dependency\n\
         trackability buys."
    );
}
