//! Offline pattern analysis: zigzag densities, rollback-dependency graphs
//! and rollback propagation, side by side for an RDT protocol and the
//! unconstrained (no-forced) baseline on identical traffic.
//!
//! ```sh
//! cargo run --example zigzag_analysis
//! ```

use rdt_checkpointing::analysis::worst_single_failure;
use rdt_checkpointing::prelude::*;

fn analyze(protocol: ProtocolKind, spec: &WorkloadSpec) {
    let report = SimulationBuilder::new(spec.clone())
        .protocol(protocol)
        .garbage_collector(GcKind::None)
        .record_trace()
        .run()
        .expect("simulation runs");
    let ccp = CcpBuilder::from_trace(spec.n, &report.trace.expect("trace recorded"))
        .expect("crash-free trace replays")
        .build();

    let stats = CcpStats::compute(&ccp);
    println!("-- {protocol} --");
    println!("  {stats}");
    println!(
        "  zigzag pairs {} of which undoubled {} (doubling ratio {:.3})",
        stats.zigzag_pairs,
        stats.undoubled_zigzag_pairs,
        stats.doubling_ratio()
    );

    let rg = RollbackGraph::new(&ccp);
    println!(
        "  rollback graph: {} interval nodes, {} message edges",
        rg.interval_count(),
        rg.edge_count()
    );
    let worst = worst_single_failure(&ccp).expect("non-empty system");
    println!(
        "  worst single failure: {} rolls back {} checkpoints across {} processes{}",
        worst.faulty[0],
        worst.total(),
        worst.affected_processes(),
        if worst.reached_initial {
            " — DOMINO to the initial state"
        } else {
            ""
        }
    );
    println!();
}

fn main() {
    println!("== zigzag / propagation analysis ==\n");
    let spec = WorkloadSpec::uniform_random(4, 300)
        .with_seed(77)
        .with_checkpoint_prob(0.2);
    analyze(ProtocolKind::Fdas, &spec);
    analyze(ProtocolKind::Bcs, &spec);
    analyze(ProtocolKind::NoForced, &spec);
    println!(
        "FDAS: every zigzag dependency is doubled (RDT) and failures stay local.\n\
         BCS: no zigzag cycles (domino-free) but some dependencies untrackable.\n\
         no-forced: undoubled zigzags, useless checkpoints, deep rollbacks."
    );
}
