//! Quickstart: simulate five processes under FDAS with RDT-LGC garbage
//! collection and inspect the storage statistics the paper bounds.
//!
//! ```sh
//! cargo run --example quickstart
//! ```

use rdt_checkpointing::prelude::*;

fn main() {
    let n = 5;
    let spec = WorkloadSpec::uniform_random(n, 1_000)
        .with_seed(42)
        .with_checkpoint_prob(0.25);

    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(GcKind::RdtLgc)
        .run()
        .expect("simulation runs");

    println!("== rdt-checkpointing quickstart ==");
    println!("processes            : {n}");
    println!("simulated ticks      : {}", report.metrics.ticks);
    println!(
        "messages delivered   : {}",
        report.metrics.total_delivered()
    );
    println!(
        "checkpoints basic/forced : {}/{}",
        report.metrics.total_basic(),
        report.metrics.total_forced()
    );
    println!(
        "checkpoints collected: {}",
        report.metrics.total_collected()
    );
    println!();
    println!("per-process retention (paper bound: ≤ n = {n}, ≤ n+1 transient):");
    for (i, m) in report.metrics.per_process.iter().enumerate() {
        println!(
            "  p{:<2} retained {:>2}  peak {:>2}  avg {:>5.2}  stored {:>4}  collected {:>4}",
            i + 1,
            m.retained,
            m.peak_retained,
            m.avg_retained(),
            m.total_stored,
            m.total_collected,
        );
    }

    let max = report.metrics.max_retained_per_process();
    assert!(max <= n + 1, "bound violated: {max} > n+1");
    println!();
    println!("max retained on any process: {max} (bound holds)");
}
