//! Compare garbage collectors on identical workloads — a miniature of the
//! practical evaluation the paper proposes as future work (Section 6).
//!
//! RDT-LGC needs no control messages yet tracks the coordinated
//! Theorem-1 collector closely; the no-GC baseline diverges.
//!
//! ```sh
//! cargo run --example storage_comparison
//! ```

use rdt_checkpointing::prelude::*;

fn main() {
    let n = 6;
    let steps = 2_000;

    println!("== storage overhead by collector (n = {n}, {steps} ops) ==");
    println!(
        "{:<20} {:>8} {:>8} {:>10} {:>9}",
        "collector", "avg/proc", "max/proc", "collected", "control"
    );

    for gc in GcKind::ALL {
        let spec = WorkloadSpec::uniform_random(n, steps)
            .with_seed(7)
            .with_checkpoint_prob(0.3);
        let mut builder = SimulationBuilder::new(spec)
            .protocol(ProtocolKind::Fdas)
            .garbage_collector(gc);
        if gc.needs_control_messages() {
            builder = builder.control_every(500);
        }
        let report = builder.run().expect("simulation runs");
        println!(
            "{:<20} {:>8.2} {:>8} {:>10} {:>9}",
            gc.to_string(),
            report.metrics.avg_retained(),
            report.metrics.max_retained_per_process(),
            report.metrics.total_collected(),
            report.metrics.control_rounds,
        );
    }

    println!();
    println!(
        "rdt-lgc stays within the n (+1 transient) bound with zero coordination;\n\
         wang-global collects every obsolete checkpoint but only at control rounds;\n\
         no-gc grows without bound."
    );
}
