//! Stable storage made literal: checkpoints are mirrored to disk as
//! checksummed records, a process dies, restarts from the surviving files
//! and rejoins through an ordinary recovery session.
//!
//! ```sh
//! cargo run --example durable_restart
//! ```

use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_protocols::Middleware;
use rdt_recovery::{FaultySet, RecoveryManager};

fn main() {
    let n = 2;
    let root = std::env::temp_dir().join(format!("rdt-durable-demo-{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&root);

    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let mut a = Middleware::new(p0, n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut b = Middleware::new(p1, n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let disk_a = DurableStore::open(root.join("p0"), p0).expect("scratch dir");
    let disk_b = DurableStore::open(root.join("p1"), p1).expect("scratch dir");

    println!("== durable restart ==\n");
    // Some history: checkpoints and a message each way, mirrored to disk.
    a.basic_checkpoint().unwrap();
    let m = a.send(p1, Payload::label("hello"));
    b.receive(&m).unwrap();
    b.basic_checkpoint().unwrap();
    let m = b.send(p0, Payload::label("world"));
    a.receive(&m).unwrap();
    a.basic_checkpoint().unwrap();
    disk_a.sync(a.store()).unwrap();
    disk_b.sync(b.store()).unwrap();

    println!(
        "p1 stable store before the crash: {:?}",
        a.store().indices().map(|i| i.value()).collect::<Vec<_>>()
    );
    println!(
        "  on disk: {} checksummed records in {:?}",
        disk_a.indices().unwrap().len(),
        disk_a.dir()
    );

    // p0 dies: drop the middleware. Only the files survive.
    drop(a);
    let rebuilt = disk_a.rebuild().expect("records validate");
    let a = Middleware::from_store(p0, n, ProtocolKind::Fdas, GcKind::RdtLgc, rebuilt);
    println!("\np1 restarted from disk: crashed = {}", a.is_crashed());

    // An ordinary recovery session brings the pair to a consistent cut.
    let mut world = vec![a, b];
    let faulty: FaultySet = [p0].into_iter().collect();
    let report = RecoveryManager::new()
        .recover(&mut world, &faulty)
        .expect("Lemma 1 is total for safe collectors");
    println!(
        "recovery line: {:?} (rolled back: {:?})",
        report.line.iter().map(|c| c.value()).collect::<Vec<_>>(),
        report.rolled_back
    );
    let (b, a) = (world.pop().unwrap(), world.pop().unwrap());
    assert!(!a.is_crashed());

    // Knowledge survives: p1's restored vector still knows p2's interval.
    println!(
        "p1 dependency vector after recovery: {:?} (remembers p2's checkpoint)",
        a.dv().to_raw()
    );
    assert!(a.dv().to_raw()[1] > 0);
    drop(b);

    let _ = std::fs::remove_dir_all(&root);
    println!("\nstable storage really was stable.");
}
