//! The paper's Figure 2: without forced checkpoints, crossing messages make
//! every non-initial checkpoint useless, and a single failure rolls the
//! whole application back to its initial state (the domino effect). The
//! same traffic under FDAS stays recoverable.
//!
//! ```sh
//! cargo run --example domino_effect
//! ```

use rdt_checkpointing::ccp::figures::figure2;
use rdt_checkpointing::prelude::*;
use rdt_checkpointing::workloads::figures::figure2_script;

fn main() {
    // Offline analysis of the published pattern.
    let fig = figure2();
    println!("== Figure 2 (offline analysis) ==");
    println!("{}", fig.ccp.render_ascii());
    println!("RD-trackable: {}", fig.ccp.is_rdt());
    println!(
        "useless checkpoints: {:?}",
        fig.ccp
            .useless_checkpoints()
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for f in 0..2 {
        let faulty = [ProcessId::new(f)].into_iter().collect();
        let line = fig
            .ccp
            .brute_force_recovery_line(&faulty)
            .expect("line exists");
        println!("failure of p{} rolls back to {line}", f + 1);
    }

    // The same traffic executed online, with and without forced checkpoints.
    println!();
    println!("== Online execution of the same traffic ==");
    for protocol in [ProtocolKind::NoForced, ProtocolKind::Fdas] {
        let run = run_script(2, &figure2_script(), protocol, GcKind::RdtLgc).expect("script runs");
        let ccp = CcpBuilder::from_trace(2, &run.trace)
            .expect("crash-free trace")
            .build();
        let forced: u64 = run.processes.iter().map(|m| m.forced_count()).sum();
        let faulty = [ProcessId::new(0)].into_iter().collect();
        let line = ccp.brute_force_recovery_line(&faulty).expect("line exists");
        println!(
            "{:<9}  forced {}  RDT {}  useless {}  recovery line after p1 fails: {}",
            protocol.to_string(),
            forced,
            ccp.is_rdt(),
            ccp.useless_checkpoints().len(),
            line,
        );
    }
    println!();
    println!("FDAS breaks every zigzag cycle: no useless checkpoints, no domino.");
}
