//! Why asynchronous garbage collection matters: the time-based collector
//! (Manivannan & Singhal style) audited against the Theorem-1 oracle.
//!
//! Every elimination is checked at its own cut by
//! `rdt_ccp::collection_safety_violations`: a violation means a checkpoint
//! was destroyed that a future recovery line may still need. RDT-LGC is
//! proved safe (Theorem 4); the time-based rule is safe only while its
//! real-time assumption holds.
//!
//! ```sh
//! cargo run --example time_based_pitfall
//! ```

use rdt_ccp::collection_safety_violations;
use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;

fn audit(gc: GcKind, spec: &WorkloadSpec) -> (usize, usize) {
    let config = SimConfig {
        channel: ChannelConfig {
            min_delay: 50,
            max_delay: 400,
            loss_rate: 0.0,
        },
        ..SimConfig::default()
    };
    let report = SimulationBuilder::new(spec.clone())
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(gc)
        .config(config)
        .record_trace()
        .run()
        .expect("simulation runs");
    let violations = collection_safety_violations(spec.n, &report.trace.unwrap())
        .expect("crash-free trace replays");
    (report.metrics.total_collected(), violations.len())
}

fn main() {
    println!("== the time-assumption pitfall ==\n");
    let spec = WorkloadSpec::uniform_random(4, 400)
        .with_seed(1)
        .with_checkpoint_prob(0.15);

    println!(
        "{:<20} {:>10} {:>12}",
        "collector", "collected", "violations"
    );
    for gc in [
        GcKind::RdtLgc,
        GcKind::TimeBased { horizon: 2_000 },
        GcKind::TimeBased { horizon: 200 },
        GcKind::TimeBased { horizon: 60 },
    ] {
        let (collected, violations) = audit(gc, &spec);
        println!(
            "{:<20} {:>10} {:>12}",
            gc.to_string(),
            collected,
            violations
        );
        if gc == GcKind::RdtLgc {
            assert_eq!(violations, 0, "Theorem 4: RDT-LGC is safe");
        }
    }
    println!(
        "\nRDT-LGC gets aggressive collection *and* safety from the causal\n\
         condition of Theorem 2; a wall-clock horizon must choose one."
    );
}
