//! Property tests over full simulations with failure injection: the
//! paper's guarantees must survive arbitrary crash/recovery interleavings,
//! correlated failures, lossy channels and both recovery modes.

use proptest::prelude::*;
use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::SimulationBuilder;

fn spec(n: usize, steps: usize, seed: u64, crash: f64) -> WorkloadSpec {
    WorkloadSpec::uniform_random(n, steps)
        .with_seed(seed)
        .with_checkpoint_prob(0.2)
        .with_crash_prob(crash)
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(24))]

    /// RDT-LGC's retention bounds hold across crash/recovery sessions, in
    /// both recovery modes, under every RDT protocol.
    #[test]
    fn retention_bounds_survive_failures(
        n in 2usize..6,
        seed in 0u64..1000,
        proto in prop::sample::select(ProtocolKind::RDT.to_vec()),
        mode in prop::sample::select(vec![RecoveryMode::Coordinated, RecoveryMode::Uncoordinated]),
    ) {
        let report = SimulationBuilder::new(spec(n, 300, seed, 0.02))
            .protocol(proto)
            .garbage_collector(GcKind::RdtLgc)
            .recovery_mode(mode)
            .run()
            .expect("simulation runs");
        prop_assert!(
            report.metrics.max_retained_per_process() <= n + 1,
            "{proto}/{mode}: peak {} > n+1", report.metrics.max_retained_per_process()
        );
        prop_assert!(report.metrics.peak_global_retained <= n * (n + 1));
    }

    /// Recovery lines never name a component above the volatile state, and
    /// every session rolls the faulty processes back.
    #[test]
    fn recovery_sessions_are_well_formed(
        n in 2usize..5,
        seed in 0u64..1000,
        correlated in 0.0f64..0.5,
    ) {
        let config = SimConfig {
            correlated_crash_prob: correlated,
            ..SimConfig::default()
        };
        let report = SimulationBuilder::new(spec(n, 250, seed, 0.03))
            .config(config)
            .run()
            .expect("simulation runs");
        for session in &report.recovery_sessions {
            prop_assert!(!session.faulty.is_empty());
            prop_assert_eq!(session.line.len(), n);
            for &(p, to) in &session.rolled_back {
                prop_assert_eq!(session.line[p.index()], to);
            }
            // A faulty process always rolls back (its volatile state died).
            for f in &session.faulty {
                prop_assert!(
                    session.rolled_back.iter().any(|(p, _)| p == f),
                    "faulty {f} did not roll back"
                );
            }
        }
    }

    /// The simulation is deterministic: identical parameters produce
    /// identical reports, crash injection and all.
    #[test]
    fn simulation_is_deterministic(n in 2usize..5, seed in 0u64..1000) {
        let build = || SimulationBuilder::new(spec(n, 200, seed, 0.02))
            .record_trace()
            .run()
            .expect("simulation runs");
        let a = build();
        let b = build();
        prop_assert_eq!(a.metrics, b.metrics);
        prop_assert_eq!(a.trace, b.trace);
        prop_assert_eq!(a.final_retained, b.final_retained);
    }

    /// Lossy channels do not break the bounds (lost messages simply carry
    /// no causal information).
    #[test]
    fn loss_does_not_break_bounds(n in 2usize..5, seed in 0u64..1000, loss in 0.0f64..0.9) {
        let report = SimulationBuilder::new(spec(n, 250, seed, 0.0))
            .channel(ChannelConfig::lossy(loss))
            .run()
            .expect("simulation runs");
        prop_assert!(report.metrics.max_retained_per_process() <= n + 1);
    }

    /// After any run, each process's dependency-vector self-entry equals
    /// its last stable checkpoint index + 1 (it executes in the interval
    /// the last checkpoint opened).
    #[test]
    fn final_state_is_internally_consistent(n in 2usize..5, seed in 0u64..1000) {
        let report = SimulationBuilder::new(spec(n, 250, seed, 0.03))
            .run()
            .expect("simulation runs");
        for (k, dv) in report.final_dvs.iter().enumerate() {
            prop_assert_eq!(
                dv.entry(ProcessId::new(k)).value(),
                report.final_last_stable[k] + 1
            );
        }
        // Whatever remains stored includes the last stable checkpoint.
        for (k, retained) in report.final_retained.iter().enumerate() {
            prop_assert!(retained.contains(&report.final_last_stable[k]));
        }
    }

    /// The coordinated-baseline collectors (control rounds) also respect
    /// safety: storage never dips below one checkpoint and recovery always
    /// finds its targets (`recover` would panic otherwise).
    #[test]
    fn coordinated_collectors_survive_failures(
        n in 2usize..5,
        seed in 0u64..500,
        gc in prop::sample::select(vec![GcKind::SimpleCoordinated, GcKind::WangGlobal]),
    ) {
        let report = SimulationBuilder::new(spec(n, 250, seed, 0.02))
            .garbage_collector(gc)
            .control_every(50)
            .run()
            .expect("simulation runs");
        for retained in &report.final_retained {
            prop_assert!(!retained.is_empty());
        }
    }
}
