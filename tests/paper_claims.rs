//! One test per headline claim of the paper, end to end.

use rdt_checkpointing::ccp::figures::{figure1, figure2, figure3};
use rdt_checkpointing::ccp::CcpBuilder;
use rdt_checkpointing::prelude::*;
use rdt_checkpointing::workloads::figures::{
    figure4_expectations, figure4_script, figure5_worst_case,
};

/// Figure 1: the running example is RDT and loses the property without m3.
#[test]
fn claim_figure1() {
    let fig = figure1();
    assert!(fig.ccp.is_rdt());
    assert!(!fig.ccp_without_m3.is_rdt());
}

/// Figure 2: domino effect without forced checkpoints.
#[test]
fn claim_figure2_domino() {
    let fig = figure2();
    let faulty = [ProcessId::new(0)].into_iter().collect();
    let line = fig.ccp.brute_force_recovery_line(&faulty).unwrap();
    assert_eq!(line.to_raw(), vec![0, 0], "rollback to the initial state");
}

/// Figure 3: recovery-line determination by Lemma 1, with s_3^last excluded
/// because s_2^last precedes it.
#[test]
fn claim_figure3_recovery_line() {
    let fig = figure3();
    let line = fig.ccp.recovery_line(&fig.faulty);
    assert_eq!(
        line,
        fig.ccp.brute_force_recovery_line(&fig.faulty).unwrap()
    );
    // Window obsolete set = the paper's five (+ the unrealizable c_1^8 pin,
    // see DESIGN.md/EXPERIMENTS.md).
    let window: Vec<_> = fig
        .ccp
        .obsolete_set()
        .into_iter()
        .filter(|c| c.index.value() >= fig.window_start[c.process.index()])
        .collect();
    assert_eq!(window.len(), 6);
}

/// Figure 4: on-the-fly collection plus the knowledge-gap retention.
#[test]
fn claim_figure4_trace() {
    let run = run_script(3, &figure4_script(), ProtocolKind::Fdas, GcKind::RdtLgc).unwrap();
    let expect = figure4_expectations();
    // The paper's eliminations happen.
    for target in [(1, 2), (2, 1), (2, 2)] {
        assert!(
            run.eliminated
                .iter()
                .any(|(p, i)| (p.index(), *i) == target),
            "{target:?} must be eliminated"
        );
    }
    // The paper's retained-obsolete s_2^1 is retained…
    assert!(run.retained(ProcessId::new(1)).contains(&1));
    // …and really is obsolete by Theorem 1, yet not causally identifiable.
    let ccp = CcpBuilder::from_trace(3, &run.trace).unwrap().build();
    for (p, i) in expect.retained_obsolete {
        let id = rdt_base::CheckpointId::new(ProcessId::new(p), rdt_base::CheckpointIndex::new(i));
        assert!(ccp.is_obsolete(id), "{id}");
        assert!(!ccp.is_causally_identifiable_obsolete(id), "{id}");
    }
}

/// Section 4.5 / Figure 5: the bounds are tight — n per process is reached,
/// n+1 transiently, n² steady-state globally.
#[test]
fn claim_figure5_tight_bounds() {
    for n in 2..7 {
        let run = run_script(
            n,
            &figure5_worst_case(n),
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
        )
        .unwrap();
        let total: usize = (0..n).map(|i| run.retained(ProcessId::new(i)).len()).sum();
        assert_eq!(total, n * n, "n² steady state, n = {n}");
        let mut processes = run.processes;
        let mut peak_total = 0;
        for mw in processes.iter_mut() {
            mw.basic_checkpoint().unwrap();
            peak_total += mw.store().peak();
        }
        assert_eq!(peak_total, n * (n + 1), "n(n+1) transient, n = {n}");
    }
}

/// Theorem 5 in practice: on identical executions the coordinated
/// Theorem-1 collector (with per-event control rounds) retains no more
/// than RDT-LGC, and the difference is exactly the causally unidentifiable
/// obsolete checkpoints.
#[test]
fn claim_optimality_gap_is_knowledge_only() {
    let spec = WorkloadSpec::uniform_random(4, 250)
        .with_seed(17)
        .with_checkpoint_prob(0.3);
    let lgc = SimulationBuilder::new(spec.clone())
        .garbage_collector(GcKind::RdtLgc)
        .record_trace()
        .run()
        .unwrap();
    let trace = lgc.trace.as_ref().unwrap();
    let ccp = CcpBuilder::from_trace(4, trace).unwrap().build();
    let obsolete = ccp.obsolete_set();
    let identifiable = ccp.causally_identifiable_obsolete_set();
    for (i, retained) in lgc.final_retained.iter().enumerate() {
        for idx in retained {
            let id = rdt_base::CheckpointId::new(
                ProcessId::new(i),
                rdt_base::CheckpointIndex::new(*idx),
            );
            if obsolete.contains(&id) {
                // Retained although obsolete ⇒ must be unidentifiable.
                assert!(!identifiable.contains(&id), "{id}");
            }
        }
    }
}

/// The merged FDAS + RDT-LGC middleware piggybacks nothing beyond the
/// dependency vector the protocol already propagates (Definition 8).
#[test]
fn claim_no_extra_piggyback() {
    let mut a = Middleware::new(ProcessId::new(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
    let msg = a.send(ProcessId::new(1), rdt_base::Payload::empty());
    // The wire format carries exactly id + destination + DV.
    assert_eq!(msg.meta.dv.len(), 2);
}
