//! Cross-crate integration: simulator × protocol × collector matrices,
//! validated against the offline oracle via trace replay.

use rdt_checkpointing::ccp::CcpBuilder;
use rdt_checkpointing::prelude::*;

fn sim(n: usize, steps: usize, seed: u64, protocol: ProtocolKind, gc: GcKind) -> SimulationReport {
    SimulationBuilder::new(
        WorkloadSpec::uniform_random(n, steps)
            .with_seed(seed)
            .with_checkpoint_prob(0.3),
    )
    .protocol(protocol)
    .garbage_collector(gc)
    .record_trace()
    .run()
    .expect("simulation runs")
}

#[test]
fn rdt_protocols_produce_rdt_traces_through_the_full_stack() {
    for protocol in [ProtocolKind::Cbr, ProtocolKind::Fdi, ProtocolKind::Fdas] {
        for seed in 0..3 {
            let report = sim(4, 150, seed, protocol, GcKind::RdtLgc);
            let trace = report.trace.as_ref().expect("trace recorded");
            let ccp = CcpBuilder::from_trace(4, trace)
                .expect("crash-free")
                .build();
            assert!(ccp.is_rdt(), "{protocol} seed {seed}");
        }
    }
}

#[test]
fn lgc_safety_and_optimality_hold_on_simulated_executions() {
    for seed in 0..5 {
        let report = sim(4, 200, seed, ProtocolKind::Fdas, GcKind::RdtLgc);
        let trace = report.trace.as_ref().expect("trace recorded");
        let ccp = CcpBuilder::from_trace(4, trace)
            .expect("crash-free")
            .build();
        let obsolete = ccp.obsolete_set();
        let identifiable = ccp.causally_identifiable_obsolete_set();

        for (i, retained) in report.final_retained.iter().enumerate() {
            let p = ProcessId::new(i);
            let all: Vec<usize> = (0..=ccp.last_stable(p).value()).collect();
            for idx in &all {
                let id = rdt_base::CheckpointId::new(p, rdt_base::CheckpointIndex::new(*idx));
                if retained.contains(idx) {
                    // Optimality: retained ⇒ not causally identifiable.
                    assert!(!identifiable.contains(&id), "seed {seed}: {id} retained");
                } else {
                    // Safety: eliminated ⇒ obsolete.
                    assert!(obsolete.contains(&id), "seed {seed}: {id} eliminated");
                }
            }
        }
    }
}

#[test]
fn retention_bound_holds_across_the_matrix() {
    for protocol in [ProtocolKind::Cbr, ProtocolKind::Fdi, ProtocolKind::Fdas] {
        for seed in 0..3 {
            let n = 5;
            let report = sim(n, 300, seed, protocol, GcKind::RdtLgc);
            assert!(
                report.metrics.max_retained_per_process() <= n + 1,
                "{protocol} seed {seed}"
            );
        }
    }
}

#[test]
fn coordinated_collectors_converge_with_control_rounds() {
    let n = 4;
    for gc in [GcKind::SimpleCoordinated, GcKind::WangGlobal] {
        let report = SimulationBuilder::new(
            WorkloadSpec::uniform_random(n, 400)
                .with_seed(9)
                .with_checkpoint_prob(0.3),
        )
        .garbage_collector(gc)
        .control_every(200)
        .run()
        .expect("simulation runs");
        assert!(report.metrics.control_rounds > 0, "{gc}");
        assert!(report.metrics.total_collected() > 0, "{gc}");
    }
}

#[test]
fn wang_global_is_at_least_as_aggressive_as_simple() {
    let n = 4;
    let run = |gc| -> usize {
        SimulationBuilder::new(
            WorkloadSpec::uniform_random(n, 400)
                .with_seed(13)
                .with_checkpoint_prob(0.3),
        )
        .garbage_collector(gc)
        .control_every(100)
        .run()
        .expect("simulation runs")
        .metrics
        .total_collected()
    };
    assert!(run(GcKind::WangGlobal) >= run(GcKind::SimpleCoordinated));
}

#[test]
fn no_gc_diverges() {
    let n = 4;
    let report = sim(n, 400, 3, ProtocolKind::Fdas, GcKind::None);
    assert!(report.metrics.max_retained_per_process() > n + 1);
    assert_eq!(report.metrics.total_collected(), 0);
}

#[test]
fn lossy_channels_preserve_all_guarantees() {
    let n = 4;
    let report = SimulationBuilder::new(
        WorkloadSpec::uniform_random(n, 300)
            .with_seed(21)
            .with_checkpoint_prob(0.3),
    )
    .channel(ChannelConfig::lossy(0.3))
    .record_trace()
    .run()
    .expect("simulation runs");
    let trace = report.trace.as_ref().expect("trace recorded");
    let ccp = CcpBuilder::from_trace(n, trace)
        .expect("crash-free")
        .build();
    assert!(ccp.is_rdt());
    assert!(report.metrics.max_retained_per_process() <= n + 1);
    let lost: u64 = report.metrics.per_process.iter().map(|m| m.lost).sum();
    assert!(lost > 0, "loss rate 0.3 should lose something");
}

#[test]
fn simulation_is_deterministic_in_the_seed() {
    let run = || sim(4, 200, 77, ProtocolKind::Fdas, GcKind::RdtLgc);
    let (a, b) = (run(), run());
    assert_eq!(a.trace, b.trace);
    assert_eq!(a.final_retained, b.final_retained);
}

#[test]
fn threaded_and_des_agree_on_guarantees() {
    let n = 4;
    let ops = WorkloadSpec::uniform_random(n, 300).with_seed(5).generate();
    let threaded = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
    assert!(threaded.max_peak_retained() <= n + 1);
}
