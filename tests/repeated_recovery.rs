//! Repeated-recovery property test: after K random crash/recover sessions
//! (coordinated and uncoordinated, with correlated multi-process faulty
//! sets), the **online** recovery line computed by the manager over the
//! live middlewares must match the **offline** `rdt-ccp` oracle replaying
//! the full trace — rollbacks included — for every faulty set probed.
//!
//! The comparison is the Lemma-1 totality + GC-safety check in one: the
//! oracle retains every live checkpoint, the online side only what the
//! collector kept, so a mismatch means either orphaned causal knowledge
//! blocked a live checkpoint (the pre-incarnation bug) or the collector
//! eliminated a checkpoint a line still needed. The line must also name
//! only restorable states, and safe collectors must never take the
//! oldest-survivor fallback (`degraded_lines == 0`; exhaustion would have
//! failed the run with `RecoveryError`).

use proptest::prelude::*;

use rdt_checkpointing::base::ProcessId;
use rdt_checkpointing::ccp::CcpBuilder;
use rdt_checkpointing::core::GcKind;
use rdt_checkpointing::protocols::ProtocolKind;
use rdt_checkpointing::recovery::{FaultySet, RecoveryManager, RecoveryMode};
use rdt_checkpointing::sim::{ChannelConfig, SimConfig, Simulation};
use rdt_checkpointing::workloads::WorkloadSpec;

fn drive(
    n: usize,
    steps: usize,
    seed: u64,
    mode: RecoveryMode,
    protocol: ProtocolKind,
) -> Simulation {
    let spec = WorkloadSpec::uniform_random(n, steps)
        .with_seed(seed)
        .with_checkpoint_prob(0.25)
        .with_crash_prob(0.04); // K ≈ steps/25 crash/recover sessions
    let config = SimConfig {
        channel: ChannelConfig::lossy(0.05),
        correlated_crash_prob: 0.3,
        record_trace: true,
        ..SimConfig::default()
    };
    let mut sim = Simulation::new(n, protocol, GcKind::RdtLgc, config, mode, seed);
    sim.schedule_ops(&spec.generate());
    // An Err here would be RecoveryLineExhausted — the fallback-free
    // totality guarantee for the safe RDT-LGC collector.
    sim.run_to_completion()
        .expect("Lemma 1 is total under safe collectors");
    sim
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(16))]

    #[test]
    fn online_line_matches_offline_oracle_after_repeated_crashes(
        seed in 0u64..10_000,
        n in 2usize..6,
        uncoordinated in 0u8..2,
        fdas in 0u8..2,
    ) {
        let mode = if uncoordinated == 1 {
            RecoveryMode::Uncoordinated
        } else {
            RecoveryMode::Coordinated
        };
        let protocol = if fdas == 1 { ProtocolKind::Fdas } else { ProtocolKind::NoForced };
        let sim = drive(n, 500, seed, mode, protocol);

        // Probe every singleton, the full set, and a pseudo-random pair.
        let mut faulty_sets: Vec<FaultySet> = (0..n)
            .map(|i| [ProcessId::new(i)].into_iter().collect())
            .collect();
        faulty_sets.push(ProcessId::all(n).collect());
        faulty_sets.push(
            [ProcessId::new(seed as usize % n), ProcessId::new((seed as usize / 7) % n)]
                .into_iter()
                .collect(),
        );

        let mgr = RecoveryManager::with_mode(mode);
        let mut online_lines = Vec::new();
        for fs in &faulty_sets {
            let line = mgr
                .recovery_line(sim.processes(), fs)
                .expect("no fallback under RDT-LGC");
            // Every component is restorable: a stored checkpoint, or the
            // volatile state of a non-faulty process.
            for (mw, &component) in sim.processes().iter().zip(&line) {
                let volatile = mw.last_stable().next();
                prop_assert!(
                    mw.store().contains(component)
                        || (component == volatile && !fs.contains(&mw.owner())),
                    "faulty {fs:?}: component {component} of {} is not restorable",
                    mw.owner()
                );
            }
            online_lines.push(line);
        }
        let incarnations: Vec<_> =
            sim.processes().iter().map(|mw| mw.incarnation()).collect();

        // Replay the recorded trace — crashes, restores, drops and all —
        // into the offline oracle and compare every line.
        let report = sim.into_report();
        prop_assert_eq!(report.metrics.degraded_lines, 0);
        let trace = report.trace.as_ref().expect("trace recorded");
        let ccp = CcpBuilder::from_trace(n, trace)
            .expect("crashy traces replay")
            .build();
        for (k, p) in ProcessId::all(n).enumerate() {
            prop_assert_eq!(ccp.incarnation(p), incarnations[k], "{}", p);
            prop_assert_eq!(
                ccp.last_stable(p).value(),
                report.final_last_stable[k],
                "{}", p
            );
        }
        for (fs, online) in faulty_sets.iter().zip(&online_lines) {
            let offline = ccp.recovery_line(fs);
            prop_assert_eq!(
                online.iter().map(|c| c.value()).collect::<Vec<_>>(),
                offline.to_raw(),
                "faulty {:?}: online line diverged from the oracle over the \
                 full live history (orphan blocking or GC over-collection)",
                fs
            );
        }
    }
}
