//! End-to-end durability: a process's stable storage is mirrored to disk,
//! the process "dies" (its in-memory state is dropped), restarts from the
//! surviving files, and a recovery session brings the system back to a
//! consistent cut — after which execution continues and every bound holds.

use std::fs;
use std::path::PathBuf;

use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_protocols::Middleware;
use rdt_recovery::{FaultySet, RecoveryManager};

fn scratch(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "rdt-restart-test-{}-{tag}-{seq}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny harness: `n` middlewares, per-process durable mirrors, immediate
/// message delivery, disk synced after every event.
struct DurableWorld {
    mws: Vec<Middleware>,
    disks: Vec<DurableStore>,
    root: PathBuf,
}

impl DurableWorld {
    fn new(n: usize, tag: &str) -> Self {
        let root = scratch(tag);
        let mws: Vec<Middleware> = (0..n)
            .map(|i| Middleware::new(ProcessId::new(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
            .collect();
        let disks: Vec<DurableStore> = (0..n)
            .map(|i| {
                DurableStore::open(root.join(format!("p{i}")), ProcessId::new(i))
                    .expect("scratch dir opens")
            })
            .collect();
        let mut world = Self { mws, disks, root };
        world.sync_all();
        world
    }

    fn sync(&mut self, i: usize) {
        self.disks[i]
            .sync(self.mws[i].store())
            .expect("disk mirror");
    }

    fn sync_all(&mut self) {
        for i in 0..self.mws.len() {
            self.sync(i);
        }
    }

    fn checkpoint(&mut self, i: usize) {
        self.mws[i].basic_checkpoint().expect("alive");
        self.sync(i);
    }

    fn message(&mut self, from: usize, to: usize) {
        let m = self.mws[from].send(ProcessId::new(to), Payload::empty());
        self.sync(from);
        self.mws[to].receive(&m).expect("alive");
        self.sync(to);
    }

    /// Kills process `i` (drops its volatile state) and restarts it from
    /// disk alone.
    fn crash_and_restart(&mut self, i: usize) {
        self.crash_and_restart_reported(i);
    }

    /// As [`crash_and_restart`](Self::crash_and_restart), returning the
    /// lenient-rebuild report (quarantine counts and the like).
    fn crash_and_restart_reported(&mut self, i: usize) -> RestartReport {
        let n = self.mws.len();
        let (rebuilt, report) = self.disks[i].rebuild_reported().expect("disk is readable");
        self.mws[i] = Middleware::from_store(
            ProcessId::new(i),
            n,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            rebuilt,
        );
        assert!(self.mws[i].is_crashed());
        report
    }

    /// On-disk path of process `i`'s newest stored checkpoint.
    fn newest_ckpt_path(&self, i: usize) -> PathBuf {
        let newest = self.disks[i]
            .indices()
            .expect("dir listable")
            .into_iter()
            .max()
            .expect("at least one checkpoint on disk");
        self.root
            .join(format!("p{i}"))
            .join(format!("ckpt_{}.bin", newest.value()))
    }

    fn recover(&mut self, faulty: &[usize]) {
        let faulty: FaultySet = faulty.iter().map(|&i| ProcessId::new(i)).collect();
        RecoveryManager::new()
            .recover(&mut self.mws, &faulty)
            .expect("Lemma 1 is total for safe collectors");
        self.sync_all();
    }
}

impl Drop for DurableWorld {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn restart_from_disk_restores_a_consistent_system() {
    let mut w = DurableWorld::new(3, "consistent");
    // Build some history with cross-process knowledge.
    w.checkpoint(0);
    w.message(0, 1);
    w.checkpoint(1);
    w.message(1, 2);
    w.checkpoint(2);
    w.message(2, 0);
    w.checkpoint(0);

    let before: Vec<Vec<usize>> = w
        .mws
        .iter()
        .map(|m| m.store().indices().map(|i| i.value()).collect())
        .collect();

    // p1 dies; everything it knew must come back from the files.
    w.crash_and_restart(1);
    assert_eq!(
        w.mws[1]
            .store()
            .indices()
            .map(|i| i.value())
            .collect::<Vec<_>>(),
        before[1],
        "disk reproduced the exact retained set"
    );

    w.recover(&[1]);
    assert!(!w.mws[1].is_crashed());

    // Execution continues; bounds hold; knowledge flows again.
    w.message(1, 0);
    w.checkpoint(0);
    w.message(0, 2);
    w.checkpoint(2);
    for mw in &w.mws {
        assert!(mw.store().len() <= 3, "{}", mw.owner());
    }
}

#[test]
fn restarted_process_dv_reflects_its_last_stable_checkpoint() {
    let mut w = DurableWorld::new(2, "dv");
    w.checkpoint(0);
    w.message(1, 0); // p0 learns of p1's interval
    w.checkpoint(0);
    let dv_before = w.mws[0].dv().clone();
    w.crash_and_restart(0);
    // Volatile knowledge gained after the last checkpoint is gone; the
    // restored vector equals the last stored one, bumped.
    assert_eq!(w.mws[0].dv(), &dv_before);
    w.recover(&[0]);
    // After the recovery session the intervals are unchanged, but the
    // rollback opened a fresh incarnation for p0's own entry.
    assert_eq!(w.mws[0].dv().to_raw(), dv_before.to_raw());
    assert_eq!(
        w.mws[0].incarnation(),
        rdt_checkpointing::base::Incarnation::new(1)
    );
    assert_eq!(
        w.mws[0]
            .dv()
            .incarnation_of(rdt_checkpointing::base::ProcessId::new(0)),
        rdt_checkpointing::base::Incarnation::new(1)
    );
}

#[test]
fn restart_resumes_above_every_incarnation_the_dead_execution_used() {
    use rdt_checkpointing::base::Incarnation;
    // p0 rolls back once (incarnation 1) and propagates incarnation-1
    // knowledge to p1, then dies hard and is rebuilt from disk alone.
    // Rollbacks store no checkpoint, so the stored vectors still say
    // incarnation 0 — the durable incarnation log must carry the counter,
    // or the restart would reuse incarnation 1 and alias the dead
    // execution's knowledge (and the recovery line would read p1's live
    // dependency as stale).
    let mut w = DurableWorld::new(2, "incarnation-log");
    w.checkpoint(0);
    w.mws[0].crash();
    w.recover(&[0]); // rollback to s_0^1: incarnation 1
    assert_eq!(w.mws[0].incarnation(), Incarnation::new(1));
    w.message(0, 1); // p1 now knows p0's incarnation 1, interval 2
    assert_eq!(
        w.mws[1].dv().lineage(ProcessId::new(0)),
        rdt_checkpointing::base::DvEntry::new(
            Incarnation::new(1),
            rdt_checkpointing::base::IntervalIndex::new(2)
        )
    );

    w.crash_and_restart(0);
    assert_eq!(
        w.mws[0].incarnation(),
        Incarnation::new(1),
        "the restart resumes at the logged incarnation, not the stored vector's"
    );
    // The recovery session reads p1's incarnation-1 knowledge as *live* —
    // p1 depends on p0's lost interval 2 and must roll back with it.
    let line = RecoveryManager::new()
        .recovery_line(&w.mws, &[ProcessId::new(0)].into_iter().collect())
        .expect("Lemma 1 total");
    assert_eq!(line[1], CheckpointIndex::new(0), "p1 is an orphan");
    w.recover(&[0]);
    assert_eq!(w.mws[0].incarnation(), Incarnation::new(2));
    // The log survives on disk, monotone across the whole ordeal.
    assert_eq!(w.disks[0].incarnation_floor().unwrap(), Incarnation::new(2));
}

#[test]
fn gc_eliminations_propagate_to_disk() {
    let mut w = DurableWorld::new(2, "gc");
    for _ in 0..5 {
        w.checkpoint(0);
    }
    // RDT-LGC keeps only the last lone checkpoint; the mirror must agree.
    assert_eq!(w.mws[0].store().len(), 1);
    assert_eq!(w.disks[0].indices().unwrap().len(), 1);
}

#[test]
fn repeated_crashes_never_lose_the_recovery_anchor() {
    let mut w = DurableWorld::new(3, "repeat");
    for round in 0..4 {
        w.checkpoint(round % 3);
        w.message(round % 3, (round + 1) % 3);
        let victim = (round + 1) % 3;
        w.crash_and_restart(victim);
        w.recover(&[victim]);
        for mw in &w.mws {
            assert!(!mw.is_crashed());
            assert!(!mw.store().is_empty(), "{} lost its anchor", mw.owner());
        }
    }
}

#[test]
fn simultaneous_restart_of_every_process_recovers() {
    let mut w = DurableWorld::new(3, "all");
    w.checkpoint(0);
    w.message(0, 1);
    w.checkpoint(1);
    for i in 0..3 {
        w.crash_and_restart(i);
    }
    w.recover(&[0, 1, 2]);
    for mw in &w.mws {
        assert!(!mw.is_crashed());
    }
    // The system can make progress from the recovered cut.
    w.message(0, 2);
    w.checkpoint(2);
    assert!(w.mws[2].store().len() <= 3);
}

/// Builds enough cross-process history that every process retains at
/// least two stable checkpoints, so corrupting the newest leaves an
/// older intact one to fall back to.
fn world_with_depth(tag: &str) -> DurableWorld {
    // Each process checkpoints right after receiving from a sender that
    // never checkpoints behind its send: the new checkpoint depends on a
    // volatile interval, so the older one stays a live rollback target.
    let mut w = DurableWorld::new(3, tag);
    w.message(1, 0);
    w.checkpoint(0);
    w.message(2, 1);
    w.checkpoint(1);
    w.message(0, 2);
    w.checkpoint(2);
    for i in 0..3 {
        assert!(
            w.disks[i].indices().unwrap().len() >= 2,
            "p{i} needs a fallback checkpoint for these tests"
        );
    }
    w
}

#[test]
fn torn_write_is_quarantined_and_the_older_checkpoint_restored() {
    let mut w = world_with_depth("torn");
    // Tear p1's newest checkpoint to a prefix — the on-disk image of a
    // crash mid-write that somehow survived the atomic-replace discipline
    // (e.g. media corruption after the fact).
    let victim = w.newest_ckpt_path(1);
    let bytes = fs::read(&victim).unwrap();
    fs::write(&victim, &bytes[..bytes.len() / 2]).unwrap();

    let intact_before = w.disks[1].indices().unwrap().len();
    let report = w.crash_and_restart_reported(1);
    assert_eq!(report.quarantined, 1, "exactly the torn file is set aside");
    assert_eq!(report.loaded, intact_before - 1);
    assert!(
        victim.with_extension("bin.quarantined").exists(),
        "the torn file is preserved for forensics, not deleted"
    );

    // The system still reaches a consistent cut and keeps executing.
    w.recover(&[1]);
    w.message(1, 2);
    w.checkpoint(2);
    for mw in &w.mws {
        assert!(!mw.is_crashed());
        assert!(!mw.store().is_empty());
    }
}

#[test]
fn bit_flip_is_detected_by_the_checksum_and_quarantined() {
    let mut w = world_with_depth("bitflip");
    let victim = w.newest_ckpt_path(0);
    let mut bytes = fs::read(&victim).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0x40;
    fs::write(&victim, &bytes).unwrap();

    let report = w.crash_and_restart_reported(0);
    assert_eq!(report.quarantined, 1, "one silently corrupted record");
    w.recover(&[0]);
    w.message(0, 1);
    w.checkpoint(1);
    for mw in &w.mws {
        assert!(!mw.is_crashed());
    }
}

#[test]
fn corruption_on_every_process_at_once_still_recovers() {
    let mut w = world_with_depth("multi-corrupt");
    // All three processes lose their newest checkpoint to different
    // faults in the same incident.
    for i in 0..3 {
        let victim = w.newest_ckpt_path(i);
        let bytes = fs::read(&victim).unwrap();
        match i {
            0 => fs::write(&victim, &bytes[..bytes.len() / 3]).unwrap(),
            1 => {
                let mut b = bytes.clone();
                let last = b.len() - 1;
                b[last] ^= 0x01;
                fs::write(&victim, &b).unwrap();
            }
            _ => fs::write(&victim, b"").unwrap(),
        }
    }
    let mut quarantined = 0;
    for i in 0..3 {
        quarantined += w.crash_and_restart_reported(i).quarantined;
    }
    assert_eq!(quarantined, 3);
    w.recover(&[0, 1, 2]);
    w.message(0, 2);
    w.checkpoint(2);
    for mw in &w.mws {
        assert!(!mw.is_crashed());
        assert!(!mw.store().is_empty(), "{} lost its anchor", mw.owner());
    }
}

#[test]
fn lost_rename_never_loses_the_recovery_anchor() {
    // A lost rename is the crash image of dying between rename and the
    // parent-directory fsync — `FaultFs` models exactly that: the rename
    // reports success and the backend is dead from the next operation
    // on. Sweep the fault across every backend operation of a persist
    // window; keyed to a non-rename operation it simply does not fire.
    let owner = ProcessId::new(0);
    let run = |dir: &PathBuf, plan: FaultPlan| -> (FaultFs, Result<(), String>) {
        let backend = FaultFs::new(plan);
        let outcome = (|| {
            let disk = DurableStore::open_with(dir, owner, Box::new(backend.clone()))
                .map_err(|e| e.to_string())?;
            let mut mw = Middleware::new(owner, 2, ProtocolKind::Fdas, GcKind::RdtLgc);
            disk.sync(mw.store()).map_err(|e| e.to_string())?;
            mw.basic_checkpoint().map_err(|e| e.to_string())?;
            disk.sync(mw.store()).map_err(|e| e.to_string())?;
            Ok(())
        })();
        (backend, outcome)
    };

    // Reference run: find the operation window of the second sync, the
    // one that persists checkpoint 1 and removes the now-lone checkpoint 0.
    let refdir = scratch("lost-rename-ref");
    let probe = FaultFs::new(FaultPlan::none());
    let window = {
        let disk = DurableStore::open_with(&refdir, owner, Box::new(probe.clone())).unwrap();
        let mut mw = Middleware::new(owner, 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        disk.sync(mw.store()).unwrap();
        let start = probe.ops_executed();
        mw.basic_checkpoint().unwrap();
        disk.sync(mw.store()).unwrap();
        start..probe.ops_executed()
    };
    fs::remove_dir_all(&refdir).ok();

    for k in window {
        let dir = scratch(&format!("lost-rename-{k}"));
        let plan = FaultPlan::none().with_fault(k, FaultKind::LostRename);
        let (backend, outcome) = run(&dir, plan);
        // The fault fires only when op k is a rename; the crash then
        // surfaces on the operation after it (one always follows — a
        // rename is never the sync's last operation, `atomic_write`
        // always chases it with the directory fsync).
        assert_eq!(
            outcome.is_err(),
            backend.has_crashed(),
            "op {k}: the only permitted error is the injected crash"
        );
        assert_eq!(backend.has_crashed(), backend.faults_injected() > 0);

        // Restart from the surviving files with the real filesystem.
        let disk = DurableStore::open(&dir, owner).unwrap();
        let (rebuilt, report) = disk.rebuild_reported().unwrap();
        assert!(
            !rebuilt.is_empty(),
            "op {k}: either the old or the new checkpoint survives — \
             removals only run after the replacement's rename is durable"
        );
        assert_eq!(
            report.quarantined, 0,
            "op {k}: a lost rename corrupts nothing"
        );
        fs::remove_dir_all(&dir).ok();
    }
}

mod torture_props {
    use proptest::prelude::*;
    use rdt_checkpointing::storage::torture::{run_torture, TortureOptions};

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(4))]

        /// Crash-point enumeration over a random scripted trace always
        /// yields a recovery line equal to the offline `rdt-ccp` oracle
        /// replaying the surviving prefix.
        #[test]
        fn crash_point_enumeration_matches_the_oracle(
            seed in 1000u64..9000,
            n in 2usize..4,
        ) {
            let opts = TortureOptions {
                n,
                events: 18,
                seed,
                max_crash_points: 24,
                fault_plans: 2,
                ..TortureOptions::default()
            };
            let report = run_torture(&opts).expect("harness runs");
            prop_assert!(
                report.passed(),
                "seed {seed}, n {n}: {:?}",
                report.failures
            );
        }
    }
}
