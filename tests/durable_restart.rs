//! End-to-end durability: a process's stable storage is mirrored to disk,
//! the process "dies" (its in-memory state is dropped), restarts from the
//! surviving files, and a recovery session brings the system back to a
//! consistent cut — after which execution continues and every bound holds.

use std::fs;
use std::path::PathBuf;

use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_protocols::Middleware;
use rdt_recovery::{FaultySet, RecoveryManager};

fn scratch(tag: &str) -> PathBuf {
    static SEQ: std::sync::atomic::AtomicU64 = std::sync::atomic::AtomicU64::new(0);
    let seq = SEQ.fetch_add(1, std::sync::atomic::Ordering::Relaxed);
    let dir = std::env::temp_dir().join(format!(
        "rdt-restart-test-{}-{tag}-{seq}",
        std::process::id()
    ));
    let _ = fs::remove_dir_all(&dir);
    dir
}

/// A tiny harness: `n` middlewares, per-process durable mirrors, immediate
/// message delivery, disk synced after every event.
struct DurableWorld {
    mws: Vec<Middleware>,
    disks: Vec<DurableStore>,
    root: PathBuf,
}

impl DurableWorld {
    fn new(n: usize, tag: &str) -> Self {
        let root = scratch(tag);
        let mws: Vec<Middleware> = (0..n)
            .map(|i| Middleware::new(ProcessId::new(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
            .collect();
        let disks: Vec<DurableStore> = (0..n)
            .map(|i| {
                DurableStore::open(root.join(format!("p{i}")), ProcessId::new(i))
                    .expect("scratch dir opens")
            })
            .collect();
        let mut world = Self { mws, disks, root };
        world.sync_all();
        world
    }

    fn sync(&mut self, i: usize) {
        self.disks[i]
            .sync(self.mws[i].store())
            .expect("disk mirror");
    }

    fn sync_all(&mut self) {
        for i in 0..self.mws.len() {
            self.sync(i);
        }
    }

    fn checkpoint(&mut self, i: usize) {
        self.mws[i].basic_checkpoint().expect("alive");
        self.sync(i);
    }

    fn message(&mut self, from: usize, to: usize) {
        let m = self.mws[from].send(ProcessId::new(to), Payload::empty());
        self.sync(from);
        self.mws[to].receive(&m).expect("alive");
        self.sync(to);
    }

    /// Kills process `i` (drops its volatile state) and restarts it from
    /// disk alone.
    fn crash_and_restart(&mut self, i: usize) {
        let n = self.mws.len();
        let rebuilt = self.disks[i].rebuild().expect("disk is readable");
        self.mws[i] = Middleware::from_store(
            ProcessId::new(i),
            n,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            rebuilt,
        );
        assert!(self.mws[i].is_crashed());
    }

    fn recover(&mut self, faulty: &[usize]) {
        let faulty: FaultySet = faulty.iter().map(|&i| ProcessId::new(i)).collect();
        RecoveryManager::new()
            .recover(&mut self.mws, &faulty)
            .expect("Lemma 1 is total for safe collectors");
        self.sync_all();
    }
}

impl Drop for DurableWorld {
    fn drop(&mut self) {
        let _ = fs::remove_dir_all(&self.root);
    }
}

#[test]
fn restart_from_disk_restores_a_consistent_system() {
    let mut w = DurableWorld::new(3, "consistent");
    // Build some history with cross-process knowledge.
    w.checkpoint(0);
    w.message(0, 1);
    w.checkpoint(1);
    w.message(1, 2);
    w.checkpoint(2);
    w.message(2, 0);
    w.checkpoint(0);

    let before: Vec<Vec<usize>> = w
        .mws
        .iter()
        .map(|m| m.store().indices().map(|i| i.value()).collect())
        .collect();

    // p1 dies; everything it knew must come back from the files.
    w.crash_and_restart(1);
    assert_eq!(
        w.mws[1]
            .store()
            .indices()
            .map(|i| i.value())
            .collect::<Vec<_>>(),
        before[1],
        "disk reproduced the exact retained set"
    );

    w.recover(&[1]);
    assert!(!w.mws[1].is_crashed());

    // Execution continues; bounds hold; knowledge flows again.
    w.message(1, 0);
    w.checkpoint(0);
    w.message(0, 2);
    w.checkpoint(2);
    for mw in &w.mws {
        assert!(mw.store().len() <= 3, "{}", mw.owner());
    }
}

#[test]
fn restarted_process_dv_reflects_its_last_stable_checkpoint() {
    let mut w = DurableWorld::new(2, "dv");
    w.checkpoint(0);
    w.message(1, 0); // p0 learns of p1's interval
    w.checkpoint(0);
    let dv_before = w.mws[0].dv().clone();
    w.crash_and_restart(0);
    // Volatile knowledge gained after the last checkpoint is gone; the
    // restored vector equals the last stored one, bumped.
    assert_eq!(w.mws[0].dv(), &dv_before);
    w.recover(&[0]);
    // After the recovery session the intervals are unchanged, but the
    // rollback opened a fresh incarnation for p0's own entry.
    assert_eq!(w.mws[0].dv().to_raw(), dv_before.to_raw());
    assert_eq!(
        w.mws[0].incarnation(),
        rdt_checkpointing::base::Incarnation::new(1)
    );
    assert_eq!(
        w.mws[0]
            .dv()
            .incarnation_of(rdt_checkpointing::base::ProcessId::new(0)),
        rdt_checkpointing::base::Incarnation::new(1)
    );
}

#[test]
fn restart_resumes_above_every_incarnation_the_dead_execution_used() {
    use rdt_checkpointing::base::Incarnation;
    // p0 rolls back once (incarnation 1) and propagates incarnation-1
    // knowledge to p1, then dies hard and is rebuilt from disk alone.
    // Rollbacks store no checkpoint, so the stored vectors still say
    // incarnation 0 — the durable incarnation log must carry the counter,
    // or the restart would reuse incarnation 1 and alias the dead
    // execution's knowledge (and the recovery line would read p1's live
    // dependency as stale).
    let mut w = DurableWorld::new(2, "incarnation-log");
    w.checkpoint(0);
    w.mws[0].crash();
    w.recover(&[0]); // rollback to s_0^1: incarnation 1
    assert_eq!(w.mws[0].incarnation(), Incarnation::new(1));
    w.message(0, 1); // p1 now knows p0's incarnation 1, interval 2
    assert_eq!(
        w.mws[1].dv().lineage(ProcessId::new(0)),
        rdt_checkpointing::base::DvEntry::new(
            Incarnation::new(1),
            rdt_checkpointing::base::IntervalIndex::new(2)
        )
    );

    w.crash_and_restart(0);
    assert_eq!(
        w.mws[0].incarnation(),
        Incarnation::new(1),
        "the restart resumes at the logged incarnation, not the stored vector's"
    );
    // The recovery session reads p1's incarnation-1 knowledge as *live* —
    // p1 depends on p0's lost interval 2 and must roll back with it.
    let line = RecoveryManager::new()
        .recovery_line(&w.mws, &[ProcessId::new(0)].into_iter().collect())
        .expect("Lemma 1 total");
    assert_eq!(line[1], CheckpointIndex::new(0), "p1 is an orphan");
    w.recover(&[0]);
    assert_eq!(w.mws[0].incarnation(), Incarnation::new(2));
    // The log survives on disk, monotone across the whole ordeal.
    assert_eq!(w.disks[0].incarnation_floor().unwrap(), Incarnation::new(2));
}

#[test]
fn gc_eliminations_propagate_to_disk() {
    let mut w = DurableWorld::new(2, "gc");
    for _ in 0..5 {
        w.checkpoint(0);
    }
    // RDT-LGC keeps only the last lone checkpoint; the mirror must agree.
    assert_eq!(w.mws[0].store().len(), 1);
    assert_eq!(w.disks[0].indices().unwrap().len(), 1);
}

#[test]
fn repeated_crashes_never_lose_the_recovery_anchor() {
    let mut w = DurableWorld::new(3, "repeat");
    for round in 0..4 {
        w.checkpoint(round % 3);
        w.message(round % 3, (round + 1) % 3);
        let victim = (round + 1) % 3;
        w.crash_and_restart(victim);
        w.recover(&[victim]);
        for mw in &w.mws {
            assert!(!mw.is_crashed());
            assert!(!mw.store().is_empty(), "{} lost its anchor", mw.owner());
        }
    }
}

#[test]
fn simultaneous_restart_of_every_process_recovers() {
    let mut w = DurableWorld::new(3, "all");
    w.checkpoint(0);
    w.message(0, 1);
    w.checkpoint(1);
    for i in 0..3 {
        w.crash_and_restart(i);
    }
    w.recover(&[0, 1, 2]);
    for mw in &w.mws {
        assert!(!mw.is_crashed());
    }
    // The system can make progress from the recovered cut.
    w.message(0, 2);
    w.checkpoint(2);
    assert!(w.mws[2].store().len() <= 3);
}
