//! Safety of garbage collection, measured against the Theorem-1 oracle.
//!
//! A collector is *safe* (Theorem 4) if every checkpoint it eliminates is
//! obsolete in the CCP of the cut **at the moment of elimination** — checked
//! by replaying the simulator's trace through
//! [`rdt_ccp::collection_safety_violations`]. RDT-LGC is proved safe; the
//! time-based baseline is safe **only** while its real-time assumption
//! holds, which slow channels and quiet processes break.

use rdt_ccp::collection_safety_violations;
use rdt_checkpointing::prelude::*;
use rdt_core::GcKind;
use rdt_sim::SimulationBuilder;

/// Runs a crash-free workload under slow channels and audits every
/// garbage-collection event against the Theorem-1 oracle.
fn violations(spec: &WorkloadSpec, gc: GcKind) -> Vec<CheckpointId> {
    let config = SimConfig {
        channel: ChannelConfig {
            min_delay: 50,
            max_delay: 400,
            loss_rate: 0.0,
        },
        ..SimConfig::default()
    };
    let report = SimulationBuilder::new(spec.clone())
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(gc)
        .config(config)
        .record_trace()
        .run()
        .expect("simulation runs");
    let trace = report.trace.expect("trace recording was enabled");
    collection_safety_violations(spec.n, &trace).expect("crash-free trace replays")
}

fn slow_world_spec(seed: u64) -> WorkloadSpec {
    WorkloadSpec::uniform_random(4, 300)
        .with_seed(seed)
        .with_checkpoint_prob(0.15)
}

#[test]
fn rdt_lgc_never_violates_safety() {
    for seed in 0..6 {
        let v = violations(&slow_world_spec(seed), GcKind::RdtLgc);
        assert!(v.is_empty(), "seed {seed}: RDT-LGC dropped {v:?}");
    }
}

#[test]
fn rdt_lgc_is_safe_under_every_rdt_protocol() {
    // Theorem 4 does not care which RDT protocol drives the checkpoints:
    // audit the whole family on identical traffic.
    for protocol in ProtocolKind::RDT {
        for seed in 0..2 {
            let report = SimulationBuilder::new(slow_world_spec(seed))
                .protocol(protocol)
                .garbage_collector(GcKind::RdtLgc)
                .record_trace()
                .run()
                .expect("simulation runs");
            let v = rdt_ccp::collection_safety_violations(4, &report.trace.unwrap())
                .expect("crash-free trace replays");
            assert!(v.is_empty(), "{protocol} seed {seed}: dropped {v:?}");
        }
    }
}

#[test]
fn no_gc_trivially_never_violates_safety() {
    let v = violations(&slow_world_spec(0), GcKind::None);
    assert!(v.is_empty());
}

#[test]
fn time_based_gc_violates_safety_under_broken_assumptions() {
    // A horizon far below the real checkpoint cadence + message delays: the
    // assumption [14] needs does not hold, and pinned checkpoints age out.
    let mut total = 0usize;
    for seed in 0..6 {
        total += violations(&slow_world_spec(seed), GcKind::TimeBased { horizon: 60 }).len();
    }
    assert!(
        total > 0,
        "expected at least one safety violation across seeds"
    );
}

#[test]
fn time_based_gc_is_safe_when_the_assumption_holds() {
    // A horizon comfortably above every inter-checkpoint gap plus the
    // maximum delay: Theorem-1 pins always point at recently stored
    // checkpoints, so nothing pinned ever ages out.
    let spec = WorkloadSpec::uniform_random(3, 400)
        .with_seed(9)
        .with_checkpoint_prob(0.45);
    let config = SimConfig {
        channel: ChannelConfig {
            min_delay: 0,
            max_delay: 3,
            loss_rate: 0.0,
        },
        ticks_per_op: 1,
        ..SimConfig::default()
    };
    let report = SimulationBuilder::new(spec.clone())
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(GcKind::TimeBased { horizon: 100_000 })
        .config(config)
        .record_trace()
        .run()
        .expect("simulation runs");
    let v = collection_safety_violations(spec.n, &report.trace.unwrap())
        .expect("crash-free trace replays");
    assert!(v.is_empty(), "dropped {v:?}");
}

#[test]
fn time_based_gc_does_bound_storage_where_no_gc_diverges() {
    // The reason [14] exists at all: it does collect. Its storage stays far
    // below the no-GC baseline even while (unsafely) configured.
    let spec = slow_world_spec(3);
    let run = |gc| {
        SimulationBuilder::new(spec.clone())
            .garbage_collector(gc)
            .run()
            .expect("simulation runs")
            .metrics
            .total_retained()
    };
    let timed = run(GcKind::TimeBased { horizon: 200 });
    let none = run(GcKind::None);
    assert!(timed < none, "time-based {timed} not below no-gc {none}");
}
