//! Failure-injection integration tests: recovery sessions through the full
//! stack (simulator + recovery manager + Algorithm 3).

use rdt_checkpointing::prelude::*;

fn crashy(seed: u64, gc: GcKind, mode: RecoveryMode) -> SimulationReport {
    SimulationBuilder::new(
        WorkloadSpec::uniform_random(4, 600)
            .with_seed(seed)
            .with_checkpoint_prob(0.25)
            .with_crash_prob(0.01),
    )
    .protocol(ProtocolKind::Fdas)
    .garbage_collector(gc)
    .recovery_mode(mode)
    .run()
    .expect("simulation runs")
}

#[test]
fn recovery_sessions_happen_and_finish() {
    let report = crashy(1, GcKind::RdtLgc, RecoveryMode::Coordinated);
    assert!(
        !report.recovery_sessions.is_empty(),
        "crash probability should trigger sessions"
    );
    for session in &report.recovery_sessions {
        assert_eq!(session.faulty.len(), 1);
        assert!(session.li.is_some());
    }
}

#[test]
fn retention_bound_survives_recovery_sessions() {
    for seed in 0..5 {
        let n = 4;
        let report = crashy(seed, GcKind::RdtLgc, RecoveryMode::Coordinated);
        assert!(
            report.metrics.max_retained_per_process() <= n + 1,
            "seed {seed}"
        );
    }
}

#[test]
fn uncoordinated_recovery_also_preserves_bounds() {
    for seed in 0..3 {
        let n = 4;
        let report = crashy(seed, GcKind::RdtLgc, RecoveryMode::Uncoordinated);
        assert!(
            report.metrics.max_retained_per_process() <= n + 1,
            "seed {seed}"
        );
        for session in &report.recovery_sessions {
            assert!(session.li.is_none());
        }
    }
}

#[test]
fn coordinated_mode_eliminates_at_least_as_much_per_session() {
    // Theorem 1 (LI) subsumes Theorem 2 (DV): with global information a
    // rollback collects at least as many checkpoints.
    let co = crashy(7, GcKind::RdtLgc, RecoveryMode::Coordinated);
    let un = crashy(7, GcKind::RdtLgc, RecoveryMode::Uncoordinated);
    // Identical seeds: the pre-crash executions coincide, so compare the
    // first sessions directly.
    if let (Some(a), Some(b)) = (co.recovery_sessions.first(), un.recovery_sessions.first()) {
        assert_eq!(a.faulty, b.faulty, "same seed, same first failure");
        assert!(
            a.eliminated.len() >= b.eliminated.len(),
            "coordinated {} < uncoordinated {}",
            a.eliminated.len(),
            b.eliminated.len()
        );
    }
}

#[test]
fn rolled_back_processes_resume_and_checkpoint_again() {
    let report = crashy(3, GcKind::RdtLgc, RecoveryMode::Coordinated);
    // The run continued after the session: more checkpoints were stored
    // than the initial n.
    assert!(report.metrics.total_basic() + report.metrics.total_forced() > 4);
    // And every process ends alive with a non-empty store.
    for retained in &report.final_retained {
        assert!(!retained.is_empty());
    }
}

#[test]
fn recovery_lines_never_roll_past_initial_checkpoints() {
    let report = crashy(11, GcKind::RdtLgc, RecoveryMode::Coordinated);
    for session in &report.recovery_sessions {
        for (_, to) in &session.rolled_back {
            // A rollback target always exists (≥ s^0 by construction).
            let _ = to;
        }
        assert_eq!(session.line.len(), 4);
    }
}

/// Orphan-freedom: after the final recovery session and subsequent
/// execution, no process's dependency vector references an interval of a
/// peer beyond that peer's volatile state — rolled-back knowledge never
/// survives a consistent recovery.
#[test]
fn no_orphan_knowledge_survives_recovery() {
    for seed in 0..6 {
        let report = crashy(seed, GcKind::RdtLgc, RecoveryMode::Coordinated);
        for (i, dv) in report.final_dvs.iter().enumerate() {
            for (j, &last) in report.final_last_stable.iter().enumerate() {
                let entry = dv.entry(ProcessId::new(j)).value();
                assert!(
                    entry <= last + 1,
                    "seed {seed}: p{} knows interval {} of p{} but its volatile is {}",
                    i + 1,
                    entry,
                    j + 1,
                    last + 1
                );
            }
        }
    }
}

/// Correlated failures: multi-process faulty sets recover in one session
/// and all guarantees survive.
#[test]
fn correlated_crashes_recover_consistently() {
    let n = 5;
    let config = SimConfig {
        correlated_crash_prob: 0.5,
        ..SimConfig::default()
    };
    let report = SimulationBuilder::new(
        WorkloadSpec::uniform_random(n, 800)
            .with_seed(19)
            .with_checkpoint_prob(0.25)
            .with_crash_prob(0.01),
    )
    .protocol(ProtocolKind::Fdas)
    .garbage_collector(GcKind::RdtLgc)
    .config(config)
    .run()
    .expect("simulation runs");
    assert!(
        report.recovery_sessions.iter().any(|s| s.faulty.len() > 1),
        "correlation should produce a multi-process faulty set"
    );
    assert!(report.metrics.max_retained_per_process() <= n + 1);
    for (i, dv) in report.final_dvs.iter().enumerate() {
        for (j, &last) in report.final_last_stable.iter().enumerate() {
            assert!(
                dv.entry(ProcessId::new(j)).value() <= last + 1,
                "orphan knowledge at p{} about p{}",
                i + 1,
                j + 1
            );
        }
    }
}

#[test]
fn no_gc_under_crashes_still_truncates_rolled_back_suffixes() {
    for seed in 0..6 {
        let report = crashy(seed, GcKind::None, RecoveryMode::Coordinated);
        if report.recovery_sessions.is_empty() {
            continue; // seed produced no crash; other seeds cover sessions
        }
        // Rolled-back checkpoints are physically gone even without GC: no
        // retained index may exceed the owner's last stable checkpoint.
        for (i, retained) in report.final_retained.iter().enumerate() {
            for &index in retained {
                assert!(
                    index <= report.final_last_stable[i],
                    "seed {seed}: p{} retains rolled-back checkpoint {index}",
                    i + 1
                );
            }
        }
    }
}
