//! Offline shim for `crossbeam` covering the surface this workspace uses:
//! `channel::{unbounded, bounded, Sender, Receiver}` and the `select!`
//! macro over `recv` arms.
//!
//! Channels are MPMC queues built on `Mutex<VecDeque>` + `Condvar`;
//! bounded senders block while the queue is at capacity. `select!` polls
//! its arms round-robin with a short parked sleep between sweeps. Adequate
//! for the threaded test runtime and the sharded engine's window-barrier
//! inboxes; swap `[workspace.dependencies]` to the real crates.io
//! `crossbeam` when a registry is reachable.

/// Multi-producer multi-consumer channels.
pub mod channel {
    use std::collections::VecDeque;
    use std::fmt;
    use std::sync::atomic::{AtomicUsize, Ordering};
    use std::sync::{Arc, Condvar, Mutex};

    struct Chan<T> {
        queue: Mutex<VecDeque<T>>,
        ready: Condvar,
        /// Signalled when a bounded queue makes room.
        space: Condvar,
        /// `None` for unbounded channels.
        cap: Option<usize>,
        senders: AtomicUsize,
    }

    /// The sending half of an unbounded channel.
    pub struct Sender<T>(Arc<Chan<T>>);

    /// The receiving half of an unbounded channel.
    pub struct Receiver<T>(Arc<Chan<T>>);

    /// Error returned when every receiver is gone (never observed through
    /// this shim's API: receivers do not track their own count).
    #[derive(Clone, Copy, PartialEq, Eq)]
    pub struct SendError<T>(pub T);

    impl<T> fmt::Debug for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("SendError(..)")
        }
    }

    impl<T> fmt::Display for SendError<T> {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("sending on a disconnected channel")
        }
    }

    /// Error returned by `recv` when the channel is empty and every sender
    /// is gone.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub struct RecvError;

    /// Error returned by `try_recv`.
    #[derive(Debug, Clone, Copy, PartialEq, Eq)]
    pub enum TryRecvError {
        /// No message is currently queued.
        Empty,
        /// No message is queued and every sender is gone.
        Disconnected,
    }

    impl fmt::Display for RecvError {
        fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
            f.write_str("receiving on an empty and disconnected channel")
        }
    }

    impl std::error::Error for RecvError {}

    /// Creates an unbounded channel.
    pub fn unbounded<T>() -> (Sender<T>, Receiver<T>) {
        with_cap(None)
    }

    /// Creates a bounded channel: `send` blocks while `cap` messages are
    /// queued. A capacity of 0 is rounded up to 1 (the real crossbeam's
    /// rendezvous semantics are not needed here).
    pub fn bounded<T>(cap: usize) -> (Sender<T>, Receiver<T>) {
        with_cap(Some(cap.max(1)))
    }

    fn with_cap<T>(cap: Option<usize>) -> (Sender<T>, Receiver<T>) {
        let chan = Arc::new(Chan {
            queue: Mutex::new(VecDeque::new()),
            ready: Condvar::new(),
            space: Condvar::new(),
            cap,
            senders: AtomicUsize::new(1),
        });
        (Sender(Arc::clone(&chan)), Receiver(chan))
    }

    impl<T> Sender<T> {
        /// Enqueues `value`; blocks while a bounded channel is full.
        ///
        /// # Errors
        ///
        /// This shim cannot observe receiver disconnection, so `send`
        /// always succeeds; the `Result` mirrors the real API.
        pub fn send(&self, value: T) -> Result<(), SendError<T>> {
            let mut queue = self.0.queue.lock().expect("channel poisoned");
            if let Some(cap) = self.0.cap {
                while queue.len() >= cap {
                    queue = self.0.space.wait(queue).expect("channel poisoned");
                }
            }
            queue.push_back(value);
            drop(queue);
            self.0.ready.notify_one();
            Ok(())
        }
    }

    impl<T> Clone for Sender<T> {
        fn clone(&self) -> Self {
            self.0.senders.fetch_add(1, Ordering::SeqCst);
            Sender(Arc::clone(&self.0))
        }
    }

    impl<T> Drop for Sender<T> {
        fn drop(&mut self) {
            if self.0.senders.fetch_sub(1, Ordering::SeqCst) == 1 {
                // Last sender: wake blocked receivers so they observe
                // disconnection.
                self.0.ready.notify_all();
            }
        }
    }

    impl<T> Receiver<T> {
        /// Blocks until a message arrives or the channel disconnects.
        ///
        /// # Errors
        ///
        /// [`RecvError`] if the channel is empty and all senders dropped.
        pub fn recv(&self) -> Result<T, RecvError> {
            let mut queue = self.0.queue.lock().expect("channel poisoned");
            loop {
                if let Some(v) = queue.pop_front() {
                    self.0.space.notify_one();
                    return Ok(v);
                }
                if self.0.senders.load(Ordering::SeqCst) == 0 {
                    return Err(RecvError);
                }
                queue = self.0.ready.wait(queue).expect("channel poisoned");
            }
        }

        /// Non-blocking receive.
        ///
        /// # Errors
        ///
        /// [`TryRecvError::Empty`] when nothing is queued,
        /// [`TryRecvError::Disconnected`] when additionally all senders
        /// dropped.
        pub fn try_recv(&self) -> Result<T, TryRecvError> {
            let mut queue = self.0.queue.lock().expect("channel poisoned");
            if let Some(v) = queue.pop_front() {
                self.0.space.notify_one();
                return Ok(v);
            }
            if self.0.senders.load(Ordering::SeqCst) == 0 {
                return Err(TryRecvError::Disconnected);
            }
            Err(TryRecvError::Empty)
        }
    }

    impl<T> Clone for Receiver<T> {
        fn clone(&self) -> Self {
            Receiver(Arc::clone(&self.0))
        }
    }

    pub use crate::select;
}

/// Waits on multiple `recv` operations, executing the first arm whose
/// channel produces a message (or disconnects, yielding `Err`).
///
/// Supports the subset `recv($rx) -> $pattern => $body` this workspace
/// uses. Arms are polled round-robin with a brief sleep between sweeps.
#[macro_export]
macro_rules! select {
    ($(recv($rx:expr) -> $var:pat => $body:expr),+ $(,)?) => {{
        loop {
            $(
                match ($rx).try_recv() {
                    Ok(v) => {
                        let $var =
                            ::core::result::Result::<_, $crate::channel::RecvError>::Ok(v);
                        break $body;
                    }
                    Err($crate::channel::TryRecvError::Disconnected) => {
                        let $var =
                            ::core::result::Result::<_, $crate::channel::RecvError>::Err(
                                $crate::channel::RecvError,
                            );
                        break $body;
                    }
                    Err($crate::channel::TryRecvError::Empty) => {}
                }
            )+
            ::std::thread::sleep(::std::time::Duration::from_micros(20));
        }
    }};
}

#[cfg(test)]
mod tests {
    use super::channel;

    #[test]
    fn send_recv_roundtrip() {
        let (tx, rx) = channel::unbounded();
        tx.send(7).unwrap();
        assert_eq!(rx.recv(), Ok(7));
    }

    #[test]
    fn disconnection_is_observed() {
        let (tx, rx) = channel::unbounded::<u8>();
        drop(tx);
        assert_eq!(rx.recv(), Err(channel::RecvError));
        let (tx2, rx2) = channel::unbounded::<u8>();
        tx2.send(1).unwrap();
        drop(tx2);
        // Queued messages drain before disconnection reports.
        assert_eq!(rx2.recv(), Ok(1));
        assert!(rx2.recv().is_err());
    }

    #[test]
    fn select_prefers_ready_channel() {
        let (tx_a, rx_a) = channel::unbounded::<u8>();
        let (_tx_b, rx_b) = channel::unbounded::<u8>();
        tx_a.send(9).unwrap();
        let got = select! {
            recv(rx_a) -> v => v.unwrap(),
            recv(rx_b) -> v => v.unwrap(),
        };
        assert_eq!(got, 9);
    }

    #[test]
    fn bounded_send_blocks_until_room() {
        let (tx, rx) = channel::bounded::<u32>(2);
        tx.send(1).unwrap();
        tx.send(2).unwrap();
        // The third send must wait for the receiver to make room.
        let h = std::thread::spawn(move || {
            tx.send(3).unwrap();
        });
        std::thread::sleep(std::time::Duration::from_millis(10));
        assert_eq!(rx.recv(), Ok(1));
        h.join().unwrap();
        assert_eq!(rx.recv(), Ok(2));
        assert_eq!(rx.recv(), Ok(3));
    }

    #[test]
    fn cross_thread_delivery() {
        let (tx, rx) = channel::unbounded();
        let h = std::thread::spawn(move || {
            for i in 0..100u32 {
                tx.send(i).unwrap();
            }
        });
        let mut sum = 0;
        for _ in 0..100 {
            sum += rx.recv().unwrap();
        }
        h.join().unwrap();
        assert_eq!(sum, 4950);
    }
}
