//! Offline shim for `rayon` covering the surface this workspace uses:
//! `into_par_iter().map(..).collect()` over vectors (preserving input
//! order), `current_num_threads`, and a reusable scoped [`WorkerPool`]
//! shared process-wide through [`global_pool`].
//!
//! The pool keeps its threads alive between scopes, so repeated parallel
//! sections (a sweep of simulation seeds, the sharded engine's shard
//! workers) reuse the same OS threads instead of spawning per call. Jobs
//! are never queued behind a busy worker: when every pooled worker is
//! occupied, a one-shot overflow thread runs the job instead. That keeps
//! the pool deadlock-free for *cooperating* jobs — shard workers that
//! block on messages from their sibling shards — which a shared-injector
//! design would deadlock. Swap `[workspace.dependencies]` to the real
//! crates.io `rayon` when a registry is reachable.

use std::panic::{catch_unwind, resume_unwind, AssertUnwindSafe};
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::mpsc::{channel, SendError, Sender};
use std::sync::{Arc, Condvar, Mutex, OnceLock};

/// The number of worker threads parallel operations use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

type Job = Box<dyn FnOnce() + Send + 'static>;

/// State shared between a pool handle and its worker threads.
struct PoolShared {
    /// Job senders of workers currently parked waiting for work; a worker
    /// re-registers itself here after finishing each job.
    idle: Mutex<Vec<Sender<Job>>>,
    /// Pooled workers spawned so far.
    spawned: AtomicUsize,
}

/// A reusable pool of worker threads executing scoped jobs.
///
/// Threads are spawned lazily up to the pool's size and then kept parked
/// on their own job channel; [`scope`](Self::scope) hands out borrows of
/// the enclosing stack frame exactly like `std::thread::scope` does.
pub struct WorkerPool {
    shared: Arc<PoolShared>,
    size: usize,
}

/// Per-scope completion state: a latch counting outstanding jobs plus the
/// panic payloads they produced.
struct ScopeState {
    pending: Mutex<usize>,
    done: Condvar,
    panics: Mutex<Vec<Box<dyn std::any::Any + Send + 'static>>>,
}

/// Spawn handle passed to closures given to [`WorkerPool::scope`].
pub struct PoolScope<'scope, 'env: 'scope> {
    pool: &'scope WorkerPool,
    state: Arc<ScopeState>,
    /// Invariance over `'scope`, as in `std::thread::Scope`.
    _scope: std::marker::PhantomData<&'scope mut &'scope ()>,
    _env: std::marker::PhantomData<&'env mut &'env ()>,
}

fn spawn_worker(shared: Arc<PoolShared>, first: Job) {
    let (tx, rx) = channel::<Job>();
    std::thread::spawn(move || {
        let mut job = first;
        loop {
            job();
            shared.idle.lock().expect("pool lock").push(tx.clone());
            match rx.recv() {
                Ok(next) => job = next,
                // The pool was dropped (process teardown): retire.
                Err(_) => return,
            }
        }
    });
}

impl WorkerPool {
    /// A pool of at most `size` persistent workers.
    pub fn new(size: usize) -> Self {
        Self {
            shared: Arc::new(PoolShared {
                idle: Mutex::new(Vec::new()),
                spawned: AtomicUsize::new(0),
            }),
            size: size.max(1),
        }
    }

    /// Maximum number of pooled worker threads.
    pub fn size(&self) -> usize {
        self.size
    }

    /// Runs `job`: on an idle pooled worker if one exists, on a freshly
    /// spawned pooled worker while the pool is under size, or on a
    /// one-shot overflow thread otherwise. Never queued — a job must not
    /// wait behind another job, or cooperating jobs would deadlock.
    fn execute(&self, mut job: Job) {
        loop {
            let Some(worker) = self.shared.idle.lock().expect("pool lock").pop() else {
                break;
            };
            match worker.send(job) {
                Ok(()) => return,
                // Worker retired between registering and now (only at
                // teardown); take the job back and try another.
                Err(SendError(j)) => job = j,
            }
        }
        if self.shared.spawned.fetch_add(1, Ordering::Relaxed) < self.size {
            spawn_worker(Arc::clone(&self.shared), job);
        } else {
            self.shared.spawned.fetch_sub(1, Ordering::Relaxed);
            std::thread::spawn(job);
        }
    }

    /// Creates a scope in which jobs borrowing the enclosing frame can be
    /// spawned onto the pool; returns once the closure *and every spawned
    /// job* have finished. A panic from any job (or the closure) is
    /// resumed here, after all jobs completed — the same containment
    /// `std::thread::scope` provides.
    pub fn scope<'env, F, T>(&self, f: F) -> T
    where
        F: for<'scope> FnOnce(&'scope PoolScope<'scope, 'env>) -> T,
    {
        let state = Arc::new(ScopeState {
            pending: Mutex::new(0),
            done: Condvar::new(),
            panics: Mutex::new(Vec::new()),
        });
        let scope = PoolScope {
            pool: self,
            state: Arc::clone(&state),
            _scope: std::marker::PhantomData,
            _env: std::marker::PhantomData,
        };
        let result = catch_unwind(AssertUnwindSafe(|| f(&scope)));
        // Wait out every spawned job whether or not the closure panicked:
        // jobs may borrow the enclosing frame and must not outlive it.
        let mut pending = state.pending.lock().expect("scope lock");
        while *pending > 0 {
            pending = state.done.wait(pending).expect("scope lock");
        }
        drop(pending);
        let job_panic = state.panics.lock().expect("scope lock").pop();
        match result {
            Err(payload) => resume_unwind(payload),
            Ok(_) if job_panic.is_some() => resume_unwind(job_panic.expect("checked")),
            Ok(value) => value,
        }
    }
}

impl<'scope, 'env> PoolScope<'scope, 'env> {
    /// Spawns `f` onto the pool; the scope will not close before it runs
    /// to completion.
    pub fn spawn<F>(&'scope self, f: F)
    where
        F: FnOnce() + Send + 'scope,
    {
        *self.state.pending.lock().expect("scope lock") += 1;
        let state = Arc::clone(&self.state);
        let boxed: Box<dyn FnOnce() + Send + 'scope> = Box::new(f);
        // SAFETY: the job's borrows live for 'scope, and `scope` blocks on
        // the pending latch until this job (which decrements it last, after
        // the payload ran or panicked) completes — the borrowed frame
        // cannot be left while the job is live. This is the standard
        // lifetime erasure behind every scoped thread pool.
        let boxed: Job =
            unsafe { std::mem::transmute::<Box<dyn FnOnce() + Send + 'scope>, Job>(boxed) };
        let wrapped: Job = Box::new(move || {
            if let Err(payload) = catch_unwind(AssertUnwindSafe(boxed)) {
                state.panics.lock().expect("scope lock").push(payload);
            }
            let mut pending = state.pending.lock().expect("scope lock");
            *pending -= 1;
            state.done.notify_all();
        });
        self.pool.execute(wrapped);
    }
}

/// The process-wide pool, sized by [`current_num_threads`] on first use
/// (so `RAYON_NUM_THREADS` set at startup takes effect).
pub fn global_pool() -> &'static WorkerPool {
    static POOL: OnceLock<WorkerPool> = OnceLock::new();
    POOL.get_or_init(|| WorkerPool::new(current_num_threads()))
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Starts a parallel pipeline over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel pipeline over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on the worker pool.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the pipeline on the [`global_pool`] and collects results **in
    /// input order**. Work is distributed dynamically — workers pull
    /// indices from an atomic cursor, so a slow item does not stall the
    /// others.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        let pool = global_pool();
        let workers = pool.size().min(n.max(1));
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let item = slots[index]
                        .lock()
                        .expect("unpoisoned")
                        .take()
                        .expect("each slot is taken once");
                    let output = f(item);
                    *results[index].lock().expect("unpoisoned") = Some(output);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }
}

/// The items commonly imported from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;
    use super::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u8> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }

    #[test]
    fn scope_runs_every_job_and_borrows_the_frame() {
        let pool = WorkerPool::new(3);
        let counter = AtomicUsize::new(0);
        pool.scope(|scope| {
            for _ in 0..16 {
                scope.spawn(|| {
                    counter.fetch_add(1, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(counter.load(Ordering::Relaxed), 16);
    }

    #[test]
    fn pool_threads_are_reused_across_scopes() {
        let pool = WorkerPool::new(2);
        for _ in 0..20 {
            pool.scope(|scope| {
                scope.spawn(|| {});
                scope.spawn(|| {});
            });
        }
        // At most `size` pooled threads were ever spawned, plus overflow
        // threads only if both were busy at a spawn instant.
        assert!(pool.shared.spawned.load(Ordering::Relaxed) <= 2);
    }

    #[test]
    fn cooperating_jobs_do_not_deadlock_a_small_pool() {
        // Four jobs exchanging through channels on a single-thread pool:
        // overflow threads must carry the surplus instead of queueing.
        let pool = WorkerPool::new(1);
        let (txs, rxs): (Vec<_>, Vec<_>) =
            (0..4).map(|_| std::sync::mpsc::channel::<usize>()).unzip();
        let rxs: Vec<_> = rxs.into_iter().map(Mutex::new).collect();
        let total = AtomicUsize::new(0);
        pool.scope(|scope| {
            for (i, rx) in rxs.iter().enumerate() {
                let next = txs[(i + 1) % 4].clone();
                let total = &total;
                scope.spawn(move || {
                    if i == 0 {
                        next.send(1).expect("ring open");
                    }
                    let got = rx.lock().expect("unpoisoned").recv().expect("ring");
                    total.fetch_add(got, Ordering::Relaxed);
                    if i != 0 {
                        next.send(got + 1).expect("ring open");
                    }
                });
            }
        });
        assert_eq!(total.load(Ordering::Relaxed), 1 + 2 + 3 + 4);
    }

    #[test]
    fn job_panics_propagate_after_all_jobs_finish() {
        let pool = WorkerPool::new(2);
        let finished = AtomicUsize::new(0);
        let result = std::panic::catch_unwind(AssertUnwindSafe(|| {
            pool.scope(|scope| {
                scope.spawn(|| panic!("job failure"));
                scope.spawn(|| {
                    finished.fetch_add(1, Ordering::Relaxed);
                });
            });
        }));
        assert!(result.is_err());
        assert_eq!(finished.load(Ordering::Relaxed), 1);
    }
}
