//! Offline shim for `rayon` covering the surface this workspace uses:
//! `into_par_iter().map(..).collect()` over vectors, preserving input
//! order, plus `current_num_threads`.
//!
//! Work is distributed dynamically over `std::thread::scope` workers
//! pulling indices from an atomic counter — long-running items (a slow
//! simulation seed) do not stall the other workers. Swap
//! `[workspace.dependencies]` to the real crates.io `rayon` when a
//! registry is reachable.

use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::Mutex;

/// The number of worker threads parallel operations use.
pub fn current_num_threads() -> usize {
    std::env::var("RAYON_NUM_THREADS")
        .ok()
        .and_then(|v| v.parse().ok())
        .filter(|&n| n > 0)
        .unwrap_or_else(|| {
            std::thread::available_parallelism()
                .map(std::num::NonZeroUsize::get)
                .unwrap_or(1)
        })
}

/// Conversion into a parallel iterator, mirroring
/// `rayon::iter::IntoParallelIterator`.
pub trait IntoParallelIterator {
    /// The item type.
    type Item: Send;
    /// The parallel iterator type.
    type Iter;

    /// Starts a parallel pipeline over `self`.
    fn into_par_iter(self) -> Self::Iter;
}

impl<T: Send> IntoParallelIterator for Vec<T> {
    type Item = T;
    type Iter = ParIter<T>;

    fn into_par_iter(self) -> ParIter<T> {
        ParIter { items: self }
    }
}

/// A parallel pipeline over owned items.
pub struct ParIter<T> {
    items: Vec<T>,
}

impl<T: Send> ParIter<T> {
    /// Maps every item through `f` on the worker pool.
    pub fn map<R: Send, F: Fn(T) -> R + Sync>(self, f: F) -> ParMap<T, F> {
        ParMap {
            items: self.items,
            f,
        }
    }
}

/// A mapped parallel pipeline; consumed by [`ParMap::collect`].
pub struct ParMap<T, F> {
    items: Vec<T>,
    f: F,
}

impl<T: Send, F> ParMap<T, F> {
    /// Runs the pipeline and collects results **in input order**.
    pub fn collect<R, C>(self) -> C
    where
        R: Send,
        F: Fn(T) -> R + Sync,
        C: FromIterator<R>,
    {
        let ParMap { items, f } = self;
        let n = items.len();
        let workers = current_num_threads().min(n.max(1));
        if workers <= 1 {
            return items.into_iter().map(f).collect();
        }
        let slots: Vec<Mutex<Option<T>>> = items
            .into_iter()
            .map(|item| Mutex::new(Some(item)))
            .collect();
        let results: Vec<Mutex<Option<R>>> = (0..n).map(|_| Mutex::new(None)).collect();
        let cursor = AtomicUsize::new(0);
        std::thread::scope(|scope| {
            for _ in 0..workers {
                scope.spawn(|| loop {
                    let index = cursor.fetch_add(1, Ordering::Relaxed);
                    if index >= n {
                        break;
                    }
                    let item = slots[index]
                        .lock()
                        .expect("unpoisoned")
                        .take()
                        .expect("each slot is taken once");
                    let output = f(item);
                    *results[index].lock().expect("unpoisoned") = Some(output);
                });
            }
        });
        results
            .into_iter()
            .map(|slot| {
                slot.into_inner()
                    .expect("unpoisoned")
                    .expect("worker filled every slot")
            })
            .collect()
    }
}

/// The items commonly imported from `rayon::prelude::*`.
pub mod prelude {
    pub use crate::IntoParallelIterator;
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    #[test]
    fn parallel_map_preserves_order() {
        let input: Vec<u64> = (0..1000).collect();
        let out: Vec<u64> = input.clone().into_par_iter().map(|x| x * 2).collect();
        assert_eq!(out, input.iter().map(|x| x * 2).collect::<Vec<_>>());
    }

    #[test]
    fn empty_and_single_inputs() {
        let out: Vec<u8> = Vec::<u8>::new().into_par_iter().map(|x| x).collect();
        assert!(out.is_empty());
        let out: Vec<u8> = vec![7].into_par_iter().map(|x| x + 1).collect();
        assert_eq!(out, vec![8]);
    }
}
