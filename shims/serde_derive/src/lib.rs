//! Offline shim for `serde_derive`: the derive macros expand to nothing.
//!
//! The workspace only uses serde for `#[derive(Serialize, Deserialize)]`
//! annotations (no crate actually serializes through serde's data model),
//! so empty expansions keep every annotated type compiling in the
//! network-less build environment. Swap `[workspace.dependencies]` to the
//! real crates.io `serde` to restore full functionality.

use proc_macro::TokenStream;

/// No-op `#[derive(Serialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Serialize, attributes(serde))]
pub fn derive_serialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}

/// No-op `#[derive(Deserialize)]`; accepts (and ignores) `#[serde(...)]`
/// helper attributes.
#[proc_macro_derive(Deserialize, attributes(serde))]
pub fn derive_deserialize(_input: TokenStream) -> TokenStream {
    TokenStream::new()
}
