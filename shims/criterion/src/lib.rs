//! Offline shim for `criterion` covering the API surface this workspace's
//! benches use: groups, `bench_with_input`, `Bencher::{iter, iter_batched}`,
//! `Throughput`, `BenchmarkId`, and the `criterion_group!` /
//! `criterion_main!` macros.
//!
//! Measurement model: per benchmark, one calibration ramp (doubling batch
//! sizes until a batch exceeds ~1/10 of the measurement budget) followed by
//! timed batches until the budget is spent; the reported statistic is the
//! best (minimum) per-iteration mean across batches, a low-noise estimator
//! for short deterministic kernels.
//!
//! Environment:
//! * `BENCH_QUICK=1` — shrink the measurement budget ~20× (CI smoke mode).
//! * `BENCH_JSON=<path>` — append one JSON object per benchmark to
//!   `<path>` (line-delimited; see BENCHMARKS.md).
//!
//! Swap `[workspace.dependencies]` to the real crates.io `criterion` for
//! statistically rigorous results when a registry is reachable.

use std::fmt::Display;
use std::io::Write as _;
use std::time::{Duration, Instant};

fn measure_budget() -> Duration {
    if std::env::var_os("BENCH_QUICK").is_some() {
        Duration::from_millis(15)
    } else {
        Duration::from_millis(300)
    }
}

/// Top-level benchmark driver.
#[derive(Debug, Default)]
pub struct Criterion {}

impl Criterion {
    /// Starts a named group of related benchmarks.
    pub fn benchmark_group(&mut self, name: impl Into<String>) -> BenchmarkGroup<'_> {
        BenchmarkGroup {
            _criterion: self,
            name: name.into(),
            throughput: None,
        }
    }
}

/// Units processed per iteration, for derived rates.
#[derive(Debug, Clone, Copy)]
pub enum Throughput {
    /// Elements per iteration.
    Elements(u64),
    /// Bytes per iteration.
    Bytes(u64),
}

/// Identifier of one benchmark within a group: function name + parameter.
#[derive(Debug, Clone)]
pub struct BenchmarkId {
    name: String,
    param: String,
}

impl BenchmarkId {
    /// Creates an id from a function name and a displayed parameter.
    pub fn new(name: impl Into<String>, param: impl Display) -> Self {
        Self {
            name: name.into(),
            param: param.to_string(),
        }
    }

    /// Creates an id from the parameter alone.
    pub fn from_parameter(param: impl Display) -> Self {
        Self {
            name: String::new(),
            param: param.to_string(),
        }
    }
}

/// How per-iteration inputs are batched in `iter_batched`.
#[derive(Debug, Clone, Copy)]
pub enum BatchSize {
    /// Small inputs: large batches.
    SmallInput,
    /// Large inputs: small batches.
    LargeInput,
    /// One input per measured iteration.
    PerIteration,
}

/// A group of related benchmarks sharing throughput settings.
pub struct BenchmarkGroup<'a> {
    _criterion: &'a mut Criterion,
    name: String,
    throughput: Option<Throughput>,
}

impl BenchmarkGroup<'_> {
    /// Sets the per-iteration throughput for subsequent benchmarks.
    pub fn throughput(&mut self, throughput: Throughput) -> &mut Self {
        self.throughput = Some(throughput);
        self
    }

    /// Runs one benchmark with an input parameter.
    pub fn bench_with_input<I, F>(&mut self, id: BenchmarkId, input: &I, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher, &I),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher, input);
        let label = if id.name.is_empty() {
            id.param.clone()
        } else {
            format!("{}/{}", id.name, id.param)
        };
        self.report(&label, &bencher);
        self
    }

    /// Runs one benchmark without a parameter.
    pub fn bench_function<F>(&mut self, name: impl Into<String>, mut f: F) -> &mut Self
    where
        F: FnMut(&mut Bencher),
    {
        let mut bencher = Bencher::default();
        f(&mut bencher);
        self.report(&name.into(), &bencher);
        self
    }

    /// Finishes the group (formatting no-op in the shim).
    pub fn finish(self) {}

    fn report(&self, bench: &str, bencher: &Bencher) {
        let mean_ns = bencher.best_mean_ns;
        let per_element = match self.throughput {
            Some(Throughput::Elements(e)) if e > 0 => Some(mean_ns / e as f64),
            _ => None,
        };
        match per_element {
            Some(pe) => println!(
                "bench {:<40} {:>14.1} ns/iter {:>10.2} ns/elem",
                format!("{}/{}", self.name, bench),
                mean_ns,
                pe
            ),
            None => println!(
                "bench {:<40} {:>14.1} ns/iter",
                format!("{}/{}", self.name, bench),
                mean_ns
            ),
        }
        if let Some(path) = std::env::var_os("BENCH_JSON") {
            let line = format!(
                "{{\"group\":\"{}\",\"bench\":\"{}\",\"mean_ns\":{:.1},\"batches\":{}}}\n",
                self.name, bench, mean_ns, bencher.batches
            );
            let mut file = std::fs::OpenOptions::new()
                .create(true)
                .append(true)
                .open(path)
                .expect("BENCH_JSON path is writable");
            file.write_all(line.as_bytes()).expect("bench json write");
        }
    }
}

/// Times closures for one benchmark.
#[derive(Debug, Default)]
pub struct Bencher {
    best_mean_ns: f64,
    batches: u64,
}

impl Bencher {
    /// Measures `f`, called repeatedly in timed batches.
    pub fn iter<O, F: FnMut() -> O>(&mut self, mut f: F) {
        let budget = measure_budget();
        // Calibrate: double the batch size until one batch costs >= 1/10
        // of the budget (or a hard cap for very slow bodies).
        let mut batch: u64 = 1;
        let batch_floor = budget / 10;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            if took >= batch_floor || batch >= 1 << 24 {
                break;
            }
            batch *= 2;
        }
        // Measure: repeat batches until the budget is spent; keep the best
        // per-iteration mean.
        let mut best = f64::INFINITY;
        let mut batches = 0u64;
        let deadline = Instant::now() + budget;
        loop {
            let start = Instant::now();
            for _ in 0..batch {
                std::hint::black_box(f());
            }
            let took = start.elapsed();
            best = best.min(took.as_nanos() as f64 / batch as f64);
            batches += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_mean_ns = best;
        self.batches = batches;
    }

    /// Measures `f` over inputs produced by `setup`; setup time is
    /// excluded from the measurement.
    pub fn iter_batched<I, O, S, F>(&mut self, mut setup: S, mut f: F, _size: BatchSize)
    where
        S: FnMut() -> I,
        F: FnMut(I) -> O,
    {
        let budget = measure_budget();
        let mut best = f64::INFINITY;
        let mut batches = 0u64;
        let deadline = Instant::now() + budget;
        // Inputs are built one per measured call; timing covers only `f`.
        loop {
            const BATCH: usize = 16;
            let inputs: Vec<I> = (0..BATCH).map(|_| setup()).collect();
            let start = Instant::now();
            for input in inputs {
                std::hint::black_box(f(input));
            }
            let took = start.elapsed();
            best = best.min(took.as_nanos() as f64 / BATCH as f64);
            batches += 1;
            if Instant::now() >= deadline {
                break;
            }
        }
        self.best_mean_ns = best;
        self.batches = batches;
    }
}

/// Declares a benchmark group runner, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_group {
    ($group:ident, $($target:path),+ $(,)?) => {
        pub fn $group() {
            let mut criterion = $crate::Criterion::default();
            $($target(&mut criterion);)+
        }
    };
}

/// Declares the bench entry point, mirroring criterion's macro.
#[macro_export]
macro_rules! criterion_main {
    ($($group:path),+ $(,)?) => {
        fn main() {
            $($group();)+
        }
    };
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn iter_measures_something_positive() {
        std::env::set_var("BENCH_QUICK", "1");
        let mut c = Criterion::default();
        let mut group = c.benchmark_group("shim");
        group.throughput(Throughput::Elements(1));
        group.bench_with_input(BenchmarkId::new("noop", 0), &0u64, |b, &x| {
            b.iter(|| x + 1);
        });
        group.finish();
    }
}
