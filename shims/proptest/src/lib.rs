//! Offline shim for `proptest` covering the API surface this workspace's
//! property tests use: the `proptest!` macro (with optional
//! `#![proptest_config(ProptestConfig::with_cases(N))]`), integer-range and
//! tuple strategies, `prop_map`, `prop::collection::vec`,
//! `prop::sample::{select, Index}`, `any::<T>()`, and the
//! `prop_assert*` / `prop_assume!` macros.
//!
//! Differences from the real crate, by design:
//! * **no shrinking** — a failing case reports its inputs via the panic
//!   message (every strategy value is `Debug`-printable at the call site)
//!   but is not minimized;
//! * generation is driven by the workspace's deterministic `rand` shim,
//!   seeded per test from the test name, so failures reproduce across
//!   runs; set `PROPTEST_SEED` to explore a different stream, and
//!   `PROPTEST_CASES` to override every test's case count.
//!
//! Swap `[workspace.dependencies]` to the real crates.io `proptest` when a
//! registry is reachable.

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

/// Run-time configuration accepted by `proptest!`.
#[derive(Debug, Clone)]
pub struct ProptestConfig {
    /// Number of generated cases per property.
    pub cases: u32,
}

impl Default for ProptestConfig {
    fn default() -> Self {
        Self { cases: 256 }
    }
}

impl ProptestConfig {
    /// Configuration running `cases` cases per property.
    pub fn with_cases(cases: u32) -> Self {
        Self { cases }
    }

    /// The effective case count, honouring `PROPTEST_CASES`.
    pub fn effective_cases(&self) -> u32 {
        std::env::var("PROPTEST_CASES")
            .ok()
            .and_then(|v| v.parse().ok())
            .unwrap_or(self.cases)
    }
}

/// The generator handed to strategies (deterministic per test).
pub type TestRng = StdRng;

/// Builds the per-test generator: seeded from the test's full path so each
/// property sees an independent, reproducible stream.
pub fn test_rng(test_name: &str) -> TestRng {
    let base = std::env::var("PROPTEST_SEED")
        .ok()
        .and_then(|v| v.parse().ok())
        .unwrap_or(0x5eed_u64);
    let mut hash = 0xcbf2_9ce4_8422_2325_u64 ^ base;
    for byte in test_name.bytes() {
        hash ^= u64::from(byte);
        hash = hash.wrapping_mul(0x0000_0100_0000_01b3);
    }
    StdRng::seed_from_u64(hash)
}

/// A recipe for generating values of `Self::Value`.
pub trait Strategy {
    /// The generated type.
    type Value;

    /// Draws one value.
    fn generate(&self, rng: &mut TestRng) -> Self::Value;

    /// Maps generated values through `f`.
    fn prop_map<T, F: Fn(Self::Value) -> T>(self, f: F) -> Map<Self, F>
    where
        Self: Sized,
    {
        Map { inner: self, f }
    }
}

/// Strategy produced by [`Strategy::prop_map`].
pub struct Map<S, F> {
    inner: S,
    f: F,
}

impl<S: Strategy, T, F: Fn(S::Value) -> T> Strategy for Map<S, F> {
    type Value = T;

    fn generate(&self, rng: &mut TestRng) -> T {
        (self.f)(self.inner.generate(rng))
    }
}

/// Strategy that always yields a clone of one value.
#[derive(Debug, Clone)]
pub struct Just<T: Clone>(pub T);

impl<T: Clone> Strategy for Just<T> {
    type Value = T;

    fn generate(&self, _rng: &mut TestRng) -> T {
        self.0.clone()
    }
}

macro_rules! impl_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
        impl Strategy for core::ops::RangeInclusive<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                rng.gen_range(self.clone())
            }
        }
    )*};
}

impl_range_strategy!(u8, u16, u32, u64, usize);

macro_rules! impl_float_range_strategy {
    ($($t:ty),*) => {$(
        impl Strategy for core::ops::Range<$t> {
            type Value = $t;
            fn generate(&self, rng: &mut TestRng) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let unit: f64 = rng.gen();
                self.start + (self.end - self.start) * unit as $t
            }
        }
    )*};
}

impl_float_range_strategy!(f32, f64);

macro_rules! impl_tuple_strategy {
    ($($name:ident),+) => {
        impl<$($name: Strategy),+> Strategy for ($($name,)+) {
            type Value = ($($name::Value,)+);
            #[allow(non_snake_case)]
            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let ($($name,)+) = self;
                ($($name.generate(rng),)+)
            }
        }
    };
}

impl_tuple_strategy!(A);
impl_tuple_strategy!(A, B);
impl_tuple_strategy!(A, B, C);
impl_tuple_strategy!(A, B, C, D);
impl_tuple_strategy!(A, B, C, D, E);
impl_tuple_strategy!(A, B, C, D, E, F);

/// Types with a canonical strategy, selected via [`any`].
pub trait Arbitrary: Sized {
    /// The canonical strategy for the type.
    type Strategy: Strategy<Value = Self>;

    /// Returns the canonical strategy.
    fn arbitrary() -> Self::Strategy;
}

/// The canonical strategy for `T` (e.g. `any::<prop::sample::Index>()`).
pub fn any<T: Arbitrary>() -> T::Strategy {
    T::arbitrary()
}

/// Strategy combinators and sampling helpers, mirroring `proptest::prop`.
pub mod prop {
    /// Collection strategies.
    pub mod collection {
        use super::super::{Strategy, TestRng};
        use rand::Rng;

        /// Size specification for [`vec`]: a fixed length or a range.
        pub trait SizeRange {
            /// Draws a length.
            fn sample_len(&self, rng: &mut TestRng) -> usize;
        }

        impl SizeRange for usize {
            fn sample_len(&self, _rng: &mut TestRng) -> usize {
                *self
            }
        }

        impl SizeRange for core::ops::Range<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        impl SizeRange for core::ops::RangeInclusive<usize> {
            fn sample_len(&self, rng: &mut TestRng) -> usize {
                rng.gen_range(self.clone())
            }
        }

        /// Strategy for `Vec<S::Value>` with lengths drawn from `size`.
        pub fn vec<S: Strategy, R: SizeRange>(element: S, size: R) -> VecStrategy<S, R> {
            VecStrategy { element, size }
        }

        /// Strategy produced by [`vec`].
        pub struct VecStrategy<S, R> {
            element: S,
            size: R,
        }

        impl<S: Strategy, R: SizeRange> Strategy for VecStrategy<S, R> {
            type Value = Vec<S::Value>;

            fn generate(&self, rng: &mut TestRng) -> Self::Value {
                let len = self.size.sample_len(rng);
                (0..len).map(|_| self.element.generate(rng)).collect()
            }
        }
    }

    /// Sampling strategies.
    pub mod sample {
        use super::super::{Arbitrary, Strategy, TestRng};
        use rand::Rng;

        /// Strategy yielding uniformly chosen clones of the given values.
        ///
        /// # Panics
        ///
        /// Generation panics if `values` is empty.
        pub fn select<T: Clone>(values: Vec<T>) -> Select<T> {
            Select { values }
        }

        /// Strategy produced by [`select`].
        pub struct Select<T: Clone> {
            values: Vec<T>,
        }

        impl<T: Clone> Strategy for Select<T> {
            type Value = T;

            fn generate(&self, rng: &mut TestRng) -> T {
                assert!(!self.values.is_empty(), "select over no values");
                self.values[rng.gen_range(0..self.values.len())].clone()
            }
        }

        /// An index into a collection whose length is only known at use
        /// time: `index(len)` maps the sampled raw value uniformly into
        /// `0..len`.
        #[derive(Debug, Clone, Copy, PartialEq, Eq)]
        pub struct Index(usize);

        impl Index {
            /// Projects into `0..len`.
            ///
            /// # Panics
            ///
            /// Panics if `len == 0`.
            pub fn index(&self, len: usize) -> usize {
                assert!(len > 0, "cannot index an empty collection");
                self.0 % len
            }
        }

        /// Strategy for [`Index`].
        pub struct IndexStrategy;

        impl Strategy for IndexStrategy {
            type Value = Index;

            fn generate(&self, rng: &mut TestRng) -> Index {
                Index(rng.gen_range(0..usize::MAX))
            }
        }

        impl Arbitrary for Index {
            type Strategy = IndexStrategy;

            fn arbitrary() -> IndexStrategy {
                IndexStrategy
            }
        }
    }
}

/// Defines property tests: each `fn name(arg in strategy, ...) { body }`
/// becomes a `#[test]` running `body` over generated cases.
#[macro_export]
macro_rules! proptest {
    // With an explicit config attribute.
    (#![proptest_config($config:expr)]
     $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(@impl ($config) $($(#[$meta])* fn $name($($arg in $strat),+) $body)+);
    };
    // Default config.
    ($($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+ $(,)?) $body:block)+) => {
        $crate::proptest!(@impl ($crate::ProptestConfig::default())
                          $($(#[$meta])* fn $name($($arg in $strat),+) $body)+);
    };
    (@impl ($config:expr) $($(#[$meta:meta])* fn $name:ident($($arg:ident in $strat:expr),+) $body:block)+) => {
        $(
            $(#[$meta])*
            fn $name() {
                use $crate::Strategy as _;
                let config: $crate::ProptestConfig = $config;
                let mut rng = $crate::test_rng(concat!(module_path!(), "::", stringify!($name)));
                for case in 0..config.effective_cases() {
                    $(let $arg = ($strat).generate(&mut rng);)+
                    let case_info = format!(
                        concat!("case {} of ", stringify!($name),
                                $(" ", stringify!($arg), "={:?}",)+),
                        case $(, &$arg)+
                    );
                    let run = move || -> ::core::result::Result<(), ()> {
                        $body
                        #[allow(unreachable_code)]
                        Ok(())
                    };
                    if ::std::panic::catch_unwind(::std::panic::AssertUnwindSafe(run)).is_err() {
                        panic!("property failed: {case_info}");
                    }
                }
            }
        )+
    };
}

/// Asserts inside a property, reporting the failing case.
#[macro_export]
macro_rules! prop_assert {
    ($($args:tt)*) => { assert!($($args)*) };
}

/// Equality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_eq {
    ($($args:tt)*) => { assert_eq!($($args)*) };
}

/// Inequality assertion inside a property.
#[macro_export]
macro_rules! prop_assert_ne {
    ($($args:tt)*) => { assert_ne!($($args)*) };
}

/// Skips the current case when its inputs do not satisfy a precondition.
#[macro_export]
macro_rules! prop_assume {
    ($cond:expr $(, $($fmt:tt)*)?) => {
        if !($cond) {
            return ::core::result::Result::Ok(());
        }
    };
}

/// Everything a property-test file needs, mirroring
/// `proptest::prelude::*`.
pub mod prelude {
    pub use crate::{
        any, prop, prop_assert, prop_assert_eq, prop_assert_ne, prop_assume, proptest, Arbitrary,
        Just, ProptestConfig, Strategy,
    };
}

#[cfg(test)]
mod tests {
    use super::prelude::*;

    proptest! {
        #![proptest_config(ProptestConfig::with_cases(64))]

        #[test]
        fn ranges_stay_in_bounds(x in 3usize..10, y in 0u8..2) {
            prop_assert!((3..10).contains(&x));
            prop_assert!(y < 2);
        }

        #[test]
        fn vec_and_map_compose(v in prop::collection::vec((0usize..5, 0usize..5).prop_map(|(a, b)| a + b), 1..9)) {
            prop_assert!(!v.is_empty() && v.len() < 9);
            prop_assert!(v.iter().all(|&s| s <= 8));
        }

        #[test]
        fn select_and_index(choice in prop::sample::select(vec![2usize, 4, 6]), ix in any::<prop::sample::Index>()) {
            prop_assert_eq!(choice % 2, 0);
            prop_assert!(ix.index(5) < 5);
        }

        #[test]
        fn assume_skips(n in 0usize..10) {
            prop_assume!(n != 3);
            prop_assert_ne!(n, 3);
        }
    }

    #[test]
    fn deterministic_across_runs() {
        let mut a = crate::test_rng("t");
        let mut b = crate::test_rng("t");
        let strat = 0usize..1000;
        for _ in 0..50 {
            assert_eq!(strat.generate(&mut a), strat.generate(&mut b));
        }
    }
}
