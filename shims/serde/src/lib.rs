//! Offline shim for `serde`: marker traits plus no-op derive macros.
//!
//! The workspace uses serde only as `#[derive(Serialize, Deserialize)]`
//! annotations; nothing serializes through serde's data model (the on-disk
//! codec in `rdt-storage` is hand-rolled). Blanket impls keep any
//! `T: Serialize` bounds satisfiable. Swap `[workspace.dependencies]` to
//! the real crates.io `serde` when a registry is reachable.

pub use serde_derive::{Deserialize, Serialize};

/// Marker stand-in for `serde::Serialize`.
pub trait Serialize {}
impl<T: ?Sized> Serialize for T {}

/// Marker stand-in for `serde::Deserialize`.
pub trait Deserialize<'de> {}
impl<'de, T: ?Sized> Deserialize<'de> for T {}

/// Marker stand-in for `serde::de::DeserializeOwned`.
pub trait DeserializeOwned {}
impl<T: ?Sized> DeserializeOwned for T {}
