//! Offline shim for `rand` 0.8 covering the API surface this workspace
//! uses: `StdRng::seed_from_u64`, `Rng::{gen, gen_bool, gen_range}`.
//!
//! The generator is xoshiro256** seeded through SplitMix64 — deterministic
//! across platforms and runs, which is all the simulator requires (seeds
//! are workspace-internal; no compatibility with the real `StdRng` stream
//! is claimed). Swap `[workspace.dependencies]` to the real crates.io
//! `rand` when a registry is reachable; seeds will then produce different
//! but equally valid workloads.

/// Low-level generator interface.
pub trait RngCore {
    /// The next 64 uniformly random bits.
    fn next_u64(&mut self) -> u64;
}

/// Construction from seeds.
pub trait SeedableRng: Sized {
    /// Builds a generator whose stream is fully determined by `seed`.
    fn seed_from_u64(seed: u64) -> Self;
}

/// Sampling a value of a type from uniform bits (stand-in for the real
/// crate's `Standard` distribution).
pub trait SampleStandard: Sized {
    /// Draws one value.
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self;
}

impl SampleStandard for u64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64()
    }
}

impl SampleStandard for f64 {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        // 53 uniform mantissa bits in [0, 1).
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleStandard for bool {
    fn sample<R: RngCore + ?Sized>(rng: &mut R) -> Self {
        rng.next_u64() & 1 == 1
    }
}

/// A range (or other set) values can be drawn from uniformly.
pub trait SampleRange<T> {
    /// Draws one value from the range.
    ///
    /// # Panics
    ///
    /// Panics if the range is empty.
    fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> T;
}

macro_rules! impl_sample_range_int {
    ($($t:ty),*) => {$(
        impl SampleRange<$t> for core::ops::Range<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                assert!(self.start < self.end, "cannot sample empty range");
                let span = (self.end - self.start) as u64;
                self.start + (rng.next_u64() % span) as $t
            }
        }
        impl SampleRange<$t> for core::ops::RangeInclusive<$t> {
            fn sample_from<R: RngCore + ?Sized>(self, rng: &mut R) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "cannot sample empty range");
                let span = (end - start) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                start + (rng.next_u64() % (span + 1)) as $t
            }
        }
    )*};
}

impl_sample_range_int!(u8, u16, u32, u64, usize);

/// High-level sampling helpers, blanket-implemented for every generator.
pub trait Rng: RngCore {
    /// Draws a value of an inferred type (`u64`, `f64` or `bool`).
    fn gen<T: SampleStandard>(&mut self) -> T
    where
        Self: Sized,
    {
        T::sample(self)
    }

    /// Bernoulli trial with success probability `p`.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    fn gen_bool(&mut self, p: f64) -> bool
    where
        Self: Sized,
    {
        assert!((0.0..=1.0).contains(&p), "p={p} out of range");
        f64::sample(self) < p
    }

    /// Uniform draw from a range.
    fn gen_range<T, S: SampleRange<T>>(&mut self, range: S) -> T
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

impl<R: RngCore + ?Sized> Rng for R {}

/// Named generators.
pub mod rngs {
    use super::{RngCore, SeedableRng};

    /// Deterministic xoshiro256** generator (shim stand-in for the real
    /// crate's ChaCha-based `StdRng`).
    #[derive(Debug, Clone)]
    pub struct StdRng {
        s: [u64; 4],
    }

    impl SeedableRng for StdRng {
        fn seed_from_u64(seed: u64) -> Self {
            // SplitMix64 expansion, as recommended by the xoshiro authors.
            let mut x = seed;
            let mut next = || {
                x = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
                let mut z = x;
                z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
                z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
                z ^ (z >> 31)
            };
            Self {
                s: [next(), next(), next(), next()],
            }
        }
    }

    impl RngCore for StdRng {
        fn next_u64(&mut self) -> u64 {
            let result = self.s[1].wrapping_mul(5).rotate_left(7).wrapping_mul(9);
            let t = self.s[1] << 17;
            self.s[2] ^= self.s[0];
            self.s[3] ^= self.s[1];
            self.s[1] ^= self.s[2];
            self.s[0] ^= self.s[3];
            self.s[2] ^= t;
            self.s[3] = self.s[3].rotate_left(45);
            result
        }
    }
}

#[cfg(test)]
mod tests {
    use super::rngs::StdRng;
    use super::{Rng, SeedableRng};

    #[test]
    fn same_seed_same_stream() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.gen::<u64>(), b.gen::<u64>());
        }
    }

    #[test]
    fn ranges_are_inclusive_exclusive_as_typed() {
        let mut rng = StdRng::seed_from_u64(7);
        for _ in 0..1000 {
            let v: usize = rng.gen_range(3..10);
            assert!((3..10).contains(&v));
            let w: u64 = rng.gen_range(5..=5);
            assert_eq!(w, 5);
        }
    }

    #[test]
    fn f64_is_unit_interval() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..1000 {
            let x: f64 = rng.gen();
            assert!((0.0..1.0).contains(&x));
        }
    }

    #[test]
    fn gen_bool_extremes() {
        let mut rng = StdRng::seed_from_u64(1);
        assert!(!rng.gen_bool(0.0));
        assert!(rng.gen_bool(1.0));
    }
}
