//! Offline shim for `clap` v4 covering the builder surface this
//! workspace's CLI uses: subcommands, long/short options with defaults,
//! `SetTrue` flags, `get_one::<String>` / `get_flag`, and `--help` output.
//!
//! Swap `[workspace.dependencies]` to the real crates.io `clap` when a
//! registry is reachable.

use std::collections::BTreeMap;
use std::fmt;

/// How an argument consumes input.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Default)]
pub enum ArgAction {
    /// Takes one value (the default).
    #[default]
    Set,
    /// Boolean flag, no value.
    SetTrue,
    /// Takes a value each time it appears; all occurrences are kept.
    /// Arguments with neither `long` nor `short` are positional and
    /// collect bare tokens.
    Append,
}

/// One named argument.
#[derive(Debug, Clone)]
pub struct Arg {
    name: String,
    long: Option<String>,
    short: Option<char>,
    help: Option<String>,
    default: Option<String>,
    value_name: Option<String>,
    action: ArgAction,
    required: bool,
}

impl Arg {
    /// Creates an argument with the given id.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            long: None,
            short: None,
            help: None,
            default: None,
            value_name: None,
            action: ArgAction::Set,
            required: false,
        }
    }

    /// Sets the `--long` form.
    pub fn long(mut self, long: impl Into<String>) -> Self {
        self.long = Some(long.into());
        self
    }

    /// Sets the `-s` short form.
    pub fn short(mut self, short: char) -> Self {
        self.short = Some(short);
        self
    }

    /// Help text shown by `--help`.
    pub fn help(mut self, help: impl Into<String>) -> Self {
        self.help = Some(help.into());
        self
    }

    /// Value used when the argument is absent.
    pub fn default_value(mut self, value: impl Into<String>) -> Self {
        self.default = Some(value.into());
        self
    }

    /// Display name of the value in help output.
    pub fn value_name(mut self, name: impl Into<String>) -> Self {
        self.value_name = Some(name.into());
        self
    }

    /// Sets the consumption behaviour.
    pub fn action(mut self, action: ArgAction) -> Self {
        self.action = action;
        self
    }

    /// Errors when the argument is absent (and has no default).
    pub fn required(mut self, yes: bool) -> Self {
        self.required = yes;
        self
    }
}

/// A (sub)command: name, options, nested subcommands.
#[derive(Debug, Clone, Default)]
pub struct Command {
    name: String,
    about: Option<String>,
    args: Vec<Arg>,
    subcommands: Vec<Command>,
    subcommand_required: bool,
    arg_required_else_help: bool,
    hidden: bool,
}

/// Parse failure (or help request) from `try_get_matches_from`.
#[derive(Debug, Clone)]
pub struct Error {
    message: String,
    is_help: bool,
}

impl Error {
    /// Prints the message and exits (code 2 for errors, 0 for help).
    pub fn exit(&self) -> ! {
        if self.is_help {
            println!("{}", self.message);
            std::process::exit(0);
        }
        eprintln!("{}", self.message);
        std::process::exit(2);
    }
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(&self.message)
    }
}

impl std::error::Error for Error {}

impl Command {
    /// Creates a command.
    pub fn new(name: impl Into<String>) -> Self {
        Self {
            name: name.into(),
            ..Self::default()
        }
    }

    /// Description shown in help output.
    pub fn about(mut self, about: impl Into<String>) -> Self {
        self.about = Some(about.into());
        self
    }

    /// Requires that a subcommand is given.
    pub fn subcommand_required(mut self, yes: bool) -> Self {
        self.subcommand_required = yes;
        self
    }

    /// Shows help instead of erroring when invoked bare.
    pub fn arg_required_else_help(mut self, yes: bool) -> Self {
        self.arg_required_else_help = yes;
        self
    }

    /// Hides the command from its parent's help output.
    pub fn hide(mut self, yes: bool) -> Self {
        self.hidden = yes;
        self
    }

    /// Adds a subcommand.
    pub fn subcommand(mut self, cmd: Command) -> Self {
        self.subcommands.push(cmd);
        self
    }

    /// Adds an argument.
    pub fn arg(mut self, arg: Arg) -> Self {
        self.args.push(arg);
        self
    }

    /// Validates the definition (no-op beyond duplicate detection).
    ///
    /// # Panics
    ///
    /// Panics on duplicate argument ids within one command.
    pub fn debug_assert(&self) {
        let mut seen = std::collections::BTreeSet::new();
        for arg in &self.args {
            assert!(seen.insert(&arg.name), "duplicate arg id {}", arg.name);
        }
        for sub in &self.subcommands {
            sub.debug_assert();
        }
    }

    fn usage(&self) -> String {
        let mut out = String::new();
        if let Some(about) = &self.about {
            out.push_str(about);
            out.push_str("\n\n");
        }
        out.push_str(&format!("Usage: {} [OPTIONS]", self.name));
        if !self.subcommands.is_empty() {
            out.push_str(" <COMMAND>");
        }
        out.push('\n');
        if !self.subcommands.is_empty() {
            out.push_str("\nCommands:\n");
            for sub in self.subcommands.iter().filter(|s| !s.hidden) {
                out.push_str(&format!(
                    "  {:<12} {}\n",
                    sub.name,
                    sub.about.as_deref().unwrap_or("")
                ));
            }
        }
        if !self.args.is_empty() {
            out.push_str("\nOptions:\n");
            for arg in &self.args {
                let short = arg.short.map(|c| format!("-{c}, ")).unwrap_or_default();
                let long = arg.long.clone().unwrap_or_else(|| arg.name.clone());
                let value = if arg.action == ArgAction::SetTrue {
                    String::new()
                } else {
                    format!(" <{}>", arg.value_name.as_deref().unwrap_or(&arg.name))
                };
                let default = arg
                    .default
                    .as_deref()
                    .map(|d| format!(" [default: {d}]"))
                    .unwrap_or_default();
                out.push_str(&format!(
                    "  {short}--{long}{value}  {}{default}\n",
                    arg.help.as_deref().unwrap_or("")
                ));
            }
        }
        out
    }

    /// Parses `std::env::args`, exiting on error or `--help`.
    pub fn get_matches(self) -> ArgMatches {
        let args: Vec<String> = std::env::args().collect();
        match self.try_get_matches_from(args) {
            Ok(matches) => matches,
            Err(err) => err.exit(),
        }
    }

    /// Parses the given arguments, exiting on error or `--help`.
    pub fn get_matches_from<I, T>(self, args: I) -> ArgMatches
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        match self.try_get_matches_from(args) {
            Ok(matches) => matches,
            Err(err) => err.exit(),
        }
    }

    /// Parses the given arguments.
    ///
    /// # Errors
    ///
    /// [`struct@Error`] on unknown options, missing values, missing required
    /// subcommands, or a help request.
    pub fn try_get_matches_from<I, T>(self, args: I) -> Result<ArgMatches, Error>
    where
        I: IntoIterator<Item = T>,
        T: Into<String>,
    {
        let mut input: Vec<String> = args.into_iter().map(Into::into).collect();
        if !input.is_empty() {
            input.remove(0); // argv[0]
        }
        self.parse(&input)
    }

    fn find_arg(&self, token: &str) -> Option<&Arg> {
        if let Some(long) = token.strip_prefix("--") {
            self.args
                .iter()
                .find(|a| a.long.as_deref() == Some(long) || a.name == long)
        } else if let Some(short) = token.strip_prefix('-') {
            let mut chars = short.chars();
            let c = chars.next()?;
            if chars.next().is_some() {
                return None;
            }
            self.args.iter().find(|a| a.short == Some(c))
        } else {
            None
        }
    }

    fn parse(&self, input: &[String]) -> Result<ArgMatches, Error> {
        let mut matches = ArgMatches::default();
        for arg in &self.args {
            if let Some(default) = &arg.default {
                matches.values.insert(arg.name.clone(), default.clone());
            }
        }
        let mut i = 0;
        while i < input.len() {
            let token = &input[i];
            if token == "--help" || token == "-h" {
                return Err(Error {
                    message: self.usage(),
                    is_help: true,
                });
            }
            if token.starts_with('-') && token.len() > 1 {
                let (head, inline_value) = match token.split_once('=') {
                    Some((h, v)) => (h, Some(v.to_string())),
                    None => (token.as_str(), None),
                };
                let Some(arg) = self.find_arg(head) else {
                    return Err(Error {
                        message: format!("unexpected argument '{token}'\n\n{}", self.usage()),
                        is_help: false,
                    });
                };
                match arg.action {
                    ArgAction::SetTrue => {
                        matches.flags.insert(arg.name.clone());
                    }
                    ArgAction::Set | ArgAction::Append => {
                        let value = match inline_value {
                            Some(v) => v,
                            None => {
                                i += 1;
                                input.get(i).cloned().ok_or_else(|| Error {
                                    message: format!("option '{head}' requires a value"),
                                    is_help: false,
                                })?
                            }
                        };
                        if arg.action == ArgAction::Append {
                            matches.multi.entry(arg.name.clone()).or_default().push(value);
                        } else {
                            matches.values.insert(arg.name.clone(), value);
                        }
                    }
                }
                i += 1;
                continue;
            }
            // First positional token: a subcommand, if any are defined.
            if let Some(sub) = self.subcommands.iter().find(|s| s.name == *token) {
                let sub_matches = sub.parse(&input[i + 1..])?;
                matches.subcommand = Some((sub.name.clone(), Box::new(sub_matches)));
                return Ok(matches);
            }
            // Otherwise a positional argument, if the command declares one
            // (an `Append` arg with neither a long nor a short name).
            if let Some(arg) = self
                .args
                .iter()
                .find(|a| a.long.is_none() && a.short.is_none() && a.action == ArgAction::Append)
            {
                matches
                    .multi
                    .entry(arg.name.clone())
                    .or_default()
                    .push(token.clone());
                i += 1;
                continue;
            }
            return Err(Error {
                message: format!("unexpected argument '{token}'\n\n{}", self.usage()),
                is_help: false,
            });
        }
        if (self.subcommand_required || self.arg_required_else_help) && matches.subcommand.is_none()
        {
            return Err(Error {
                message: self.usage(),
                is_help: self.arg_required_else_help,
            });
        }
        for arg in &self.args {
            if arg.required && !matches.values.contains_key(&arg.name) {
                return Err(Error {
                    message: format!(
                        "the following required argument was not provided: --{}\n\n{}",
                        arg.long.as_deref().unwrap_or(&arg.name),
                        self.usage()
                    ),
                    is_help: false,
                });
            }
        }
        Ok(matches)
    }
}

/// Parsed argument values.
#[derive(Debug, Clone, Default)]
pub struct ArgMatches {
    values: BTreeMap<String, String>,
    multi: BTreeMap<String, Vec<String>>,
    flags: std::collections::BTreeSet<String>,
    subcommand: Option<(String, Box<ArgMatches>)>,
}

impl ArgMatches {
    /// The value of argument `name`, if present. Only `String` values are
    /// supported by the shim.
    pub fn get_one<T: FromArgValue>(&self, name: &str) -> Option<&T> {
        self.values.get(name).map(T::from_stored)
    }

    /// All values of an `Append` argument, in occurrence order; `None`
    /// when it never appeared.
    pub fn get_many<'a, T: FromArgValue + 'a>(
        &'a self,
        name: &str,
    ) -> Option<impl Iterator<Item = &'a T>> {
        self.multi.get(name).map(|v| v.iter().map(T::from_stored))
    }

    /// Whether a `SetTrue` flag was given.
    pub fn get_flag(&self, name: &str) -> bool {
        self.flags.contains(name)
    }

    /// The chosen subcommand, if any.
    pub fn subcommand(&self) -> Option<(&str, &ArgMatches)> {
        self.subcommand
            .as_ref()
            .map(|(name, matches)| (name.as_str(), matches.as_ref()))
    }
}

/// Conversion from the shim's stored `String` values (only `String` is
/// supported; parse at the call site as the workspace does).
pub trait FromArgValue {
    /// Reinterprets the stored value.
    #[allow(clippy::ptr_arg)] // deliberate: values are stored as `String`
    fn from_stored(stored: &String) -> &Self;
}

impl FromArgValue for String {
    #[allow(clippy::ptr_arg)]
    fn from_stored(stored: &String) -> &String {
        stored
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn cli() -> Command {
        Command::new("tool").subcommand_required(true).subcommand(
            Command::new("run")
                .arg(Arg::new("n").long("n").short('n').default_value("4"))
                .arg(Arg::new("json").long("json").action(ArgAction::SetTrue)),
        )
    }

    #[test]
    fn defaults_and_overrides() {
        let m = cli()
            .try_get_matches_from(["tool", "run", "-n", "8", "--json"])
            .unwrap();
        let (name, sub) = m.subcommand().unwrap();
        assert_eq!(name, "run");
        assert_eq!(sub.get_one::<String>("n").unwrap(), "8");
        assert!(sub.get_flag("json"));

        let m = cli().try_get_matches_from(["tool", "run"]).unwrap();
        let (_, sub) = m.subcommand().unwrap();
        assert_eq!(sub.get_one::<String>("n").unwrap(), "4");
        assert!(!sub.get_flag("json"));
    }

    #[test]
    fn equals_form_parses() {
        let m = cli()
            .try_get_matches_from(["tool", "run", "--n=16"])
            .unwrap();
        let (_, sub) = m.subcommand().unwrap();
        assert_eq!(sub.get_one::<String>("n").unwrap(), "16");
    }

    #[test]
    fn unknown_arguments_error() {
        assert!(cli()
            .try_get_matches_from(["tool", "run", "--bogus"])
            .is_err());
        assert!(cli().try_get_matches_from(["tool", "nope"]).is_err());
    }

    #[test]
    fn missing_required_subcommand_errors() {
        assert!(cli().try_get_matches_from(["tool"]).is_err());
    }

    #[test]
    fn required_arguments_are_enforced() {
        let cmd = || {
            Command::new("tool")
                .subcommand(Command::new("run").arg(Arg::new("rank").long("rank").required(true)))
        };
        assert!(cmd().try_get_matches_from(["tool", "run"]).is_err());
        let m = cmd()
            .try_get_matches_from(["tool", "run", "--rank", "2"])
            .unwrap();
        let (_, sub) = m.subcommand().unwrap();
        assert_eq!(sub.get_one::<String>("rank").unwrap(), "2");
    }

    #[test]
    fn hidden_subcommands_parse_but_stay_out_of_help() {
        let cmd = || {
            Command::new("tool")
                .subcommand(Command::new("run"))
                .subcommand(Command::new("__internal").hide(true))
        };
        let m = cmd().try_get_matches_from(["tool", "__internal"]).unwrap();
        assert_eq!(m.subcommand().unwrap().0, "__internal");
        let help = cmd().try_get_matches_from(["tool", "--help"]).unwrap_err();
        assert!(!help.to_string().contains("__internal"));
        assert!(help.to_string().contains("run"));
    }
}
