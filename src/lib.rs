//! # rdt-checkpointing
//!
//! A production-quality Rust reproduction of
//! *Optimal Asynchronous Garbage Collection for RDT Checkpointing Protocols*
//! (Schmidt, Garcia, Pedone, Buzato — ICDCS 2005).
//!
//! This facade crate re-exports the workspace's public API:
//!
//! * [`base`] — typed ids, dependency vectors, message metadata.
//! * [`ccp`] — offline checkpoint-and-communication-pattern model: causal
//!   precedence, zigzag paths, the RDT predicate, recovery lines and the
//!   obsolete-checkpoint oracle (Theorem 1).
//! * [`core`] — the paper's contribution: the RDT-LGC garbage collector
//!   (Algorithms 1–3) plus the baseline collectors it is compared against.
//! * [`protocols`] — RDT checkpointing protocols (FDAS, FDI, MRS, CAS,
//!   CASBR, CBR, plus the BCS and no-forced baselines) and the merged
//!   FDAS + RDT-LGC implementation (Algorithm 4).
//! * [`analysis`] — rollback-dependency graphs, rollback-propagation
//!   quantification, CCP statistics and storage timelines.
//! * [`sim`] — deterministic discrete-event and threaded simulators.
//! * [`recovery`] — recovery-line computation, rollback orchestration, and
//!   Wang's decentralized online min/max consistent global checkpoints.
//! * [`storage`] — file-backed stable storage that survives crashes, with
//!   restart-from-disk.
//! * [`workloads`] — workload generators and the paper's figure scenarios.
//!
//! ## Quickstart
//!
//! Run a simulated system of five processes under FDAS with RDT-LGC garbage
//! collection and inspect the storage statistics:
//!
//! ```
//! use rdt_checkpointing::prelude::*;
//!
//! let spec = WorkloadSpec::uniform_random(5, 200).with_seed(42);
//! let report = SimulationBuilder::new(spec)
//!     .protocol(ProtocolKind::Fdas)
//!     .garbage_collector(GcKind::RdtLgc)
//!     .run()
//!     .expect("simulation runs");
//!
//! // The paper's bound: never more than n (+1 transient) retained checkpoints.
//! assert!(report.metrics.max_retained_per_process() <= 5 + 1);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub use rdt_analysis as analysis;
pub use rdt_base as base;
pub use rdt_ccp as ccp;
pub use rdt_core as core;
pub use rdt_protocols as protocols;
pub use rdt_recovery as recovery;
pub use rdt_sim as sim;
pub use rdt_storage as storage;
pub use rdt_workloads as workloads;

/// Commonly used items, re-exported for convenience.
pub mod prelude {
    pub use rdt_analysis::{CcpStats, OccupancyTimeline, PropagationReport, RollbackGraph};
    pub use rdt_base::{
        CheckpointId, CheckpointIndex, DependencyVector, IntervalIndex, Message, MessageId,
        MessageMeta, Payload, ProcessId,
    };
    pub use rdt_ccp::{Ccp, CcpBuilder, GeneralCheckpoint, GlobalCheckpoint};
    pub use rdt_core::{CheckpointStore, GarbageCollector, GcKind, LastIntervals, RdtLgc};
    pub use rdt_protocols::{Middleware, ProtocolKind};
    pub use rdt_recovery::{RecoveryManager, RecoveryMode};
    pub use rdt_sim::{
        run_script, run_threaded, ChannelConfig, SimConfig, SimulationBuilder, SimulationReport,
    };
    pub use rdt_storage::{
        DurableStore, FaultFs, FaultKind, FaultPlan, RestartReport, StdFs, StorageBackend,
    };
    pub use rdt_workloads::{Pattern, Script, WorkloadSpec};
}
