//! Offline analyses over checkpoint-and-communication patterns (CCPs).
//!
//! This crate complements [`rdt_ccp`]'s per-query oracles with whole-pattern
//! analyses used by the evaluation harness and by the paper's surrounding
//! literature:
//!
//! * [`RollbackGraph`] — the *rollback-dependency graph* over checkpoint
//!   intervals (Wang, *IEEE ToC* 1997). Its undone-interval closure computes
//!   recovery lines by orphan propagation, independently of the Lemma 1
//!   characterization, and exhibits the domino effect on non-RDT patterns.
//! * [`PropagationReport`] — rollback-propagation quantification in the style of
//!   Agbaria et al. (*SRDS* 2001): how far does a single failure roll the
//!   system back, per protocol?
//! * [`CcpStats`] — whole-pattern statistics: zigzag/causal densities, the
//!   doubling ratio that defines RDT, useless/obsolete counts.
//! * [`OccupancyTimeline`] — stable-storage occupancy over time, built from
//!   the simulator's occupancy samples.
//!
//! ```
//! use rdt_analysis::{CcpStats, RollbackGraph};
//! use rdt_base::ProcessId;
//! use rdt_ccp::CcpBuilder;
//!
//! let mut b = CcpBuilder::new(2);
//! b.checkpoint(ProcessId::new(0));
//! b.message(ProcessId::new(0), ProcessId::new(1));
//! let ccp = b.build();
//!
//! let stats = CcpStats::compute(&ccp);
//! assert!(stats.is_rdt);
//!
//! let rg = RollbackGraph::new(&ccp);
//! let line = rg.recovery_line([ProcessId::new(0)]);
//! assert_eq!(line, ccp.recovery_line(&[ProcessId::new(0)].into_iter().collect()));
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod propagation;
mod rgraph;
mod stats;
mod timeline;

pub use propagation::{worst_single_failure, PropagationReport};
pub use rgraph::{RollbackGraph, UndoneIntervals};
pub use stats::CcpStats;
pub use timeline::{OccupancyTimeline, TimelinePoint};
