//! Whole-pattern statistics over a CCP.

use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_ccp::Ccp;

/// Summary statistics of a checkpoint-and-communication pattern.
///
/// The densities are measured over ordered pairs of *distinct general
/// checkpoints* `(a, b)` with `a ≠ b`: `causal_pairs` counts causal
/// precedence `a → b` (which includes local program order);
/// `zigzag_pairs` counts `a ⇝ b` (zigzag paths are non-empty *message*
/// sequences, so local order alone never creates one). A zigzag pair that
/// is not also causal is *undoubled* — Definition 4 says a pattern is
/// RD-trackable exactly when no undoubled pair (and no zigzag cycle)
/// exists.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct CcpStats {
    /// Number of processes.
    pub n: usize,
    /// Stable checkpoints in the pattern.
    pub stable_checkpoints: usize,
    /// Delivered messages.
    pub delivered_messages: usize,
    /// Sent-but-undelivered (lost or in-transit) messages.
    pub undelivered_messages: usize,
    /// Ordered distinct general-checkpoint pairs examined.
    pub ordered_pairs: usize,
    /// Pairs related by causal precedence (`a → b`).
    pub causal_pairs: usize,
    /// Pairs related by a zigzag path (`a ⇝ b`).
    pub zigzag_pairs: usize,
    /// Zigzag pairs *not* doubled by causal precedence — the untrackable
    /// dependencies. Zero on RD-trackable patterns.
    pub undoubled_zigzag_pairs: usize,
    /// Useless checkpoints (on a zigzag cycle).
    pub useless_checkpoints: usize,
    /// Theorem-1 obsolete stable checkpoints.
    pub obsolete: usize,
    /// Theorem-2 (causally identifiable) obsolete stable checkpoints.
    pub causally_identifiable_obsolete: usize,
    /// Whether the pattern is RD-trackable.
    pub is_rdt: bool,
}

impl CcpStats {
    /// Computes all statistics for `ccp`.
    ///
    /// Cost: `O(C²)` reachability queries over `C` general checkpoints
    /// (on top of one zigzag-analysis precomputation), plus the obsolete
    /// oracles.
    pub fn compute(ccp: &Ccp) -> Self {
        let zz = ccp.zigzag();
        let checkpoints: Vec<_> = ccp.general_checkpoints().collect();
        let mut ordered_pairs = 0usize;
        let mut causal_pairs = 0usize;
        let mut zigzag_pairs = 0usize;
        let mut undoubled_zigzag_pairs = 0usize;
        for &a in &checkpoints {
            for &b in &checkpoints {
                if a == b {
                    continue;
                }
                ordered_pairs += 1;
                let causal = ccp.precedes(a, b);
                let zigzag = zz.zigzag_reaches(a, b);
                causal_pairs += usize::from(causal);
                zigzag_pairs += usize::from(zigzag);
                undoubled_zigzag_pairs += usize::from(zigzag && !causal);
            }
        }
        let total_messages = ccp.messages().count();
        let delivered = ccp.delivered_count();
        Self {
            n: ccp.n(),
            stable_checkpoints: ccp.stable_count(),
            delivered_messages: delivered,
            undelivered_messages: total_messages - delivered,
            ordered_pairs,
            causal_pairs,
            zigzag_pairs,
            undoubled_zigzag_pairs,
            useless_checkpoints: ccp.useless_checkpoints().len(),
            obsolete: ccp.obsolete_set().len(),
            causally_identifiable_obsolete: ccp.causally_identifiable_obsolete_set().len(),
            is_rdt: ccp.is_rdt(),
        }
    }

    /// Fraction of ordered pairs related causally.
    pub fn causal_density(&self) -> f64 {
        ratio(self.causal_pairs, self.ordered_pairs)
    }

    /// Fraction of ordered pairs related by a zigzag path.
    pub fn zigzag_density(&self) -> f64 {
        ratio(self.zigzag_pairs, self.ordered_pairs)
    }

    /// Fraction of zigzag pairs that are *doubled* by causal precedence —
    /// `1.0` on RD-trackable patterns (every zigzag dependency is
    /// trackable). Defined as `1.0` when there are no zigzag pairs at all.
    pub fn doubling_ratio(&self) -> f64 {
        if self.zigzag_pairs == 0 {
            1.0
        } else {
            ratio(
                self.zigzag_pairs - self.undoubled_zigzag_pairs,
                self.zigzag_pairs,
            )
        }
    }

    /// Obsolete checkpoints the asynchronous (Theorem 2) condition misses —
    /// the price of causal-only knowledge (zero when everything identifiable
    /// is identified).
    pub fn optimality_gap(&self) -> usize {
        self.obsolete - self.causally_identifiable_obsolete
    }
}

impl fmt::Display for CcpStats {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "n={} stable={} delivered={} rdt={} causal-density={:.3} \
             zigzag-density={:.3} useless={} obsolete={} (causal-id {})",
            self.n,
            self.stable_checkpoints,
            self.delivered_messages,
            self.is_rdt,
            self.causal_density(),
            self.zigzag_density(),
            self.useless_checkpoints,
            self.obsolete,
            self.causally_identifiable_obsolete,
        )
    }
}

fn ratio(num: usize, den: usize) -> f64 {
    if den == 0 {
        0.0
    } else {
        num as f64 / den as f64
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::ProcessId;
    use rdt_ccp::CcpBuilder;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_pattern_has_only_local_precedence() {
        let stats = CcpStats::compute(&CcpBuilder::new(2).build());
        assert_eq!(stats.stable_checkpoints, 2);
        assert_eq!(stats.delivered_messages, 0);
        // 4 general checkpoints → 12 ordered pairs; the only related pairs
        // are s^0 → v per process (local order), which no message sequence
        // mirrors — zigzag paths need messages.
        assert_eq!(stats.ordered_pairs, 12);
        assert_eq!(stats.causal_pairs, 2);
        assert_eq!(stats.zigzag_pairs, 0);
        assert_eq!(stats.undoubled_zigzag_pairs, 0);
        assert!(stats.is_rdt);
        assert!((stats.doubling_ratio() - 1.0).abs() < f64::EPSILON);
    }

    #[test]
    fn zigzag_density_exceeds_causal_on_non_rdt_patterns() {
        // Crossing messages (Figure 2 core): a Z-path that is not doubled.
        let mut b = CcpBuilder::new(2);
        let m1 = b.send(p(1), p(0));
        b.deliver(m1);
        b.checkpoint(p(0));
        let m2 = b.send(p(0), p(1));
        b.deliver(m2);
        b.checkpoint(p(1));
        let m3 = b.send(p(1), p(0));
        b.deliver(m3);
        b.checkpoint(p(0));
        let m4 = b.send(p(0), p(1));
        b.deliver(m4);
        let stats = CcpStats::compute(&b.build());
        assert!(!stats.is_rdt);
        assert!(stats.undoubled_zigzag_pairs > 0);
        assert!(stats.doubling_ratio() < 1.0);
        assert!(stats.useless_checkpoints > 0);
    }

    #[test]
    fn undelivered_messages_are_counted_separately() {
        let mut b = CcpBuilder::new(2);
        b.send(p(0), p(1)); // never delivered
        b.message(p(0), p(1)); // delivered
        let stats = CcpStats::compute(&b.build());
        assert_eq!(stats.delivered_messages, 1);
        assert_eq!(stats.undelivered_messages, 1);
    }

    #[test]
    fn optimality_gap_measures_the_price_of_causal_knowledge() {
        // Ping-pong where p2 never hears of p1's second checkpoint: s_2^0
        // is Theorem-1 obsolete but not causally identifiable — the same
        // phenomenon as s_2^1 in the paper's Figure 4.
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(0));
        b.checkpoint(p(0));
        let stats = CcpStats::compute(&b.build());
        assert_eq!(stats.optimality_gap(), 1);

        // Once p1's news reaches p2, the gap closes.
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(0));
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        let stats = CcpStats::compute(&b.build());
        assert_eq!(stats.optimality_gap(), 0);
    }

    #[test]
    fn display_is_informative() {
        let s = CcpStats::compute(&CcpBuilder::new(2).build());
        let out = s.to_string();
        assert!(out.contains("rdt=true"));
        assert!(out.contains("n=2"));
    }
}
