//! Rollback-propagation quantification.
//!
//! Agbaria, Attiya, Friedman and Vitenberg (*SRDS* 2001) compare domino-free
//! checkpointing properties by *how far* a failure rolls the system back.
//! This module quantifies that for a concrete CCP: per-process rollback
//! distances, totals, and the worst single failure — the numbers behind the
//! claim that RDT "minimizes the amount of lost work in a distributed
//! rollback when compared to other domino-free properties" (paper, §1).

use serde::{Deserialize, Serialize};

use rdt_base::ProcessId;
use rdt_ccp::Ccp;

use crate::rgraph::RollbackGraph;

/// How far one failure set rolls the system back.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct PropagationReport {
    /// The faulty processes that seeded the rollback.
    pub faulty: Vec<ProcessId>,
    /// General checkpoints rolled back, per process (volatile state counts
    /// as one).
    pub rolled_back: Vec<usize>,
    /// Surviving checkpoint index per process (the recovery line).
    pub line: Vec<usize>,
    /// Whether some process returned to its initial checkpoint `s^0`.
    pub reached_initial: bool,
}

impl PropagationReport {
    /// Computes the report for the crash of `faulty` in `ccp`.
    pub fn compute(ccp: &Ccp, faulty: &[ProcessId]) -> Self {
        let undone = RollbackGraph::new(ccp).undone(faulty.iter().copied());
        Self {
            faulty: faulty.to_vec(),
            rolled_back: ProcessId::all(ccp.n())
                .map(|p| undone.rolled_back_count(p))
                .collect(),
            line: undone.recovery_line().to_raw(),
            reached_initial: undone.reaches_initial_state(),
        }
    }

    /// Total general checkpoints rolled back.
    pub fn total(&self) -> usize {
        self.rolled_back.iter().sum()
    }

    /// The largest per-process rollback.
    pub fn max_per_process(&self) -> usize {
        self.rolled_back.iter().copied().max().unwrap_or(0)
    }

    /// Number of processes forced to roll back.
    pub fn affected_processes(&self) -> usize {
        self.rolled_back.iter().filter(|&&c| c > 0).count()
    }
}

/// Quantifies every single-process failure and returns the report with the
/// largest total rollback (ties broken by the lowest process id).
///
/// Returns `None` for an empty system.
pub fn worst_single_failure(ccp: &Ccp) -> Option<PropagationReport> {
    let rg = RollbackGraph::new(ccp);
    ProcessId::all(ccp.n())
        .map(|f| {
            let undone = rg.undone([f]);
            PropagationReport {
                faulty: vec![f],
                rolled_back: ProcessId::all(ccp.n())
                    .map(|p| undone.rolled_back_count(p))
                    .collect(),
                line: undone.recovery_line().to_raw(),
                reached_initial: undone.reaches_initial_state(),
            }
        })
        .max_by_key(|r| (r.total(), std::cmp::Reverse(r.faulty[0])))
}

#[cfg(test)]
mod tests {
    use rdt_ccp::CcpBuilder;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn single_failure_without_messages_costs_one_checkpoint() {
        let ccp = CcpBuilder::new(3).build();
        let r = PropagationReport::compute(&ccp, &[p(0)]);
        assert_eq!(r.total(), 1);
        assert_eq!(r.affected_processes(), 1);
        assert_eq!(r.max_per_process(), 1);
        assert!(r.reached_initial);
    }

    #[test]
    fn propagation_counts_cascading_rollbacks() {
        // p1 → p2 → p3 causal chain, all receives un-checkpointed: p1's
        // failure takes everyone's volatile state.
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.message(p(1), p(2));
        let ccp = b.build();
        let r = PropagationReport::compute(&ccp, &[p(0)]);
        assert_eq!(r.affected_processes(), 3);
        assert_eq!(r.rolled_back, vec![1, 1, 1]);
        assert_eq!(r.line, vec![1, 0, 0]);
    }

    #[test]
    fn worst_single_failure_finds_the_most_damaging_process() {
        // p1's failure orphans p2; p3 is isolated, so failing it costs only
        // itself.
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        let ccp = b.build();
        let worst = worst_single_failure(&ccp).expect("non-empty system");
        assert_eq!(worst.faulty, vec![p(0)]);
        assert_eq!(worst.total(), 2);
    }

    #[test]
    fn checkpointed_receives_stop_the_propagation() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1)); // receive is safely checkpointed
        let ccp = b.build();
        let r = PropagationReport::compute(&ccp, &[p(0)]);
        // p2 loses only its volatile state (the message itself survives in
        // s_2^1? No: the message was sent in p1's undone volatile interval,
        // so p2's receive interval 1 is undone — s_2^1 is an orphan).
        assert_eq!(r.rolled_back, vec![1, 2]);

        // But if p1 checkpoints after the send, the send interval survives
        // and p2 keeps everything.
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(0)); // send interval is now stable
        b.checkpoint(p(1));
        let ccp = b.build();
        let r = PropagationReport::compute(&ccp, &[p(0)]);
        assert_eq!(r.rolled_back, vec![1, 0]);
    }

    #[test]
    fn worst_single_failure_is_none_only_for_empty_systems() {
        let ccp = CcpBuilder::new(2).build();
        assert!(worst_single_failure(&ccp).is_some());
    }
}
