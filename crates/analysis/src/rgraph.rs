//! The rollback-dependency graph over checkpoint intervals.
//!
//! Nodes are checkpoint intervals `I_i^γ` (including each process's current,
//! volatile interval); there is an edge `I_i^γ → I_j^δ` whenever a message
//! sent in `I_i^γ` is received in `I_j^δ`. Undoing an interval undoes every
//! later interval of the same process (checkpoint-granularity rollback) and,
//! because we do not assume piecewise determinism, orphans every message the
//! interval sent — whose receive intervals must be undone in turn.
//!
//! The fixed point of that propagation, seeded with the volatile intervals
//! of the faulty processes, is the *maximal orphan-free cut*: exactly the
//! recovery line. On RD-trackable patterns it coincides with the Lemma 1
//! characterization (cross-checked by this crate's property tests); on
//! arbitrary patterns it still yields the operationally correct rollback and
//! exhibits the domino effect the paper's Figure 2 illustrates.

use std::collections::VecDeque;

use rdt_base::{CheckpointIndex, ProcessId};
use rdt_ccp::{Ccp, FaultySet, GlobalCheckpoint};

/// The rollback-dependency graph of a [`Ccp`].
///
/// Construction is `O(events + messages)`; each closure query is
/// `O(intervals + edges)`.
#[derive(Debug, Clone)]
pub struct RollbackGraph<'a> {
    ccp: &'a Ccp,
    /// `volatile_interval[i]` = index of `p_i`'s current interval
    /// (`last_s(i) + 1`).
    volatile_interval: Vec<usize>,
    /// `edges[i][γ]` = receive intervals of the messages sent in `I_i^γ`.
    /// Entry `0` is unused (interval indices start at 1).
    edges: Vec<Vec<Vec<(ProcessId, usize)>>>,
}

impl<'a> RollbackGraph<'a> {
    /// Builds the graph from a CCP's delivered messages.
    pub fn new(ccp: &'a Ccp) -> Self {
        let volatile_interval: Vec<usize> = ccp
            .processes()
            .map(|p| ccp.last_stable(p).value() + 1)
            .collect();
        let mut edges: Vec<Vec<Vec<(ProcessId, usize)>>> = volatile_interval
            .iter()
            .map(|&vol| vec![Vec::new(); vol + 1])
            .collect();
        for m in ccp.messages() {
            let (Some(recv_interval), src) = (m.recv_interval, m.src()) else {
                continue;
            };
            edges[src.index()][m.send_interval.value()].push((m.dst, recv_interval.value()));
        }
        Self {
            ccp,
            volatile_interval,
            edges,
        }
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.volatile_interval.len()
    }

    /// Total number of interval nodes (including volatile intervals).
    pub fn interval_count(&self) -> usize {
        self.volatile_interval.iter().sum()
    }

    /// Total number of message edges.
    pub fn edge_count(&self) -> usize {
        self.edges
            .iter()
            .flat_map(|per_interval| per_interval.iter())
            .map(Vec::len)
            .sum()
    }

    /// Runs the undone-interval closure for the crash of `faulty`.
    ///
    /// Seeds: the volatile interval of each faulty process (its volatile
    /// state is lost). Propagation: undone intervals orphan the messages
    /// they sent, undoing the receive intervals; undone sets are suffix-
    /// closed per process.
    pub fn undone(&self, faulty: impl IntoIterator<Item = ProcessId>) -> UndoneIntervals {
        // min_undone[i] = lowest undone interval of p_i; the sentinel
        // vol + 1 means "nothing undone".
        let mut min_undone: Vec<usize> =
            self.volatile_interval.iter().map(|&vol| vol + 1).collect();
        let mut work: VecDeque<(ProcessId, usize)> = VecDeque::new();
        let mark = |p: ProcessId,
                    gamma: usize,
                    min_undone: &mut Vec<usize>,
                    work: &mut VecDeque<(ProcessId, usize)>| {
            let cur = min_undone[p.index()];
            if gamma < cur {
                for g in gamma..cur {
                    work.push_back((p, g));
                }
                min_undone[p.index()] = gamma;
            }
        };
        for f in faulty {
            let vol = self.volatile_interval[f.index()];
            mark(f, vol, &mut min_undone, &mut work);
        }
        while let Some((p, gamma)) = work.pop_front() {
            for &(q, delta) in &self.edges[p.index()][gamma] {
                mark(q, delta, &mut min_undone, &mut work);
            }
        }
        UndoneIntervals {
            volatile_interval: self.volatile_interval.clone(),
            min_undone,
        }
    }

    /// The recovery line for `faulty`, via the undone-interval closure.
    ///
    /// On RD-trackable patterns this equals [`Ccp::recovery_line`]
    /// (Lemma 1); on arbitrary patterns it is the maximal orphan-free cut,
    /// which may roll processes arbitrarily far back (the domino effect).
    pub fn recovery_line(&self, faulty: impl IntoIterator<Item = ProcessId>) -> GlobalCheckpoint {
        self.undone(faulty).recovery_line()
    }

    /// Convenience: the recovery line for a [`FaultySet`].
    pub fn recovery_line_for(&self, faulty: &FaultySet) -> GlobalCheckpoint {
        self.recovery_line(faulty.iter().copied())
    }

    /// The CCP this graph was built from.
    pub fn ccp(&self) -> &'a Ccp {
        self.ccp
    }

    /// Renders the graph as a Graphviz `dot` digraph: one cluster per
    /// process, interval nodes in order, message edges between send and
    /// receive intervals. When `undone` is given (from [`Self::undone`]),
    /// undone intervals are filled red — the visual of a failure's blast
    /// radius.
    pub fn render_dot(&self, undone: Option<&UndoneIntervals>) -> String {
        use std::fmt::Write as _;
        let mut out =
            String::from("digraph rollback {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        for p in ProcessId::all(self.n()) {
            let _ = writeln!(out, "  subgraph cluster_{} {{", p.index());
            let _ = writeln!(out, "    label=\"{p}\";");
            let vol = self.volatile_interval[p.index()];
            for gamma in 1..=vol {
                let is_undone = undone.is_some_and(|u| u.min_undone(p).is_some_and(|m| gamma >= m));
                let style = if is_undone {
                    ", style=filled, fillcolor=salmon"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    i{}_{gamma} [label=\"I{}^{gamma}\"{style}];",
                    p.index(),
                    p.index() + 1,
                );
                if gamma > 1 {
                    let _ = writeln!(
                        out,
                        "    i{}_{} -> i{}_{gamma} [style=dotted];",
                        p.index(),
                        gamma - 1,
                        p.index(),
                    );
                }
            }
            let _ = writeln!(out, "  }}");
        }
        for (src, per_interval) in self.edges.iter().enumerate() {
            for (gamma, targets) in per_interval.iter().enumerate() {
                for (dst, delta) in targets {
                    let _ = writeln!(
                        out,
                        "  i{src}_{gamma} -> i{}_{delta} [color=blue];",
                        dst.index(),
                    );
                }
            }
        }
        out.push_str("}\n");
        out
    }
}

/// Result of a [`RollbackGraph`] closure: which intervals a failure undoes.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct UndoneIntervals {
    volatile_interval: Vec<usize>,
    /// Lowest undone interval per process; `volatile + 1` if none.
    min_undone: Vec<usize>,
}

impl UndoneIntervals {
    /// Number of processes.
    pub fn n(&self) -> usize {
        self.min_undone.len()
    }

    /// Whether any interval of `p` is undone (i.e. `p` must roll back).
    pub fn rolls_back(&self, p: ProcessId) -> bool {
        self.min_undone[p.index()] <= self.volatile_interval[p.index()]
    }

    /// The lowest undone interval of `p`, if any.
    pub fn min_undone(&self, p: ProcessId) -> Option<usize> {
        self.rolls_back(p).then_some(self.min_undone[p.index()])
    }

    /// The checkpoint `p` survives at: `min_undone − 1`, or the volatile
    /// index when nothing is undone.
    pub fn surviving_checkpoint(&self, p: ProcessId) -> CheckpointIndex {
        CheckpointIndex::new(if self.rolls_back(p) {
            self.min_undone[p.index()] - 1
        } else {
            self.volatile_interval[p.index()]
        })
    }

    /// Number of general checkpoints `p` rolls back: the volatile one plus
    /// every stable checkpoint with a higher index than the surviving one.
    /// Zero when `p` does not roll back.
    pub fn rolled_back_count(&self, p: ProcessId) -> usize {
        if self.rolls_back(p) {
            // Volatile index = volatile_interval; surviving = min_undone - 1.
            self.volatile_interval[p.index()] + 1 - self.min_undone[p.index()]
        } else {
            0
        }
    }

    /// Total general checkpoints rolled back across all processes — the
    /// quantity Definition 5 minimizes.
    pub fn total_rolled_back(&self) -> usize {
        ProcessId::all(self.n())
            .map(|p| self.rolled_back_count(p))
            .sum()
    }

    /// Whether some process is rolled all the way back to its initial
    /// checkpoint `s^0` — the signature of the domino effect.
    pub fn reaches_initial_state(&self) -> bool {
        ProcessId::all(self.n()).any(|p| self.surviving_checkpoint(p) == CheckpointIndex::ZERO)
    }

    /// The induced recovery line (one component per process; volatile
    /// components for processes that do not roll back).
    pub fn recovery_line(&self) -> GlobalCheckpoint {
        GlobalCheckpoint::new(
            ProcessId::all(self.n())
                .map(|p| self.surviving_checkpoint(p))
                .collect(),
        )
    }
}

#[cfg(test)]
mod tests {
    use rdt_ccp::CcpBuilder;

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// p1 checkpoints, then messages p2; p2 checkpoints after the receive.
    fn chain() -> Ccp {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.build()
    }

    #[test]
    fn empty_pattern_rolls_back_only_the_faulty_volatile() {
        let ccp = CcpBuilder::new(3).build();
        let rg = RollbackGraph::new(&ccp);
        let undone = rg.undone([p(1)]);
        assert!(undone.rolls_back(p(1)));
        assert!(!undone.rolls_back(p(0)));
        assert_eq!(undone.rolled_back_count(p(1)), 1); // volatile only
        assert_eq!(undone.total_rolled_back(), 1);
        assert_eq!(undone.surviving_checkpoint(p(1)), CheckpointIndex::ZERO);
    }

    #[test]
    fn orphan_message_propagates_the_rollback() {
        let ccp = chain();
        let rg = RollbackGraph::new(&ccp);
        // p1 fails: its volatile interval (2) is undone. The message was
        // sent in interval 2 (after s_1^1), so p2's receive interval (1) is
        // undone, costing p2 its checkpoint s_2^1 and volatile state.
        let undone = rg.undone([p(0)]);
        assert!(undone.rolls_back(p(1)));
        assert_eq!(undone.surviving_checkpoint(p(0)).value(), 1);
        assert_eq!(undone.surviving_checkpoint(p(1)).value(), 0);
        assert_eq!(undone.rolled_back_count(p(1)), 2); // s_2^1 + volatile
    }

    #[test]
    fn failure_after_checkpointed_receive_does_not_propagate() {
        let ccp = chain();
        let rg = RollbackGraph::new(&ccp);
        // p2 fails: rolls back to s_2^1; p1 received nothing from p2, so p1
        // keeps its volatile state.
        let undone = rg.undone([p(1)]);
        assert!(!undone.rolls_back(p(0)));
        assert_eq!(undone.surviving_checkpoint(p(1)).value(), 1);
        assert_eq!(undone.total_rolled_back(), 1);
    }

    #[test]
    fn closure_matches_lemma_1_on_an_rdt_pattern() {
        let ccp = chain();
        assert!(ccp.is_rdt());
        let rg = RollbackGraph::new(&ccp);
        for faulty_bits in 1u32..4 {
            let faulty: FaultySet = (0..2)
                .filter(|i| faulty_bits & (1 << i) != 0)
                .map(ProcessId::new)
                .collect();
            assert_eq!(
                rg.recovery_line_for(&faulty),
                ccp.recovery_line(&faulty),
                "faulty = {faulty:?}"
            );
        }
    }

    /// The paper's Figure 2: crossing messages with no forced checkpoints.
    /// A single failure of p1 dominoes both processes to the initial state.
    #[test]
    fn domino_effect_on_figure_2_pattern() {
        let mut b = CcpBuilder::new(2);
        // m1: p2 → p1 received before s_1^1; m2: p1 → p2 sent after s_1^1,
        // received before s_2^1; m3: p2 → p1 after s_2^1 received before
        // s_1^2; m4: p1 → p2 after s_1^2.
        let m1 = b.send(p(1), p(0));
        b.deliver(m1);
        b.checkpoint(p(0));
        let m2 = b.send(p(0), p(1));
        b.deliver(m2);
        b.checkpoint(p(1));
        let m3 = b.send(p(1), p(0));
        b.deliver(m3);
        b.checkpoint(p(0));
        let m4 = b.send(p(0), p(1));
        b.deliver(m4);
        let ccp = b.build();
        assert!(!ccp.is_rdt());

        let rg = RollbackGraph::new(&ccp);
        let undone = rg.undone([p(0)]);
        assert!(undone.reaches_initial_state());
        assert_eq!(undone.surviving_checkpoint(p(0)), CheckpointIndex::ZERO);
        assert_eq!(undone.surviving_checkpoint(p(1)), CheckpointIndex::ZERO);
    }

    #[test]
    fn multiple_faulty_processes_union_their_closures() {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.checkpoint(p(1));
        b.checkpoint(p(2));
        let ccp = b.build();
        let rg = RollbackGraph::new(&ccp);
        let undone = rg.undone([p(0), p(2)]);
        assert!(undone.rolls_back(p(0)));
        assert!(!undone.rolls_back(p(1)));
        assert!(undone.rolls_back(p(2)));
        assert_eq!(undone.total_rolled_back(), 2);
    }

    #[test]
    fn graph_counts_reflect_the_pattern() {
        let ccp = chain();
        let rg = RollbackGraph::new(&ccp);
        // p1: intervals 1, 2; p2: intervals 1, 2 → 4 nodes, 1 edge.
        assert_eq!(rg.n(), 2);
        assert_eq!(rg.interval_count(), 4);
        assert_eq!(rg.edge_count(), 1);
    }

    #[test]
    fn dot_rendering_marks_undone_intervals() {
        let ccp = chain();
        let rg = RollbackGraph::new(&ccp);
        let plain = rg.render_dot(None);
        assert!(plain.starts_with("digraph rollback {"));
        assert!(plain.contains("color=blue"), "message edge present");
        assert!(!plain.contains("salmon"));
        let undone = rg.undone([p(0)]);
        let marked = rg.render_dot(Some(&undone));
        assert!(marked.contains("salmon"), "undone intervals highlighted");
        assert!(marked.ends_with("}\n"));
    }

    #[test]
    fn undelivered_messages_create_no_edges() {
        let mut b = CcpBuilder::new(2);
        b.send(p(0), p(1)); // in transit, never delivered
        let ccp = b.build();
        let rg = RollbackGraph::new(&ccp);
        assert_eq!(rg.edge_count(), 0);
        let undone = rg.undone([p(0)]);
        assert!(!undone.rolls_back(p(1)));
    }
}
