//! Stable-storage occupancy over time.
//!
//! The simulator can record one `(time, process, retained)` sample per
//! processed event (see `rdt_sim::SimConfig::record_occupancy`); this module
//! turns that series into the curves the storage experiments plot: global
//! occupancy over time, per-process peaks, and the transient-peak detection
//! behind the paper's `n(n+1)` bound (Section 4.5).

use serde::{Deserialize, Serialize};

use rdt_base::ProcessId;

/// One occupancy sample: process `process` held `retained` stable
/// checkpoints at simulation time `time`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct TimelinePoint {
    /// Simulation time of the sample.
    pub time: u64,
    /// The sampled process.
    pub process: ProcessId,
    /// Stable checkpoints retained at that instant.
    pub retained: usize,
}

/// An occupancy timeline for an `n`-process run.
///
/// Samples must be supplied in non-decreasing time order (the simulator's
/// natural order); [`OccupancyTimeline::new`] validates this.
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct OccupancyTimeline {
    n: usize,
    points: Vec<TimelinePoint>,
}

impl OccupancyTimeline {
    /// Builds a timeline from samples.
    ///
    /// # Panics
    ///
    /// Panics if samples are not in non-decreasing time order or reference a
    /// process `≥ n`.
    pub fn new(n: usize, points: Vec<TimelinePoint>) -> Self {
        for w in points.windows(2) {
            assert!(w[0].time <= w[1].time, "samples out of time order");
        }
        assert!(
            points.iter().all(|p| p.process.index() < n),
            "sample references an out-of-range process"
        );
        Self { n, points }
    }

    /// Builds from the simulator's raw tuples.
    pub fn from_raw(n: usize, raw: impl IntoIterator<Item = (u64, ProcessId, usize)>) -> Self {
        Self::new(
            n,
            raw.into_iter()
                .map(|(time, process, retained)| TimelinePoint {
                    time,
                    process,
                    retained,
                })
                .collect(),
        )
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// All samples, in time order.
    pub fn points(&self) -> &[TimelinePoint] {
        &self.points
    }

    /// The samples of one process, in time order.
    pub fn process_series(&self, p: ProcessId) -> impl Iterator<Item = TimelinePoint> + '_ {
        self.points.iter().copied().filter(move |s| s.process == p)
    }

    /// The peak retention of one process.
    pub fn process_peak(&self, p: ProcessId) -> usize {
        self.process_series(p)
            .map(|s| s.retained)
            .max()
            .unwrap_or(0)
    }

    /// Global occupancy over time: after each sample, the sum of the latest
    /// known retention of every process. Starts from one checkpoint per
    /// process (`s^0` is stored at construction).
    pub fn global_series(&self) -> Vec<(u64, usize)> {
        let mut latest = vec![1usize; self.n];
        let mut out = Vec::with_capacity(self.points.len());
        for s in &self.points {
            latest[s.process.index()] = s.retained;
            out.push((s.time, latest.iter().sum()));
        }
        out
    }

    /// The peak of the global series and when it first occurred; `(0, 0)`
    /// for an empty timeline.
    pub fn global_peak(&self) -> (u64, usize) {
        self.global_series()
            .into_iter()
            .max_by_key(|&(time, total)| (total, std::cmp::Reverse(time)))
            .unwrap_or((0, 0))
    }

    /// The final global occupancy (the steady state the run settled into).
    pub fn final_global(&self) -> usize {
        self.global_series()
            .last()
            .map(|&(_, t)| t)
            .unwrap_or(self.n)
    }

    /// Time-averaged global occupancy, weighting each observed level by the
    /// time until the next sample. Returns the final level for single-sample
    /// timelines.
    pub fn time_averaged_global(&self) -> f64 {
        let series = self.global_series();
        let Some((&first, rest)) = series.split_first() else {
            return self.n as f64;
        };
        let mut weighted = 0.0f64;
        let mut span = 0.0f64;
        let mut prev = first;
        for &(time, total) in rest {
            let dt = (time - prev.0) as f64;
            weighted += prev.1 as f64 * dt;
            span += dt;
            prev = (time, total);
        }
        if span == 0.0 {
            prev.1 as f64
        } else {
            weighted / span
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pt(time: u64, process: usize, retained: usize) -> TimelinePoint {
        TimelinePoint {
            time,
            process: ProcessId::new(process),
            retained,
        }
    }

    #[test]
    fn global_series_tracks_latest_per_process() {
        let tl = OccupancyTimeline::new(2, vec![pt(0, 0, 2), pt(5, 1, 3), pt(9, 0, 1)]);
        // Start (1,1); p1→2 ⇒ 3; p2→3 ⇒ 5; p1→1 ⇒ 4.
        assert_eq!(tl.global_series(), vec![(0, 3), (5, 5), (9, 4)]);
        assert_eq!(tl.global_peak(), (5, 5));
        assert_eq!(tl.final_global(), 4);
    }

    #[test]
    fn per_process_peaks() {
        let tl = OccupancyTimeline::new(2, vec![pt(0, 0, 2), pt(1, 0, 4), pt(2, 1, 1)]);
        assert_eq!(tl.process_peak(ProcessId::new(0)), 4);
        assert_eq!(tl.process_peak(ProcessId::new(1)), 1);
        assert_eq!(tl.process_series(ProcessId::new(0)).count(), 2);
    }

    #[test]
    fn time_averaged_weights_by_duration() {
        // Level 3 for 10 ticks, then level 5 observed at the very end.
        let tl = OccupancyTimeline::new(2, vec![pt(0, 0, 2), pt(10, 1, 3)]);
        assert!((tl.time_averaged_global() - 3.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_timeline_defaults_to_initial_occupancy() {
        let tl = OccupancyTimeline::new(3, Vec::new());
        assert_eq!(tl.final_global(), 3);
        assert_eq!(tl.global_peak(), (0, 0));
    }

    #[test]
    #[should_panic(expected = "time order")]
    fn out_of_order_samples_are_rejected() {
        let _ = OccupancyTimeline::new(2, vec![pt(5, 0, 1), pt(0, 0, 1)]);
    }

    #[test]
    #[should_panic(expected = "out-of-range")]
    fn out_of_range_process_is_rejected() {
        let _ = OccupancyTimeline::new(1, vec![pt(0, 3, 1)]);
    }

    #[test]
    fn from_raw_round_trips() {
        let tl = OccupancyTimeline::from_raw(2, vec![(1, ProcessId::new(0), 2)]);
        assert_eq!(tl.points().len(), 1);
        assert_eq!(tl.points()[0], pt(1, 0, 2));
    }
}
