//! Integration: simulator-produced occupancy samples and traces feed the
//! timeline and propagation analyses.

use rdt_analysis::{CcpStats, OccupancyTimeline, PropagationReport, RollbackGraph};
use rdt_base::ProcessId;
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::WorkloadSpec;

fn run_with_occupancy(gc: GcKind) -> (usize, OccupancyTimeline) {
    let n = 4;
    let spec = WorkloadSpec::uniform_random(n, 300)
        .with_seed(11)
        .with_checkpoint_prob(0.3);
    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(gc)
        .record_occupancy()
        .run()
        .expect("simulation runs");
    let samples = report.occupancy.expect("occupancy recording was enabled");
    (n, OccupancyTimeline::from_raw(n, samples))
}

#[test]
fn lgc_timeline_stays_within_the_paper_bound() {
    let (n, tl) = run_with_occupancy(GcKind::RdtLgc);
    for p in ProcessId::all(n) {
        assert!(
            tl.process_peak(p) <= n + 1,
            "{p} peaked at {}",
            tl.process_peak(p)
        );
    }
    let (_, peak) = tl.global_peak();
    assert!(peak <= n * (n + 1), "global peak {peak} exceeds n(n+1)");
}

#[test]
fn no_gc_timeline_diverges_past_every_lgc_level() {
    let (_, lgc) = run_with_occupancy(GcKind::RdtLgc);
    let (_, none) = run_with_occupancy(GcKind::None);
    assert!(none.global_peak().1 > lgc.global_peak().1);
    assert!(none.final_global() > lgc.final_global());
    assert!(none.time_averaged_global() > lgc.time_averaged_global());
}

#[test]
fn occupancy_is_not_recorded_unless_requested() {
    let spec = WorkloadSpec::uniform_random(3, 50).with_seed(1);
    let report = SimulationBuilder::new(spec).run().expect("simulation runs");
    assert!(report.occupancy.is_none());
}

#[test]
fn sim_trace_replays_into_the_propagation_analysis() {
    let n = 4;
    let spec = WorkloadSpec::uniform_random(n, 250)
        .with_seed(23)
        .with_checkpoint_prob(0.25);
    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .record_trace()
        .run()
        .expect("simulation runs");
    let trace = report.trace.expect("trace recording was enabled");
    let ccp = CcpBuilder::from_trace(n, &trace)
        .expect("crash-free trace replays")
        .build();
    assert!(ccp.is_rdt(), "FDAS produces RD-trackable patterns");

    let stats = CcpStats::compute(&ccp);
    assert!(stats.is_rdt);
    assert_eq!(stats.undoubled_zigzag_pairs, 0);

    // Every single failure's propagation is finite and consistent with the
    // Lemma 1 oracle.
    let rg = RollbackGraph::new(&ccp);
    for f in ProcessId::all(n) {
        let line = rg.recovery_line([f]);
        assert_eq!(line, ccp.recovery_line(&[f].into_iter().collect()));
        let report = PropagationReport::compute(&ccp, &[f]);
        assert!(report.total() >= 1);
    }
}

#[test]
fn rdt_protocol_bounds_propagation_tighter_than_no_forced() {
    // Identical traffic under FDAS vs NoForced: the RDT pattern's worst
    // single failure rolls back no more checkpoints than the unconstrained
    // one on average across seeds.
    let mut fdas_total = 0usize;
    let mut raw_total = 0usize;
    for seed in 0..8u64 {
        let n = 3;
        let spec = WorkloadSpec::uniform_random(n, 150)
            .with_seed(seed)
            .with_checkpoint_prob(0.25);
        for (protocol, acc) in [
            (ProtocolKind::Fdas, &mut fdas_total),
            (ProtocolKind::NoForced, &mut raw_total),
        ] {
            let report = SimulationBuilder::new(spec.clone())
                .protocol(protocol)
                .record_trace()
                .run()
                .expect("simulation runs");
            let ccp = CcpBuilder::from_trace(n, &report.trace.unwrap())
                .expect("crash-free")
                .build();
            let worst = rdt_analysis::worst_single_failure(&ccp).unwrap();
            *acc += worst.total();
        }
    }
    assert!(
        fdas_total <= raw_total,
        "FDAS worst-case propagation {fdas_total} exceeded NoForced {raw_total}"
    );
}
