//! Property tests: the rollback-dependency-graph closure agrees with the
//! paper's Lemma 1 characterization on RD-trackable patterns, and with the
//! brute-force Definition 5 search everywhere it applies.

use proptest::prelude::*;
use rdt_analysis::{CcpStats, PropagationReport, RollbackGraph};
use rdt_base::ProcessId;
use rdt_ccp::{Ccp, CcpBuilder, FaultySet};

#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..6, 0usize..64, 0usize..64).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..max,
    )
}

/// Builds an arbitrary CCP: checkpoints, sends, out-of-order deliveries and
/// losses. No protocol discipline — RDT may or may not hold.
fn arbitrary_ccp(n: usize, ops: &[Op]) -> Ccp {
    let mut b = CcpBuilder::new(n);
    let mut in_flight = Vec::new();
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => {
                b.checkpoint(p);
            }
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                in_flight.push(b.send(p, q));
            }
            3 => {
                if !in_flight.is_empty() {
                    let id = in_flight.remove(op.b % in_flight.len());
                    b.deliver(id);
                }
            }
            _ => {
                if !in_flight.is_empty() && op.b % 3 == 0 {
                    let id = in_flight.remove(op.b % in_flight.len());
                    b.drop_message(id).expect("known in-flight message");
                } else if !in_flight.is_empty() {
                    let id = in_flight.remove(op.b % in_flight.len());
                    b.deliver(id);
                }
            }
        }
    }
    b.build()
}

/// Builds a CCP under the checkpoint-before-receive discipline (forced
/// checkpoint before every delivery) — always RD-trackable.
fn cbr_ccp(n: usize, ops: &[Op]) -> Ccp {
    let mut b = CcpBuilder::new(n);
    let mut in_flight = Vec::new();
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => {
                b.checkpoint(p);
            }
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                in_flight.push((b.send(p, q), q));
            }
            _ => {
                if !in_flight.is_empty() {
                    let (id, dst) = in_flight.remove(op.b % in_flight.len());
                    b.checkpoint(dst);
                    b.deliver(id);
                }
            }
        }
    }
    b.build()
}

fn all_faulty_sets(n: usize) -> impl Iterator<Item = FaultySet> {
    (1u32..(1 << n)).map(move |bits| {
        (0..n)
            .filter(|i| bits & (1 << i) != 0)
            .map(ProcessId::new)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    /// On RD-trackable patterns the closure equals Lemma 1 for every faulty
    /// set.
    #[test]
    fn closure_equals_lemma_1_on_rdt_patterns(n in 2usize..4, ops in ops(36)) {
        let ccp = cbr_ccp(n, &ops);
        prop_assert!(ccp.is_rdt());
        let rg = RollbackGraph::new(&ccp);
        for faulty in all_faulty_sets(n) {
            prop_assert_eq!(
                rg.recovery_line_for(&faulty),
                ccp.recovery_line(&faulty),
                "faulty = {:?}", faulty
            );
        }
    }

    /// On *arbitrary* patterns the closure equals the brute-force
    /// Definition 5 search (which maximizes surviving checkpoints over all
    /// causally-consistent global checkpoints).
    #[test]
    fn closure_equals_brute_force_on_arbitrary_patterns(n in 2usize..4, ops in ops(24)) {
        let ccp = arbitrary_ccp(n, &ops);
        let rg = RollbackGraph::new(&ccp);
        for faulty in all_faulty_sets(n) {
            let brute = ccp.brute_force_recovery_line(&faulty);
            prop_assume!(brute.is_some());
            prop_assert_eq!(
                rg.recovery_line_for(&faulty),
                brute.unwrap(),
                "faulty = {:?}", faulty
            );
        }
    }

    /// The closure's recovery line is always a consistent global checkpoint
    /// that excludes the faulty processes' volatile states.
    #[test]
    fn closure_line_is_consistent(n in 2usize..5, ops in ops(36)) {
        let ccp = arbitrary_ccp(n, &ops);
        let rg = RollbackGraph::new(&ccp);
        for faulty in all_faulty_sets(n) {
            let line = rg.recovery_line_for(&faulty);
            prop_assert!(ccp.is_consistent_global(&line));
            for &f in &faulty {
                prop_assert!(line.component(f).index < ccp.volatile(f).index);
            }
        }
    }

    /// Propagation monotonicity: a superset of faulty processes never rolls
    /// back fewer checkpoints.
    #[test]
    fn propagation_is_monotone_in_the_faulty_set(n in 2usize..4, ops in ops(36)) {
        let ccp = arbitrary_ccp(n, &ops);
        let single = PropagationReport::compute(&ccp, &[ProcessId::new(0)]);
        let all: Vec<ProcessId> = ProcessId::all(n).collect();
        let everyone = PropagationReport::compute(&ccp, &all);
        prop_assert!(everyone.total() >= single.total());
        for p in ProcessId::all(n) {
            prop_assert!(
                everyone.rolled_back[p.index()] >= single.rolled_back[p.index()]
            );
        }
    }

    /// RDT patterns have doubling ratio 1 and no useless checkpoints; the
    /// stats module must agree with the `is_rdt` oracle.
    #[test]
    fn stats_agree_with_rdt_oracle(n in 2usize..4, ops in ops(28)) {
        let ccp = arbitrary_ccp(n, &ops);
        let stats = CcpStats::compute(&ccp);
        prop_assert_eq!(stats.is_rdt, ccp.is_rdt());
        if stats.is_rdt {
            prop_assert_eq!(stats.undoubled_zigzag_pairs, 0);
            prop_assert_eq!(stats.useless_checkpoints, 0);
        }
        prop_assert!(stats.undoubled_zigzag_pairs <= stats.zigzag_pairs);
        prop_assert!(stats.causally_identifiable_obsolete <= stats.obsolete);
    }

    /// A failure's rollback is bounded by the paper's guarantee on RDT
    /// patterns: each process rolls back at most to the faulty processes'
    /// knowledge horizon — and never below checkpoint 0.
    #[test]
    fn rollback_counts_are_sane(n in 2usize..5, ops in ops(36)) {
        let ccp = arbitrary_ccp(n, &ops);
        let rg = RollbackGraph::new(&ccp);
        for f in ProcessId::all(n) {
            let undone = rg.undone([f]);
            for p in ProcessId::all(n) {
                let survive = undone.surviving_checkpoint(p);
                prop_assert!(survive.value() <= ccp.volatile(p).index.value());
                let rolled = undone.rolled_back_count(p);
                prop_assert!(rolled <= ccp.volatile(p).index.value() + 1);
            }
            prop_assert!(undone.rolls_back(f), "faulty always loses volatile state");
        }
    }
}
