//! Property tests: the RDT protocols really produce RD-trackable patterns,
//! and BCS produces no useless checkpoints, under arbitrary traffic.

use proptest::prelude::*;
use rdt_base::{Payload, ProcessId};
use rdt_ccp::{Ccp, CcpBuilder};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};

#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(max: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..5, 0usize..64, 0usize..64).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..max,
    )
}

/// Runs `ops` through real middleware instances while mirroring every event
/// (including protocol-forced checkpoints) into an offline CCP.
fn run(n: usize, protocol: ProtocolKind, ops: &[Op]) -> (Vec<Middleware>, Ccp) {
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, protocol, GcKind::RdtLgc))
        .collect();
    let mut mirror = CcpBuilder::new(n);
    let mut in_flight: Vec<(rdt_base::MessageId, ProcessId, Piggyback)> = Vec::new();

    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => {
                mws[p.index()].basic_checkpoint().expect("alive");
                mirror.checkpoint(p);
            }
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                let pb = mws[p.index()].piggyback();
                let (msg, forced) = mws[p.index()].send_reported(q, Payload::empty());
                let id = mirror.send(p, q);
                debug_assert_eq!(id, msg.meta.id);
                if forced.is_some() {
                    mirror.checkpoint(p);
                }
                in_flight.push((id, q, pb));
            }
            _ => {
                if !in_flight.is_empty() {
                    let (id, dst, pb) = in_flight.remove(op.b % in_flight.len());
                    let report = mws[dst.index()].receive_piggyback(&pb).expect("alive");
                    if report.forced.is_some() {
                        mirror.checkpoint(dst);
                    }
                    mirror.deliver(id);
                }
            }
        }
    }
    (mws, mirror.build())
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(40))]

    /// Every protocol claiming RDT delivers RD-trackable patterns.
    #[test]
    fn rdt_protocols_produce_rdt_ccps(
        n in 2usize..4,
        ops in ops(40),
        proto in prop::sample::select(ProtocolKind::RDT.to_vec()),
    ) {
        let (_, ccp) = run(n, proto, &ops);
        prop_assert!(ccp.is_rdt(), "{proto} produced a non-RDT pattern");
    }

    /// BCS prevents zigzag cycles (no useless checkpoints) even though it is
    /// not RDT.
    #[test]
    fn bcs_has_no_useless_checkpoints(n in 2usize..4, ops in ops(40)) {
        let (_, ccp) = run(n, ProtocolKind::Bcs, &ops);
        prop_assert!(ccp.useless_checkpoints().is_empty());
    }

    /// Under any RDT protocol, RDT-LGC keeps the per-process retention
    /// within the paper's bounds.
    #[test]
    fn middleware_respects_space_bounds(
        n in 2usize..5,
        ops in ops(60),
        proto in prop::sample::select(ProtocolKind::RDT.to_vec()),
    ) {
        let (mws, _) = run(n, proto, &ops);
        for mw in &mws {
            prop_assert!(mw.store().len() <= n);
            prop_assert!(mw.store().peak() <= n + 1);
        }
    }

    /// The middleware's online state matches the mirror: same last stable
    /// checkpoint index and same dependency vector per process.
    #[test]
    fn middleware_agrees_with_mirror(
        n in 2usize..4,
        ops in ops(40),
        proto in prop::sample::select(ProtocolKind::RDT.to_vec()),
    ) {
        let (mws, ccp) = run(n, proto, &ops);
        for mw in &mws {
            let p = mw.owner();
            prop_assert_eq!(mw.last_stable(), ccp.last_stable(p));
            prop_assert_eq!(mw.dv(), ccp.volatile_dv(p));
        }
    }

    /// Forced-checkpoint ordering across Wang's model hierarchy on identical
    /// traffic: CASBR ≥ CBR ≥ {FDI, MRS}; MRS ≥ FDAS; FDI ≥ FDAS;
    /// CASBR ≥ CAS.
    #[test]
    fn forced_checkpoint_hierarchy(n in 2usize..4, ops in ops(60)) {
        let total = |proto| -> u64 {
            let (mws, _) = run(n, proto, &ops);
            mws.iter().map(|m| m.forced_count()).sum()
        };
        let casbr = total(ProtocolKind::Casbr);
        let cbr = total(ProtocolKind::Cbr);
        let cas = total(ProtocolKind::Cas);
        let mrs = total(ProtocolKind::Mrs);
        let fdi = total(ProtocolKind::Fdi);
        let fdas = total(ProtocolKind::Fdas);
        prop_assert!(casbr >= cbr, "casbr {casbr} < cbr {cbr}");
        prop_assert!(casbr >= cas, "casbr {casbr} < cas {cas}");
        prop_assert!(cbr >= fdi, "cbr {cbr} < fdi {fdi}");
        prop_assert!(cbr >= mrs, "cbr {cbr} < mrs {mrs}");
        prop_assert!(mrs >= fdas, "mrs {mrs} < fdas {fdas}");
        prop_assert!(fdi >= fdas, "fdi {fdi} < fdas {fdas}");
    }
}

/// The no-forced baseline really can produce a non-RDT pattern (the paper's
/// Figure 2 shape), demonstrating why forced checkpoints exist.
#[test]
fn no_forced_breaks_rdt_on_crossing_messages() {
    let p0 = ProcessId::new(0);
    let p1 = ProcessId::new(1);
    let n = 2;
    let mut a = Middleware::new(p0, n, ProtocolKind::NoForced, GcKind::None);
    let mut b = Middleware::new(p1, n, ProtocolKind::NoForced, GcKind::None);
    let mut mirror = CcpBuilder::new(n);

    // m1: b → a received before a's s^1.
    let m1 = b.send(p0, Payload::empty());
    let id1 = mirror.send(p1, p0);
    a.receive(&m1).unwrap();
    mirror.deliver(id1);
    a.basic_checkpoint().unwrap();
    mirror.checkpoint(p0);
    // m2: a → b sent after s^1, received in m1's send interval.
    let m2 = a.send(p1, Payload::empty());
    let id2 = mirror.send(p0, p1);
    b.receive(&m2).unwrap();
    mirror.deliver(id2);

    let ccp = mirror.build();
    assert!(!ccp.is_rdt());
    assert!(!ccp.useless_checkpoints().is_empty());
}
