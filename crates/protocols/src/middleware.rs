//! The checkpointing middleware: protocol + garbage collector + stable
//! storage, merged as in the paper's Algorithm 4.

use serde::{Deserialize, Serialize};

use rdt_base::{
    CheckpointIndex, DependencyVector, Error, Incarnation, Message, MessageId, MessageMeta,
    Payload, ProcessId, Result, SharedDv, SyncDv, UpdateSet,
};
use rdt_core::{CheckpointStore, ControlInfo, GarbageCollector, GcKind, LastIntervals};
use rdt_env::{Storage, Volatile};

use crate::protocol::{Piggyback, ProtocolKind, ProtocolState, SyncPiggyback};

/// What happened while processing one receive.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct ReceiveReport {
    /// A forced checkpoint was stored before the message was processed.
    pub forced: Option<CheckpointIndex>,
    /// Checkpoints eliminated by garbage collection during this receive
    /// (including any triggered by the forced checkpoint).
    pub eliminated: Vec<CheckpointIndex>,
    /// Processes whose entries gained new causal information, as the
    /// allocation-free bitset the merge produced.
    pub updated: UpdateSet,
}

impl ReceiveReport {
    /// Resets the report for reuse, keeping buffer capacity.
    fn clear_for_reuse(&mut self) {
        self.forced = None;
        self.eliminated.clear();
        self.updated.clear();
    }
}

/// What happened while taking a checkpoint.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct CheckpointReport {
    /// The index stored.
    pub stored: CheckpointIndex,
    /// Checkpoints eliminated right after storing.
    pub eliminated: Vec<CheckpointIndex>,
}

/// What happened during a rollback.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct RollbackReport {
    /// The checkpoint restored.
    pub restored: CheckpointIndex,
    /// Checkpoints eliminated (rolled-back ones plus GC).
    pub eliminated: Vec<CheckpointIndex>,
}

/// The per-process checkpointing middleware: owns the dependency vector,
/// the [`CheckpointStore`], a [`ProtocolState`] deciding forced checkpoints
/// and a [`GarbageCollector`] collecting obsolete checkpoints.
///
/// This is the paper's merged implementation (Algorithm 4) generalized over
/// protocols and collectors. The ordering constraints of Section 4.5 are
/// enforced structurally:
///
/// * a forced checkpoint triggered by a receive is **stored before** the
///   garbage collection for that receive runs;
/// * a checkpoint is inserted into stable storage **before** the previous
///   one is released (the transient `n + 1` occupancy is observable through
///   [`CheckpointStore::peak`]).
///
/// # Threading
///
/// A middleware instance is deliberately **`!Send`**: its interned
/// piggyback snapshot is a thread-local [`SharedDv`] (non-atomic refcount),
/// so the per-send cost on the single-threaded hot path is one plain
/// counter increment — never an atomic RMW. Multi-threaded runtimes keep
/// each process's middleware on its own thread and exchange the explicitly
/// `Send` flavour instead: [`piggyback_sync`](Self::piggyback_sync) mints
/// an [`Arc`](std::sync::Arc)-backed [`SyncPiggyback`] (with its own
/// interned snapshot, so a burst of sends still shares one allocation) and
/// [`receive_sync_piggyback_into`](Self::receive_sync_piggyback_into)
/// consumes one. The Send-safety story is a type choice at the runtime
/// boundary, not a tax on every message.
///
/// # Durability
///
/// The middleware is generic over a [`Storage`] sink (default
/// [`Volatile`], a zero-sized no-op whose error type is uninhabited — the
/// simulator pays nothing). Every mutation of the stable store is
/// followed by a `commit` offer to the sink, and
/// [`rollback`](Self::rollback) write-aheads the new incarnation through
/// [`Storage::wal_incarnation`] *before* any in-memory state changes, so
/// a crash between the WAL and the commit recovers to a total incarnation
/// order. Commit failures are buffered (the in-memory protocol state
/// stays authoritative) and surfaced through
/// [`take_sink_error`](Self::take_sink_error); a WAL failure aborts the
/// rollback with [`Error::Storage`] before anything mutates.
///
/// # Example
///
/// ```
/// use rdt_base::{Payload, ProcessId};
/// use rdt_core::GcKind;
/// use rdt_protocols::{Middleware, ProtocolKind};
///
/// let p0 = ProcessId::new(0);
/// let p1 = ProcessId::new(1);
/// let mut a = Middleware::new(p0, 2, ProtocolKind::Fdas, GcKind::RdtLgc);
/// let mut b = Middleware::new(p1, 2, ProtocolKind::Fdas, GcKind::RdtLgc);
///
/// let m = a.send(p1, Payload::label("hello"));
/// let report = b.receive(&m).expect("delivery");
/// assert!(report.forced.is_none()); // no send yet in b's interval
/// ```
#[derive(Debug)]
pub struct Middleware<S: Storage = Volatile> {
    owner: ProcessId,
    n: usize,
    dv: DependencyVector,
    store: CheckpointStore,
    protocol: ProtocolState,
    gc: Box<dyn GarbageCollector>,
    gc_kind: GcKind,
    seq: u64,
    basic_count: u64,
    crashed: bool,
    state_size: usize,
    /// The incarnation of the current execution attempt: `0` initially,
    /// bumped on every [`rollback`](Self::rollback). Mirrored in the
    /// dependency vector's own entry so it piggybacks on every message.
    incarnation: Incarnation,
    /// Interned snapshot of `dv` shared with outgoing piggybacks and
    /// messages; invalidated whenever `dv` mutates (copy-on-write: a burst
    /// of sends within one interval shares a single allocation). The
    /// refcount is non-atomic — this field is what makes `Middleware`
    /// `!Send`.
    dv_snapshot: Option<SharedDv>,
    /// [`Arc`](std::sync::Arc)-backed counterpart of `dv_snapshot`, interned
    /// lazily for runtimes that ship piggybacks across threads
    /// ([`piggyback_sync`](Self::piggyback_sync)); invalidated together
    /// with it. `None` forever on the single-threaded hot path.
    sync_snapshot: Option<SyncDv>,
    /// The durability sink state changes are offered to. [`Volatile`] by
    /// default: calls vanish at compile time.
    sink: S,
    /// First unreported commit failure (rendered); see
    /// [`take_sink_error`](Self::take_sink_error).
    sink_err: Option<String>,
}

/// Compile-time pin of the threading contract: the `Rc`-flavoured
/// middleware must stay `!Send` (its interned [`SharedDv`] snapshot has a
/// non-atomic refcount). If a refactor ever made `Middleware` `Send`,
/// the `Invalid` impl below would apply too and this item lookup would
/// become ambiguous — a compile error, not a latent data race.
const _: fn() = || {
    trait AmbiguousIfSend<A> {
        fn guard() {}
    }
    impl<T: ?Sized> AmbiguousIfSend<()> for T {}
    #[allow(dead_code)]
    struct Invalid;
    impl<T: ?Sized + Send> AmbiguousIfSend<Invalid> for T {}
    let _ = <Middleware as AmbiguousIfSend<_>>::guard;
};

impl Middleware {
    /// Creates the middleware for `owner` in an `n`-process system and
    /// stores the mandatory initial checkpoint `s_i^0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0` or `owner` is out of range.
    pub fn new(owner: ProcessId, n: usize, protocol: ProtocolKind, gc: GcKind) -> Self {
        Self::with_storage(owner, n, protocol, gc, Volatile)
    }

    /// Reconstructs the middleware for a process **restarting after a
    /// crash** from its surviving stable storage (e.g. a
    /// `rdt_storage::DurableStore::rebuild()`).
    ///
    /// The process comes back *crashed*: its volatile state is gone and
    /// operations fail until a recovery session restores a checkpoint
    /// through [`rollback`](Self::rollback), which rebuilds the dependency
    /// vector (Algorithm 3, lines 5–6) and the collector's pins (line 7).
    /// Until then the dependency vector provisionally reflects the last
    /// stable checkpoint — exactly the knowledge a recovery manager reads
    /// when computing the line.
    ///
    /// Volatile counters (basic/forced checkpoint counts, send sequence)
    /// restart from zero; the paper's algorithms never read them across a
    /// failure.
    ///
    /// # Panics
    ///
    /// Panics if the store belongs to a different process or holds no
    /// checkpoint (stable storage always retains at least the most recent
    /// one — no collector may empty it).
    pub fn from_store(
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        store: CheckpointStore,
    ) -> Self {
        Self::from_store_with(owner, n, protocol, gc, store, Volatile)
    }
}

impl<S: Storage> Middleware<S> {
    /// [`new`](Middleware::new) with an explicit durability sink: the
    /// initial checkpoint `s_i^0` is committed to `sink` before this
    /// returns.
    pub fn with_storage(
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        sink: S,
    ) -> Self {
        assert!(owner.index() < n, "owner out of range");
        let mut mw = Self {
            owner,
            n,
            dv: DependencyVector::new(n),
            store: CheckpointStore::new(owner),
            protocol: ProtocolState::new(protocol),
            gc: gc.build(owner, n),
            gc_kind: gc,
            seq: 0,
            basic_count: 0,
            crashed: false,
            state_size: 0,
            incarnation: Incarnation::ZERO,
            dv_snapshot: None,
            sync_snapshot: None,
            sink,
            sink_err: None,
        };
        mw.take_checkpoint(false);
        mw
    }

    /// [`from_store`](Middleware::from_store) with an explicit durability
    /// sink (typically the one the store itself was rebuilt from).
    pub fn from_store_with(
        owner: ProcessId,
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        store: CheckpointStore,
        sink: S,
    ) -> Self {
        assert!(owner.index() < n, "owner out of range");
        assert_eq!(store.owner(), owner, "store owned by a different process");
        let last = store
            .last()
            .expect("stable storage retains at least one checkpoint");
        let mut dv = store.dv(last).expect("last is stored").clone();
        // Resume at the highest incarnation the previous executions ever
        // opened: the store's incarnation log, not just the last stored
        // vector — rollbacks bump the incarnation without storing a
        // checkpoint, and reusing one of those numbers would re-introduce
        // the (incarnation, interval) aliasing recovery depends on ruling
        // out.
        let incarnation = store.incarnation_floor().max(dv.incarnation_of(owner));
        dv.begin_next_interval(owner);
        Self {
            owner,
            n,
            dv,
            store,
            protocol: ProtocolState::new(protocol),
            gc: gc.build(owner, n),
            gc_kind: gc,
            seq: 0,
            basic_count: 0,
            crashed: true,
            state_size: 0,
            incarnation,
            dv_snapshot: None,
            sync_snapshot: None,
            sink,
            sink_err: None,
        }
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// System size.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The protocol in force.
    pub fn protocol_kind(&self) -> ProtocolKind {
        self.protocol.kind()
    }

    /// The collector in force.
    pub fn gc_kind(&self) -> GcKind {
        self.gc_kind
    }

    /// The current dependency vector (the volatile state's view).
    pub fn dv(&self) -> &DependencyVector {
        &self.dv
    }

    /// The stable store (for metrics and recovery).
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Index of the last stable checkpoint.
    pub fn last_stable(&self) -> CheckpointIndex {
        self.dv
            .entry(self.owner)
            .last_known_checkpoint()
            .expect("s^0 is stored at construction")
    }

    /// Forced checkpoints taken so far.
    pub fn forced_count(&self) -> u64 {
        self.protocol.forced_count()
    }

    /// Basic checkpoints taken so far (including `s^0`).
    pub fn basic_count(&self) -> u64 {
        self.basic_count
    }

    /// Whether the process is currently crashed.
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }

    /// The incarnation of the current execution attempt (`0` until the
    /// first rollback; bumped by every rollback, crash-induced or
    /// dependent).
    pub fn incarnation(&self) -> Incarnation {
        self.incarnation
    }

    /// Sets the size (in bytes) recorded for subsequently stored
    /// checkpoints — models the application's state-snapshot footprint for
    /// storage-space experiments.
    pub fn set_state_size(&mut self, bytes: usize) {
        self.state_size = bytes;
    }

    /// The currently configured state-snapshot size.
    pub fn state_size(&self) -> usize {
        self.state_size
    }

    /// The durability sink.
    pub fn sink(&self) -> &S {
        &self.sink
    }

    /// The durability sink, mutably (e.g. to fsync or inspect it).
    pub fn sink_mut(&mut self) -> &mut S {
        &mut self.sink
    }

    /// Takes the first commit failure the sink reported since the last
    /// call, if any. Commit failures do not poison the in-memory state —
    /// the protocol remains correct, only durability is degraded — so
    /// they are buffered rather than returned from the hot-path
    /// operations; runtimes that care poll this after each batch.
    pub fn take_sink_error(&mut self) -> Option<String> {
        self.sink_err.take()
    }

    /// Offers the current stable store to the sink, buffering the first
    /// failure for [`take_sink_error`](Self::take_sink_error).
    fn commit_sink(&mut self) {
        if let Err(e) = self.sink.commit(&self.store) {
            self.sink_err.get_or_insert_with(|| e.to_string());
        }
    }

    /// Stores a checkpoint: insert first, then run GC, then advance the
    /// interval ("On taking checkpoint", Algorithms 2 and 4).
    fn take_checkpoint(&mut self, forced: bool) -> CheckpointReport {
        let mut eliminated = Vec::new();
        let stored = self.take_checkpoint_into(forced, &mut eliminated);
        CheckpointReport { stored, eliminated }
    }

    /// [`take_checkpoint`](Self::take_checkpoint) appending eliminations to
    /// a caller-owned scratch buffer; returns the stored index. The
    /// allocation-free core every checkpoint path funnels through.
    fn take_checkpoint_into(
        &mut self,
        forced: bool,
        eliminated: &mut Vec<CheckpointIndex>,
    ) -> CheckpointIndex {
        let index = self.dv.entry(self.owner).as_checkpoint();
        // A plain clone: for inline vectors (n <= 16) this is a pure
        // memcpy into the store's entry — no allocation, no refcount.
        self.store
            .insert_with_size(index, self.dv.clone(), self.state_size);
        self.gc
            .after_checkpoint_into(&mut self.store, index, &self.dv, eliminated);
        self.protocol.note_checkpoint(forced);
        if !forced {
            self.basic_count += 1;
        }
        self.dv.begin_next_interval(self.owner);
        self.invalidate_snapshots();
        self.commit_sink();
        index
    }

    /// Takes a basic (application-initiated) checkpoint.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed.
    pub fn basic_checkpoint(&mut self) -> Result<CheckpointReport> {
        self.ensure_alive()?;
        Ok(self.take_checkpoint(false))
    }

    /// [`basic_checkpoint`](Self::basic_checkpoint) writing into a reused
    /// report (cleared first, capacity kept): the zero-allocation variant
    /// for event loops.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed.
    pub fn basic_checkpoint_into(&mut self, report: &mut CheckpointReport) -> Result<()> {
        self.ensure_alive()?;
        report.eliminated.clear();
        report.stored = self.take_checkpoint_into(false, &mut report.eliminated);
        Ok(())
    }

    /// Sends a message: piggybacks the dependency vector (and the BCS index)
    /// and marks the protocol's `sent` flag. Under the CAS and CASBR models
    /// the post-send forced checkpoint is stored before this returns; use
    /// [`send_reported`](Self::send_reported) to observe it.
    ///
    /// The caller (network / simulator) is responsible for transporting the
    /// returned [`Message`].
    pub fn send(&mut self, to: ProcessId, payload: Payload) -> Message {
        self.send_reported(to, payload).0
    }

    /// [`send`](Self::send), also returning the report of the post-send
    /// forced checkpoint when the protocol (CAS, CASBR) demands one.
    ///
    /// The message piggybacks the vector as of the send event; the forced
    /// checkpoint opens the *next* interval, so the send is the last
    /// communication event of its interval, as the CAS model requires.
    pub fn send_reported(
        &mut self,
        to: ProcessId,
        payload: Payload,
    ) -> (Message, Option<CheckpointReport>) {
        let id = MessageId::new(self.owner, self.begin_send());
        let msg = Message::new(MessageMeta::new(id, to, self.shared_dv()), payload);
        let forced = self.post_send_force();
        (msg, forced)
    }

    /// Send-side protocol duties shared by every send flavour: liveness
    /// check, the protocol's `sent` flag, and the per-sender sequence
    /// assignment. Returns the sequence number of this send.
    fn begin_send(&mut self) -> u64 {
        assert!(!self.crashed, "crashed processes do not send");
        self.protocol.note_send();
        let seq = self.seq;
        self.seq += 1;
        seq
    }

    /// The post-send forced checkpoint of the CAS/CASBR models, shared by
    /// every send flavour. Callers must snapshot the piggybacked vector
    /// *before* this runs — the forced checkpoint opens the next interval.
    fn post_send_force(&mut self) -> Option<CheckpointReport> {
        self.protocol
            .must_force_after_send()
            .then(|| self.take_checkpoint(true))
    }

    /// The interned snapshot of the current dependency vector: cloned
    /// lazily on the first request after a local mutation, shared (one
    /// non-atomic counter increment) by every subsequent send in the same
    /// interval.
    fn shared_dv(&mut self) -> SharedDv {
        match &self.dv_snapshot {
            Some(snapshot) => snapshot.clone(),
            None => {
                let snapshot = SharedDv::new(self.dv.clone());
                self.dv_snapshot = Some(snapshot.clone());
                snapshot
            }
        }
    }

    /// The [`std::sync::Arc`]-backed snapshot for cross-thread piggybacks,
    /// interned separately from the thread-local one and invalidated by the
    /// same mutations.
    fn sync_dv(&mut self) -> SyncDv {
        match &self.sync_snapshot {
            Some(snapshot) => snapshot.clone(),
            None => {
                let snapshot = SyncDv::new(self.dv.clone());
                self.sync_snapshot = Some(snapshot.clone());
                snapshot
            }
        }
    }

    /// Drops both interned snapshots after a local mutation of `dv`; the
    /// next send re-interns lazily (copy-on-write).
    fn invalidate_snapshots(&mut self) {
        self.dv_snapshot = None;
        self.sync_snapshot = None;
    }

    /// The full piggyback for the last send (dependency vector plus BCS
    /// index). [`Message`] carries only the vector; protocols needing the
    /// index transport this alongside. The vector is shared, not copied.
    pub fn piggyback(&mut self) -> Piggyback {
        Piggyback::new(self.shared_dv(), self.protocol.index())
    }

    /// The `Send` flavour of [`piggyback`](Self::piggyback), for runtimes
    /// that ship control information between threads: the vector is shared
    /// through an atomically refcounted [`SyncDv`] snapshot (interned, so a
    /// burst of sends within one interval still shares one allocation).
    pub fn piggyback_sync(&mut self) -> SyncPiggyback {
        SyncPiggyback::new(self.sync_dv(), self.protocol.index())
    }

    /// A send whose entire observable output is the cross-thread piggyback:
    /// performs the send-side protocol duties ([`send`](Self::send)'s
    /// `sent` flag, sequence bump, and the CAS/CASBR post-send forced
    /// checkpoint) and mints the [`SyncPiggyback`] — without constructing
    /// the thread-local [`Message`] (and its [`SharedDv`] snapshot) that a
    /// threaded runtime would immediately discard.
    ///
    /// # Panics
    ///
    /// Panics while crashed, like [`send`](Self::send).
    pub fn send_sync(&mut self) -> (SyncPiggyback, Option<CheckpointReport>) {
        let _seq = self.begin_send();
        let pb = self.piggyback_sync();
        let forced = self.post_send_force();
        (pb, forced)
    }

    /// Processes a received message (Algorithm 4's receive handler):
    /// 1. decide and store the forced checkpoint, if the protocol demands it;
    /// 2. merge the piggybacked vector;
    /// 3. run the garbage collection for the new causal information.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed (the message is lost;
    /// simulators may choose to re-deliver).
    pub fn receive(&mut self, msg: &Message) -> Result<ReceiveReport> {
        self.receive_piggyback(&Piggyback::new(msg.meta.dv.clone(), 0))
    }

    /// [`receive`](Self::receive) with an explicit [`Piggyback`] (used when
    /// the BCS index matters).
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed.
    pub fn receive_piggyback(&mut self, m: &Piggyback) -> Result<ReceiveReport> {
        let mut report = ReceiveReport::default();
        self.receive_piggyback_into(m, &mut report)?;
        Ok(report)
    }

    /// [`receive_piggyback`](Self::receive_piggyback) writing into a reused
    /// report (cleared first, capacity kept): the zero-allocation variant
    /// for event loops — merge reporting is a bitset, eliminations land in
    /// the report's recycled buffer, and the piggyback is only read.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed.
    pub fn receive_piggyback_into(
        &mut self,
        m: &Piggyback,
        report: &mut ReceiveReport,
    ) -> Result<()> {
        self.receive_parts_into(&m.dv, m.index, report)
    }

    /// [`receive_piggyback_into`](Self::receive_piggyback_into) for the
    /// `Send` piggyback flavour a threaded runtime delivers.
    ///
    /// # Errors
    ///
    /// [`Error::ProcessCrashed`] while crashed.
    pub fn receive_sync_piggyback_into(
        &mut self,
        m: &SyncPiggyback,
        report: &mut ReceiveReport,
    ) -> Result<()> {
        self.receive_parts_into(&m.dv, m.index, report)
    }

    /// The receive handler over the piggyback's components — the shared
    /// core behind both piggyback flavours.
    fn receive_parts_into(
        &mut self,
        their_dv: &DependencyVector,
        their_index: u64,
        report: &mut ReceiveReport,
    ) -> Result<()> {
        self.ensure_alive()?;
        report.clear_for_reuse();
        if self
            .protocol
            .must_force_parts(&self.dv, their_dv, their_index)
        {
            report.forced = Some(self.take_checkpoint_into(true, &mut report.eliminated));
        }
        self.dv.merge_from_into(their_dv, &mut report.updated);
        if !report.updated.is_empty() {
            self.invalidate_snapshots();
            let before = report.eliminated.len();
            self.gc.after_receive_into(
                &mut self.store,
                &report.updated,
                &self.dv,
                &mut report.eliminated,
            );
            if report.eliminated.len() > before {
                self.commit_sink();
            }
        }
        self.protocol.note_receive_index(their_index);
        Ok(())
    }

    /// Crashes the process: volatile state is lost, stable storage persists.
    pub fn crash(&mut self) {
        self.crashed = true;
    }

    /// Recovery: restores checkpoint `ri` (which must be stored), rebuilds
    /// the dependency vector (Algorithm 3 lines 5–6) and runs the rollback
    /// garbage collection. Clears the crashed flag.
    ///
    /// `li` is the last-interval vector distributed by a synchronized
    /// recovery manager, or `None` for the uncoordinated variant.
    ///
    /// # Errors
    ///
    /// [`Error::InvalidRollbackTarget`] if `ri` is not in stable storage;
    /// [`Error::Storage`] if the sink's incarnation write-ahead fails (the
    /// middleware is left untouched — still crashed, same incarnation —
    /// so the rollback can be retried).
    pub fn rollback(
        &mut self,
        ri: CheckpointIndex,
        li: Option<&LastIntervals>,
    ) -> Result<RollbackReport> {
        if !self.store.contains(ri) {
            return Err(Error::InvalidRollbackTarget {
                process: self.owner,
                index: ri,
            });
        }
        // Every rollback opens a fresh incarnation: the re-executed
        // intervals reuse indices, and the incarnation component is what
        // keeps knowledge of the abandoned attempt distinguishable from
        // knowledge of this one (Lemma-1 totality under repeated crashes).
        // The sink logs the new incarnation *before* anything mutates: a
        // kill-9 mid-rollback must restart into an incarnation at least
        // this high, never a reused one.
        let next = self.incarnation.next();
        self.sink
            .wal_incarnation(next)
            .map_err(|e| Error::Storage(e.to_string()))?;
        let mut dv = self.store.dv(ri).expect("checked").clone();
        self.incarnation = next;
        // Mirror the log in the in-memory store's incarnation floor: a
        // later restart from the store alone must not reuse it either.
        self.store.raise_incarnation_floor(self.incarnation);
        dv.resume_incarnation(self.owner, self.incarnation);
        self.dv = dv;
        self.invalidate_snapshots();
        let eliminated = self.gc.after_rollback(&mut self.store, ri, li, &self.dv);
        self.protocol.note_checkpoint(true); // clears `sent`; not counted
        self.crashed = false;
        self.commit_sink();
        Ok(RollbackReport {
            restored: ri,
            eliminated,
        })
    }

    /// Recovery participation for a process that does **not** roll back:
    /// releases pins invalidated by the new last-interval vector.
    pub fn recovery_info(&mut self, li: &LastIntervals) -> Vec<CheckpointIndex> {
        let eliminated = self.gc.on_recovery_info(&mut self.store, li, &self.dv);
        if !eliminated.is_empty() {
            self.commit_sink();
        }
        eliminated
    }

    /// Delivers coordinator control information to the garbage collector
    /// (used by the coordinated baselines).
    pub fn control(&mut self, info: &ControlInfo) -> Vec<CheckpointIndex> {
        let eliminated = self.gc.on_control(&mut self.store, info, &self.dv);
        if !eliminated.is_empty() {
            self.commit_sink();
        }
        eliminated
    }

    /// Advances the garbage collector's local clock (used by the time-based
    /// baseline; a no-op for every other collector).
    pub fn tick(&mut self, now: u64) -> Vec<CheckpointIndex> {
        let eliminated = self.gc.on_tick(&mut self.store, now, &self.dv);
        if !eliminated.is_empty() {
            self.commit_sink();
        }
        eliminated
    }

    /// The collector's `UC` vector, if it maintains one (RDT-LGC does) —
    /// the per-process checkpoint pins shown in the paper's Figure 4.
    pub fn uc_snapshot(&self) -> Option<Vec<Option<CheckpointIndex>>> {
        self.gc.uc_snapshot()
    }

    fn ensure_alive(&self) -> Result<()> {
        if self.crashed {
            Err(Error::ProcessCrashed(self.owner))
        } else {
            Ok(())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn idx(i: usize) -> CheckpointIndex {
        CheckpointIndex::new(i)
    }

    fn pair(protocol: ProtocolKind) -> (Middleware, Middleware) {
        (
            Middleware::new(p(0), 2, protocol, GcKind::RdtLgc),
            Middleware::new(p(1), 2, protocol, GcKind::RdtLgc),
        )
    }

    #[test]
    fn construction_stores_initial_checkpoint() {
        let (a, _) = pair(ProtocolKind::Fdas);
        assert_eq!(a.last_stable(), idx(0));
        assert_eq!(a.store().len(), 1);
        assert_eq!(a.dv().entry(p(0)).value(), 1);
    }

    #[test]
    fn fdas_forces_only_after_send() {
        let (mut a, mut b) = pair(ProtocolKind::Fdas);
        b.basic_checkpoint().unwrap();
        // a has not sent: fresh info does not force.
        let m1 = b.send(p(0), Payload::empty());
        let r = a.receive(&m1).unwrap();
        assert!(r.forced.is_none());
        assert_eq!(r.updated.to_vec(), vec![p(1)]);
        // a sends, then receives fresher info: forced.
        let _out = a.send(p(1), Payload::empty());
        b.basic_checkpoint().unwrap();
        let m2 = b.send(p(0), Payload::empty());
        let r = a.receive(&m2).unwrap();
        assert_eq!(r.forced, Some(idx(1)));
    }

    #[test]
    fn forced_checkpoint_is_stored_before_gc_runs() {
        // Section 4.5 ordering: after the forced checkpoint, the receive's
        // GC links the new dependency to the *forced* checkpoint's CCB, so
        // the forced checkpoint is never the one eliminated.
        let (mut a, mut b) = pair(ProtocolKind::Fdas);
        a.send(p(1), Payload::empty());
        b.basic_checkpoint().unwrap();
        let m = b.send(p(0), Payload::empty());
        let r = a.receive(&m).unwrap();
        let forced = r.forced.expect("forced");
        assert!(a.store().contains(forced));
        assert!(!r.eliminated.contains(&forced));
    }

    #[test]
    fn rdt_lgc_collects_during_execution() {
        let (mut a, _) = pair(ProtocolKind::Fdas);
        let r = a.basic_checkpoint().unwrap();
        assert_eq!(r.eliminated, vec![idx(0)]);
        assert_eq!(a.store().len(), 1);
    }

    #[test]
    fn crashed_process_rejects_operations() {
        let (mut a, mut b) = pair(ProtocolKind::Fdas);
        a.crash();
        assert!(a.is_crashed());
        assert!(matches!(
            a.basic_checkpoint(),
            Err(Error::ProcessCrashed(_))
        ));
        let m = b.send(p(0), Payload::empty());
        assert!(a.receive(&m).is_err());
    }

    #[test]
    fn rollback_restores_dv_and_clears_crash() {
        let (mut a, mut b) = pair(ProtocolKind::Fdas);
        b.basic_checkpoint().unwrap();
        let m = b.send(p(0), Payload::empty());
        a.receive(&m).unwrap();
        a.basic_checkpoint().unwrap(); // s^1 knows b's interval 2
        a.crash();
        let report = a.rollback(idx(1), None).unwrap();
        assert_eq!(report.restored, idx(1));
        assert!(!a.is_crashed());
        assert_eq!(a.dv().entry(p(0)).value(), 2);
        assert_eq!(a.dv().entry(p(1)).value(), 2);
    }

    #[test]
    fn rollback_to_missing_checkpoint_fails() {
        let (mut a, _) = pair(ProtocolKind::Fdas);
        assert!(matches!(
            a.rollback(idx(9), None),
            Err(Error::InvalidRollbackTarget { .. })
        ));
    }

    #[test]
    fn bcs_adopts_higher_indices() {
        let (mut a, mut b) = pair(ProtocolKind::Bcs);
        b.basic_checkpoint().unwrap(); // b's BCS index → 2 (s^0 + this)
        let m = b.piggyback();
        let r = a.receive_piggyback(&m).unwrap();
        assert!(r.forced.is_some(), "higher index forces");
        // A repeat delivery of the same piggyback no longer forces.
        let r = a.receive_piggyback(&m).unwrap();
        assert!(r.forced.is_none());
    }

    #[test]
    fn no_forced_never_forces_even_on_news() {
        let (mut a, mut b) = pair(ProtocolKind::NoForced);
        a.send(p(1), Payload::empty());
        b.basic_checkpoint().unwrap();
        let m = b.send(p(0), Payload::empty());
        let r = a.receive(&m).unwrap();
        assert!(r.forced.is_none());
    }

    #[test]
    fn cbr_forces_on_every_receive() {
        let (mut a, mut b) = pair(ProtocolKind::Cbr);
        let m = b.send(p(0), Payload::empty());
        assert!(a.receive(&m).unwrap().forced.is_some());
        // Even a stale duplicate forces under CBR.
        let m2 = b.send(p(0), Payload::empty());
        assert!(a.receive(&m2).unwrap().forced.is_some());
    }

    #[test]
    fn state_size_flows_into_storage_accounting() {
        let mut a = Middleware::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        a.set_state_size(1024);
        a.basic_checkpoint().unwrap(); // collects s^0 (size 0)
        assert_eq!(a.store().bytes(), 1024);
        a.basic_checkpoint().unwrap(); // collects the previous 1024-byte one
        assert_eq!(a.store().bytes(), 1024);
        assert_eq!(a.store().total_bytes_stored(), 2048);
    }

    #[test]
    fn cas_stores_a_forced_checkpoint_after_every_send() {
        let (mut a, _) = pair(ProtocolKind::Cas);
        let (m, forced) = a.send_reported(p(1), Payload::empty());
        let forced = forced.expect("CAS forces after send");
        assert_eq!(forced.stored, idx(1));
        // The message carries the vector as of the send, i.e. interval 1,
        // not the post-checkpoint interval 2.
        assert_eq!(m.meta.dv.entry(p(0)).value(), 1);
        assert_eq!(a.dv().entry(p(0)).value(), 2);
        assert_eq!(a.forced_count(), 1);
    }

    #[test]
    fn send_sync_matches_send_side_effects() {
        // CAS: the piggyback carries the pre-checkpoint vector and the
        // post-send forced checkpoint is reported, exactly like send.
        let (mut a, _) = pair(ProtocolKind::Cas);
        let (pb, forced) = a.send_sync();
        assert_eq!(pb.dv.entry(p(0)).value(), 1);
        assert_eq!(forced.expect("CAS forces after send").stored, idx(1));
        assert_eq!(a.forced_count(), 1);
        // FDAS: no post-send force, but the sent flag is noted — the next
        // news-bearing receive forces.
        let (mut c, mut d) = pair(ProtocolKind::Fdas);
        let (_, none) = c.send_sync();
        assert!(none.is_none());
        d.basic_checkpoint().unwrap();
        let m = d.send(p(0), Payload::empty());
        assert!(c.receive(&m).unwrap().forced.is_some(), "sent was noted");
    }

    #[test]
    fn casbr_forces_on_send_and_on_receive() {
        let (mut a, mut b) = pair(ProtocolKind::Casbr);
        let (m, forced) = a.send_reported(p(1), Payload::empty());
        assert!(forced.is_some());
        let r = b.receive(&m).unwrap();
        assert!(r.forced.is_some());
        assert_eq!(a.forced_count(), 1);
        assert_eq!(b.forced_count(), 1);
    }

    #[test]
    fn mrs_forces_only_on_receive_after_send() {
        let (mut a, mut b) = pair(ProtocolKind::Mrs);
        // Receive with no prior send in the interval: no force, even though
        // the message brings fresh causal information.
        b.basic_checkpoint().unwrap();
        let m1 = b.send(p(0), Payload::empty());
        assert!(a.receive(&m1).unwrap().forced.is_none());
        // After a sends, any receive forces — even a stale one.
        a.send(p(1), Payload::empty());
        let m2 = b.send(p(0), Payload::empty());
        assert!(a.receive(&m2).unwrap().forced.is_some());
    }

    #[test]
    fn fdas_send_never_forces() {
        let (mut a, _) = pair(ProtocolKind::Fdas);
        let (_, forced) = a.send_reported(p(1), Payload::empty());
        assert!(forced.is_none());
    }

    #[test]
    fn gc_kind_none_retains_everything() {
        let mut a = Middleware::new(p(0), 2, ProtocolKind::Fdas, GcKind::None);
        for _ in 0..5 {
            a.basic_checkpoint().unwrap();
        }
        assert_eq!(a.store().len(), 6);
    }

    /// Test sink observing the commit/WAL call pattern, optionally failing.
    #[derive(Debug, Default)]
    struct RecordingSink {
        commits: usize,
        last_len: usize,
        wals: Vec<u32>,
        fail_commit: bool,
        fail_wal: bool,
    }

    impl Storage for RecordingSink {
        type Error = String;

        fn commit(&mut self, store: &CheckpointStore) -> std::result::Result<(), String> {
            if self.fail_commit {
                return Err("commit refused".into());
            }
            self.commits += 1;
            self.last_len = store.len();
            Ok(())
        }

        fn wal_incarnation(&mut self, inc: Incarnation) -> std::result::Result<(), String> {
            if self.fail_wal {
                return Err("wal refused".into());
            }
            self.wals.push(inc.value());
            Ok(())
        }
    }

    #[test]
    fn sink_sees_every_store_mutation() {
        let mut a = Middleware::with_storage(
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            RecordingSink::default(),
        );
        assert_eq!(a.sink().commits, 1, "s^0 is committed at construction");
        a.basic_checkpoint().unwrap();
        assert_eq!(a.sink().commits, 2);
        assert_eq!(a.sink().last_len, a.store().len());
        assert!(a.take_sink_error().is_none());
    }

    #[test]
    fn rollback_write_aheads_the_incarnation_before_committing() {
        let mut a = Middleware::with_storage(
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            RecordingSink::default(),
        );
        a.basic_checkpoint().unwrap();
        a.crash();
        let target = a.last_stable();
        a.rollback(target, None).unwrap();
        assert_eq!(
            a.sink().wals,
            vec![1],
            "incarnation 1 was write-ahead logged"
        );
        assert_eq!(a.incarnation(), Incarnation::new(1));
        // The post-rollback commit reflects the truncated store.
        assert_eq!(a.sink().last_len, a.store().len());
    }

    #[test]
    fn failed_wal_aborts_rollback_without_mutating() {
        let mut a = Middleware::with_storage(
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            RecordingSink {
                fail_wal: true,
                ..RecordingSink::default()
            },
        );
        a.basic_checkpoint().unwrap();
        a.crash();
        let target = a.last_stable();
        let err = a.rollback(target, None).unwrap_err();
        assert!(matches!(err, Error::Storage(_)));
        assert!(a.is_crashed(), "a failed WAL leaves the process crashed");
        assert_eq!(a.incarnation(), Incarnation::ZERO);
        // The sink becomes writable again: the retry succeeds.
        a.sink_mut().fail_wal = false;
        assert!(a.rollback(target, None).is_ok());
    }

    #[test]
    fn commit_failures_are_buffered_not_fatal() {
        let mut a = Middleware::with_storage(
            p(0),
            2,
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
            RecordingSink {
                fail_commit: true,
                ..RecordingSink::default()
            },
        );
        // The protocol keeps running on the in-memory store.
        a.basic_checkpoint().unwrap();
        let err = a.take_sink_error().expect("failure surfaced");
        assert!(err.contains("commit refused"));
        assert!(a.take_sink_error().is_none(), "error is taken once");
    }
}
