//! Communication-induced checkpointing protocols: the forced-checkpoint
//! decision rules.

use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::{DependencyVector, SharedDv, SyncDv};

/// Which communication-induced checkpointing protocol a process runs.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ProtocolKind {
    /// No forced checkpoints at all. **Not** RD-trackable; kept as the
    /// baseline that exhibits useless checkpoints and the domino effect
    /// (paper Figure 2).
    NoForced,
    /// Checkpoint-before-receive: a forced checkpoint before *every*
    /// delivery. Trivially RDT, maximally expensive in forced checkpoints.
    Cbr,
    /// Checkpoint-after-send: a forced checkpoint right after *every* send,
    /// so a send is always the last communication event of its interval.
    /// RDT (Wang's CAS model).
    Cas,
    /// Checkpoint-after-send-before-receive: the union of [`Cas`] and
    /// [`Cbr`] — every communication event sits alone at an interval
    /// boundary. RDT; the most expensive model in Wang's hierarchy.
    ///
    /// [`Cas`]: ProtocolKind::Cas
    /// [`Cbr`]: ProtocolKind::Cbr
    Casbr,
    /// Mark-receive-send (Russell's model): within each interval all
    /// receives precede all sends, enforced by forcing a checkpoint before a
    /// delivery whenever a send already happened in the current interval.
    /// RDT (Wang's MRS model).
    Mrs,
    /// Fixed-dependency-interval: force whenever a received message brings
    /// new causal information, so the dependency vector is constant within
    /// each interval. RDT; fewer forced checkpoints than CBR.
    Fdi,
    /// Wang's fixed-dependency-after-send — the protocol the paper merges
    /// with RDT-LGC in Algorithm 4: force only when new causal information
    /// arrives *after a send* in the current interval. RDT; fewer forced
    /// checkpoints than FDI.
    Fdas,
    /// Briatico–Ciuffoletti–Simoncini index-based protocol: piggyback a
    /// checkpoint index, force when a higher index arrives. Domino-free (no
    /// zigzag cycles) but **not** RDT; used only in the forced-checkpoint
    /// comparison.
    Bcs,
}

impl ProtocolKind {
    /// All protocols, for sweeps.
    pub const ALL: [ProtocolKind; 8] = [
        ProtocolKind::NoForced,
        ProtocolKind::Cbr,
        ProtocolKind::Cas,
        ProtocolKind::Casbr,
        ProtocolKind::Mrs,
        ProtocolKind::Fdi,
        ProtocolKind::Fdas,
        ProtocolKind::Bcs,
    ];

    /// The RDT subfamily (Wang's model hierarchy), for sweeps that need
    /// RD-trackable executions.
    pub const RDT: [ProtocolKind; 6] = [
        ProtocolKind::Cbr,
        ProtocolKind::Cas,
        ProtocolKind::Casbr,
        ProtocolKind::Mrs,
        ProtocolKind::Fdi,
        ProtocolKind::Fdas,
    ];

    /// Whether the protocol guarantees rollback-dependency trackability.
    pub fn ensures_rdt(self) -> bool {
        matches!(
            self,
            ProtocolKind::Cbr
                | ProtocolKind::Cas
                | ProtocolKind::Casbr
                | ProtocolKind::Mrs
                | ProtocolKind::Fdi
                | ProtocolKind::Fdas
        )
    }
}

impl fmt::Display for ProtocolKind {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        let s = match self {
            ProtocolKind::NoForced => "no-forced",
            ProtocolKind::Cbr => "cbr",
            ProtocolKind::Cas => "cas",
            ProtocolKind::Casbr => "casbr",
            ProtocolKind::Mrs => "mrs",
            ProtocolKind::Fdi => "fdi",
            ProtocolKind::Fdas => "fdas",
            ProtocolKind::Bcs => "bcs",
        };
        f.write_str(s)
    }
}

/// The control information a protocol piggybacks on application messages:
/// the dependency vector all RDT protocols propagate (Section 4.2) plus the
/// scalar checkpoint index used by BCS.
///
/// The vector is interned behind a thread-local [`SharedDv`] shared with
/// the sender's snapshot cache: constructing, cloning and queueing
/// piggybacks is pointer-cheap with no atomic refcount traffic, and a burst
/// of sends from an unchanged interval shares one allocation (the
/// middleware copies on local mutation). Runtimes that move piggybacks
/// between threads use [`SyncPiggyback`] instead — same shape, atomic
/// ([`SyncDv`]) refcount, `Send`.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Piggyback {
    /// The sender's dependency vector at send time (`m.DV`).
    pub dv: SharedDv,
    /// The sender's BCS checkpoint index (ignored by other protocols).
    pub index: u64,
}

impl Piggyback {
    /// Creates a piggyback from an owned vector (wrapped) or an interned
    /// [`SharedDv`] (shared without copying).
    pub fn new(dv: impl Into<SharedDv>, index: u64) -> Self {
        Self {
            dv: dv.into(),
            index,
        }
    }
}

/// The `Send` flavour of [`Piggyback`], backed by an atomically
/// reference-counted [`SyncDv`]: what a multi-threaded runtime (e.g.
/// `rdt_sim`'s threaded runtime) ships between process threads. The
/// single-threaded hot path never pays this refcount.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct SyncPiggyback {
    /// The sender's dependency vector at send time (`m.DV`).
    pub dv: SyncDv,
    /// The sender's BCS checkpoint index (ignored by other protocols).
    pub index: u64,
}

impl SyncPiggyback {
    /// Creates a piggyback from an owned vector (wrapped) or an interned
    /// [`SyncDv`] (shared without copying).
    pub fn new(dv: impl Into<SyncDv>, index: u64) -> Self {
        Self {
            dv: dv.into(),
            index,
        }
    }
}

/// Per-process protocol state: the flags the forced-checkpoint rules read.
///
/// The transcribed Algorithm 4 of the paper initializes its receive handler
/// with `forced ← true`, which would make FDAS force on *every* fresh
/// dependency; the actual FDAS rule fixes dependencies *after a send*, so we
/// implement `forced ← sent` (see DESIGN.md).
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct ProtocolState {
    kind: ProtocolKind,
    /// FDAS's `sent` flag: a message was sent in the current interval.
    sent: bool,
    /// BCS checkpoint index.
    index: u64,
    forced_count: u64,
}

impl ProtocolState {
    /// Creates the initial protocol state.
    pub fn new(kind: ProtocolKind) -> Self {
        Self {
            kind,
            sent: false,
            index: 0,
            forced_count: 0,
        }
    }

    /// The protocol in force.
    pub fn kind(&self) -> ProtocolKind {
        self.kind
    }

    /// Forced checkpoints taken so far.
    pub fn forced_count(&self) -> u64 {
        self.forced_count
    }

    /// The current BCS index (meaningful only for [`ProtocolKind::Bcs`]).
    pub fn index(&self) -> u64 {
        self.index
    }

    /// Whether a forced checkpoint must be stored *before* processing a
    /// message whose piggyback is `m`, given the local vector `dv`.
    pub fn must_force(&self, dv: &DependencyVector, m: &Piggyback) -> bool {
        self.must_force_parts(dv, &m.dv, m.index)
    }

    /// [`must_force`](Self::must_force) over the piggyback's components —
    /// the shared rule behind both piggyback flavours ([`Piggyback`],
    /// [`SyncPiggyback`]).
    pub fn must_force_parts(
        &self,
        dv: &DependencyVector,
        their_dv: &DependencyVector,
        their_index: u64,
    ) -> bool {
        match self.kind {
            ProtocolKind::NoForced | ProtocolKind::Cas => false,
            ProtocolKind::Cbr | ProtocolKind::Casbr => true,
            ProtocolKind::Mrs => self.sent,
            ProtocolKind::Fdi => dv.would_learn_from(their_dv),
            ProtocolKind::Fdas => self.sent && dv.would_learn_from(their_dv),
            ProtocolKind::Bcs => their_index > self.index,
        }
    }

    /// Whether a forced checkpoint must be stored right *after* a send (the
    /// CAS and CASBR models). The piggyback of the sent message carries the
    /// pre-checkpoint vector; the new interval begins after the send.
    pub fn must_force_after_send(&self) -> bool {
        matches!(self.kind, ProtocolKind::Cas | ProtocolKind::Casbr)
    }

    /// Notes a send ("Before sending m": `sent ← true`).
    pub fn note_send(&mut self) {
        self.sent = true;
    }

    /// Notes a stored checkpoint ("On taking checkpoint": `sent ← false`);
    /// `forced` distinguishes protocol-induced checkpoints. For BCS a basic
    /// checkpoint increments the index.
    pub fn note_checkpoint(&mut self, forced: bool) {
        self.sent = false;
        if forced {
            self.forced_count += 1;
        } else {
            self.index += 1;
        }
    }

    /// Notes a processed receive, letting BCS adopt a higher index.
    pub fn note_receive(&mut self, m: &Piggyback) {
        self.note_receive_index(m.index);
    }

    /// [`note_receive`](Self::note_receive) over the piggybacked index
    /// alone — the shared core behind both piggyback flavours.
    pub fn note_receive_index(&mut self, their_index: u64) {
        if self.kind == ProtocolKind::Bcs && their_index > self.index {
            self.index = their_index;
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn pb(raw: Vec<usize>, index: u64) -> Piggyback {
        Piggyback::new(DependencyVector::from_raw(raw), index)
    }

    #[test]
    fn no_forced_never_forces() {
        let s = ProtocolState::new(ProtocolKind::NoForced);
        let dv = DependencyVector::from_raw(vec![0, 0]);
        assert!(!s.must_force(&dv, &pb(vec![9, 9], 9)));
    }

    #[test]
    fn cbr_always_forces() {
        let s = ProtocolState::new(ProtocolKind::Cbr);
        let dv = DependencyVector::from_raw(vec![5, 5]);
        assert!(s.must_force(&dv, &pb(vec![0, 0], 0)), "even stale messages");
    }

    #[test]
    fn fdi_forces_only_on_news() {
        let s = ProtocolState::new(ProtocolKind::Fdi);
        let dv = DependencyVector::from_raw(vec![2, 2]);
        assert!(s.must_force(&dv, &pb(vec![0, 3], 0)));
        assert!(!s.must_force(&dv, &pb(vec![2, 2], 0)));
    }

    #[test]
    fn fdas_requires_a_prior_send() {
        let mut s = ProtocolState::new(ProtocolKind::Fdas);
        let dv = DependencyVector::from_raw(vec![2, 2]);
        let news = pb(vec![0, 3], 0);
        assert!(!s.must_force(&dv, &news), "no send yet in this interval");
        s.note_send();
        assert!(s.must_force(&dv, &news));
        s.note_checkpoint(true); // new interval clears the flag
        assert!(!s.must_force(&dv, &news));
    }

    #[test]
    fn bcs_follows_indices() {
        let mut s = ProtocolState::new(ProtocolKind::Bcs);
        let dv = DependencyVector::from_raw(vec![0, 0]);
        assert!(!s.must_force(&dv, &pb(vec![0, 0], 0)));
        assert!(s.must_force(&dv, &pb(vec![0, 0], 1)));
        s.note_receive(&pb(vec![0, 0], 3));
        assert_eq!(s.index(), 3);
        assert!(!s.must_force(&dv, &pb(vec![0, 0], 3)));
        // Basic checkpoints advance the index.
        s.note_checkpoint(false);
        assert_eq!(s.index(), 4);
    }

    #[test]
    fn forced_counter_counts_only_forced() {
        let mut s = ProtocolState::new(ProtocolKind::Fdas);
        s.note_checkpoint(false);
        s.note_checkpoint(true);
        s.note_checkpoint(true);
        assert_eq!(s.forced_count(), 2);
    }

    #[test]
    fn rdt_classification() {
        assert!(!ProtocolKind::NoForced.ensures_rdt());
        assert!(!ProtocolKind::Bcs.ensures_rdt());
        for kind in ProtocolKind::RDT {
            assert!(kind.ensures_rdt(), "{kind}");
        }
    }

    #[test]
    fn rdt_subfamily_is_a_subset_of_all() {
        for kind in ProtocolKind::RDT {
            assert!(ProtocolKind::ALL.contains(&kind));
        }
    }

    #[test]
    fn cas_forces_after_send_never_before_receive() {
        let s = ProtocolState::new(ProtocolKind::Cas);
        assert!(s.must_force_after_send());
        let dv = DependencyVector::from_raw(vec![0, 0]);
        assert!(!s.must_force(&dv, &pb(vec![9, 9], 9)));
    }

    #[test]
    fn casbr_forces_on_both_sides() {
        let s = ProtocolState::new(ProtocolKind::Casbr);
        assert!(s.must_force_after_send());
        let dv = DependencyVector::from_raw(vec![5, 5]);
        assert!(s.must_force(&dv, &pb(vec![0, 0], 0)), "even stale messages");
    }

    #[test]
    fn mrs_forces_only_when_a_send_precedes_the_receive() {
        let mut s = ProtocolState::new(ProtocolKind::Mrs);
        assert!(!s.must_force_after_send());
        let dv = DependencyVector::from_raw(vec![0, 0]);
        let stale = pb(vec![0, 0], 0);
        assert!(!s.must_force(&dv, &stale), "no send yet in this interval");
        s.note_send();
        assert!(
            s.must_force(&dv, &stale),
            "even stale info breaks MRS order"
        );
        s.note_checkpoint(true);
        assert!(!s.must_force(&dv, &stale));
    }

    #[test]
    fn only_cas_family_forces_after_send() {
        for kind in ProtocolKind::ALL {
            let expected = matches!(kind, ProtocolKind::Cas | ProtocolKind::Casbr);
            assert_eq!(
                ProtocolState::new(kind).must_force_after_send(),
                expected,
                "{kind}"
            );
        }
    }

    #[test]
    fn display_names_are_stable_for_new_kinds() {
        assert_eq!(ProtocolKind::Cas.to_string(), "cas");
        assert_eq!(ProtocolKind::Casbr.to_string(), "casbr");
        assert_eq!(ProtocolKind::Mrs.to_string(), "mrs");
    }
}
