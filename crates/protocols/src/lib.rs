//! Communication-induced checkpointing protocols with rollback-dependency
//! trackability, and the merged protocol + garbage-collection middleware of
//! the paper's Algorithm 4.
//!
//! # Protocols
//!
//! | Kind | Forced-checkpoint rule | RDT? |
//! |------|------------------------|------|
//! | [`ProtocolKind::NoForced`] | never | no (domino-prone baseline) |
//! | [`ProtocolKind::Cbr`] | before every receive | yes |
//! | [`ProtocolKind::Fdi`] | receive brings new causal info | yes |
//! | [`ProtocolKind::Fdas`] | new causal info after a send (Wang) | yes |
//! | [`ProtocolKind::Bcs`] | higher piggybacked index (Briatico et al.) | no (but domino-free) |
//!
//! # Middleware
//!
//! [`Middleware`] composes a protocol, a garbage collector from `rdt-core`
//! and a stable [`CheckpointStore`](rdt_core::CheckpointStore), enforcing the
//! ordering rules of the paper's Section 4.5 (forced checkpoints stored
//! before the receive's garbage collection runs; checkpoints inserted before
//! predecessors are released).
//!
//! ```
//! use rdt_base::{Payload, ProcessId};
//! use rdt_core::GcKind;
//! use rdt_protocols::{Middleware, ProtocolKind};
//!
//! let mut a = Middleware::new(ProcessId::new(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
//! let mut b = Middleware::new(ProcessId::new(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
//! let m = a.send(ProcessId::new(1), Payload::empty());
//! b.receive(&m)?;
//! # Ok::<(), rdt_base::Error>(())
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod middleware;
mod protocol;

pub use middleware::{CheckpointReport, Middleware, ReceiveReport, RollbackReport};
pub use protocol::{Piggyback, ProtocolKind, ProtocolState, SyncPiggyback};
