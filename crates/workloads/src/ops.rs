//! Application-level operations and deterministic scripts.

use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::ProcessId;

/// One application-level action, as produced by workload generators.
///
/// Delivery timing is *not* part of an `AppOp` stream — the simulator's
/// channels decide when (and whether) messages arrive. Use [`Script`] when a
/// scenario needs exact delivery placement (the paper's figures do).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum AppOp {
    /// Process `from` sends an application message to `to`.
    Send {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// Process takes a basic (application-initiated) checkpoint.
    Checkpoint(ProcessId),
    /// Process crashes (volatile state lost); the simulator starts a
    /// recovery session.
    Crash(ProcessId),
}

impl fmt::Display for AppOp {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            AppOp::Send { from, to } => write!(f, "send {from} → {to}"),
            AppOp::Checkpoint(p) => write!(f, "checkpoint {p}"),
            AppOp::Crash(p) => write!(f, "crash {p}"),
        }
    }
}

/// One step of a deterministic script.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum ScriptOp {
    /// Process takes a basic checkpoint.
    Checkpoint(ProcessId),
    /// Process sends to `to`; the message gets the next send ordinal.
    Send {
        /// Sender.
        from: ProcessId,
        /// Destination.
        to: ProcessId,
    },
    /// Deliver the message created by the `send_ordinal`-th `Send` of this
    /// script (0-based, in script order).
    Deliver {
        /// Ordinal of the originating send.
        send_ordinal: usize,
    },
}

/// A deterministic scenario: exact send, delivery and checkpoint placement.
///
/// Scripts reproduce the paper's figures, where the position of each receive
/// relative to checkpoints is what creates (or avoids) the interesting
/// dependencies.
#[derive(Debug, Clone, Default, PartialEq, Eq, Serialize, Deserialize)]
pub struct Script {
    ops: Vec<ScriptOp>,
    sends: usize,
}

impl Script {
    /// Creates an empty script.
    pub fn new() -> Self {
        Self::default()
    }

    /// Appends a basic checkpoint.
    pub fn checkpoint(&mut self, p: ProcessId) -> &mut Self {
        self.ops.push(ScriptOp::Checkpoint(p));
        self
    }

    /// Appends a send and returns its ordinal for later delivery.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> usize {
        self.ops.push(ScriptOp::Send { from, to });
        self.sends += 1;
        self.sends - 1
    }

    /// Appends a delivery of the send with the given ordinal.
    ///
    /// # Panics
    ///
    /// Panics if the ordinal does not refer to an earlier send.
    pub fn deliver(&mut self, send_ordinal: usize) -> &mut Self {
        assert!(send_ordinal < self.sends, "delivery of a future send");
        self.ops.push(ScriptOp::Deliver { send_ordinal });
        self
    }

    /// Convenience: send and deliver immediately.
    pub fn message(&mut self, from: ProcessId, to: ProcessId) -> usize {
        let ord = self.send(from, to);
        self.deliver(ord);
        ord
    }

    /// The steps, in order.
    pub fn ops(&self) -> &[ScriptOp] {
        &self.ops
    }

    /// Number of sends in the script.
    pub fn send_count(&self) -> usize {
        self.sends
    }

    /// Number of steps.
    pub fn len(&self) -> usize {
        self.ops.len()
    }

    /// Whether the script has no steps.
    pub fn is_empty(&self) -> bool {
        self.ops.is_empty()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn script_assigns_send_ordinals_in_order() {
        let mut s = Script::new();
        assert_eq!(s.send(p(0), p(1)), 0);
        assert_eq!(s.send(p(1), p(0)), 1);
        s.deliver(1);
        s.deliver(0);
        assert_eq!(s.len(), 4);
        assert_eq!(s.send_count(), 2);
    }

    #[test]
    #[should_panic(expected = "future send")]
    fn delivering_future_send_panics() {
        Script::new().deliver(0);
    }

    #[test]
    fn message_is_send_plus_deliver() {
        let mut s = Script::new();
        let ord = s.message(p(0), p(1));
        assert_eq!(ord, 0);
        assert_eq!(
            s.ops(),
            &[
                ScriptOp::Send {
                    from: p(0),
                    to: p(1)
                },
                ScriptOp::Deliver { send_ordinal: 0 }
            ]
        );
    }

    #[test]
    fn app_op_display() {
        assert_eq!(
            AppOp::Send {
                from: p(0),
                to: p(2)
            }
            .to_string(),
            "send p1 → p3"
        );
        assert_eq!(AppOp::Checkpoint(p(1)).to_string(), "checkpoint p2");
        assert_eq!(AppOp::Crash(p(0)).to_string(), "crash p1");
    }
}
