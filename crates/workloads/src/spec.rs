//! Workload specifications and random generation.

use std::fmt;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};
use serde::{Deserialize, Serialize};

use rdt_base::ProcessId;

use crate::ops::AppOp;

/// Communication topology of a generated workload.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum Pattern {
    /// Every send picks a uniformly random partner.
    UniformRandom,
    /// A uniformly random sender sends to its ring successor.
    Ring,
    /// The first `servers` processes are servers; clients send to random
    /// servers, servers reply to random clients.
    ClientServer {
        /// Number of server processes (must be `< n`).
        servers: usize,
    },
    /// Like `UniformRandom`, but a sender emits `burst` consecutive messages
    /// to the same partner before re-drawing — models hot conversations
    /// where causal knowledge concentrates.
    Bursty {
        /// Messages per burst.
        burst: usize,
    },
    /// A token circulates; only the holder sends (to the successor), then
    /// passes the token. Maximizes causal-knowledge propagation.
    TokenRing,
    /// Hub-and-spoke: all traffic crosses process 0. Half the sends go
    /// spoke → hub, half hub → spoke — knowledge concentrates at the hub
    /// and spokes learn about each other only through it.
    Star,
    /// A unidirectional pipeline: `p_i` sends only to `p_{i+1}`; the last
    /// stage never sends. Knowledge flows one way, so upstream processes
    /// never learn downstream checkpoints — the adversarial case for
    /// causal-knowledge GC.
    Pipeline,
}

impl fmt::Display for Pattern {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Pattern::UniformRandom => write!(f, "uniform-random"),
            Pattern::Ring => write!(f, "ring"),
            Pattern::ClientServer { servers } => write!(f, "client-server({servers})"),
            Pattern::Bursty { burst } => write!(f, "bursty({burst})"),
            Pattern::TokenRing => write!(f, "token-ring"),
            Pattern::Star => write!(f, "star"),
            Pattern::Pipeline => write!(f, "pipeline"),
        }
    }
}

/// A reproducible workload: topology, length, checkpoint/crash rates, seed.
///
/// ```
/// use rdt_workloads::{Pattern, WorkloadSpec};
/// let spec = WorkloadSpec::uniform_random(4, 100)
///     .with_seed(7)
///     .with_checkpoint_prob(0.3);
/// let ops = spec.generate();
/// assert_eq!(ops.len(), 100);
/// // Same seed, same workload.
/// assert_eq!(ops, spec.generate());
/// ```
#[derive(Debug, Clone, PartialEq, Serialize, Deserialize)]
pub struct WorkloadSpec {
    /// Number of processes.
    pub n: usize,
    /// Number of application operations to generate.
    pub steps: usize,
    /// Communication topology.
    pub pattern: Pattern,
    /// RNG seed; everything is deterministic given the spec.
    pub seed: u64,
    /// Per-step probability that the acting process takes a basic checkpoint
    /// instead of sending.
    pub checkpoint_prob: f64,
    /// Per-step probability that the acting process crashes (triggering a
    /// recovery session in the simulator).
    pub crash_prob: f64,
}

impl WorkloadSpec {
    /// A uniform-random workload with the default checkpoint rate (0.2) and
    /// no crashes.
    ///
    /// # Panics
    ///
    /// Panics if `n < 2`.
    pub fn uniform_random(n: usize, steps: usize) -> Self {
        assert!(n >= 2, "workloads need at least two processes");
        Self {
            n,
            steps,
            pattern: Pattern::UniformRandom,
            seed: 0,
            checkpoint_prob: 0.2,
            crash_prob: 0.0,
        }
    }

    /// Sets the topology.
    pub fn with_pattern(mut self, pattern: Pattern) -> Self {
        if let Pattern::ClientServer { servers } = pattern {
            assert!(servers > 0 && servers < self.n, "0 < servers < n required");
        }
        if let Pattern::Bursty { burst } = pattern {
            assert!(burst > 0, "burst must be positive");
        }
        self.pattern = pattern;
        self
    }

    /// Sets the seed.
    pub fn with_seed(mut self, seed: u64) -> Self {
        self.seed = seed;
        self
    }

    /// Sets the basic-checkpoint probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0`.
    pub fn with_checkpoint_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        self.checkpoint_prob = p;
        self
    }

    /// Sets the crash probability.
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ p ≤ 1.0` and `checkpoint_prob + p ≤ 1.0`.
    pub fn with_crash_prob(mut self, p: f64) -> Self {
        assert!((0.0..=1.0).contains(&p), "probability out of range");
        assert!(self.checkpoint_prob + p <= 1.0, "probabilities exceed 1");
        self.crash_prob = p;
        self
    }

    /// Generates the operation stream. Deterministic in the spec.
    pub fn generate(&self) -> Vec<AppOp> {
        let mut rng = StdRng::seed_from_u64(self.seed);
        let mut state = PatternState::new(self.pattern, self.n);
        let mut ops = Vec::with_capacity(self.steps);
        for _ in 0..self.steps {
            let roll: f64 = rng.gen();
            if roll < self.checkpoint_prob {
                let p = ProcessId::new(rng.gen_range(0..self.n));
                ops.push(AppOp::Checkpoint(p));
            } else if roll < self.checkpoint_prob + self.crash_prob {
                let p = ProcessId::new(rng.gen_range(0..self.n));
                ops.push(AppOp::Crash(p));
            } else {
                let (from, to) = state.next_pair(&mut rng);
                ops.push(AppOp::Send { from, to });
            }
        }
        ops
    }
}

/// Mutable pattern state across a generation run.
#[derive(Debug)]
enum PatternState {
    UniformRandom {
        n: usize,
    },
    Ring {
        n: usize,
    },
    ClientServer {
        n: usize,
        servers: usize,
    },
    Bursty {
        n: usize,
        burst: usize,
        left: usize,
        pair: (usize, usize),
    },
    TokenRing {
        n: usize,
        holder: usize,
    },
    Star {
        n: usize,
    },
    Pipeline {
        n: usize,
    },
}

impl PatternState {
    fn new(pattern: Pattern, n: usize) -> Self {
        match pattern {
            Pattern::UniformRandom => PatternState::UniformRandom { n },
            Pattern::Ring => PatternState::Ring { n },
            Pattern::ClientServer { servers } => PatternState::ClientServer { n, servers },
            Pattern::Bursty { burst } => PatternState::Bursty {
                n,
                burst,
                left: 0,
                pair: (0, 1),
            },
            Pattern::TokenRing => PatternState::TokenRing { n, holder: 0 },
            Pattern::Star => PatternState::Star { n },
            Pattern::Pipeline => PatternState::Pipeline { n },
        }
    }

    fn next_pair(&mut self, rng: &mut StdRng) -> (ProcessId, ProcessId) {
        let (a, b) = match self {
            PatternState::UniformRandom { n } => {
                let from = rng.gen_range(0..*n);
                let to = (from + 1 + rng.gen_range(0..*n - 1)) % *n;
                (from, to)
            }
            PatternState::Ring { n } => {
                let from = rng.gen_range(0..*n);
                (from, (from + 1) % *n)
            }
            PatternState::ClientServer { n, servers } => {
                // Half the traffic is client→server, half server→client.
                if rng.gen_bool(0.5) {
                    let from = rng.gen_range(*servers..*n);
                    (from, rng.gen_range(0..*servers))
                } else {
                    let from = rng.gen_range(0..*servers);
                    (from, rng.gen_range(*servers..*n))
                }
            }
            PatternState::Bursty {
                n,
                burst,
                left,
                pair,
            } => {
                if *left == 0 {
                    let from = rng.gen_range(0..*n);
                    let to = (from + 1 + rng.gen_range(0..*n - 1)) % *n;
                    *pair = (from, to);
                    *left = *burst;
                }
                *left -= 1;
                *pair
            }
            PatternState::TokenRing { n, holder } => {
                let from = *holder;
                *holder = (*holder + 1) % *n;
                (from, (from + 1) % *n)
            }
            PatternState::Star { n } => {
                let spoke = rng.gen_range(1..*n);
                if rng.gen_bool(0.5) {
                    (spoke, 0)
                } else {
                    (0, spoke)
                }
            }
            PatternState::Pipeline { n } => {
                let from = rng.gen_range(0..*n - 1);
                (from, from + 1)
            }
        };
        (ProcessId::new(a), ProcessId::new(b))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn generation_is_deterministic() {
        let spec = WorkloadSpec::uniform_random(3, 200).with_seed(99);
        assert_eq!(spec.generate(), spec.generate());
    }

    #[test]
    fn different_seeds_differ() {
        let a = WorkloadSpec::uniform_random(3, 200).with_seed(1).generate();
        let b = WorkloadSpec::uniform_random(3, 200).with_seed(2).generate();
        assert_ne!(a, b);
    }

    #[test]
    fn sends_never_self_address() {
        for pattern in [
            Pattern::UniformRandom,
            Pattern::Ring,
            Pattern::ClientServer { servers: 2 },
            Pattern::Bursty { burst: 4 },
            Pattern::TokenRing,
            Pattern::Star,
            Pattern::Pipeline,
        ] {
            let spec = WorkloadSpec::uniform_random(5, 300)
                .with_pattern(pattern)
                .with_seed(3);
            for op in spec.generate() {
                if let AppOp::Send { from, to } = op {
                    assert_ne!(from, to, "{pattern}");
                }
            }
        }
    }

    #[test]
    fn checkpoint_probability_zero_yields_no_checkpoints() {
        let spec = WorkloadSpec::uniform_random(3, 100)
            .with_checkpoint_prob(0.0)
            .with_seed(5);
        assert!(spec
            .generate()
            .iter()
            .all(|op| !matches!(op, AppOp::Checkpoint(_))));
    }

    #[test]
    fn crash_probability_injects_crashes() {
        let spec = WorkloadSpec::uniform_random(3, 400)
            .with_checkpoint_prob(0.1)
            .with_crash_prob(0.1)
            .with_seed(5);
        assert!(spec
            .generate()
            .iter()
            .any(|op| matches!(op, AppOp::Crash(_))));
    }

    #[test]
    fn client_server_traffic_crosses_the_tier_boundary() {
        let servers = 2;
        let spec = WorkloadSpec::uniform_random(5, 300)
            .with_pattern(Pattern::ClientServer { servers })
            .with_checkpoint_prob(0.0)
            .with_seed(8);
        for op in spec.generate() {
            if let AppOp::Send { from, to } = op {
                let from_server = from.index() < servers;
                let to_server = to.index() < servers;
                assert_ne!(from_server, to_server);
            }
        }
    }

    #[test]
    fn token_ring_visits_everyone() {
        let spec = WorkloadSpec::uniform_random(4, 16)
            .with_pattern(Pattern::TokenRing)
            .with_checkpoint_prob(0.0)
            .with_seed(1);
        let senders: std::collections::BTreeSet<usize> = spec
            .generate()
            .iter()
            .filter_map(|op| match op {
                AppOp::Send { from, .. } => Some(from.index()),
                _ => None,
            })
            .collect();
        assert_eq!(senders.len(), 4);
    }

    #[test]
    fn star_traffic_always_touches_the_hub() {
        let spec = WorkloadSpec::uniform_random(5, 300)
            .with_pattern(Pattern::Star)
            .with_checkpoint_prob(0.0)
            .with_seed(4);
        for op in spec.generate() {
            if let AppOp::Send { from, to } = op {
                assert!(from.index() == 0 || to.index() == 0);
            }
        }
    }

    #[test]
    fn pipeline_flows_strictly_downstream() {
        let spec = WorkloadSpec::uniform_random(5, 300)
            .with_pattern(Pattern::Pipeline)
            .with_checkpoint_prob(0.0)
            .with_seed(4);
        for op in spec.generate() {
            if let AppOp::Send { from, to } = op {
                assert_eq!(to.index(), from.index() + 1);
            }
        }
    }

    #[test]
    #[should_panic(expected = "0 < servers < n")]
    fn client_server_validates_tier_size() {
        let _ =
            WorkloadSpec::uniform_random(3, 10).with_pattern(Pattern::ClientServer { servers: 3 });
    }
}
