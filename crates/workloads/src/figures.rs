//! Executable scripts for the paper's online figures (4 and 5) and the
//! domino-effect scenario of Figure 2.

use rdt_base::ProcessId;

use crate::ops::Script;

/// Figure 2 as an executable script: crossing messages under a protocol
/// with no forced checkpoints create useless checkpoints and the domino
/// effect; the same script under FDAS stays recoverable.
pub fn figure2_script() -> Script {
    let [p1, p2] = [ProcessId::new(0), ProcessId::new(1)];
    let mut s = Script::new();
    s.message(p2, p1); // m1, received before s_1^1
    s.checkpoint(p1); // s_1^1
    s.message(p1, p2); // m2, crosses m1
    s.checkpoint(p2); // s_2^1
    s.message(p2, p1); // m3
    s.checkpoint(p1); // s_1^2
    s.message(p1, p2); // m4, crosses m3
    s
}

/// Expected outcomes of [`figure4_script`], for tests and the bench harness.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct Figure4Expectations {
    /// Checkpoints RDT-LGC eliminates during the execution, as
    /// `(process, index)` pairs — includes the paper's
    /// `{s_2^2, s_3^1, s_3^2}`.
    pub eliminated: Vec<(usize, usize)>,
    /// Checkpoints that are obsolete by Theorem 1 on the final cut but
    /// (correctly) retained because no causal knowledge identifies them —
    /// includes the paper's `s_2^1`.
    pub retained_obsolete: Vec<(usize, usize)>,
    /// Retained checkpoints per process at the end.
    pub retained: Vec<Vec<usize>>,
}

/// Figure 4 of the paper: a three-process RDT-LGC execution in which
/// checkpoints are collected on-the-fly and one obsolete checkpoint
/// (`s_2^1`) survives because its owner never learns of the pinning
/// process's later checkpoints — the optimality gap of causal knowledge.
///
/// The published figure's per-event `DV`/`UC` table does not survive
/// transcription, so this script reproduces the *phenomena* the text
/// describes (the eliminations `{s_2^2, s_3^1, s_3^2}` and the retained
/// obsolete `s_2^1`) with a fully specified event order; the exact expected
/// outcome of this script is in [`figure4_expectations`].
pub fn figure4_script() -> Script {
    let [p1, p2, p3] = [ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)];
    let mut s = Script::new();
    s.message(p1, p2); // m1: pins s_2^0 with p1's knowledge
    s.message(p1, p3); // m0: pins s_3^0 with p1's knowledge
    s.checkpoint(p1); // s_1^1 (ends p1's sending interval)
    s.checkpoint(p2); // s_2^1
    s.message(p3, p2); // m2: pins s_2^1 with p3's (interval-1) knowledge
    s.checkpoint(p2); // s_2^2
    s.checkpoint(p2); // s_2^3 — collects s_2^2
    s.checkpoint(p3); // s_3^1
    s.checkpoint(p3); // s_3^2 — collects s_3^1
    s.checkpoint(p3); // s_3^3 — collects s_3^2
    s.message(p2, p1); // m3: p1 learns p2's interval 4
    s.message(p3, p1); // m4: p1 learns p3's interval 4
    s
}

/// The outcomes [`figure4_script`] must produce under FDAS + RDT-LGC.
pub fn figure4_expectations() -> Figure4Expectations {
    Figure4Expectations {
        eliminated: vec![(0, 0), (1, 2), (2, 1), (2, 2)],
        retained_obsolete: vec![(1, 0), (1, 1), (2, 0)],
        retained: vec![vec![1], vec![0, 1, 3], vec![0, 3]],
    }
}

/// Figure 5 of the paper: the worst-case scenario in which **every** process
/// ends up retaining `n` checkpoints (the paper's tight per-process bound),
/// so the system stores `n²` checkpoints, and one more checkpoint per
/// process peaks at `n(n+1)` transiently.
///
/// Construction: each process first sends one message to every other
/// process (carrying only its own fresh interval), then every process takes
/// a checkpoint and alternates *receive from a new peer / checkpoint* —
/// each receive is the first contact with that peer, so its pin lands on a
/// distinct checkpoint. The pattern is RD-trackable: all sends happen in
/// interval 1 and all receives in later intervals, so no zigzag chains
/// exist.
///
/// # Panics
///
/// Panics if `n < 2`.
pub fn figure5_worst_case(n: usize) -> Script {
    assert!(n >= 2, "the worst case needs at least two processes");
    let mut s = Script::new();
    // Phase A: everyone sends to everyone, knowing only themselves.
    // ordinals[j][i] = ordinal of the send j → i.
    let mut ordinals = vec![vec![usize::MAX; n]; n];
    #[allow(clippy::needless_range_loop)] // matrix indexing reads clearer here
    for j in 0..n {
        for r in 1..n {
            let i = (j + r) % n;
            ordinals[j][i] = s.send(ProcessId::new(j), ProcessId::new(i));
        }
    }
    // Phase B: each process checkpoints, then alternates receive/checkpoint.
    #[allow(clippy::needless_range_loop)] // matrix indexing reads clearer here
    for i in 0..n {
        let p = ProcessId::new(i);
        s.checkpoint(p); // s_i^1 — ends the sending interval
        for r in 1..n {
            let j = (i + r) % n;
            s.deliver(ordinals[j][i]); // first contact with p_j: pins s_i^r
            s.checkpoint(p); // s_i^{r+1}
        }
    }
    s
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ops::ScriptOp;

    #[test]
    fn figure2_script_shape() {
        let s = figure2_script();
        assert_eq!(s.send_count(), 4);
        // Alternating structure: 4 messages, 3 checkpoints.
        let ckpts = s
            .ops()
            .iter()
            .filter(|op| matches!(op, ScriptOp::Checkpoint(_)))
            .count();
        assert_eq!(ckpts, 3);
    }

    #[test]
    fn figure4_script_is_well_formed() {
        let s = figure4_script();
        assert_eq!(s.send_count(), 5);
        // Every send is delivered exactly once.
        let delivered: Vec<usize> = s
            .ops()
            .iter()
            .filter_map(|op| match op {
                ScriptOp::Deliver { send_ordinal } => Some(*send_ordinal),
                _ => None,
            })
            .collect();
        let mut sorted = delivered.clone();
        sorted.sort_unstable();
        sorted.dedup();
        assert_eq!(sorted.len(), s.send_count());
    }

    #[test]
    fn figure5_sends_cover_all_pairs() {
        let n = 4;
        let s = figure5_worst_case(n);
        assert_eq!(s.send_count(), n * (n - 1));
        // n checkpoints per process.
        let ckpts = s
            .ops()
            .iter()
            .filter(|op| matches!(op, ScriptOp::Checkpoint(_)))
            .count();
        assert_eq!(ckpts, n * n);
    }

    #[test]
    fn figure5_deliveries_follow_sends() {
        // Script construction would panic otherwise; sanity-check ordering.
        for n in 2..6 {
            let s = figure5_worst_case(n);
            let mut seen_sends = 0;
            for op in s.ops() {
                match op {
                    ScriptOp::Send { .. } => seen_sends += 1,
                    ScriptOp::Deliver { send_ordinal } => {
                        assert!(*send_ordinal < seen_sends);
                    }
                    ScriptOp::Checkpoint(_) => {}
                }
            }
        }
    }

    #[test]
    #[should_panic(expected = "at least two")]
    fn figure5_rejects_single_process() {
        let _ = figure5_worst_case(1);
    }
}
