//! Workload generators and scripted scenarios for the RDT checkpointing
//! experiments.
//!
//! * [`WorkloadSpec`] + [`Pattern`] — reproducible random application
//!   workloads (uniform random, ring, client–server, bursty, token ring)
//!   with configurable basic-checkpoint and crash rates. These drive the
//!   storage-overhead and optimality tables.
//! * [`Script`] — deterministic scenarios with exact delivery placement,
//!   used for the paper's figures: [`figures::figure2_script`] (domino
//!   effect), [`figures::figure4_script`] (the RDT-LGC trace) and
//!   [`figures::figure5_worst_case`] (the `n²` / `n(n+1)` bound).
//!
//! ```
//! use rdt_workloads::{Pattern, WorkloadSpec};
//! let ops = WorkloadSpec::uniform_random(4, 50)
//!     .with_pattern(Pattern::Ring)
//!     .with_seed(1)
//!     .generate();
//! assert_eq!(ops.len(), 50);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod figures;
mod ops;
mod spec;

pub use ops::{AppOp, Script, ScriptOp};
pub use spec::{Pattern, WorkloadSpec};
