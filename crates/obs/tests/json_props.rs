//! Property tests for the exposition codecs: arbitrary field strings and
//! non-finite floats through the JSONL writer and back through the
//! `obs_check` validator, and Prometheus textfile round-trips with hostile
//! label values.

use proptest::prelude::*;
use rdt_obs::json::{self, JsonValue};
use rdt_obs::{Event, Level, ProfileReport, Value};

/// Arbitrary unicode strings seasoned with the characters the escapers
/// must handle: quotes, backslashes, newlines, tabs, control bytes and
/// non-ASCII codepoints.
fn string_strategy() -> impl Strategy<Value = String> {
    prop::collection::vec(0u32..0x11_0000u32, 0..24).prop_map(|raw| {
        raw.into_iter()
            .enumerate()
            .filter_map(|(i, c)| {
                if i % 5 == 0 {
                    Some(['"', '\\', '\n', '\r', '\t', '\u{1}', 'é', '∎'][(c % 8) as usize])
                } else {
                    char::from_u32(c)
                }
            })
            .collect()
    })
}

fn render_event(message: String, field: Value) -> String {
    let event = Event {
        level: Level::Info,
        target: "props::json",
        name: "roundtrip",
        message,
        fields: vec![("payload", field)],
    };
    let mut line = String::new();
    event.to_json().render(&mut line);
    line
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(256))]

    /// Any string survives the JSONL writer byte-for-byte, the emitted
    /// line is one line, and the validator accepts it.
    #[test]
    fn strings_roundtrip_through_the_jsonl_writer(s in string_strategy(), msg in string_strategy()) {
        let line = render_event(msg.clone(), Value::Str(s.clone()));
        prop_assert!(!line.contains('\n'), "embedded newline leaked: {line:?}");
        if let Err(e) = rdt_obs::check::check_jsonl_line(&line) {
            panic!("validator rejected {line:?}: {e}");
        }
        let parsed = json::parse(&line).unwrap_or_else(|e| panic!("reparse of {line:?}: {e}"));
        prop_assert_eq!(parsed.get("msg").and_then(JsonValue::as_str), Some(msg.as_str()));
        prop_assert_eq!(parsed.get("payload").and_then(JsonValue::as_str), Some(s.as_str()));
    }

    /// Finite floats keep a numeric rendering; NaN and ±inf degrade to
    /// JSON `null` (there is no other valid JSON rendering) without
    /// breaking the line or the validator.
    #[test]
    fn floats_render_as_valid_json(bits in 0u64..u64::MAX) {
        let f = f64::from_bits(bits);
        let line = render_event(String::new(), Value::F64(f));
        if let Err(e) = rdt_obs::check::check_jsonl_line(&line) {
            panic!("validator rejected {line:?}: {e}");
        }
        let parsed = json::parse(&line).unwrap_or_else(|e| panic!("reparse of {line:?}: {e}"));
        match parsed.get("payload") {
            Some(JsonValue::Null) => prop_assert!(!f.is_finite()),
            Some(JsonValue::Num(_) | JsonValue::UInt(_) | JsonValue::Int(_)) => {
                prop_assert!(f.is_finite())
            }
            other => panic!("unexpected payload {other:?}"),
        }
    }

    /// The three non-finite shapes explicitly, so random bit patterns
    /// cannot under-sample them.
    #[test]
    fn non_finite_floats_degrade_to_null(which in 0usize..3) {
        let f = [f64::NAN, f64::INFINITY, f64::NEG_INFINITY][which];
        let line = render_event(String::new(), Value::F64(f));
        let parsed = json::parse(&line).unwrap();
        prop_assert_eq!(parsed.get("payload"), Some(&JsonValue::Null));
    }

    /// A Prometheus textfile round-trip is a fixpoint: parsing the
    /// emitted text and re-emitting it reproduces the bytes, even with
    /// quotes, backslashes and newlines in phase and counter names.
    #[test]
    fn prom_textfiles_roundtrip(
        phases in prop::collection::vec((string_strategy(), prop::collection::vec(0u64..10_000_000_000, 1..8)), 0..4),
        counters in prop::collection::vec((string_strategy(), 0u64..1_000_000), 0..4),
    ) {
        let mut report = ProfileReport::new();
        for (name, observations) in &phases {
            let stats = report.phase_mut(name);
            for &ns in observations {
                stats.record(ns);
            }
        }
        for (name, delta) in &counters {
            report.add(name, *delta);
        }
        let text = report.to_prometheus();
        let reparsed = ProfileReport::from_prometheus(&text)
            .unwrap_or_else(|e| panic!("reparse failed: {e}\n{text}"));
        prop_assert_eq!(reparsed.to_prometheus(), text);
    }
}
