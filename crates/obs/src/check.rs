//! Schema validation for everything this stack writes to disk: `rdt trace`
//! span files, `RDT_LOG_JSONL` structured-log files, flight-recorder dumps,
//! merged causal traces, and `.prom` metric textfiles.
//!
//! The `obs_check` binary is a thin wrapper over this module; the logic
//! lives in the library so tests (including the JSONL round-trip proptests)
//! can call it directly.

use crate::json::{self, JsonValue};
use crate::profile::ProfileReport;

/// Validates one JSONL line against the known shapes:
///
/// - **trace lines** carry a `type` discriminator: `run` (header),
///   `event` (i/kind + kind-specific fields), `span`, `counter`, and
///   `causal` (one merged happened-before-ordered trace entry);
/// - **log lines** carry the sink envelope `level`/`target`/`event`/`msg`
///   (flight-recorder dumps are log lines too).
///
/// # Errors
///
/// A human-readable description of the first schema violation.
pub fn check_jsonl_line(line: &str) -> Result<(), String> {
    let value = json::parse(line)?;
    if !matches!(value, JsonValue::Obj(_)) {
        return Err("line is not a JSON object".into());
    }
    if let Some(ty) = value.get("type") {
        let ty = ty.as_str().ok_or("\"type\" is not a string")?;
        return check_trace_line(ty, &value);
    }
    if value.get("level").is_some() {
        return check_log_line(&value);
    }
    Err("object has neither a \"type\" (trace) nor a \"level\" (log) key".into())
}

/// Validates a Prometheus textfile as written by
/// [`ProfileReport::to_prometheus`], returning `(phases, counters)` series
/// counts on success.
///
/// # Errors
///
/// The parse error for the first malformed or inconsistent line.
pub fn check_prom_text(text: &str) -> Result<(usize, usize), String> {
    let report = ProfileReport::from_prometheus(text)?;
    Ok((report.phases.len(), report.counters.len()))
}

fn require_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} is not an unsigned integer"))
}

fn require_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

fn require_bool(v: &JsonValue, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(JsonValue::Bool(_)) => Ok(()),
        Some(_) => Err(format!("key {key:?} is not a boolean")),
        None => Err(format!("missing key {key:?}")),
    }
}

fn check_trace_line(ty: &str, v: &JsonValue) -> Result<(), String> {
    match ty {
        "run" => {
            require_u64(v, "n")?;
            require_u64(v, "steps")?;
            require_u64(v, "seed")?;
            require_u64(v, "shards")?;
            require_str(v, "protocol")?;
            require_str(v, "gc")?;
            Ok(())
        }
        "event" => {
            require_u64(v, "i")?;
            let kind = require_str(v, "kind")?;
            match kind {
                "send" => {
                    require_u64(v, "from")?;
                    require_u64(v, "seq")?;
                    require_u64(v, "to")?;
                    Ok(())
                }
                "deliver" | "drop" => {
                    require_u64(v, "from")?;
                    require_u64(v, "seq")?;
                    Ok(())
                }
                "ckpt" => {
                    require_u64(v, "process")?;
                    require_bool(v, "forced")?;
                    Ok(())
                }
                "collect" => {
                    require_u64(v, "process")?;
                    require_u64(v, "index")?;
                    Ok(())
                }
                "crash" => {
                    require_u64(v, "process")?;
                    Ok(())
                }
                "restore" => {
                    require_u64(v, "process")?;
                    require_u64(v, "to")?;
                    Ok(())
                }
                other => Err(format!("unknown event kind {other:?}")),
            }
        }
        "span" => {
            require_str(v, "phase")?;
            require_u64(v, "count")?;
            require_u64(v, "total_ns")?;
            Ok(())
        }
        "counter" => {
            require_str(v, "name")?;
            require_u64(v, "value")?;
            Ok(())
        }
        "causal" => check_causal_line(v),
        other => Err(format!("unknown line type {other:?}")),
    }
}

/// One entry of a merged causal trace (`rdt causal` output):
/// `pos` is the happened-before-consistent position, `kind` one of
/// `send`/`recv`/`apply`/`synthetic_send`, `process` the acting process,
/// `peer` the other endpoint, `seq` the sender-local sequence number.
/// Sends carry the sender's own DV `interval`; applies carry the learned
/// `interval` plus `forced`/`eliminated` checkpoint effects.
fn check_causal_line(v: &JsonValue) -> Result<(), String> {
    require_u64(v, "pos")?;
    require_u64(v, "process")?;
    require_u64(v, "peer")?;
    require_u64(v, "seq")?;
    let kind = require_str(v, "kind")?;
    match kind {
        "send" | "synthetic_send" => {
            require_u64(v, "interval")?;
            Ok(())
        }
        "recv" => Ok(()),
        "apply" => {
            require_u64(v, "interval")?;
            require_bool(v, "forced")?;
            require_u64(v, "eliminated")?;
            Ok(())
        }
        other => Err(format!("unknown causal kind {other:?}")),
    }
}

fn check_log_line(v: &JsonValue) -> Result<(), String> {
    let level = require_str(v, "level")?;
    if crate::Level::parse(level).is_none() {
        return Err(format!("unknown level {level:?}"));
    }
    require_str(v, "target")?;
    require_str(v, "event")?;
    require_str(v, "msg")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_known_shapes() {
        check_jsonl_line(
            r#"{"type":"run","n":4,"steps":100,"seed":7,"shards":2,"protocol":"rdt-lgc","gc":"rdt"}"#,
        )
        .unwrap();
        check_jsonl_line(r#"{"type":"event","i":0,"kind":"send","from":1,"seq":0,"to":2}"#)
            .unwrap();
        check_jsonl_line(r#"{"type":"event","i":1,"kind":"ckpt","process":0,"forced":true}"#)
            .unwrap();
        check_jsonl_line(r#"{"type":"span","phase":"engine/drain","count":10,"total_ns":1234}"#)
            .unwrap();
        check_jsonl_line(r#"{"type":"counter","name":"events","value":3}"#).unwrap();
        check_jsonl_line(r#"{"level":"warn","target":"t","event":"e","msg":"m","extra":1}"#)
            .unwrap();
    }

    #[test]
    fn accepts_causal_lines() {
        check_jsonl_line(
            r#"{"type":"causal","pos":0,"kind":"send","process":0,"peer":1,"seq":0,"interval":3}"#,
        )
        .unwrap();
        check_jsonl_line(
            r#"{"type":"causal","pos":1,"kind":"recv","process":1,"peer":0,"seq":0}"#,
        )
        .unwrap();
        check_jsonl_line(
            r#"{"type":"causal","pos":2,"kind":"apply","process":1,"peer":0,"seq":0,"interval":3,"forced":false,"eliminated":0}"#,
        )
        .unwrap();
        check_jsonl_line(
            r#"{"type":"causal","pos":0,"kind":"synthetic_send","process":0,"peer":1,"seq":4,"interval":9}"#,
        )
        .unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check_jsonl_line("not json").is_err());
        assert!(check_jsonl_line("[1,2]").is_err());
        assert!(check_jsonl_line(r#"{"type":"mystery"}"#).is_err());
        assert!(check_jsonl_line(r#"{"type":"event","i":0,"kind":"send","from":1}"#).is_err());
        assert!(check_jsonl_line(r#"{"type":"span","phase":"p","count":-1,"total_ns":0}"#).is_err());
        assert!(check_jsonl_line(r#"{"level":"loud","target":"t","event":"e","msg":"m"}"#).is_err());
        assert!(check_jsonl_line(r#"{"no":"discriminator"}"#).is_err());
        assert!(
            check_jsonl_line(r#"{"type":"causal","pos":0,"kind":"warp","process":0,"peer":1,"seq":0}"#)
                .is_err()
        );
        assert!(
            check_jsonl_line(r#"{"type":"causal","pos":0,"kind":"apply","process":0,"peer":1,"seq":0}"#)
                .is_err(),
            "apply without interval/forced/eliminated"
        );
    }

    #[test]
    fn validates_prom_textfiles() {
        let mut r = ProfileReport::new();
        r.phase_mut("live/encode").record(100);
        r.add("frames_sent", 2);
        let (phases, counters) = check_prom_text(&r.to_prometheus()).unwrap();
        assert_eq!((phases, counters), (1, 1));
        assert!(check_prom_text("rdt_counter_total{name=\"x\"} nope").is_err());
    }
}
