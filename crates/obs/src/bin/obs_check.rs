//! `obs_check`: schema validator for the JSONL streams this stack emits —
//! `rdt trace` span files and `RDT_LOG_JSONL` structured-log files.
//!
//! Every line must be one complete JSON object of a known shape:
//!
//! - **trace lines** carry a `type` discriminator:
//!   `run` (header: n/steps/seed/protocol/gc/shards),
//!   `event` (i/kind + kind-specific fields),
//!   `span` (phase/count/total_ns), `counter` (name/value);
//! - **log lines** carry the sink envelope `level`/`target`/`event`/`msg`.
//!
//! Usage: `obs_check <file.jsonl>...` — exits 0 iff every line of every file
//! validates, printing a per-file summary; violations print as
//! `file:line: message` and flip the exit code to 1.

use std::process::ExitCode;

use rdt_obs::json::{self, JsonValue};

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: obs_check <file.jsonl>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &files {
        match std::fs::read_to_string(path) {
            Ok(body) => {
                let mut lines = 0usize;
                let mut errors = 0usize;
                for (i, line) in body.lines().enumerate() {
                    if line.trim().is_empty() {
                        continue;
                    }
                    lines += 1;
                    if let Err(msg) = check_line(line) {
                        eprintln!("{path}:{}: {msg}", i + 1);
                        errors += 1;
                    }
                }
                if lines == 0 {
                    eprintln!("{path}: no JSONL lines found");
                    ok = false;
                } else if errors == 0 {
                    println!("{path}: {lines} lines ok");
                } else {
                    ok = false;
                }
            }
            Err(err) => {
                eprintln!("{path}: {err}");
                ok = false;
            }
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

/// Validates one JSONL line against the known shapes.
fn check_line(line: &str) -> Result<(), String> {
    let value = json::parse(line)?;
    if !matches!(value, JsonValue::Obj(_)) {
        return Err("line is not a JSON object".into());
    }
    if let Some(ty) = value.get("type") {
        let ty = ty.as_str().ok_or("\"type\" is not a string")?;
        return check_trace_line(ty, &value);
    }
    if value.get("level").is_some() {
        return check_log_line(&value);
    }
    Err("object has neither a \"type\" (trace) nor a \"level\" (log) key".into())
}

fn require_u64(v: &JsonValue, key: &str) -> Result<u64, String> {
    v.get(key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_u64()
        .ok_or_else(|| format!("key {key:?} is not an unsigned integer"))
}

fn require_str<'a>(v: &'a JsonValue, key: &str) -> Result<&'a str, String> {
    v.get(key)
        .ok_or_else(|| format!("missing key {key:?}"))?
        .as_str()
        .ok_or_else(|| format!("key {key:?} is not a string"))
}

fn require_bool(v: &JsonValue, key: &str) -> Result<(), String> {
    match v.get(key) {
        Some(JsonValue::Bool(_)) => Ok(()),
        Some(_) => Err(format!("key {key:?} is not a boolean")),
        None => Err(format!("missing key {key:?}")),
    }
}

fn check_trace_line(ty: &str, v: &JsonValue) -> Result<(), String> {
    match ty {
        "run" => {
            require_u64(v, "n")?;
            require_u64(v, "steps")?;
            require_u64(v, "seed")?;
            require_u64(v, "shards")?;
            require_str(v, "protocol")?;
            require_str(v, "gc")?;
            Ok(())
        }
        "event" => {
            require_u64(v, "i")?;
            let kind = require_str(v, "kind")?;
            match kind {
                "send" => {
                    require_u64(v, "from")?;
                    require_u64(v, "seq")?;
                    require_u64(v, "to")?;
                    Ok(())
                }
                "deliver" | "drop" => {
                    require_u64(v, "from")?;
                    require_u64(v, "seq")?;
                    Ok(())
                }
                "ckpt" => {
                    require_u64(v, "process")?;
                    require_bool(v, "forced")?;
                    Ok(())
                }
                "collect" => {
                    require_u64(v, "process")?;
                    require_u64(v, "index")?;
                    Ok(())
                }
                "crash" => {
                    require_u64(v, "process")?;
                    Ok(())
                }
                "restore" => {
                    require_u64(v, "process")?;
                    require_u64(v, "to")?;
                    Ok(())
                }
                other => Err(format!("unknown event kind {other:?}")),
            }
        }
        "span" => {
            require_str(v, "phase")?;
            require_u64(v, "count")?;
            require_u64(v, "total_ns")?;
            Ok(())
        }
        "counter" => {
            require_str(v, "name")?;
            require_u64(v, "value")?;
            Ok(())
        }
        other => Err(format!("unknown line type {other:?}")),
    }
}

fn check_log_line(v: &JsonValue) -> Result<(), String> {
    let level = require_str(v, "level")?;
    if rdt_obs::Level::parse(level).is_none() {
        return Err(format!("unknown level {level:?}"));
    }
    require_str(v, "target")?;
    require_str(v, "event")?;
    require_str(v, "msg")?;
    Ok(())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn accepts_known_shapes() {
        check_line(
            r#"{"type":"run","n":4,"steps":100,"seed":7,"shards":2,"protocol":"rdt-lgc","gc":"rdt"}"#,
        )
        .unwrap();
        check_line(r#"{"type":"event","i":0,"kind":"send","from":1,"seq":0,"to":2}"#).unwrap();
        check_line(r#"{"type":"event","i":1,"kind":"ckpt","process":0,"forced":true}"#).unwrap();
        check_line(r#"{"type":"span","phase":"engine/drain","count":10,"total_ns":1234}"#).unwrap();
        check_line(r#"{"type":"counter","name":"events","value":3}"#).unwrap();
        check_line(r#"{"level":"warn","target":"t","event":"e","msg":"m","extra":1}"#).unwrap();
    }

    #[test]
    fn rejects_malformed_lines() {
        assert!(check_line("not json").is_err());
        assert!(check_line("[1,2]").is_err());
        assert!(check_line(r#"{"type":"mystery"}"#).is_err());
        assert!(check_line(r#"{"type":"event","i":0,"kind":"send","from":1}"#).is_err());
        assert!(check_line(r#"{"type":"span","phase":"p","count":-1,"total_ns":0}"#).is_err());
        assert!(check_line(r#"{"level":"loud","target":"t","event":"e","msg":"m"}"#).is_err());
        assert!(check_line(r#"{"no":"discriminator"}"#).is_err());
    }
}
