//! `obs_check`: schema validator for the files this stack emits — `rdt
//! trace` span files, `RDT_LOG_JSONL` structured-log files, flight-recorder
//! dumps, merged causal traces, and `.prom` metric textfiles.
//!
//! Validation logic lives in [`rdt_obs::check`]; this binary only handles
//! file I/O and exit codes. Files ending in `.prom` are validated as
//! Prometheus textfiles; everything else line-by-line as JSONL.
//!
//! Usage: `obs_check <file>...` — exits 0 iff every file validates,
//! printing a per-file summary; violations print as `file:line: message`
//! and flip the exit code to 1.

use std::process::ExitCode;

use rdt_obs::check::{check_jsonl_line, check_prom_text};

fn main() -> ExitCode {
    let files: Vec<String> = std::env::args().skip(1).collect();
    if files.is_empty() {
        eprintln!("usage: obs_check <file.jsonl|file.prom>...");
        return ExitCode::from(2);
    }
    let mut ok = true;
    for path in &files {
        let body = match std::fs::read_to_string(path) {
            Ok(body) => body,
            Err(err) => {
                eprintln!("{path}: {err}");
                ok = false;
                continue;
            }
        };
        if path.ends_with(".prom") {
            match check_prom_text(&body) {
                Ok((phases, counters)) => {
                    println!("{path}: {phases} phases, {counters} counters ok");
                }
                Err(msg) => {
                    eprintln!("{path}: {msg}");
                    ok = false;
                }
            }
            continue;
        }
        let mut lines = 0usize;
        let mut errors = 0usize;
        for (i, line) in body.lines().enumerate() {
            if line.trim().is_empty() {
                continue;
            }
            lines += 1;
            if let Err(msg) = check_jsonl_line(line) {
                eprintln!("{path}:{}: {msg}", i + 1);
                errors += 1;
            }
        }
        if lines == 0 {
            eprintln!("{path}: no JSONL lines found");
            ok = false;
        } else if errors == 0 {
            println!("{path}: {lines} lines ok");
        } else {
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}
