//! Minimal owned JSON values: rendering for the exposition paths (JSONL
//! sink, [`ProfileReport::to_json`](crate::ProfileReport::to_json)) and a
//! strict parser for the `obs_check` schema validator.
//!
//! The workspace's `serde` is an offline marker-trait shim, so structured
//! output is emitted by hand. This module keeps that emission in one place
//! with exact integer rendering (`u64` nanosecond totals must not round-trip
//! through `f64`).

use std::fmt::Write as _;

/// An owned JSON value with dynamic (heap) object keys — unlike the CLI's
/// static-key summary builder, phase names and event fields are runtime
/// strings.
#[derive(Debug, Clone, PartialEq)]
pub enum JsonValue {
    /// `null`.
    Null,
    /// `true` / `false`.
    Bool(bool),
    /// A non-negative integer, rendered exactly (no `f64` round-trip).
    UInt(u64),
    /// A signed integer, rendered exactly.
    Int(i64),
    /// A finite float. Non-finite values render as `null`.
    Num(f64),
    /// A string.
    Str(String),
    /// An array.
    Arr(Vec<JsonValue>),
    /// An object; insertion order is preserved on render.
    Obj(Vec<(String, JsonValue)>),
}

impl JsonValue {
    /// Looks up `key` in an object; `None` for missing keys or non-objects.
    pub fn get(&self, key: &str) -> Option<&JsonValue> {
        match self {
            JsonValue::Obj(fields) => fields.iter().find(|(k, _)| k == key).map(|(_, v)| v),
            _ => None,
        }
    }

    /// The string payload, if this is a string.
    pub fn as_str(&self) -> Option<&str> {
        match self {
            JsonValue::Str(s) => Some(s),
            _ => None,
        }
    }

    /// The value as a `u64`, if it is a non-negative integer.
    pub fn as_u64(&self) -> Option<u64> {
        match self {
            JsonValue::UInt(v) => Some(*v),
            JsonValue::Int(v) => u64::try_from(*v).ok(),
            _ => None,
        }
    }

    /// Renders compact (single-line) JSON into `out`.
    pub fn render(&self, out: &mut String) {
        match self {
            JsonValue::Null => out.push_str("null"),
            JsonValue::Bool(b) => out.push_str(if *b { "true" } else { "false" }),
            JsonValue::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Int(v) => {
                let _ = write!(out, "{v}");
            }
            JsonValue::Num(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v}");
                } else {
                    out.push_str("null");
                }
            }
            JsonValue::Str(s) => escape_into(s, out),
            JsonValue::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.render(out);
                }
                out.push(']');
            }
            JsonValue::Obj(fields) => {
                out.push('{');
                for (i, (k, v)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    escape_into(k, out);
                    out.push(':');
                    v.render(out);
                }
                out.push('}');
            }
        }
    }

    /// [`render`](Self::render) into a fresh string.
    #[allow(clippy::inherent_to_string)]
    pub fn to_string(&self) -> String {
        let mut out = String::new();
        self.render(&mut out);
        out
    }
}

/// Appends `s` as a quoted JSON string (with escapes) to `out`.
pub fn escape_into(s: &str, out: &mut String) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

/// Parses one complete JSON document. Trailing non-whitespace is an error —
/// exactly what a line-oriented (JSONL) validator wants.
///
/// # Errors
///
/// A human-readable message with a byte offset on malformed input.
pub fn parse(s: &str) -> Result<JsonValue, String> {
    let bytes = s.as_bytes();
    let mut pos = 0;
    let value = parse_value(bytes, &mut pos)?;
    skip_ws(bytes, &mut pos);
    if pos != bytes.len() {
        return Err(format!("trailing data at byte {pos}"));
    }
    Ok(value)
}

fn skip_ws(bytes: &[u8], pos: &mut usize) {
    while *pos < bytes.len() && matches!(bytes[*pos], b' ' | b'\t' | b'\n' | b'\r') {
        *pos += 1;
    }
}

fn parse_value(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    skip_ws(bytes, pos);
    match bytes.get(*pos) {
        None => Err("unexpected end of input".into()),
        Some(b'{') => parse_object(bytes, pos),
        Some(b'[') => parse_array(bytes, pos),
        Some(b'"') => parse_string(bytes, pos).map(JsonValue::Str),
        Some(b't') => parse_literal(bytes, pos, "true", JsonValue::Bool(true)),
        Some(b'f') => parse_literal(bytes, pos, "false", JsonValue::Bool(false)),
        Some(b'n') => parse_literal(bytes, pos, "null", JsonValue::Null),
        Some(c) if c.is_ascii_digit() || *c == b'-' => parse_number(bytes, pos),
        Some(c) => Err(format!("unexpected byte {:?} at {}", *c as char, *pos)),
    }
}

fn parse_literal(
    bytes: &[u8],
    pos: &mut usize,
    lit: &str,
    value: JsonValue,
) -> Result<JsonValue, String> {
    if bytes[*pos..].starts_with(lit.as_bytes()) {
        *pos += lit.len();
        Ok(value)
    } else {
        Err(format!("invalid literal at byte {pos}"))
    }
}

fn parse_number(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    let start = *pos;
    if bytes.get(*pos) == Some(&b'-') {
        *pos += 1;
    }
    let mut float = false;
    while let Some(&c) = bytes.get(*pos) {
        match c {
            b'0'..=b'9' => *pos += 1,
            b'.' | b'e' | b'E' | b'+' | b'-' => {
                float = true;
                *pos += 1;
            }
            _ => break,
        }
    }
    let text = std::str::from_utf8(&bytes[start..*pos]).map_err(|e| e.to_string())?;
    if !float {
        if let Ok(v) = text.parse::<u64>() {
            return Ok(JsonValue::UInt(v));
        }
        if let Ok(v) = text.parse::<i64>() {
            return Ok(JsonValue::Int(v));
        }
    }
    text.parse::<f64>()
        .map(JsonValue::Num)
        .map_err(|_| format!("invalid number {text:?} at byte {start}"))
}

fn parse_string(bytes: &[u8], pos: &mut usize) -> Result<String, String> {
    debug_assert_eq!(bytes.get(*pos), Some(&b'"'));
    *pos += 1;
    let mut out = String::new();
    loop {
        match bytes.get(*pos) {
            None => return Err("unterminated string".into()),
            Some(b'"') => {
                *pos += 1;
                return Ok(out);
            }
            Some(b'\\') => {
                *pos += 1;
                match bytes.get(*pos) {
                    Some(b'"') => out.push('"'),
                    Some(b'\\') => out.push('\\'),
                    Some(b'/') => out.push('/'),
                    Some(b'n') => out.push('\n'),
                    Some(b'r') => out.push('\r'),
                    Some(b't') => out.push('\t'),
                    Some(b'b') => out.push('\u{8}'),
                    Some(b'f') => out.push('\u{c}'),
                    Some(b'u') => {
                        let hex = bytes
                            .get(*pos + 1..*pos + 5)
                            .ok_or("truncated \\u escape")?;
                        let hex = std::str::from_utf8(hex).map_err(|e| e.to_string())?;
                        let code = u32::from_str_radix(hex, 16)
                            .map_err(|_| format!("invalid \\u escape {hex:?}"))?;
                        // Surrogate pairs are not reassembled; the emitters in
                        // this crate never produce them (only control chars are
                        // \u-escaped), so map lone surrogates to U+FFFD.
                        out.push(char::from_u32(code).unwrap_or('\u{fffd}'));
                        *pos += 4;
                    }
                    _ => return Err(format!("invalid escape at byte {pos}")),
                }
                *pos += 1;
            }
            Some(_) => {
                // Advance one full UTF-8 scalar.
                let rest = std::str::from_utf8(&bytes[*pos..]).map_err(|e| e.to_string())?;
                let c = rest.chars().next().unwrap();
                out.push(c);
                *pos += c.len_utf8();
            }
        }
    }
}

fn parse_array(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '['
    let mut items = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b']') {
        *pos += 1;
        return Ok(JsonValue::Arr(items));
    }
    loop {
        items.push(parse_value(bytes, pos)?);
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b']') => {
                *pos += 1;
                return Ok(JsonValue::Arr(items));
            }
            _ => return Err(format!("expected ',' or ']' at byte {pos}")),
        }
    }
}

fn parse_object(bytes: &[u8], pos: &mut usize) -> Result<JsonValue, String> {
    *pos += 1; // '{'
    let mut fields = Vec::new();
    skip_ws(bytes, pos);
    if bytes.get(*pos) == Some(&b'}') {
        *pos += 1;
        return Ok(JsonValue::Obj(fields));
    }
    loop {
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b'"') {
            return Err(format!("expected object key at byte {pos}"));
        }
        let key = parse_string(bytes, pos)?;
        skip_ws(bytes, pos);
        if bytes.get(*pos) != Some(&b':') {
            return Err(format!("expected ':' at byte {pos}"));
        }
        *pos += 1;
        let value = parse_value(bytes, pos)?;
        fields.push((key, value));
        skip_ws(bytes, pos);
        match bytes.get(*pos) {
            Some(b',') => *pos += 1,
            Some(b'}') => {
                *pos += 1;
                return Ok(JsonValue::Obj(fields));
            }
            _ => return Err(format!("expected ',' or '}}' at byte {pos}")),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn roundtrip_object() {
        let v = JsonValue::Obj(vec![
            ("level".into(), JsonValue::Str("warn".into())),
            ("shards".into(), JsonValue::UInt(4)),
            ("ratio".into(), JsonValue::Num(0.5)),
            ("ok".into(), JsonValue::Bool(true)),
            (
                "arr".into(),
                JsonValue::Arr(vec![JsonValue::UInt(1), JsonValue::Null]),
            ),
        ]);
        let text = v.to_string();
        assert_eq!(parse(&text).unwrap(), v);
    }

    #[test]
    fn exact_u64_rendering() {
        let v = JsonValue::UInt(u64::MAX);
        assert_eq!(v.to_string(), u64::MAX.to_string());
        assert_eq!(parse(&v.to_string()).unwrap().as_u64(), Some(u64::MAX));
    }

    #[test]
    fn escapes_roundtrip() {
        let v = JsonValue::Str("a\"b\\c\nd\te\u{1}".into());
        assert_eq!(parse(&v.to_string()).unwrap(), v);
    }

    #[test]
    fn rejects_trailing_garbage() {
        assert!(parse("{} x").is_err());
        assert!(parse("{\"a\":}").is_err());
        assert!(parse("[1,]").is_err());
        assert!(parse("").is_err());
    }

    #[test]
    fn negative_and_float_numbers() {
        assert_eq!(parse("-3").unwrap(), JsonValue::Int(-3));
        assert_eq!(parse("2.5").unwrap(), JsonValue::Num(2.5));
        assert_eq!(parse("1e3").unwrap(), JsonValue::Num(1000.0));
    }
}
