//! Always-on bounded flight recorder: the last N events, flushed to disk
//! on panic and periodically, so post-mortem traces survive `kill -9`.
//!
//! The recorder is process-wide and off until [`install`]ed (serve workers
//! install one per rank). Recording bypasses the level filter — call sites
//! hand fully-built [`Event`]s to [`record`] unconditionally — so the dump
//! always holds the most recent history even when the sink threshold is
//! `warn`. The ring is bounded: once full, the oldest line is evicted.
//!
//! Durability model: SIGKILL cannot be caught, so in addition to the panic
//! hook the ring is rewritten to disk every [`FLUSH_EVERY`] records via an
//! atomic tmp-file-and-rename, leaving at most the last `FLUSH_EVERY - 1`
//! events unrecorded after a hard kill and never a torn file.

use std::collections::VecDeque;
use std::io::Write as _;
use std::path::{Path, PathBuf};
use std::sync::atomic::{AtomicBool, Ordering};
use std::sync::{Mutex, OnceLock};

use crate::event::Event;

/// Records between automatic disk flushes.
pub const FLUSH_EVERY: usize = 64;

/// Default ring capacity (events retained).
pub const DEFAULT_CAPACITY: usize = 4096;

#[derive(Debug)]
struct Recorder {
    path: PathBuf,
    capacity: usize,
    ring: VecDeque<String>,
    since_flush: usize,
}

impl Recorder {
    fn push(&mut self, line: String) {
        if self.ring.len() == self.capacity {
            self.ring.pop_front();
        }
        self.ring.push_back(line);
        self.since_flush += 1;
        if self.since_flush >= FLUSH_EVERY {
            self.flush();
        }
    }

    /// Rewrites the whole ring atomically (tmp file + rename), so a kill
    /// mid-flush leaves the previous complete dump in place. I/O errors are
    /// swallowed: the recorder must never take the process down.
    fn flush(&mut self) {
        self.since_flush = 0;
        let tmp = self.path.with_extension("tmp");
        let mut body = String::new();
        for line in &self.ring {
            body.push_str(line);
            body.push('\n');
        }
        let ok = std::fs::File::create(&tmp)
            .and_then(|mut f| {
                f.write_all(body.as_bytes())?;
                f.sync_all()
            })
            .and_then(|()| std::fs::rename(&tmp, &self.path));
        let _ = ok;
    }
}

static INSTALLED: AtomicBool = AtomicBool::new(false);

fn cell() -> &'static Mutex<Option<Recorder>> {
    static CELL: OnceLock<Mutex<Option<Recorder>>> = OnceLock::new();
    CELL.get_or_init(|| Mutex::new(None))
}

fn with_recorder(f: impl FnOnce(&mut Recorder)) {
    if let Some(rec) = cell().lock().unwrap_or_else(|e| e.into_inner()).as_mut() {
        f(rec);
    }
}

/// Installs the process-wide flight recorder writing to `path`, keeping at
/// most `capacity` events (0 means [`DEFAULT_CAPACITY`]). Replaces any
/// previously installed recorder (flushing it first). Also registers a
/// panic hook, once, that flushes the ring before unwinding continues.
pub fn install(path: impl AsRef<Path>, capacity: usize) {
    let capacity = if capacity == 0 {
        DEFAULT_CAPACITY
    } else {
        capacity
    };
    let mut guard = cell().lock().unwrap_or_else(|e| e.into_inner());
    if let Some(old) = guard.as_mut() {
        old.flush();
    }
    *guard = Some(Recorder {
        path: path.as_ref().to_path_buf(),
        capacity,
        ring: VecDeque::with_capacity(capacity),
        since_flush: 0,
    });
    drop(guard);
    INSTALLED.store(true, Ordering::Release);

    static HOOK: OnceLock<()> = OnceLock::new();
    HOOK.get_or_init(|| {
        let previous = std::panic::take_hook();
        std::panic::set_hook(Box::new(move |info| {
            with_recorder(Recorder::flush);
            previous(info);
        }));
    });
}

/// Whether a recorder is installed (one relaxed atomic load — the fast
/// path for call sites that build an [`Event`] only to record it).
#[inline]
pub fn enabled() -> bool {
    INSTALLED.load(Ordering::Acquire)
}

/// Records one event into the ring (no-op when not installed). Bypasses
/// the sink level filter by design.
pub fn record(event: &Event) {
    if !enabled() {
        return;
    }
    let line = event.to_json().to_string();
    with_recorder(|rec| rec.push(line));
}

/// Forces the ring to disk now (no-op when not installed). Serve workers
/// call this on clean shutdown so the dump covers the whole run tail.
pub fn flush() {
    if enabled() {
        with_recorder(Recorder::flush);
    }
}

/// Removes the recorder after a final flush, returning its dump path.
/// Mainly for tests; production workers stay installed until exit.
pub fn uninstall() -> Option<PathBuf> {
    let mut guard = cell().lock().unwrap_or_else(|e| e.into_inner());
    let rec = guard.take();
    INSTALLED.store(false, Ordering::Release);
    rec.map(|mut rec| {
        rec.flush();
        rec.path
    })
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::{Level, Value};

    fn sample(i: u64) -> Event {
        Event {
            level: Level::Debug,
            target: "rdt_obs::flight_tests",
            name: "tick",
            message: String::new(),
            fields: vec![("i", Value::U64(i))],
        }
    }

    fn temp_path(name: &str) -> PathBuf {
        std::env::temp_dir().join(format!("rdt_flight_{}_{name}.jsonl", std::process::id()))
    }

    // The recorder is process-global, so the scenarios run as one test to
    // avoid cross-test interference under the parallel test runner.
    #[test]
    fn ring_bounds_flushes_and_survives_reinstall() {
        // Below-threshold events are still recorded (bypass the filter).
        crate::set_level(Some(Level::Error));

        let path = temp_path("ring");
        install(&path, 8);
        assert!(enabled());
        for i in 0..100 {
            record(&sample(i));
        }
        // 100 records with FLUSH_EVERY=64: one automatic flush happened, so
        // a dump exists on disk even without an explicit flush.
        let body = std::fs::read_to_string(&path).unwrap();
        assert!(!body.is_empty());

        flush();
        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), 8, "ring keeps only the last 8 events");
        let first = crate::json::parse(lines[0]).unwrap();
        assert_eq!(first.get("i").unwrap().as_u64(), Some(92));
        let last = crate::json::parse(lines[7]).unwrap();
        assert_eq!(last.get("i").unwrap().as_u64(), Some(99));

        // Reinstall flushes the old ring and starts a fresh one.
        let path2 = temp_path("ring2");
        install(&path2, 0);
        record(&sample(7));
        flush();
        let body2 = std::fs::read_to_string(&path2).unwrap();
        assert_eq!(body2.lines().count(), 1);

        assert_eq!(uninstall(), Some(path2.clone()));
        assert!(!enabled());
        record(&sample(1)); // no-op, must not panic
        let _ = std::fs::remove_file(&path);
        let _ = std::fs::remove_file(&path2);
    }
}
