//! Pluggable event sinks and the process-wide dispatch state.
//!
//! Exactly one sink is active per process. The default is [`StderrSink`]
//! filtered at `warn`; both are overridable — by environment at first use
//! (`RDT_LOG` sets the level, `RDT_LOG_JSONL=<path>` swaps in a
//! [`JsonlSink`]) or programmatically via [`set_sink`] / [`set_level`]
//! (tests install a [`CaptureSink`]).

use std::fs::{File, OpenOptions};
use std::io::Write as _;
use std::path::Path;
use std::sync::atomic::{AtomicU8, Ordering};
use std::sync::{Arc, Mutex, OnceLock, RwLock};

use crate::event::{Event, Level};

/// Receives every event that passes the level filter. Implementations must
/// be thread-safe: shard workers emit concurrently.
pub trait Sink: Send + Sync {
    /// Handles one event. Called after level filtering; implementations do
    /// not filter again.
    fn emit(&self, event: &Event);
}

/// Human-format sink: one [`Event`] display line per event on stderr.
#[derive(Debug, Default)]
pub struct StderrSink;

impl Sink for StderrSink {
    fn emit(&self, event: &Event) {
        eprintln!("{event}");
    }
}

/// JSONL sink: one flat JSON object per line, appended to a file.
///
/// Each event is rendered to a complete line first and written with a single
/// `write_all` under a mutex, so lines from concurrent shard workers never
/// interleave. The file is opened in append mode, so multiple processes
/// (e.g. `rdt serve` workers) can share one path.
#[derive(Debug)]
pub struct JsonlSink {
    file: Mutex<File>,
}

impl JsonlSink {
    /// Opens (creating if needed) `path` for appending.
    ///
    /// # Errors
    ///
    /// Propagates the underlying `io::Error`.
    pub fn open(path: impl AsRef<Path>) -> std::io::Result<Self> {
        let file = OpenOptions::new().create(true).append(true).open(path)?;
        Ok(JsonlSink {
            file: Mutex::new(file),
        })
    }
}

impl Sink for JsonlSink {
    fn emit(&self, event: &Event) {
        let mut line = event.to_json().to_string();
        line.push('\n');
        let mut file = self.file.lock().unwrap_or_else(|e| e.into_inner());
        // Logging must never take the process down; drop the line on I/O
        // error (e.g. disk full) rather than panicking mid-simulation.
        let _ = file.write_all(line.as_bytes());
    }
}

/// Test sink: buffers every event for later inspection.
#[derive(Debug, Default)]
pub struct CaptureSink {
    events: Mutex<Vec<Event>>,
}

impl CaptureSink {
    /// An empty capture buffer.
    pub fn new() -> Self {
        Self::default()
    }

    /// Snapshots the captured events.
    pub fn events(&self) -> Vec<Event> {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .clone()
    }

    /// Removes and returns the captured events.
    pub fn drain(&self) -> Vec<Event> {
        std::mem::take(&mut *self.events.lock().unwrap_or_else(|e| e.into_inner()))
    }
}

impl Sink for CaptureSink {
    fn emit(&self, event: &Event) {
        self.events
            .lock()
            .unwrap_or_else(|e| e.into_inner())
            .push(event.clone());
    }
}

/// Minimum level an event needs to reach the sink. `u8::MAX` = off.
static LEVEL: AtomicU8 = AtomicU8::new(LEVEL_UNSET);
const LEVEL_UNSET: u8 = 0xfe;
const LEVEL_OFF: u8 = 0xff;

fn level_code(level: Level) -> u8 {
    match level {
        Level::Debug => 0,
        Level::Info => 1,
        Level::Warn => 2,
        Level::Error => 3,
    }
}

fn init_level() -> u8 {
    let code = match std::env::var("RDT_LOG").ok().as_deref() {
        None | Some("") => level_code(Level::Warn),
        Some("off") | Some("none") => LEVEL_OFF,
        Some(name) => Level::parse(name).map_or(level_code(Level::Warn), level_code),
    };
    LEVEL.store(code, Ordering::Relaxed);
    code
}

/// Whether an event at `level` would currently reach the sink. Cheap (one
/// relaxed atomic load after first use); instrumentation call sites gate on
/// this implicitly through [`EventBuilder`](crate::EventBuilder).
pub fn enabled(level: Level) -> bool {
    let mut threshold = LEVEL.load(Ordering::Relaxed);
    if threshold == LEVEL_UNSET {
        threshold = init_level();
    }
    level_code(level) >= threshold
}

/// Sets the minimum level (`None` disables all output). Overrides `RDT_LOG`.
pub fn set_level(level: Option<Level>) {
    LEVEL.store(level.map_or(LEVEL_OFF, level_code), Ordering::Relaxed);
}

fn sink_cell() -> &'static RwLock<Arc<dyn Sink>> {
    static SINK: OnceLock<RwLock<Arc<dyn Sink>>> = OnceLock::new();
    SINK.get_or_init(|| RwLock::new(default_sink()))
}

fn default_sink() -> Arc<dyn Sink> {
    if let Some(path) = std::env::var_os("RDT_LOG_JSONL").filter(|p| !p.is_empty()) {
        match JsonlSink::open(&path) {
            Ok(sink) => return Arc::new(sink),
            Err(err) => {
                eprintln!(
                    "[error rdt_obs::sink] jsonl_open_failed: falling back to stderr \
                     (path={}, error={err})",
                    path.to_string_lossy()
                );
            }
        }
    }
    Arc::new(StderrSink)
}

/// Replaces the process-wide sink, returning the previous one.
pub fn set_sink(sink: Arc<dyn Sink>) -> Arc<dyn Sink> {
    let cell = sink_cell();
    let mut guard = cell.write().unwrap_or_else(|e| e.into_inner());
    std::mem::replace(&mut *guard, sink)
}

/// Dispatches a pre-built [`Event`] through the level filter to the sink.
/// For call sites that construct events directly (e.g. to also hand them
/// to the flight recorder, which bypasses the filter); builder-based call
/// sites go through [`EventBuilder::emit`](crate::EventBuilder::emit).
pub fn emit(event: &Event) {
    if enabled(event.level) {
        dispatch(event);
    }
}

pub(crate) fn dispatch(event: &Event) {
    let cell = sink_cell();
    let sink = cell.read().unwrap_or_else(|e| e.into_inner()).clone();
    sink.emit(event);
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::event::Value;

    fn sample(name: &'static str) -> Event {
        Event {
            level: Level::Warn,
            target: "rdt_obs::tests",
            name,
            message: "hello".into(),
            fields: vec![("k", Value::U64(1))],
        }
    }

    #[test]
    fn capture_sink_buffers_and_drains() {
        let sink = CaptureSink::new();
        sink.emit(&sample("a"));
        sink.emit(&sample("b"));
        assert_eq!(sink.events().len(), 2);
        let drained = sink.drain();
        assert_eq!(drained.len(), 2);
        assert_eq!(drained[1].name, "b");
        assert!(sink.events().is_empty());
    }

    #[test]
    fn jsonl_sink_writes_valid_lines_under_concurrent_writers() {
        let dir = std::env::temp_dir().join(format!("rdt_obs_sink_{}", std::process::id()));
        std::fs::create_dir_all(&dir).unwrap();
        let path = dir.join("concurrent.jsonl");
        let _ = std::fs::remove_file(&path);
        let sink = Arc::new(JsonlSink::open(&path).unwrap());

        const WRITERS: usize = 8;
        const PER_WRITER: usize = 50;
        std::thread::scope(|scope| {
            for w in 0..WRITERS {
                let sink = Arc::clone(&sink);
                scope.spawn(move || {
                    for i in 0..PER_WRITER {
                        let mut e = sample("concurrent");
                        e.fields = vec![
                            ("writer", Value::U64(w as u64)),
                            ("seq", Value::U64(i as u64)),
                            // Bulk payload widens the race window for
                            // interleaved partial writes.
                            ("pad", Value::Str("x".repeat(64))),
                        ];
                        sink.emit(&e);
                    }
                });
            }
        });

        let body = std::fs::read_to_string(&path).unwrap();
        let lines: Vec<&str> = body.lines().collect();
        assert_eq!(lines.len(), WRITERS * PER_WRITER);
        let mut seen = [0u64; WRITERS];
        for line in lines {
            let v = crate::json::parse(line).expect("every line is complete JSON");
            assert_eq!(v.get("event").unwrap().as_str(), Some("concurrent"));
            let w = v.get("writer").unwrap().as_u64().unwrap() as usize;
            seen[w] += 1;
        }
        assert!(seen.iter().all(|&n| n == PER_WRITER as u64));
        std::fs::remove_dir_all(&dir).unwrap();
    }
}
