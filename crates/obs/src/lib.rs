//! Observability for the rdt stack: structured leveled events, phase
//! profiling, and metrics exposition — offline and dependency-free like the
//! rest of the workspace.
//!
//! Three pieces:
//!
//! - **Events** ([`event`], [`Event`], [`Sink`]): named, typed, leveled
//!   occurrences replacing ad-hoc `eprintln!` paths. One process-wide sink,
//!   defaulting to human-format stderr at `warn`; `RDT_LOG` adjusts the
//!   level, `RDT_LOG_JSONL=<path>` swaps in a line-oriented JSON sink, and
//!   tests install a [`CaptureSink`].
//! - **Profiling** ([`Profiler`], [`ProfileReport`], [`PhaseStats`]):
//!   scoped wall-clock timers, counters and fixed power-of-two latency
//!   histograms. Disabled profilers never read the clock; enabled ones
//!   observe around the deterministic core without touching RNG or event
//!   order, so replay goldens stay byte-identical with profiling on.
//! - **Exposition**: [`ProfileReport::to_json`] for run summaries,
//!   [`ProfileReport::to_prometheus`] / [`ProfileReport::from_prometheus`]
//!   for scrape-file dumps and coordinator-side re-aggregation, and the
//!   `obs_check` binary (backed by the [`check`] module) validating JSONL
//!   streams and `.prom` textfiles in CI.
//!
//! Plus a crash-surviving [`flight`] recorder: a bounded ring of the most
//! recent events, periodically flushed to disk and harvested post-mortem.
//! See `crates/obs/OBSERVABILITY.md` for the operator-facing knobs.

#![forbid(unsafe_code)]
#![warn(missing_docs)]

pub mod check;
pub mod event;
pub mod flight;
pub mod json;
pub mod profile;
pub mod sink;

pub use event::{Event, EventBuilder, Level, Value};
pub use profile::{PhaseStats, ProfileReport, Profiler, HIST_BUCKETS};
pub use sink::{CaptureSink, JsonlSink, Sink, StderrSink};

/// Starts building an event at `level`. Below the process threshold the
/// builder is inert (fields are not materialized, `emit` is a no-op).
pub fn event(level: Level, target: &'static str, name: &'static str) -> EventBuilder {
    EventBuilder::new(level, target, name)
}

/// [`event`] at [`Level::Debug`].
pub fn debug(target: &'static str, name: &'static str) -> EventBuilder {
    event(Level::Debug, target, name)
}

/// [`event`] at [`Level::Info`].
pub fn info(target: &'static str, name: &'static str) -> EventBuilder {
    event(Level::Info, target, name)
}

/// [`event`] at [`Level::Warn`].
pub fn warn(target: &'static str, name: &'static str) -> EventBuilder {
    event(Level::Warn, target, name)
}

/// [`event`] at [`Level::Error`].
pub fn error(target: &'static str, name: &'static str) -> EventBuilder {
    event(Level::Error, target, name)
}

/// Replaces the process-wide sink, returning the previous one. See
/// [`sink::set_sink`].
pub fn set_sink(sink: std::sync::Arc<dyn Sink>) -> std::sync::Arc<dyn Sink> {
    sink::set_sink(sink)
}

/// Sets the minimum level reaching the sink (`None` = off), overriding
/// `RDT_LOG`. See [`sink::set_level`].
pub fn set_level(level: Option<Level>) {
    sink::set_level(level)
}
