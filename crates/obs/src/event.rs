//! Structured, leveled events.
//!
//! An [`Event`] is a named occurrence with typed fields — `name` identifies
//! *what* happened (machine-matchable), `message` says it for humans, and
//! `fields` carry the data that used to be interpolated into ad-hoc
//! `eprintln!` strings. Events are built with the fluent [`EventBuilder`]
//! returned by [`event`](crate::event) (or the [`warn`](crate::warn) /
//! [`info`](crate::info) / … shorthands) and dispatched to the process-wide
//! [`Sink`](crate::Sink).

use std::fmt;

/// Event severity, ordered `Debug < Info < Warn < Error`.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash)]
pub enum Level {
    /// High-volume diagnostics.
    Debug,
    /// Routine notices (absorbed retries, lifecycle steps).
    Info,
    /// Anomalies the run survives (fallbacks, degradations).
    Warn,
    /// Failures surfaced to the caller.
    Error,
}

impl Level {
    /// Lower-case name used in JSONL output and `RDT_LOG` values.
    pub fn as_str(self) -> &'static str {
        match self {
            Level::Debug => "debug",
            Level::Info => "info",
            Level::Warn => "warn",
            Level::Error => "error",
        }
    }

    /// Parses an `RDT_LOG`-style level name (`error`, `warn`, `info`,
    /// `debug`). `None` for anything else — callers treat that as "off".
    pub fn parse(s: &str) -> Option<Level> {
        match s {
            "debug" => Some(Level::Debug),
            "info" => Some(Level::Info),
            "warn" | "warning" => Some(Level::Warn),
            "error" => Some(Level::Error),
            _ => None,
        }
    }
}

impl fmt::Display for Level {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.write_str(self.as_str())
    }
}

/// A typed field value. `Str` owns its payload so captured events outlive
/// the emitting scope.
#[derive(Debug, Clone, PartialEq)]
pub enum Value {
    /// Unsigned integer.
    U64(u64),
    /// Signed integer.
    I64(i64),
    /// Float.
    F64(f64),
    /// Boolean.
    Bool(bool),
    /// String.
    Str(String),
}

impl fmt::Display for Value {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Value::U64(v) => write!(f, "{v}"),
            Value::I64(v) => write!(f, "{v}"),
            Value::F64(v) => write!(f, "{v}"),
            Value::Bool(v) => write!(f, "{v}"),
            Value::Str(v) => write!(f, "{v}"),
        }
    }
}

impl Value {
    /// The value as JSON.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        match self {
            Value::U64(v) => JsonValue::UInt(*v),
            Value::I64(v) => JsonValue::Int(*v),
            Value::F64(v) => JsonValue::Num(*v),
            Value::Bool(v) => JsonValue::Bool(*v),
            Value::Str(v) => JsonValue::Str(v.clone()),
        }
    }
}

/// One structured event, fully owned (sinks may retain it).
#[derive(Debug, Clone, PartialEq)]
pub struct Event {
    /// Severity.
    pub level: Level,
    /// Emitting subsystem, module-path style (e.g. `rdt_sim::engine`).
    pub target: &'static str,
    /// Machine-matchable event name (e.g. `zero_lookahead_fallback`).
    pub name: &'static str,
    /// Human-readable message; may be empty when the fields say it all.
    pub message: String,
    /// Typed payload, in emission order. Field names must not collide with
    /// the JSONL envelope keys (`level`, `target`, `event`, `msg`).
    pub fields: Vec<(&'static str, Value)>,
}

impl Event {
    /// The event as one flat JSON object — the JSONL sink's line format:
    /// `{"level":…,"target":…,"event":…,"msg":…,<fields>…}`.
    pub fn to_json(&self) -> crate::json::JsonValue {
        use crate::json::JsonValue;
        let mut obj = vec![
            (
                "level".to_string(),
                JsonValue::Str(self.level.as_str().into()),
            ),
            ("target".to_string(), JsonValue::Str(self.target.into())),
            ("event".to_string(), JsonValue::Str(self.name.into())),
            ("msg".to_string(), JsonValue::Str(self.message.clone())),
        ];
        for (k, v) in &self.fields {
            obj.push((k.to_string(), v.to_json()));
        }
        JsonValue::Obj(obj)
    }
}

impl fmt::Display for Event {
    /// The human (stderr) format:
    /// `[warn rdt_sim::engine] zero_lookahead_fallback: message (k=v, …)`.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "[{} {}] {}", self.level, self.target, self.name)?;
        if !self.message.is_empty() {
            write!(f, ": {}", self.message)?;
        }
        if !self.fields.is_empty() {
            f.write_str(" (")?;
            for (i, (k, v)) in self.fields.iter().enumerate() {
                if i > 0 {
                    f.write_str(", ")?;
                }
                write!(f, "{k}={v}")?;
            }
            f.write_str(")")?;
        }
        Ok(())
    }
}

/// Fluent event construction; see [`event`](crate::event).
///
/// When the event's level is below the process threshold the builder is
/// inert: field accessors do nothing (no allocation beyond the builder
/// itself) and [`emit`](Self::emit) is a no-op.
#[must_use = "an EventBuilder does nothing until .emit()"]
pub struct EventBuilder {
    event: Option<Event>,
}

impl EventBuilder {
    pub(crate) fn new(level: Level, target: &'static str, name: &'static str) -> Self {
        let event = crate::sink::enabled(level).then(|| Event {
            level,
            target,
            name,
            message: String::new(),
            fields: Vec::new(),
        });
        EventBuilder { event }
    }

    /// Sets the human-readable message.
    pub fn message(mut self, message: impl fmt::Display) -> Self {
        if let Some(event) = &mut self.event {
            event.message = message.to_string();
        }
        self
    }

    /// Adds an unsigned-integer field.
    pub fn u64(mut self, key: &'static str, value: u64) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key, Value::U64(value)));
        }
        self
    }

    /// Adds a signed-integer field.
    pub fn i64(mut self, key: &'static str, value: i64) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key, Value::I64(value)));
        }
        self
    }

    /// Adds a float field.
    pub fn f64(mut self, key: &'static str, value: f64) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key, Value::F64(value)));
        }
        self
    }

    /// Adds a boolean field.
    pub fn bool(mut self, key: &'static str, value: bool) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key, Value::Bool(value)));
        }
        self
    }

    /// Adds a string field. The value is only materialized when the event
    /// passes the level filter.
    pub fn str(mut self, key: &'static str, value: impl fmt::Display) -> Self {
        if let Some(event) = &mut self.event {
            event.fields.push((key, Value::Str(value.to_string())));
        }
        self
    }

    /// Dispatches the event to the process-wide sink (no-op if filtered).
    pub fn emit(self) {
        if let Some(event) = self.event {
            crate::sink::dispatch(&event);
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn level_order_and_names() {
        assert!(Level::Debug < Level::Info);
        assert!(Level::Info < Level::Warn);
        assert!(Level::Warn < Level::Error);
        for l in [Level::Debug, Level::Info, Level::Warn, Level::Error] {
            assert_eq!(Level::parse(l.as_str()), Some(l));
        }
        assert_eq!(Level::parse("verbose"), None);
    }

    #[test]
    fn human_format() {
        let e = Event {
            level: Level::Warn,
            target: "rdt_sim::engine",
            name: "zero_lookahead_fallback",
            message: "falling back".into(),
            fields: vec![("shards", Value::U64(4)), ("strided", Value::Bool(false))],
        };
        assert_eq!(
            e.to_string(),
            "[warn rdt_sim::engine] zero_lookahead_fallback: falling back (shards=4, strided=false)"
        );
    }

    #[test]
    fn json_format_is_flat_and_parseable() {
        let e = Event {
            level: Level::Error,
            target: "t",
            name: "n",
            message: "m \"quoted\"".into(),
            fields: vec![("attempts", Value::U64(5))],
        };
        let line = e.to_json().to_string();
        let parsed = crate::json::parse(&line).unwrap();
        assert_eq!(parsed.get("level").unwrap().as_str(), Some("error"));
        assert_eq!(parsed.get("event").unwrap().as_str(), Some("n"));
        assert_eq!(parsed.get("attempts").unwrap().as_u64(), Some(5));
    }
}
