//! Zero-cost-when-disabled phase profiling: scoped timers, counters and
//! fixed-bucket latency histograms.
//!
//! A [`Profiler`] is a thread-local accumulator: each engine worker owns one
//! and records into it without synchronization, then the coordinator
//! [`merge_suffixed`](ProfileReport::merge_suffixed)s the per-shard reports
//! under `…/<shard>` keys. When disabled, [`Profiler::start`] returns `None`
//! without reading the clock, so the hot path pays one branch per phase.
//!
//! Timing never touches the simulation's RNG or event queue — the profiler
//! observes wall-clock time around deterministic work, so replay goldens
//! stay byte-identical with profiling on (asserted by
//! `crates/sim/tests/obs_equiv.rs`).

use std::collections::BTreeMap;
use std::time::Instant;

use crate::json::JsonValue;

/// Power-of-two latency buckets: bucket `i` counts durations `d` (ns) with
/// `floor(log2(max(d, 1))) == i`, i.e. `[2^i, 2^(i+1))` ns, with 0 ns in
/// bucket 0 and everything ≥ 2^31 ns (~2.1 s) clamped into the last bucket.
pub const HIST_BUCKETS: usize = 32;

/// Bucket index for a duration in nanoseconds.
#[inline]
pub fn bucket_of(ns: u64) -> usize {
    if ns <= 1 {
        0
    } else {
        ((63 - ns.leading_zeros()) as usize).min(HIST_BUCKETS - 1)
    }
}

/// Inclusive upper bound (ns) of bucket `i`, for exposition `le` labels.
/// The last bucket is unbounded (`u64::MAX`).
pub fn bucket_upper_ns(i: usize) -> u64 {
    if i + 1 >= HIST_BUCKETS {
        u64::MAX
    } else {
        (1u64 << (i + 1)) - 1
    }
}

/// Accumulated statistics for one named phase: count, total, min/max and a
/// fixed power-of-two histogram.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PhaseStats {
    /// Number of recorded intervals.
    pub count: u64,
    /// Sum of recorded durations, ns.
    pub total_ns: u64,
    /// Shortest recorded duration, ns (`u64::MAX` while empty).
    pub min_ns: u64,
    /// Longest recorded duration, ns.
    pub max_ns: u64,
    /// Power-of-two latency histogram; see [`bucket_of`].
    pub buckets: [u64; HIST_BUCKETS],
}

impl Default for PhaseStats {
    fn default() -> Self {
        PhaseStats {
            count: 0,
            total_ns: 0,
            min_ns: u64::MAX,
            max_ns: 0,
            buckets: [0; HIST_BUCKETS],
        }
    }
}

impl PhaseStats {
    /// Records one duration.
    #[inline]
    pub fn record(&mut self, ns: u64) {
        self.count += 1;
        self.total_ns = self.total_ns.saturating_add(ns);
        self.min_ns = self.min_ns.min(ns);
        self.max_ns = self.max_ns.max(ns);
        self.buckets[bucket_of(ns)] += 1;
    }

    /// Folds another accumulator into this one.
    pub fn merge(&mut self, other: &PhaseStats) {
        self.count += other.count;
        self.total_ns = self.total_ns.saturating_add(other.total_ns);
        self.min_ns = self.min_ns.min(other.min_ns);
        self.max_ns = self.max_ns.max(other.max_ns);
        for (a, b) in self.buckets.iter_mut().zip(&other.buckets) {
            *a += b;
        }
    }

    /// Mean duration in ns (0 while empty).
    pub fn mean_ns(&self) -> u64 {
        self.total_ns.checked_div(self.count).unwrap_or(0)
    }

    fn to_json(&self) -> JsonValue {
        let mut obj = vec![
            ("count".to_string(), JsonValue::UInt(self.count)),
            ("total_ns".to_string(), JsonValue::UInt(self.total_ns)),
            (
                "min_ns".to_string(),
                JsonValue::UInt(if self.count == 0 { 0 } else { self.min_ns }),
            ),
            ("max_ns".to_string(), JsonValue::UInt(self.max_ns)),
            ("mean_ns".to_string(), JsonValue::UInt(self.mean_ns())),
        ];
        // Sparse histogram: only non-empty buckets, as [upper_bound_ns, n].
        let hist: Vec<JsonValue> = self
            .buckets
            .iter()
            .enumerate()
            .filter(|(_, n)| **n > 0)
            .map(|(i, n)| {
                JsonValue::Arr(vec![
                    JsonValue::UInt(bucket_upper_ns(i)),
                    JsonValue::UInt(*n),
                ])
            })
            .collect();
        obj.push(("hist".to_string(), JsonValue::Arr(hist)));
        JsonValue::Obj(obj)
    }
}

/// A merged profile: named phase timings plus named counters. Phase names
/// are `/`-separated paths (`engine/drain`, `shard/barrier_wait/3`); the
/// per-shard suffix is appended by [`merge_suffixed`](Self::merge_suffixed).
#[derive(Debug, Clone, Default, PartialEq, Eq)]
pub struct ProfileReport {
    /// Phase timings, keyed by phase path.
    pub phases: BTreeMap<String, PhaseStats>,
    /// Monotonic counters, keyed by name.
    pub counters: BTreeMap<String, u64>,
}

impl ProfileReport {
    /// An empty report.
    pub fn new() -> Self {
        Self::default()
    }

    /// The accumulator for `phase`, created on first use.
    pub fn phase_mut(&mut self, phase: &str) -> &mut PhaseStats {
        if !self.phases.contains_key(phase) {
            self.phases.insert(phase.to_string(), PhaseStats::default());
        }
        self.phases.get_mut(phase).expect("just inserted")
    }

    /// The accumulator for `phase`, if any interval was recorded.
    pub fn phase(&self, phase: &str) -> Option<&PhaseStats> {
        self.phases.get(phase)
    }

    /// Adds `delta` to counter `name`.
    pub fn add(&mut self, name: &str, delta: u64) {
        *self.counters.entry(name.to_string()).or_insert(0) += delta;
    }

    /// Folds `other` into this report key-by-key.
    pub fn merge(&mut self, other: &ProfileReport) {
        for (name, stats) in &other.phases {
            self.phase_mut(name).merge(stats);
        }
        for (name, delta) in &other.counters {
            self.add(name, *delta);
        }
    }

    /// Folds `other` in with `/{suffix}` appended to every key — how the
    /// coordinator namespaces per-shard worker reports (`shard/drain` from
    /// worker 2 lands as `shard/drain/2`) — and *also* into the un-suffixed
    /// key, so `shard/drain` on the coordinator is the global total across
    /// workers. Without the global fold, worker series whose names collide
    /// with coordinator-side series were silently dropped from the totals.
    pub fn merge_suffixed(&mut self, other: &ProfileReport, suffix: &str) {
        for (name, stats) in &other.phases {
            self.phase_mut(&format!("{name}/{suffix}")).merge(stats);
            self.phase_mut(name).merge(stats);
        }
        for (name, delta) in &other.counters {
            self.add(&format!("{name}/{suffix}"), *delta);
            self.add(name, *delta);
        }
    }

    /// The report as a JSON object:
    /// `{"phases":{<path>:{count,total_ns,min_ns,max_ns,mean_ns,hist}},"counters":{<name>:n}}`.
    pub fn to_json(&self) -> JsonValue {
        let phases = self
            .phases
            .iter()
            .map(|(name, stats)| (name.clone(), stats.to_json()))
            .collect();
        let counters = self
            .counters
            .iter()
            .map(|(name, v)| (name.clone(), JsonValue::UInt(*v)))
            .collect();
        JsonValue::Obj(vec![
            ("phases".to_string(), JsonValue::Obj(phases)),
            ("counters".to_string(), JsonValue::Obj(counters)),
        ])
    }

    /// The report in Prometheus text exposition format. Phase timings
    /// become `rdt_phase_ns_total` / `rdt_phase_count_total` series labelled
    /// by phase path; counters become `rdt_counter_total` labelled by name;
    /// histograms become cumulative `rdt_phase_latency_ns_bucket` series
    /// with power-of-two `le` bounds. Label values are escaped per the
    /// exposition format (`\\`, `\"`, `\n`).
    pub fn to_prometheus(&self) -> String {
        use std::fmt::Write as _;
        let mut out = String::new();
        out.push_str("# HELP rdt_phase_ns_total Total wall-clock time spent in each phase.\n");
        out.push_str("# TYPE rdt_phase_ns_total counter\n");
        for (name, stats) in &self.phases {
            let _ = writeln!(
                out,
                "rdt_phase_ns_total{{phase=\"{}\"}} {}",
                escape_label_value(name),
                stats.total_ns
            );
        }
        out.push_str("# HELP rdt_phase_count_total Number of recorded intervals per phase.\n");
        out.push_str("# TYPE rdt_phase_count_total counter\n");
        for (name, stats) in &self.phases {
            let _ = writeln!(
                out,
                "rdt_phase_count_total{{phase=\"{}\"}} {}",
                escape_label_value(name),
                stats.count
            );
        }
        out.push_str("# HELP rdt_phase_latency_ns Per-phase latency, power-of-two buckets.\n");
        out.push_str("# TYPE rdt_phase_latency_ns histogram\n");
        for (name, stats) in &self.phases {
            let name = escape_label_value(name);
            let mut cumulative = 0u64;
            for (i, n) in stats.buckets.iter().enumerate() {
                if *n == 0 {
                    continue;
                }
                cumulative += n;
                let le = bucket_upper_ns(i);
                let le = if le == u64::MAX {
                    "+Inf".to_string()
                } else {
                    le.to_string()
                };
                let _ = writeln!(
                    out,
                    "rdt_phase_latency_ns_bucket{{phase=\"{name}\",le=\"{le}\"}} {cumulative}"
                );
            }
            let _ = writeln!(
                out,
                "rdt_phase_latency_ns_sum{{phase=\"{name}\"}} {}",
                stats.total_ns
            );
            let _ = writeln!(
                out,
                "rdt_phase_latency_ns_count{{phase=\"{name}\"}} {}",
                stats.count
            );
        }
        out.push_str("# HELP rdt_counter_total Monotonic event counters.\n");
        out.push_str("# TYPE rdt_counter_total counter\n");
        for (name, v) in &self.counters {
            let _ = writeln!(
                out,
                "rdt_counter_total{{name=\"{}\"}} {v}",
                escape_label_value(name)
            );
        }
        out
    }

    /// Parses a report back out of the exposition text written by
    /// [`to_prometheus`](Self::to_prometheus) — how the serve coordinator
    /// re-aggregates worker `.prom` dumps and how `obs_check` validates
    /// them. Histogram buckets are reconstructed from the cumulative
    /// `_bucket` series; per-phase `min_ns`/`max_ns` are not carried by the
    /// exposition format and come back as the empty-accumulator defaults.
    ///
    /// # Errors
    ///
    /// A human-readable description of the first malformed line, unknown
    /// metric family, mis-aligned bucket bound, or cumulative-count
    /// inconsistency.
    pub fn from_prometheus(text: &str) -> Result<ProfileReport, String> {
        let mut report = ProfileReport::new();
        // phase -> (cumulative count so far, expected final count, total)
        let mut hist_done: BTreeMap<String, u64> = BTreeMap::new();
        for (lineno, raw) in text.lines().enumerate() {
            let line = raw.trim_end();
            let err = |what: &str| format!("line {}: {what}: {line}", lineno + 1);
            if line.is_empty() {
                continue;
            }
            if let Some(comment) = line.strip_prefix('#') {
                let mut words = comment.split_whitespace();
                match words.next() {
                    Some("HELP") | Some("TYPE") => {
                        if words.next().is_none() {
                            return Err(err("comment names no metric"));
                        }
                    }
                    _ => {} // free-form comment
                }
                continue;
            }
            let (metric, labels, value) = split_sample(line).ok_or_else(|| err("bad sample"))?;
            let value: u64 = value
                .parse()
                .map_err(|_| err("sample value is not a u64"))?;
            match metric {
                "rdt_phase_ns_total" => {
                    let phase = single_label(labels, "phase").ok_or_else(|| err("bad labels"))?;
                    report.phase_mut(&phase).total_ns = value;
                }
                "rdt_phase_count_total" => {
                    let phase = single_label(labels, "phase").ok_or_else(|| err("bad labels"))?;
                    report.phase_mut(&phase).count = value;
                }
                "rdt_phase_latency_ns_bucket" => {
                    let (phase, le) =
                        pair_labels(labels, "phase", "le").ok_or_else(|| err("bad labels"))?;
                    let idx = if le == "+Inf" {
                        HIST_BUCKETS - 1
                    } else {
                        let bound: u64 =
                            le.parse().map_err(|_| err("le bound is not a number"))?;
                        let idx = bucket_of(bound);
                        if bucket_upper_ns(idx) != bound {
                            return Err(err("le bound is not a bucket upper bound"));
                        }
                        idx
                    };
                    let prior = hist_done.get(&phase).copied().unwrap_or(0);
                    let n = value
                        .checked_sub(prior)
                        .ok_or_else(|| err("bucket series is not cumulative"))?;
                    report.phase_mut(&phase).buckets[idx] += n;
                    hist_done.insert(phase, value);
                }
                "rdt_phase_latency_ns_sum" => {
                    let phase = single_label(labels, "phase").ok_or_else(|| err("bad labels"))?;
                    let stats = report.phase_mut(&phase);
                    if stats.total_ns != 0 && stats.total_ns != value {
                        return Err(err("histogram sum disagrees with rdt_phase_ns_total"));
                    }
                    stats.total_ns = value;
                }
                "rdt_phase_latency_ns_count" => {
                    let phase = single_label(labels, "phase").ok_or_else(|| err("bad labels"))?;
                    let stats = report.phase_mut(&phase);
                    if stats.count != 0 && stats.count != value {
                        return Err(err("histogram count disagrees with rdt_phase_count_total"));
                    }
                    stats.count = value;
                }
                "rdt_counter_total" => {
                    let name = single_label(labels, "name").ok_or_else(|| err("bad labels"))?;
                    report.add(&name, value);
                }
                other => return Err(format!("line {}: unknown metric {other}", lineno + 1)),
            }
        }
        for (phase, stats) in &report.phases {
            let in_buckets: u64 = stats.buckets.iter().sum();
            if in_buckets != stats.count {
                return Err(format!(
                    "phase {phase}: buckets hold {in_buckets} samples but count is {}",
                    stats.count
                ));
            }
        }
        Ok(report)
    }
}

/// Escapes a label value per the Prometheus text exposition format:
/// backslash, double-quote and newline.
pub fn escape_label_value(value: &str) -> String {
    let mut out = String::with_capacity(value.len());
    for c in value.chars() {
        match c {
            '\\' => out.push_str("\\\\"),
            '"' => out.push_str("\\\""),
            '\n' => out.push_str("\\n"),
            c => out.push(c),
        }
    }
    out
}

/// Reverses [`escape_label_value`]. `None` on a dangling or unknown escape.
fn unescape_label_value(value: &str) -> Option<String> {
    let mut out = String::with_capacity(value.len());
    let mut chars = value.chars();
    while let Some(c) = chars.next() {
        if c != '\\' {
            out.push(c);
            continue;
        }
        match chars.next()? {
            '\\' => out.push('\\'),
            '"' => out.push('"'),
            'n' => out.push('\n'),
            _ => return None,
        }
    }
    Some(out)
}

/// Splits one sample line into `(metric, label_body, value)`. The label
/// body is the text between `{` and the matching un-escaped `}`.
fn split_sample(line: &str) -> Option<(&str, &str, &str)> {
    let brace = line.find('{')?;
    let metric = &line[..brace];
    let rest = &line[brace + 1..];
    // Find the closing brace outside any quoted label value.
    let mut in_quotes = false;
    let mut escaped = false;
    let mut close = None;
    for (i, c) in rest.char_indices() {
        if escaped {
            escaped = false;
            continue;
        }
        match c {
            '\\' if in_quotes => escaped = true,
            '"' => in_quotes = !in_quotes,
            '}' if !in_quotes => {
                close = Some(i);
                break;
            }
            _ => {}
        }
    }
    let close = close?;
    let labels = &rest[..close];
    let value = rest[close + 1..].trim();
    if metric.is_empty() || value.is_empty() {
        return None;
    }
    Some((metric, labels, value))
}

/// Parses `name="value"` label pairs (escaped values allowed).
fn parse_labels(body: &str) -> Option<Vec<(String, String)>> {
    let mut out = Vec::new();
    let mut rest = body;
    while !rest.is_empty() {
        let eq = rest.find('=')?;
        let key = rest[..eq].trim().to_string();
        let after = rest[eq + 1..].strip_prefix('"')?;
        // Scan to the closing un-escaped quote.
        let mut escaped = false;
        let mut end = None;
        for (i, c) in after.char_indices() {
            if escaped {
                escaped = false;
                continue;
            }
            match c {
                '\\' => escaped = true,
                '"' => {
                    end = Some(i);
                    break;
                }
                _ => {}
            }
        }
        let end = end?;
        let value = unescape_label_value(&after[..end])?;
        out.push((key, value));
        rest = after[end + 1..].trim_start_matches(',').trim_start();
    }
    Some(out)
}

/// The value of the single expected label, or `None` on any other shape.
fn single_label(body: &str, key: &str) -> Option<String> {
    let labels = parse_labels(body)?;
    match labels.as_slice() {
        [(k, v)] if k == key => Some(v.clone()),
        _ => None,
    }
}

/// The values of exactly the two expected labels, in either order.
fn pair_labels(body: &str, first: &str, second: &str) -> Option<(String, String)> {
    let labels = parse_labels(body)?;
    if labels.len() != 2 {
        return None;
    }
    let a = labels.iter().find(|(k, _)| k == first)?.1.clone();
    let b = labels.iter().find(|(k, _)| k == second)?.1.clone();
    Some((a, b))
}

/// Whether the `RDT_PROFILE` environment variable requests profiling
/// (any value except unset, empty, or `0`).
pub fn env_enabled() -> bool {
    std::env::var_os("RDT_PROFILE").is_some_and(|v| !v.is_empty() && v != "0")
}

/// A thread-local phase-timing accumulator.
///
/// The disabled path never reads the clock: [`start`](Self::start) returns
/// `None` and [`stop`](Self::stop) ignores it.
#[derive(Debug, Default)]
pub struct Profiler {
    enabled: bool,
    report: ProfileReport,
}

impl Profiler {
    /// A profiler, recording only if `enabled`.
    pub fn new(enabled: bool) -> Self {
        Profiler {
            enabled,
            report: ProfileReport::new(),
        }
    }

    /// A disabled profiler (records nothing).
    pub fn disabled() -> Self {
        Self::new(false)
    }

    /// Whether this profiler records.
    #[inline]
    pub fn enabled(&self) -> bool {
        self.enabled
    }

    /// Opens a timing interval: `Some(now)` when enabled, `None` (no clock
    /// read) when not.
    #[inline]
    pub fn start(&self) -> Option<Instant> {
        if self.enabled {
            Some(Instant::now())
        } else {
            None
        }
    }

    /// Closes a timing interval opened by [`start`](Self::start), charging
    /// the elapsed time to `phase`.
    #[inline]
    pub fn stop(&mut self, phase: &str, start: Option<Instant>) {
        if let Some(start) = start {
            let ns = u64::try_from(start.elapsed().as_nanos()).unwrap_or(u64::MAX);
            self.report.phase_mut(phase).record(ns);
        }
    }

    /// Adds `delta` to counter `name` (when enabled).
    #[inline]
    pub fn add(&mut self, name: &str, delta: u64) {
        if self.enabled {
            self.report.add(name, delta);
        }
    }

    /// The accumulated report: `Some` when enabled, `None` when the profiler
    /// was off (so reports never claim a phase took zero time merely because
    /// timing was disabled).
    pub fn into_report(self) -> Option<ProfileReport> {
        self.enabled.then_some(self.report)
    }

    /// Read access to the in-progress report (for periodic exposition).
    pub fn report(&self) -> Option<&ProfileReport> {
        self.enabled.then_some(&self.report)
    }

    /// Write access to the in-progress report (for merging sub-reports).
    pub fn report_mut(&mut self) -> Option<&mut ProfileReport> {
        self.enabled.then_some(&mut self.report)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bucket_edges() {
        // 0 and 1 ns share bucket 0 ([1, 2) extended down to 0).
        assert_eq!(bucket_of(0), 0);
        assert_eq!(bucket_of(1), 0);
        // Exact powers of two open their own bucket; one less stays below.
        assert_eq!(bucket_of(2), 1);
        assert_eq!(bucket_of(3), 1);
        assert_eq!(bucket_of(4), 2);
        assert_eq!(bucket_of(7), 2);
        assert_eq!(bucket_of(8), 3);
        assert_eq!(bucket_of((1 << 30) - 1), 29);
        assert_eq!(bucket_of(1 << 30), 30);
        // Everything from 2^31 up clamps into the last bucket.
        assert_eq!(bucket_of(1 << 31), HIST_BUCKETS - 1);
        assert_eq!(bucket_of(u64::MAX), HIST_BUCKETS - 1);
    }

    #[test]
    fn bucket_upper_bounds_align_with_bucket_of() {
        for i in 0..HIST_BUCKETS - 1 {
            let upper = bucket_upper_ns(i);
            assert_eq!(bucket_of(upper), i, "upper bound of bucket {i}");
            assert_eq!(bucket_of(upper + 1), i + 1);
        }
        assert_eq!(bucket_upper_ns(HIST_BUCKETS - 1), u64::MAX);
    }

    #[test]
    fn phase_stats_record_and_merge() {
        let mut a = PhaseStats::default();
        a.record(10);
        a.record(100);
        let mut b = PhaseStats::default();
        b.record(5);
        a.merge(&b);
        assert_eq!(a.count, 3);
        assert_eq!(a.total_ns, 115);
        assert_eq!(a.min_ns, 5);
        assert_eq!(a.max_ns, 100);
        assert_eq!(a.mean_ns(), 38);
        assert_eq!(a.buckets.iter().sum::<u64>(), 3);
    }

    #[test]
    fn report_merge_suffixed_namespaces_keys() {
        let mut worker = ProfileReport::new();
        worker.phase_mut("shard/drain").record(50);
        worker.add("events", 7);
        let mut merged = ProfileReport::new();
        merged.merge_suffixed(&worker, "2");
        assert_eq!(merged.phase("shard/drain/2").unwrap().count, 1);
        assert_eq!(merged.counters["events/2"], 7);
        // The un-suffixed keys carry the global totals.
        assert_eq!(merged.phase("shard/drain").unwrap().count, 1);
        assert_eq!(merged.counters["events"], 7);
    }

    #[test]
    fn merge_suffixed_folds_colliding_worker_series_into_global_totals() {
        // Regression: the coordinator already holds a series under the same
        // name as a worker series; the worker's contribution must land in
        // the global total rather than being visible only under its suffix.
        let mut merged = ProfileReport::new();
        merged.phase_mut("store/write").record(100);
        merged.add("frames_sent", 10);
        for (rank, delta) in [(0u32, 3u64), (1, 4)] {
            let mut worker = ProfileReport::new();
            worker.phase_mut("store/write").record(50);
            worker.add("frames_sent", delta);
            merged.merge_suffixed(&worker, &rank.to_string());
        }
        assert_eq!(merged.counters["frames_sent"], 17);
        assert_eq!(merged.counters["frames_sent/0"], 3);
        assert_eq!(merged.counters["frames_sent/1"], 4);
        let global = merged.phase("store/write").unwrap();
        assert_eq!(global.count, 3);
        assert_eq!(global.total_ns, 200);
        assert_eq!(merged.phase("store/write/1").unwrap().count, 1);
    }

    #[test]
    fn disabled_profiler_records_nothing() {
        let mut p = Profiler::disabled();
        let t = p.start();
        assert!(t.is_none());
        p.stop("x", t);
        p.add("c", 3);
        assert!(p.into_report().is_none());
    }

    #[test]
    fn enabled_profiler_accumulates() {
        let mut p = Profiler::new(true);
        let t = p.start();
        assert!(t.is_some());
        p.stop("x", t);
        p.add("c", 3);
        let report = p.into_report().unwrap();
        assert_eq!(report.phase("x").unwrap().count, 1);
        assert_eq!(report.counters["c"], 3);
    }

    #[test]
    fn json_and_prometheus_exposition() {
        let mut r = ProfileReport::new();
        r.phase_mut("engine/drain").record(100);
        r.phase_mut("engine/drain").record(3_000_000_000); // clamps to +Inf bucket
        r.add("frames_sent", 42);
        let json = r.to_json().to_string();
        let parsed = crate::json::parse(&json).unwrap();
        let drain = parsed.get("phases").unwrap().get("engine/drain").unwrap();
        assert_eq!(drain.get("count").unwrap().as_u64(), Some(2));
        assert_eq!(drain.get("total_ns").unwrap().as_u64(), Some(3_000_000_100));
        assert_eq!(
            parsed
                .get("counters")
                .unwrap()
                .get("frames_sent")
                .unwrap()
                .as_u64(),
            Some(42)
        );

        let prom = r.to_prometheus();
        assert!(prom.contains("rdt_phase_ns_total{phase=\"engine/drain\"} 3000000100"));
        assert!(prom.contains("rdt_phase_count_total{phase=\"engine/drain\"} 2"));
        assert!(prom.contains("le=\"+Inf\"}"));
        assert!(prom.contains("rdt_counter_total{name=\"frames_sent\"} 42"));
        assert!(prom.contains("# HELP rdt_phase_ns_total "));
        assert!(prom.contains("# HELP rdt_counter_total "));
    }

    #[test]
    fn label_values_are_escaped_and_unescaped() {
        let mut r = ProfileReport::new();
        r.phase_mut("weird\"phase\\with\nnewline").record(5);
        r.add("plain", 1);
        let prom = r.to_prometheus();
        assert!(prom.contains(r#"phase="weird\"phase\\with\nnewline""#));
        let back = ProfileReport::from_prometheus(&prom).unwrap();
        assert_eq!(back.phase("weird\"phase\\with\nnewline").unwrap().count, 1);
    }

    #[test]
    fn prometheus_round_trips_counts_totals_and_buckets() {
        let mut r = ProfileReport::new();
        r.phase_mut("engine/drain").record(100);
        r.phase_mut("engine/drain").record(130);
        r.phase_mut("engine/drain").record(3_000_000_000);
        r.phase_mut("live/encode").record(0);
        r.add("frames_sent", 42);
        r.add("frames_received", 17);
        let back = ProfileReport::from_prometheus(&r.to_prometheus()).unwrap();
        assert_eq!(back.counters, r.counters);
        for (name, stats) in &r.phases {
            let b = back.phase(name).unwrap();
            assert_eq!(b.count, stats.count, "{name} count");
            assert_eq!(b.total_ns, stats.total_ns, "{name} total");
            assert_eq!(b.buckets, stats.buckets, "{name} buckets");
        }
        // min/max are lossy through the exposition format by design.
    }

    #[test]
    fn from_prometheus_rejects_malformed_input() {
        assert!(ProfileReport::from_prometheus("rdt_counter_total{name=\"x\"}").is_err());
        assert!(ProfileReport::from_prometheus("bogus_metric{name=\"x\"} 1").is_err());
        assert!(
            ProfileReport::from_prometheus("rdt_counter_total{phase=\"x\"} 1").is_err(),
            "wrong label name"
        );
        assert!(
            ProfileReport::from_prometheus(
                "rdt_phase_latency_ns_bucket{phase=\"p\",le=\"12\"} 1\n\
                 rdt_phase_latency_ns_count{phase=\"p\"} 1"
            )
            .is_err(),
            "le bound off the bucket grid"
        );
        assert!(
            ProfileReport::from_prometheus(
                "rdt_phase_latency_ns_bucket{phase=\"p\",le=\"1\"} 2\n\
                 rdt_phase_latency_ns_bucket{phase=\"p\",le=\"3\"} 1\n\
                 rdt_phase_latency_ns_count{phase=\"p\"} 2"
            )
            .is_err(),
            "non-cumulative bucket series"
        );
        assert!(
            ProfileReport::from_prometheus("rdt_phase_count_total{phase=\"p\"} 3").is_err(),
            "count without matching bucket samples"
        );
    }

    #[test]
    fn from_prometheus_merges_cleanly_for_aggregation() {
        // The serve coordinator parses worker dumps and merge_suffixed-es
        // them; totals must add up across the round trip.
        let mut merged = ProfileReport::new();
        for rank in 0..3u32 {
            let mut w = ProfileReport::new();
            w.phase_mut("live/encode").record(64 + u64::from(rank));
            w.add("frames_sent", 5);
            let parsed = ProfileReport::from_prometheus(&w.to_prometheus()).unwrap();
            merged.merge_suffixed(&parsed, &format!("p{rank}"));
        }
        assert_eq!(merged.counters["frames_sent"], 15);
        assert_eq!(merged.counters["frames_sent/p1"], 5);
        assert_eq!(merged.phase("live/encode").unwrap().count, 3);
    }
}
