//! Property tests validating the paper's lemmas on randomly generated CCPs.
//!
//! RD-trackable patterns are generated with the checkpoint-before-receive
//! discipline (every receive is immediately preceded by a forced checkpoint),
//! which makes every zigzag edge causal and hence the CCP RDT by
//! construction. Unrestricted patterns are generated without that rule.

use proptest::prelude::*;
use rdt_base::ProcessId;
use rdt_ccp::{Ccp, CcpBuilder, FaultySet};

/// One generation step: numbers are mapped onto the currently legal moves.
#[derive(Debug, Clone, Copy)]
struct Op {
    kind: u8,
    a: usize,
    b: usize,
}

fn ops(n_ops: usize) -> impl Strategy<Value = Vec<Op>> {
    prop::collection::vec(
        (0u8..6, 0usize..64, 0usize..64).prop_map(|(kind, a, b)| Op { kind, a, b }),
        0..n_ops,
    )
}

/// Replays ops into an unrestricted (possibly non-RDT) CCP.
fn generate(n: usize, ops: &[Op]) -> Ccp {
    let mut b = CcpBuilder::new(n);
    let mut in_flight = Vec::new();
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            // Take a basic checkpoint.
            0 => {
                b.checkpoint(p);
            }
            // Send to some other process.
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                in_flight.push(b.send(p, q));
            }
            // Deliver one in-flight message.
            3 | 4 => {
                if !in_flight.is_empty() {
                    let m = in_flight.remove(op.b % in_flight.len());
                    b.deliver(m);
                }
            }
            // Drop one in-flight message.
            _ => {
                if !in_flight.is_empty() {
                    let m = in_flight.remove(op.b % in_flight.len());
                    b.drop_message(m).expect("in flight");
                }
            }
        }
    }
    b.build()
}

/// CBR variant tracking destinations so the forced checkpoint lands on the
/// receiver.
fn generate_cbr(n: usize, ops: &[Op]) -> Ccp {
    let mut b = CcpBuilder::new(n);
    let mut in_flight: Vec<(rdt_base::MessageId, ProcessId)> = Vec::new();
    for op in ops {
        let p = ProcessId::new(op.a % n);
        match op.kind {
            0 => {
                b.checkpoint(p);
            }
            1 | 2 => {
                let q = ProcessId::new((op.a + 1 + op.b % (n - 1)) % n);
                in_flight.push((b.send(p, q), q));
            }
            3 | 4 => {
                if !in_flight.is_empty() {
                    let (m, dst) = in_flight.remove(op.b % in_flight.len());
                    b.checkpoint(dst); // forced: checkpoint-before-receive
                    b.deliver(m);
                }
            }
            _ => {
                if !in_flight.is_empty() {
                    let (m, _) = in_flight.remove(op.b % in_flight.len());
                    b.drop_message(m).expect("in flight");
                }
            }
        }
    }
    b.build()
}

fn all_faulty_sets(n: usize) -> impl Iterator<Item = FaultySet> {
    (0u64..(1 << n)).map(move |mask| {
        (0..n)
            .filter(|i| mask & (1 << i) != 0)
            .map(ProcessId::new)
            .collect()
    })
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(64))]

    /// Checkpoint-before-receive yields RD-trackable patterns.
    #[test]
    fn cbr_generation_is_rdt(n in 2usize..4, ops in ops(40)) {
        let ccp = generate_cbr(n, &ops);
        prop_assert!(ccp.is_rdt());
    }

    /// Lemma 1 agrees with the exhaustive Definition-5 recovery line on
    /// RD-trackable CCPs, for every faulty set.
    #[test]
    fn lemma1_matches_brute_force(n in 2usize..4, ops in ops(24)) {
        let ccp = generate_cbr(n, &ops);
        for faulty in all_faulty_sets(n) {
            let lemma = ccp.recovery_line(&faulty);
            let brute = ccp.brute_force_recovery_line(&faulty).unwrap();
            prop_assert_eq!(&lemma, &brute, "faulty {:?}", faulty);
            prop_assert!(ccp.is_consistent_global(&lemma));
        }
    }

    /// Theorem 2 is sound: everything causally identifiable as obsolete is
    /// obsolete by Theorem 1.
    #[test]
    fn theorem2_subset_of_theorem1(n in 2usize..5, ops in ops(48)) {
        let ccp = generate_cbr(n, &ops);
        let t2 = ccp.causally_identifiable_obsolete_set();
        let t1 = ccp.obsolete_set();
        prop_assert!(t2.is_subset(&t1));
    }

    /// Lemma 3 + Lemma 2: Theorem 1 coincides with exhaustive needlessness
    /// and with single-failure needlessness on RD-trackable CCPs.
    #[test]
    fn needlessness_lemmas(n in 2usize..4, ops in ops(24)) {
        let ccp = generate_cbr(n, &ops);
        for c in ccp.stable_checkpoints() {
            let t1 = ccp.is_obsolete(c);
            prop_assert_eq!(t1, ccp.is_needless_exhaustive(c), "{}", c);
            prop_assert_eq!(t1, ccp.is_needless_single_failures(c), "{}", c);
        }
    }

    /// The last stable checkpoint of a process is never obsolete.
    #[test]
    fn last_stable_never_obsolete(n in 2usize..5, ops in ops(48)) {
        let ccp = generate_cbr(n, &ops);
        for p in ccp.processes() {
            let last = rdt_base::CheckpointId::new(p, ccp.last_stable(p));
            prop_assert!(!ccp.is_obsolete(last));
        }
    }

    /// On arbitrary (possibly non-RDT) patterns, the brute-force recovery
    /// line exists, is consistent, and excludes faulty volatile states.
    #[test]
    fn brute_force_line_always_consistent(n in 2usize..4, ops in ops(16)) {
        let ccp = generate(n, &ops);
        for faulty in all_faulty_sets(n) {
            let line = ccp.brute_force_recovery_line(&faulty).unwrap();
            prop_assert!(ccp.is_consistent_global(&line));
            for f in &faulty {
                prop_assert!(line.component(*f).index <= ccp.last_stable(*f));
            }
        }
    }

    /// RDT implies no useless checkpoints (Section 2.3).
    #[test]
    fn rdt_has_no_useless_checkpoints(n in 2usize..4, ops in ops(40)) {
        let ccp = generate_cbr(n, &ops);
        prop_assert!(ccp.useless_checkpoints().is_empty());
    }

    /// Causal precedence (via Equation 2) is antisymmetric on distinct
    /// checkpoints and transitive, on any pattern.
    #[test]
    fn precedence_is_a_strict_partial_order(n in 2usize..4, ops in ops(32)) {
        let ccp = generate(n, &ops);
        let all: Vec<_> = ccp.general_checkpoints().collect();
        for &a in &all {
            prop_assert!(!ccp.precedes(a, a), "irreflexive at {:?}", a);
            for &b in &all {
                if ccp.precedes(a, b) {
                    prop_assert!(!ccp.precedes(b, a));
                    for &c in &all {
                        if ccp.precedes(b, c) {
                            prop_assert!(ccp.precedes(a, c));
                        }
                    }
                }
            }
        }
    }
}
