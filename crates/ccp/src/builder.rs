//! Incremental construction of checkpoint-and-communication patterns.

use std::collections::BTreeMap;

use rdt_base::{
    CheckpointIndex, DependencyVector, Error, Incarnation, MessageId, ProcessId, Result, TraceEvent,
};

use crate::model::{Ccp, LocalEvent, MessageRecord};

/// Builds a [`Ccp`] event by event.
///
/// The builder replays the exact dependency-vector propagation of Section 4.2
/// as it goes, so the finished CCP carries the vector each checkpoint would
/// have been stored with by a real RDT protocol.
///
/// Every process implicitly starts with its initial stable checkpoint
/// `s_i^0` (Section 2.2), so a fresh builder already describes a valid CCP.
///
/// # Example — Figure 1 style construction
///
/// ```
/// use rdt_ccp::CcpBuilder;
/// use rdt_base::ProcessId;
///
/// let p1 = ProcessId::new(0);
/// let p2 = ProcessId::new(1);
///
/// let mut b = CcpBuilder::new(2);
/// let m1 = b.send(p1, p2);
/// b.checkpoint(p1);
/// b.deliver(m1);
/// b.checkpoint(p2);
/// let ccp = b.build();
/// assert_eq!(ccp.stable_count(), 4); // two initial + two explicit
/// ```
#[derive(Debug, Clone)]
pub struct CcpBuilder {
    n: usize,
    events: Vec<Vec<LocalEvent>>,
    messages: BTreeMap<MessageId, MessageRecord>,
    dropped: Vec<MessageId>,
    dvs: Vec<DependencyVector>,
    checkpoint_dvs: Vec<Vec<DependencyVector>>,
    next_seq: Vec<u64>,
    incarnations: Vec<Incarnation>,
}

impl CcpBuilder {
    /// Creates a builder for a system of `n` processes, each having stored
    /// its initial checkpoint `s_i^0`.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        let mut b = Self {
            n,
            events: vec![Vec::new(); n],
            messages: BTreeMap::new(),
            dropped: Vec::new(),
            dvs: (0..n).map(|_| DependencyVector::new(n)).collect(),
            checkpoint_dvs: vec![Vec::new(); n],
            next_seq: vec![0; n],
            incarnations: vec![Incarnation::ZERO; n],
        };
        for p in ProcessId::all(n) {
            b.checkpoint(p); // s_i^0
        }
        b
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.n
    }

    /// The current (volatile) dependency vector of `p`.
    pub fn current_dv(&self, p: ProcessId) -> &DependencyVector {
        &self.dvs[p.index()]
    }

    /// `p` stores its next stable checkpoint; returns its index.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range.
    pub fn checkpoint(&mut self, p: ProcessId) -> CheckpointIndex {
        let i = p.index();
        let index = CheckpointIndex::new(self.checkpoint_dvs[i].len());
        debug_assert_eq!(self.dvs[i].entry(p).value(), index.value());
        self.checkpoint_dvs[i].push(self.dvs[i].clone());
        self.events[i].push(LocalEvent::Checkpoint(index));
        self.dvs[i].begin_next_interval(p);
        index
    }

    /// `from` sends a message to `to`; returns its id. The message is
    /// in-transit until [`deliver`](Self::deliver)ed or
    /// [`drop_message`](Self::drop_message)ed.
    ///
    /// # Panics
    ///
    /// Panics if either process is out of range.
    pub fn send(&mut self, from: ProcessId, to: ProcessId) -> MessageId {
        assert!(to.index() < self.n, "destination out of range");
        let id = MessageId::new(from, self.next_seq[from.index()]);
        self.next_seq[from.index()] += 1;
        let record = MessageRecord {
            id,
            dst: to,
            send_interval: self.dvs[from.index()].entry(from),
            send_pos: self.events[from.index()].len(),
            send_dv: self.dvs[from.index()].clone(),
            recv_interval: None,
            recv_pos: None,
        };
        self.events[from.index()].push(LocalEvent::Send(id));
        self.messages.insert(id, record);
        id
    }

    /// The destination of `id` receives it now.
    ///
    /// # Panics
    ///
    /// Panics if the message is unknown or already delivered/dropped; use
    /// [`try_deliver`](Self::try_deliver) for a fallible variant.
    pub fn deliver(&mut self, id: MessageId) {
        self.try_deliver(id).expect("deliver");
    }

    /// Fallible [`deliver`](Self::deliver).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownMessage`] if never sent, [`Error::DuplicateDelivery`]
    /// if already delivered or dropped.
    pub fn try_deliver(&mut self, id: MessageId) -> Result<()> {
        if self.dropped.contains(&id) {
            return Err(Error::DuplicateDelivery(id));
        }
        let record = self
            .messages
            .get_mut(&id)
            .ok_or(Error::UnknownMessage(id))?;
        if record.delivered() {
            return Err(Error::DuplicateDelivery(id));
        }
        let dst = record.dst;
        record.recv_interval = Some(self.dvs[dst.index()].entry(dst));
        record.recv_pos = Some(self.events[dst.index()].len());
        let send_dv = record.send_dv.clone();
        self.events[dst.index()].push(LocalEvent::Receive(id));
        self.dvs[dst.index()].merge_from(&send_dv);
        Ok(())
    }

    /// Marks `id` as lost by the network; it will never contribute to the
    /// dependency relation.
    ///
    /// # Errors
    ///
    /// Same conditions as [`try_deliver`](Self::try_deliver).
    pub fn drop_message(&mut self, id: MessageId) -> Result<()> {
        let record = self.messages.get(&id).ok_or(Error::UnknownMessage(id))?;
        if record.delivered() || self.dropped.contains(&id) {
            return Err(Error::DuplicateDelivery(id));
        }
        self.dropped.push(id);
        Ok(())
    }

    /// Convenience: send from `from` to `to` and deliver immediately.
    pub fn message(&mut self, from: ProcessId, to: ProcessId) -> MessageId {
        let id = self.send(from, to);
        self.deliver(id);
        id
    }

    /// Replays a recovery-session rollback: `p` restores stable checkpoint
    /// `to`, discarding every later checkpoint and opening a fresh
    /// incarnation (mirroring `rdt_protocols::Middleware::rollback`).
    ///
    /// The raw event and message history is deliberately *not* rewritten:
    /// `events`/`messages` keep the dead segments (path-based analyses such
    /// as zigzag queries therefore require crash-free traces), while the
    /// checkpoint/dependency state — everything recovery-line and Theorem-1
    /// queries read — reflects the live history only. Receivers of messages
    /// sent in a dead segment keep the merged knowledge, exactly as live
    /// middlewares do; the incarnation component marks it stale.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range or `to` exceeds the last stable
    /// checkpoint; use [`try_restore`](Self::try_restore) for a fallible
    /// variant.
    pub fn restore(&mut self, p: ProcessId, to: CheckpointIndex) {
        self.try_restore(p, to).expect("restore");
    }

    /// Fallible [`restore`](Self::restore).
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCheckpoint`] if `p` has no stable checkpoint `to`.
    pub fn try_restore(&mut self, p: ProcessId, to: CheckpointIndex) -> Result<()> {
        let i = p.index();
        if i >= self.n || to.value() >= self.checkpoint_dvs[i].len() {
            return Err(Error::UnknownCheckpoint {
                process: p,
                index: to,
            });
        }
        self.checkpoint_dvs[i].truncate(to.value() + 1);
        let mut dv = self.checkpoint_dvs[i][to.value()].clone();
        self.incarnations[i] = self.incarnations[i].next();
        dv.resume_incarnation(p, self.incarnations[i]);
        self.dvs[i] = dv;
        Ok(())
    }

    /// Finishes construction.
    pub fn build(self) -> Ccp {
        Ccp {
            n: self.n,
            events: self.events,
            messages: self.messages,
            checkpoint_dvs: self.checkpoint_dvs,
            volatile_dvs: self.dvs,
            incarnations: self.incarnations,
        }
    }

    /// Replays a trace produced by a workload generator or simulator into a
    /// builder (and ultimately a [`Ccp`]).
    ///
    /// Crash/recovery traces replay too: `Crash` events only mark the
    /// volatile-state loss (no structural effect — the simulator drops
    /// in-transit messages explicitly), and each `Restore` event truncates
    /// the process's live checkpoint history and bumps its incarnation via
    /// [`restore`](Self::restore).
    ///
    /// # Errors
    ///
    /// * Delivery errors as in [`try_deliver`](Self::try_deliver).
    /// * [`Error::UnknownCheckpoint`] for a `Restore` onto a checkpoint the
    ///   replayed history never stored.
    pub fn from_trace(n: usize, trace: &[TraceEvent]) -> Result<Self> {
        let mut b = CcpBuilder::new(n);
        for ev in trace {
            b.apply(ev)?;
        }
        Ok(b)
    }

    /// Applies one trace event to the pattern under construction.
    ///
    /// # Errors
    ///
    /// As in [`from_trace`](Self::from_trace).
    pub fn apply(&mut self, ev: &TraceEvent) -> Result<()> {
        match *ev {
            TraceEvent::Checkpoint { process, .. } => {
                self.checkpoint(process);
            }
            TraceEvent::Send { id, to } => {
                let assigned = self.send(id.sender, to);
                if assigned != id {
                    return Err(Error::UnsupportedTraceEvent(format!(
                        "out-of-order send sequence: expected {assigned}, got {id}"
                    )));
                }
            }
            TraceEvent::Deliver { id } => self.try_deliver(id)?,
            TraceEvent::Drop { id } => self.drop_message(id)?,
            // Garbage collection does not change the dependency
            // structure; the audit module interprets these separately.
            TraceEvent::Collect { .. } => {}
            // A crash alone loses only volatile state; the recovery
            // session's `Restore` events carry the structural change.
            TraceEvent::Crash { .. } => {}
            TraceEvent::Restore { process, to } => self.try_restore(process, to)?,
        }
        Ok(())
    }

    /// The CCP of the cut built so far, without consuming the builder.
    pub fn snapshot(&self) -> Ccp {
        self.clone().build()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::model::GeneralCheckpoint;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn dv_propagation_follows_section_4_2() {
        // p1 checkpoints, then messages p2; p2's DV learns p1's interval.
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0)); // s_1^1, p1 now in interval 2
        b.message(p(0), p(1));
        assert_eq!(b.current_dv(p(1)).to_raw(), vec![2, 1, 0]);
    }

    #[test]
    fn checkpoint_dv_self_entry_equals_index() {
        let mut b = CcpBuilder::new(2);
        let c1 = b.checkpoint(p(0));
        let c2 = b.checkpoint(p(0));
        assert_eq!(c1.value(), 1);
        assert_eq!(c2.value(), 2);
        let ccp = b.build();
        for g in 0..=2 {
            let dv = ccp
                .dv(GeneralCheckpoint::new(p(0), CheckpointIndex::new(g)))
                .unwrap();
            assert_eq!(dv.entry(p(0)).value(), g);
        }
    }

    #[test]
    fn dropped_messages_do_not_propagate() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        let m = b.send(p(0), p(1));
        b.drop_message(m).unwrap();
        assert_eq!(b.current_dv(p(1)).to_raw(), vec![0, 1]);
        assert!(b.try_deliver(m).is_err());
    }

    #[test]
    fn double_delivery_is_rejected() {
        let mut b = CcpBuilder::new(2);
        let m = b.send(p(0), p(1));
        b.deliver(m);
        assert!(matches!(b.try_deliver(m), Err(Error::DuplicateDelivery(_))));
    }

    #[test]
    fn unknown_message_is_rejected() {
        let mut b = CcpBuilder::new(2);
        let ghost = MessageId::new(p(0), 99);
        assert!(matches!(
            b.try_deliver(ghost),
            Err(Error::UnknownMessage(_))
        ));
    }

    #[test]
    fn trace_roundtrip_matches_direct_construction() {
        let trace = vec![
            TraceEvent::Checkpoint {
                process: p(0),
                forced: false,
            },
            TraceEvent::Send {
                id: MessageId::new(p(0), 0),
                to: p(1),
            },
            TraceEvent::Deliver {
                id: MessageId::new(p(0), 0),
            },
            TraceEvent::Checkpoint {
                process: p(1),
                forced: true,
            },
        ];
        let replayed = CcpBuilder::from_trace(2, &trace).unwrap().build();

        let mut direct = CcpBuilder::new(2);
        direct.checkpoint(p(0));
        let m = direct.send(p(0), p(1));
        direct.deliver(m);
        direct.checkpoint(p(1));
        assert_eq!(replayed, direct.build());
    }

    #[test]
    fn restore_truncates_live_history_and_bumps_incarnation() {
        use rdt_base::Incarnation;
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0)); // s^1
        b.checkpoint(p(0)); // s^2
        b.apply(&TraceEvent::Crash { process: p(0) }).unwrap();
        b.apply(&TraceEvent::Restore {
            process: p(0),
            to: CheckpointIndex::new(1),
        })
        .unwrap();
        let ccp = b.snapshot();
        assert_eq!(ccp.last_stable(p(0)), CheckpointIndex::new(1));
        assert_eq!(ccp.incarnation(p(0)), Incarnation::new(1));
        // The volatile vector resumes at interval 2 of incarnation 1.
        assert_eq!(ccp.volatile_dv(p(0)).to_raw_lineages()[0], (1, 2));
        // Re-execution stores checkpoint 2 again, in the new incarnation.
        b.checkpoint(p(0));
        let ccp = b.build();
        assert_eq!(ccp.last_stable(p(0)), CheckpointIndex::new(2));
        assert_eq!(
            ccp.dv(GeneralCheckpoint::new(p(0), CheckpointIndex::new(2)))
                .unwrap()
                .to_raw_lineages()[0],
            (1, 2)
        );
    }

    #[test]
    fn restore_onto_missing_checkpoint_is_rejected() {
        let mut b = CcpBuilder::new(1);
        assert!(matches!(
            b.try_restore(p(0), CheckpointIndex::new(5)),
            Err(Error::UnknownCheckpoint { .. })
        ));
    }

    #[test]
    fn in_transit_message_is_not_part_of_dependency_relation() {
        let mut b = CcpBuilder::new(2);
        let m = b.send(p(0), p(1));
        let ccp = b.build();
        assert!(!ccp.message(m).unwrap().delivered());
        assert_eq!(ccp.delivered_count(), 0);
    }
}
