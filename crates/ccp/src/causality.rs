//! Causal precedence between checkpoints (Definition 1 + Equation 2).

use rdt_base::{CheckpointId, ProcessId};

use crate::model::{Ccp, GeneralCheckpoint};

impl Ccp {
    /// Whether checkpoint `a` causally precedes general checkpoint `b`
    /// (`a → b` in the paper's notation).
    ///
    /// Implemented with Equation 2: `c_a^α → c_b^β ⟺ α < DV(c_b^β)[a]`.
    /// Transitive dependency vectors are exact vector clocks over checkpoint
    /// intervals, so this holds for *any* CCP, not only RD-trackable ones.
    ///
    /// # Panics
    ///
    /// Panics if `b` does not exist in this CCP; `a` need not exist (a
    /// checkpoint never taken precedes nothing).
    pub fn precedes(&self, a: GeneralCheckpoint, b: GeneralCheckpoint) -> bool {
        let dv_b = self.dv(b).expect("precedes: target checkpoint must exist");
        dv_b.dominates_checkpoint(a.process, a.index)
    }

    /// Whether stable checkpoint `a` causally precedes the volatile state of
    /// process `p` (i.e. `a → v_p`).
    pub fn precedes_volatile(&self, a: CheckpointId, p: ProcessId) -> bool {
        self.volatile_dv(p).dominates_checkpoint(a.process, a.index)
    }

    /// Whether two general checkpoints are *consistent*: not causally related
    /// in either direction (Section 2.2).
    pub fn consistent_pair(&self, a: GeneralCheckpoint, b: GeneralCheckpoint) -> bool {
        !self.precedes(a, b) && !self.precedes(b, a)
    }

    /// The paper's `s_f^last → c_i^γ` test used throughout Lemma 1 and
    /// Theorem 1: does the *last stable checkpoint* of `f` causally precede
    /// general checkpoint `c`?
    ///
    /// Compares raw interval indices (exact on crash-free patterns). Lemma-1
    /// queries over patterns with replayed rollbacks must use
    /// [`last_stable_precedes_live`](Self::last_stable_precedes_live).
    pub fn last_stable_precedes(&self, f: ProcessId, c: GeneralCheckpoint) -> bool {
        self.precedes(GeneralCheckpoint::new(f, self.last_stable(f)), c)
    }

    /// Incarnation-aware `s_f^last → c` test: knowledge of a *dead*
    /// incarnation of `f` never counts as depending on `f`'s live
    /// post-checkpoint execution (its surviving prefix lies at or below
    /// `f`'s current last stable checkpoint). Identical to
    /// [`last_stable_precedes`](Self::last_stable_precedes) on crash-free
    /// patterns.
    pub fn last_stable_precedes_live(&self, f: ProcessId, c: GeneralCheckpoint) -> bool {
        let dv_c = self.dv(c).expect("target checkpoint must exist");
        dv_c.dominates_live_checkpoint(f, self.last_stable(f), self.incarnation(f))
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::CheckpointIndex;

    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn g(i: usize, idx: usize) -> GeneralCheckpoint {
        GeneralCheckpoint::new(p(i), CheckpointIndex::new(idx))
    }

    /// Build the chain: p1 ckpt s1^1, m: p1→p2, p2 ckpt s2^1, m: p2→p3.
    fn chain() -> Ccp {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        b.build()
    }

    #[test]
    fn local_order_is_causal() {
        let ccp = chain();
        assert!(ccp.precedes(g(0, 0), g(0, 1)));
        assert!(!ccp.precedes(g(0, 1), g(0, 0)));
    }

    #[test]
    fn message_creates_cross_process_precedence() {
        let ccp = chain();
        // s_1^1 precedes s_2^1 through the message.
        assert!(ccp.precedes(g(0, 1), g(1, 1)));
        assert!(!ccp.precedes(g(1, 1), g(0, 1)));
    }

    #[test]
    fn precedence_is_transitive_through_two_messages() {
        let ccp = chain();
        // s_1^1 → s_2^1 → v_3 (volatile of p3 is index 1).
        assert!(ccp.precedes(g(0, 1), ccp.volatile(p(2))));
        assert!(ccp.precedes_volatile(CheckpointId::new(p(0), CheckpointIndex::new(1)), p(2)));
    }

    #[test]
    fn unrelated_checkpoints_are_consistent() {
        let ccp = chain();
        // s_3^0 and s_1^1 are concurrent.
        assert!(ccp.consistent_pair(g(2, 0), g(0, 1)));
    }

    #[test]
    fn causally_related_checkpoints_are_inconsistent() {
        let ccp = chain();
        assert!(!ccp.consistent_pair(g(0, 1), g(1, 1)));
    }

    #[test]
    fn initial_checkpoints_precede_own_volatile_only_without_messages() {
        let ccp = CcpBuilder::new(2).build();
        assert!(ccp.precedes(g(0, 0), ccp.volatile(p(0))));
        assert!(!ccp.precedes(g(0, 0), ccp.volatile(p(1))));
    }

    #[test]
    fn last_stable_precedes_matches_manual_query() {
        let ccp = chain();
        // last stable of p1 is s_1^1 which precedes p2's volatile.
        assert!(ccp.last_stable_precedes(p(0), ccp.volatile(p(1))));
        assert!(!ccp.last_stable_precedes(p(2), ccp.volatile(p(0))));
    }
}
