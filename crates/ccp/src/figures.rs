//! The paper's worked figures as concrete, oracle-checkable CCPs.

use rdt_base::{MessageId, ProcessId};

use crate::builder::CcpBuilder;
use crate::model::Ccp;

/// Figure 1 of the paper: the running example CCP on three processes.
///
/// Reconstructed from the relations the text states:
/// `[m1, m2]` and `[m1, m4]` are C-paths, `[m5, m4]` is a Z-path, the CCP is
/// RD-trackable, and *without `m3`* it is not (`[m5, m4]` becomes an
/// undoubled Z-path from `s_1^1` to `s_3^2`).
#[derive(Debug, Clone)]
pub struct Figure1 {
    /// The CCP itself.
    pub ccp: Ccp,
    /// The same CCP with `m3` removed (lost) — no longer RD-trackable.
    pub ccp_without_m3: Ccp,
    /// Message ids `m1..m5`, in paper order.
    pub messages: [MessageId; 5],
}

/// Builds [`Figure1`].
pub fn figure1() -> Figure1 {
    let [p1, p2, p3] = [ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)];

    let build = |with_m3: bool| -> (Ccp, [MessageId; 5]) {
        let mut b = CcpBuilder::new(3);
        let m1 = b.message(p1, p2); // sent after s_1^0, received in I_2^1
        let m2 = b.message(p2, p3); // sent after receipt of m1: [m1,m2] C-path
        b.checkpoint(p1); // s_1^1
        b.checkpoint(p2); // s_2^1
        b.checkpoint(p3); // s_3^1
        let m4 = b.send(p2, p3); // sent in I_2^2 BEFORE receiving m5
        let m5 = b.send(p1, p2); // sent after s_1^1
        b.deliver(m5); // received in I_2^2: [m5,m4] is a Z-path
        let m3 = b.send(p1, p3); // doubles [m5,m4] causally
        b.deliver(m4);
        if with_m3 {
            b.deliver(m3);
        } else {
            b.drop_message(m3).expect("m3 in transit");
        }
        b.checkpoint(p3); // s_3^2
        (b.build(), [m1, m2, m3, m4, m5])
    };

    let (ccp, messages) = build(true);
    let (ccp_without_m3, _) = build(false);
    Figure1 {
        ccp,
        ccp_without_m3,
        messages,
    }
}

/// Figure 2 of the paper: useless checkpoints and the domino effect.
///
/// Two processes exchange crossing messages `m1..m4` placed so that every
/// stable checkpoint except the initial ones lies on a zigzag cycle — e.g.
/// `[m2, m1]` connects `s_1^1` to itself — and a single failure forces a
/// rollback to the initial global state.
#[derive(Debug, Clone)]
pub struct Figure2 {
    /// The CCP.
    pub ccp: Ccp,
    /// Message ids `m1..m4`, in paper order.
    pub messages: [MessageId; 4],
}

/// Builds [`Figure2`].
pub fn figure2() -> Figure2 {
    let [p1, p2] = [ProcessId::new(0), ProcessId::new(1)];
    let mut b = CcpBuilder::new(2);
    // m1: p2 → p1, received before s_1^1.
    let m1 = b.message(p2, p1);
    b.checkpoint(p1); // s_1^1
                      // m2: p1 → p2 sent after s_1^1, received in the same interval m1 was
                      // sent in ⇒ [m2, m1] is a Z-path from s_1^1 to s_1^1.
    let m2 = b.message(p1, p2);
    b.checkpoint(p2); // s_2^1
                      // m3: p2 → p1 sent after s_2^1, received before s_1^2.
    let m3 = b.message(p2, p1);
    b.checkpoint(p1); // s_1^2
                      // m4: p1 → p2 sent after s_1^2 ⇒ [m4, m3] cycles s_1^2 and s_2^1.
    let m4 = b.message(p1, p2);
    Figure2 {
        ccp: b.build(),
        messages: [m1, m2, m3, m4],
    }
}

/// Figure 3 of the paper: recovery-line determination on four processes,
/// `F = {p2, p3}`.
///
/// The figure is drawn as a *window* of a longer execution (checkpoint
/// indices 6–11). We realize it as a finite CCP with full histories and
/// messages chosen so that:
///
/// * `R_F` is the last checkpoint of each process not causally preceded by
///   `s_2^last` or `s_3^last` (Lemma 1);
/// * `s_3^last` itself is **not** in `R_F` because `s_2^last → s_3^last`;
/// * the obsolete checkpoints in the shown window are the paper's five,
///   `{c_2^7, c_2^9, c_3^8, c_4^6, c_4^8}`, **plus `c_1^8`**.
///
/// The extra `c_1^8` is unavoidable: retaining it requires a process whose
/// *final* checkpoint causally precedes `c_1^9`, and chasing that
/// requirement around all four processes of the figure yields a causal
/// cycle — in every linearization some process's pin would have to be sent
/// by a process that finishes checkpointing even earlier, ad infinitum. The
/// published figure is in this respect illustrative rather than realizable;
/// see EXPERIMENTS.md.
#[derive(Debug, Clone)]
pub struct Figure3 {
    /// The CCP.
    pub ccp: Ccp,
    /// The faulty set of the example: `{p2, p3}`.
    pub faulty: crate::recovery_line::FaultySet,
    /// First in-window checkpoint index per process (`c_1^8`, `c_2^7`,
    /// `c_3^7`, `c_4^6`).
    pub window_start: [usize; 4],
}

/// Builds [`Figure3`].
pub fn figure3() -> Figure3 {
    let [p1, p2, p3, p4] = [
        ProcessId::new(0),
        ProcessId::new(1),
        ProcessId::new(2),
        ProcessId::new(3),
    ];
    let mut b = CcpBuilder::new(4);

    // p1 takes checkpoints up to c_1^9 = s_1^last, then pins one checkpoint
    // of every other process with its final knowledge. Each message is the
    // FIRST contact of s_1^last with its destination, so it pins exactly the
    // latest checkpoint preceding the delivery interval.
    for _ in 0..9 {
        b.checkpoint(p1);
    }
    let pin_c74 = b.send(p1, p4); // → p4's interval 8, pins c_4^7
    let pin_c82 = b.send(p1, p2); // → p2's interval 9, pins c_2^8
    let pin_c73 = b.send(p1, p3); // → p3's interval 8, pins c_3^7

    // p4 runs to interval 8 (checkpoints c_4^1..c_4^7) and meets p1's pin.
    for _ in 0..7 {
        b.checkpoint(p4);
    }
    b.deliver(pin_c74);
    b.checkpoint(p4); // c_4^8
    b.checkpoint(p4); // c_4^9

    // p2 runs to interval 9, meets p1's pin, finishes at s_2^last = c_2^10,
    // and then pins the interval-10 checkpoints of p4 and p3.
    for _ in 0..8 {
        b.checkpoint(p2);
    }
    b.deliver(pin_c82);
    b.checkpoint(p2); // c_2^9
    b.checkpoint(p2); // c_2^10 = s_2^last
    let pin_c94 = b.send(p2, p4); // → p4's interval 10, pins c_4^9
    let pin_c93 = b.send(p2, p3); // → p3's interval 10, pins c_3^9 and
                                  //   establishes s_2^last → s_3^last

    b.deliver(pin_c94);
    b.checkpoint(p4); // c_4^10 = s_4^last

    // p3 runs to interval 8, meets p1's pin, then p2's in interval 10.
    for _ in 0..7 {
        b.checkpoint(p3);
    }
    b.deliver(pin_c73);
    b.checkpoint(p3); // c_3^8
    b.checkpoint(p3); // c_3^9
    b.deliver(pin_c93);
    b.checkpoint(p3); // c_3^10 = s_3^last

    // NOTE: no message may reach p1 after its pin sends — p1 sent in
    // interval 10, so any same-interval receive would create an undoubled
    // Z-path and break RDT. Consequently p1's recovery-line component is
    // its volatile state.
    let _ = (pin_c74, pin_c94, pin_c82, pin_c73, pin_c93);

    Figure3 {
        ccp: b.build(),
        faulty: [p2, p3].into_iter().collect(),
        window_start: [8, 7, 7, 6],
    }
}

#[cfg(test)]
mod tests {
    use std::collections::BTreeSet;

    use rdt_base::{CheckpointId, CheckpointIndex};

    use super::*;
    use crate::model::GeneralCheckpoint;

    fn g(i: usize, idx: usize) -> GeneralCheckpoint {
        GeneralCheckpoint::new(ProcessId::new(i), CheckpointIndex::new(idx))
    }

    fn s(i: usize, idx: usize) -> CheckpointId {
        CheckpointId::new(ProcessId::new(i), CheckpointIndex::new(idx))
    }

    #[test]
    fn figure1_paths_classify_as_in_the_paper() {
        let fig = figure1();
        let zz = fig.ccp.zigzag();
        let [m1, m2, m3, m4, m5] = fig.messages;

        // [m1, m2] and [m1, m4] are C-paths (from s_1^0).
        assert!(zz.is_causal_path(g(0, 0), &[m1, m2], g(2, 2)));
        assert!(zz.is_causal_path(g(0, 0), &[m1, m4], g(2, 2)));
        // [m5, m4] is a zigzag but not a causal path (from s_1^1).
        assert!(zz.is_zigzag_path(g(0, 1), &[m5, m4], g(2, 2)));
        assert!(!zz.is_causal_path(g(0, 1), &[m5, m4], g(2, 2)));
        // m3 doubles it causally.
        assert!(zz.is_causal_path(g(0, 1), &[m3], g(2, 2)));
    }

    #[test]
    fn figure1_is_rdt_and_breaks_without_m3() {
        let fig = figure1();
        assert!(fig.ccp.is_rdt());
        assert!(!fig.ccp_without_m3.is_rdt());

        // Without m3: s_1^1 ⤳ s_3^2 but s_1^1 ↛ s_3^2.
        let zz = fig.ccp_without_m3.zigzag();
        assert!(zz.zigzag_reaches(g(0, 1), g(2, 2)));
        assert!(!fig.ccp_without_m3.precedes(g(0, 1), g(2, 2)));
    }

    #[test]
    fn figure1_consistency_examples() {
        let fig = figure1();
        // {v1, s_2^1, s_3^1}: v1 = c_1^2.
        use crate::consistency::GlobalCheckpoint;
        assert!(fig
            .ccp
            .is_consistent_global(&GlobalCheckpoint::from_raw(vec![2, 1, 1])));
        // {s_1^0, s_2^1, s_3^1} inconsistent: s_1^0 → s_2^1.
        assert!(!fig
            .ccp
            .is_consistent_global(&GlobalCheckpoint::from_raw(vec![0, 1, 1])));
        assert!(fig.ccp.precedes(g(0, 0), g(1, 1)));
    }

    #[test]
    fn figure2_all_non_initial_checkpoints_are_useless() {
        let fig = figure2();
        let useless: BTreeSet<_> = fig.ccp.useless_checkpoints().into_iter().collect();
        let expected: BTreeSet<_> = [s(0, 1), s(0, 2), s(1, 1)].into_iter().collect();
        assert_eq!(useless, expected);
        assert!(!fig.ccp.is_rdt());
    }

    #[test]
    fn figure2_z_path_m2_m1_cycles_s11() {
        let fig = figure2();
        let zz = fig.ccp.zigzag();
        let [m1, m2, _, _] = fig.messages;
        assert!(zz.is_zigzag_path(g(0, 1), &[m2, m1], g(0, 1)));
        assert!(!zz.is_causal_path(g(0, 1), &[m2, m1], g(0, 1)));
    }

    #[test]
    fn figure2_single_failure_is_a_domino_to_the_initial_state() {
        let fig = figure2();
        for f in 0..2 {
            let faulty = [ProcessId::new(f)].into_iter().collect();
            let rl = fig
                .ccp
                .brute_force_recovery_line(&faulty)
                .expect("recovery line exists");
            assert_eq!(rl.to_raw(), vec![0, 0], "failure of p{}", f + 1);
        }
    }

    #[test]
    fn figure3_is_rdt() {
        assert!(figure3().ccp.is_rdt());
    }

    #[test]
    fn figure3_recovery_line_matches_lemma_1_and_brute_force() {
        let fig = figure3();
        let rl = fig.ccp.recovery_line(&fig.faulty);
        let brute = fig.ccp.brute_force_recovery_line(&fig.faulty).unwrap();
        assert_eq!(rl, brute);
        // p1 keeps its volatile (depends on no faulty slast); p2 keeps
        // s_2^last = c_2^10; p3 rolls to c_3^9 (s_2^last → s_3^last);
        // p4 — although non-faulty — rolls to c_4^9 because s_2^last
        // causally precedes both its volatile state and s_4^last.
        assert_eq!(rl.to_raw(), vec![10, 10, 9, 9]);
    }

    #[test]
    fn figure3_slast3_is_not_in_the_recovery_line() {
        let fig = figure3();
        let p3 = ProcessId::new(2);
        let slast3 = GeneralCheckpoint::new(p3, fig.ccp.last_stable(p3));
        let slast2 =
            GeneralCheckpoint::new(ProcessId::new(1), fig.ccp.last_stable(ProcessId::new(1)));
        assert!(fig.ccp.precedes(slast2, slast3));
        let rl = fig.ccp.recovery_line(&fig.faulty);
        assert_ne!(rl.component(p3), slast3);
    }

    #[test]
    fn figure3_window_obsolete_set_is_the_papers_plus_c18() {
        let fig = figure3();
        let window_obsolete: BTreeSet<CheckpointId> = fig
            .ccp
            .obsolete_set()
            .into_iter()
            .filter(|c| c.index.value() >= fig.window_start[c.process.index()])
            .collect();
        let expected: BTreeSet<CheckpointId> = [
            s(1, 7), // c_2^7
            s(1, 9), // c_2^9
            s(2, 8), // c_3^8
            s(3, 6), // c_4^6
            s(3, 8), // c_4^8
            s(0, 8), // c_1^8 — unrealizable pin, see module docs
        ]
        .into_iter()
        .collect();
        assert_eq!(window_obsolete, expected);
    }

    #[test]
    fn figure3_pre_window_checkpoints_are_all_obsolete() {
        let fig = figure3();
        for c in fig.ccp.stable_checkpoints() {
            if c.index.value() < fig.window_start[c.process.index()] && c.index.value() > 0 {
                assert!(fig.ccp.is_obsolete(c), "{c} should be obsolete");
            }
        }
    }

    #[test]
    fn figure3_needlessness_agrees_with_theorem_1() {
        let fig = figure3();
        for c in fig.ccp.stable_checkpoints() {
            assert_eq!(
                fig.ccp.is_obsolete(c),
                fig.ccp.is_needless_single_failures(c),
                "{c}"
            );
        }
    }
}
