//! ASCII rendering of CCPs for examples and the bench harness.

use std::fmt::Write as _;

use crate::model::{Ccp, LocalEvent};

impl Ccp {
    /// Renders the CCP as an ASCII space-time diagram, one line per process.
    ///
    /// Checkpoints appear as `[γ]`, sends as `s(id)`, receives as `r(id)`,
    /// in program order. This is a debugging/presentation aid; alignment
    /// across processes is not to scale.
    ///
    /// ```
    /// use rdt_ccp::CcpBuilder;
    /// use rdt_base::ProcessId;
    /// let mut b = CcpBuilder::new(2);
    /// b.message(ProcessId::new(0), ProcessId::new(1));
    /// let art = b.build().render_ascii();
    /// assert!(art.contains("p1"));
    /// ```
    pub fn render_ascii(&self) -> String {
        let mut out = String::new();
        for p in self.processes() {
            let _ = write!(out, "{p:>4} ");
            for ev in self.local_events(p) {
                match ev {
                    LocalEvent::Checkpoint(g) => {
                        let _ = write!(out, "[{g}] ");
                    }
                    LocalEvent::Send(id) => {
                        let _ = write!(out, "s({}#{}) ", id.sender, id.seq);
                    }
                    LocalEvent::Receive(id) => {
                        let _ = write!(out, "r({}#{}) ", id.sender, id.seq);
                    }
                }
            }
            let _ = writeln!(out, "| v{}", p.index() + 1);
        }
        out
    }

    /// Renders the CCP as a Graphviz `dot` digraph: one subgraph rank per
    /// process, checkpoint nodes in program order, message edges between
    /// send and receive positions, obsolete stable checkpoints greyed out.
    ///
    /// Useful to visualize the paper's figures:
    /// `cargo run -p rdt-bench --bin fig1 | …` or pipe the output of this
    /// method through `dot -Tsvg`.
    pub fn render_dot(&self) -> String {
        let mut out =
            String::from("digraph ccp {\n  rankdir=LR;\n  node [shape=box, fontsize=10];\n");
        let obsolete = self.obsolete_set();
        for p in self.processes() {
            let _ = writeln!(out, "  subgraph cluster_{} {{", p.index());
            let _ = writeln!(out, "    label=\"{p}\";");
            let mut prev: Option<String> = None;
            for g in 0..=self.last_stable(p).value() {
                let name = format!("c{}_{}", p.index(), g);
                let id = rdt_base::CheckpointId::new(p, rdt_base::CheckpointIndex::new(g));
                let style = if obsolete.contains(&id) {
                    ", style=filled, fillcolor=lightgrey"
                } else {
                    ""
                };
                let _ = writeln!(
                    out,
                    "    {name} [label=\"s{}^{}\"{style}];",
                    p.index() + 1,
                    g
                );
                if let Some(prev) = prev {
                    let _ = writeln!(out, "    {prev} -> {name} [style=dotted];");
                }
                prev = Some(name);
            }
            let vol = format!("v{}", p.index());
            let _ = writeln!(
                out,
                "    {vol} [label=\"v{}\", shape=ellipse];",
                p.index() + 1
            );
            if let Some(prev) = prev {
                let _ = writeln!(out, "    {prev} -> {vol} [style=dotted];");
            }
            let _ = writeln!(out, "  }}");
        }
        for m in self.messages().filter(|m| m.delivered()) {
            // Attach edges between the interval-opening checkpoints.
            let src_ck = m.send_interval.value().saturating_sub(1);
            let dst_ck = m
                .recv_interval
                .expect("delivered")
                .value()
                .saturating_sub(1);
            let _ = writeln!(
                out,
                "  c{}_{} -> c{}_{} [label=\"{}#{}\", color=blue];",
                m.src().index(),
                src_ck,
                m.dst.index(),
                dst_ck,
                m.src(),
                m.id.seq,
            );
        }
        out.push_str("}\n");
        out
    }

    /// One-line summary: process count, checkpoints, messages.
    pub fn summary(&self) -> String {
        format!(
            "{} processes, {} stable checkpoints, {} messages ({} delivered)",
            self.n(),
            self.stable_count(),
            self.messages().count(),
            self.delivered_count(),
        )
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::ProcessId;

    use crate::CcpBuilder;

    #[test]
    fn render_includes_every_event() {
        let mut b = CcpBuilder::new(2);
        let m = b.send(ProcessId::new(0), ProcessId::new(1));
        b.deliver(m);
        b.checkpoint(ProcessId::new(1));
        let art = b.build().render_ascii();
        assert!(art.contains("s(p1#0)"), "{art}");
        assert!(art.contains("r(p1#0)"), "{art}");
        assert!(art.contains("[1]"), "{art}");
        assert_eq!(art.lines().count(), 2);
    }

    #[test]
    fn dot_contains_processes_messages_and_obsolete_marking() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(ProcessId::new(0));
        b.message(ProcessId::new(0), ProcessId::new(1));
        b.checkpoint(ProcessId::new(0)); // makes s_1^0… obsolete? s_1^0 yes
        let dot = b.build().render_dot();
        assert!(dot.starts_with("digraph ccp {"), "{dot}");
        assert!(dot.contains("cluster_0"));
        assert!(dot.contains("color=blue"), "message edge present");
        assert!(dot.contains("lightgrey"), "obsolete checkpoint greyed");
        assert!(dot.ends_with("}\n"));
    }

    #[test]
    fn summary_counts() {
        let mut b = CcpBuilder::new(3);
        let m = b.send(ProcessId::new(0), ProcessId::new(1));
        b.deliver(m);
        b.send(ProcessId::new(0), ProcessId::new(2));
        let s = b.build().summary();
        assert_eq!(
            s,
            "3 processes, 3 stable checkpoints, 2 messages (1 delivered)"
        );
    }
}
