//! Offline safety audit of garbage collection.
//!
//! A collector is *safe* (Theorem 4) if every checkpoint it eliminates is
//! obsolete — in the CCP of the consistent cut **at the moment of
//! elimination**, per the Theorem 1 characterization. Because obsolescence
//! is stable (a needless checkpoint stays needless, Lemma 3), auditing at
//! the elimination cut is exact: a violation found here is a checkpoint some
//! future recovery line may still need.
//!
//! The simulator records [`TraceEvent::Collect`] for each elimination; this
//! module replays the trace and checks every collection against the oracle.

use rdt_base::{CheckpointId, Result, TraceEvent};

use crate::builder::CcpBuilder;

/// Replays a crash-free `trace` and returns every eliminated checkpoint
/// that was **not** obsolete at its elimination cut — the collector's
/// safety violations.
///
/// The Theorem-1 characterization assumes RD-trackable patterns, so the
/// verdicts are meaningful for traces produced under RDT protocols.
///
/// # Errors
///
/// Malformed traces as in [`CcpBuilder::from_trace`], plus
/// [`rdt_base::Error::UnsupportedTraceEvent`] for crash/restore events:
/// the Theorem-1 obsolescence oracle audits *within* one execution epoch,
/// so split traces at recovery sessions before auditing. (Crashy runs are
/// covered end-to-end by the repeated-recovery property tests, which pin
/// the online recovery line against the rollback-replaying oracle.)
///
/// # Example
///
/// ```
/// use rdt_base::{CheckpointIndex, ProcessId, TraceEvent};
/// use rdt_ccp::collection_safety_violations;
///
/// let p1 = ProcessId::new(0);
/// // p1 checkpoints s^1 and immediately collects the lone s^0 — obsolete,
/// // so no violation.
/// let trace = vec![
///     TraceEvent::Checkpoint { process: p1, forced: false },
///     TraceEvent::Collect { process: p1, index: CheckpointIndex::ZERO },
/// ];
/// let violations = collection_safety_violations(2, &trace)?;
/// assert!(violations.is_empty());
/// # Ok::<(), rdt_base::Error>(())
/// ```
pub fn collection_safety_violations(n: usize, trace: &[TraceEvent]) -> Result<Vec<CheckpointId>> {
    let mut b = CcpBuilder::new(n);
    let mut violations = Vec::new();
    for ev in trace {
        match *ev {
            TraceEvent::Collect { process, index } => {
                let s = CheckpointId::new(process, index);
                if !b.snapshot().is_obsolete(s) {
                    violations.push(s);
                }
            }
            TraceEvent::Crash { .. } | TraceEvent::Restore { .. } => {
                return Err(rdt_base::Error::UnsupportedTraceEvent(
                    "the collection-safety audit covers one execution epoch: \
                     split the trace at recovery sessions"
                        .into(),
                ));
            }
            _ => b.apply(ev)?,
        }
    }
    Ok(violations)
}

#[cfg(test)]
mod tests {
    use rdt_base::{CheckpointIndex, ProcessId};

    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn ckpt(i: usize) -> TraceEvent {
        TraceEvent::Checkpoint {
            process: p(i),
            forced: false,
        }
    }

    fn collect(i: usize, index: usize) -> TraceEvent {
        TraceEvent::Collect {
            process: p(i),
            index: CheckpointIndex::new(index),
        }
    }

    #[test]
    fn collecting_a_superseded_lone_checkpoint_is_safe() {
        let trace = vec![ckpt(0), collect(0, 0)];
        assert!(collection_safety_violations(2, &trace).unwrap().is_empty());
    }

    #[test]
    fn collecting_the_last_checkpoint_is_a_violation() {
        // s_1^0 is p1's most recent stable checkpoint: never obsolete.
        let trace = vec![collect(0, 0)];
        let v = collection_safety_violations(2, &trace).unwrap();
        assert_eq!(v, vec![CheckpointId::new(p(0), CheckpointIndex::ZERO)]);
    }

    #[test]
    fn collecting_a_peer_pinned_checkpoint_is_a_violation() {
        use rdt_base::MessageId;
        // p2 checkpoints s_2^1 then messages p1, who checkpoints s_1^1:
        // s_1^0 is pinned by p2 (s_2^1 → s_1^1 ∧ s_2^1 ↛ s_1^0).
        let m = MessageId::new(p(1), 0);
        let trace = vec![
            ckpt(1),
            TraceEvent::Send { id: m, to: p(0) },
            TraceEvent::Deliver { id: m },
            ckpt(0),
            collect(0, 0),
        ];
        let v = collection_safety_violations(2, &trace).unwrap();
        assert_eq!(v, vec![CheckpointId::new(p(0), CheckpointIndex::ZERO)]);
    }

    #[test]
    fn violation_is_judged_at_the_elimination_cut_not_the_end() {
        // s_1^0's pin by p2 disappears later (p2's news propagates), but
        // the collection happened while the pin was live: still flagged.
        use rdt_base::MessageId;
        let m1 = MessageId::new(p(1), 0);
        let m2 = MessageId::new(p(1), 1);
        let trace = vec![
            ckpt(1),
            TraceEvent::Send { id: m1, to: p(0) },
            TraceEvent::Deliver { id: m1 },
            ckpt(0),
            collect(0, 0), // violation: pinned by p2 at this cut
            ckpt(1),
            TraceEvent::Send { id: m2, to: p(0) },
            TraceEvent::Deliver { id: m2 },
            ckpt(0),
        ];
        let v = collection_safety_violations(2, &trace).unwrap();
        assert_eq!(v.len(), 1);
    }

    #[test]
    fn crash_traces_are_rejected() {
        let trace = vec![TraceEvent::Crash { process: p(0) }];
        assert!(collection_safety_violations(2, &trace).is_err());
    }
}
