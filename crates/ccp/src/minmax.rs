//! Wang's minimum and maximum consistent global checkpoints containing a
//! given set of local checkpoints (reference [20] of the paper).
//!
//! These are the decentralized recovery-line calculations the RDT property
//! enables: because every dependency is causal and tracked by the stored
//! dependency vectors, both extremes are computed componentwise with no
//! extra coordination.

use rdt_base::CheckpointIndex;

use crate::consistency::GlobalCheckpoint;
use crate::model::{Ccp, GeneralCheckpoint};

impl Ccp {
    /// The **maximum** consistent global checkpoint containing `targets`:
    /// every non-target component is the latest general checkpoint not
    /// causally following any target.
    ///
    /// Returns `None` if the targets are mutually inconsistent (no such
    /// global checkpoint exists) or reference missing checkpoints.
    ///
    /// Requires an RD-trackable CCP (dependencies must be causal for the
    /// componentwise construction to be consistent).
    pub fn max_consistent_containing(
        &self,
        targets: &[GeneralCheckpoint],
    ) -> Option<GlobalCheckpoint> {
        if !self.targets_usable(targets) {
            return None;
        }
        let components = self
            .processes()
            .map(|i| {
                if let Some(t) = targets.iter().find(|t| t.process == i) {
                    return t.index;
                }
                let mut k = self.volatile(i).index;
                loop {
                    let c = GeneralCheckpoint::new(i, k);
                    if !targets.iter().any(|&t| self.precedes(t, c)) {
                        break k;
                    }
                    k = k.prev().expect("s_i^0 follows nothing");
                }
            })
            .collect();
        Some(GlobalCheckpoint::new(components))
    }

    /// The **minimum** consistent global checkpoint containing `targets`:
    /// every non-target component is the earliest general checkpoint not
    /// causally preceding any target, i.e. `max_t DV(t)[i]`.
    ///
    /// Returns `None` under the same conditions as
    /// [`max_consistent_containing`](Self::max_consistent_containing).
    pub fn min_consistent_containing(
        &self,
        targets: &[GeneralCheckpoint],
    ) -> Option<GlobalCheckpoint> {
        if !self.targets_usable(targets) {
            return None;
        }
        let components = self
            .processes()
            .map(|i| {
                if let Some(t) = targets.iter().find(|t| t.process == i) {
                    return t.index;
                }
                let k = targets
                    .iter()
                    .map(|t| self.dv(*t).expect("target exists").entry(i).value())
                    .max()
                    .unwrap_or(0);
                CheckpointIndex::new(k)
            })
            .collect();
        Some(GlobalCheckpoint::new(components))
    }

    /// Targets exist, are one-per-process at most, and pairwise consistent.
    fn targets_usable(&self, targets: &[GeneralCheckpoint]) -> bool {
        if targets.iter().any(|&t| !self.exists(t)) {
            return false;
        }
        for (k, &a) in targets.iter().enumerate() {
            for &b in &targets[k + 1..] {
                if a.process == b.process && a.index != b.index {
                    return false;
                }
                if !self.consistent_pair(a, b) && a != b {
                    return false;
                }
            }
        }
        true
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::ProcessId;

    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn g(i: usize, idx: usize) -> GeneralCheckpoint {
        GeneralCheckpoint::new(p(i), CheckpointIndex::new(idx))
    }

    /// p1 ckpt, m: p1→p2, p2 ckpt, m: p2→p3, p3 ckpt — an RDT chain.
    fn chain() -> Ccp {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        b.checkpoint(p(2));
        b.build()
    }

    /// Brute force: enumerate all consistent global checkpoints containing
    /// the targets; return (min-by-sum, max-by-sum).
    fn brute(
        ccp: &Ccp,
        targets: &[GeneralCheckpoint],
    ) -> Option<(GlobalCheckpoint, GlobalCheckpoint)> {
        let ceilings: Vec<usize> = ccp
            .processes()
            .map(|q| ccp.volatile(q).index.value())
            .collect();
        let mut all: Vec<GlobalCheckpoint> = Vec::new();
        let mut idx = vec![0usize; ccp.n()];
        'outer: loop {
            let gc = GlobalCheckpoint::from_raw(idx.clone());
            let contains = targets.iter().all(|t| gc.component(t.process) == *t);
            if contains && ccp.is_consistent_global(&gc) {
                all.push(gc);
            }
            let mut pos = 0;
            loop {
                if pos == ccp.n() {
                    break 'outer;
                }
                if idx[pos] < ceilings[pos] {
                    idx[pos] += 1;
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
        let min = all.iter().min_by_key(|g| g.total_progress())?.clone();
        let max = all.iter().max_by_key(|g| g.total_progress())?.clone();
        Some((min, max))
    }

    #[test]
    fn max_and_min_match_brute_force_on_chain() {
        let ccp = chain();
        assert!(ccp.is_rdt());
        for target in [g(0, 1), g(1, 1), g(2, 1), g(1, 0)] {
            let (bmin, bmax) = brute(&ccp, &[target]).expect("target is consistent");
            assert_eq!(
                ccp.min_consistent_containing(&[target]),
                Some(bmin),
                "{target:?}"
            );
            assert_eq!(
                ccp.max_consistent_containing(&[target]),
                Some(bmax),
                "{target:?}"
            );
        }
    }

    #[test]
    fn results_are_consistent_and_contain_targets() {
        let ccp = chain();
        // s_1^1 and s_3^0 are concurrent (s_3^1 would causally follow s_1^1).
        let targets = [g(0, 1), g(2, 0)];
        for gc in [
            ccp.max_consistent_containing(&targets).unwrap(),
            ccp.min_consistent_containing(&targets).unwrap(),
        ] {
            assert!(ccp.is_consistent_global(&gc));
            for t in &targets {
                assert_eq!(gc.component(t.process), *t);
            }
        }
    }

    #[test]
    fn inconsistent_targets_yield_none() {
        let ccp = chain();
        // s_1^1 → s_2^1: inconsistent pair.
        let targets = [g(0, 1), g(1, 1)];
        assert!(!ccp.consistent_pair(targets[0], targets[1]));
        assert!(ccp.max_consistent_containing(&targets).is_none());
        assert!(ccp.min_consistent_containing(&targets).is_none());
    }

    #[test]
    fn missing_target_yields_none() {
        let ccp = chain();
        assert!(ccp.max_consistent_containing(&[g(0, 9)]).is_none());
    }

    #[test]
    fn conflicting_targets_on_same_process_yield_none() {
        let ccp = chain();
        assert!(ccp.min_consistent_containing(&[g(0, 0), g(0, 1)]).is_none());
    }

    #[test]
    fn empty_target_set_gives_extremes() {
        let ccp = chain();
        let max = ccp.max_consistent_containing(&[]).unwrap();
        assert_eq!(max, ccp.volatile_global());
        let min = ccp.min_consistent_containing(&[]).unwrap();
        assert_eq!(min.to_raw(), vec![0, 0, 0]);
    }
}
