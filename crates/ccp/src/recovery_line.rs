//! Recovery-line determination (Definition 5, Lemma 1).

use std::collections::BTreeSet;

use rdt_base::{CheckpointIndex, ProcessId};

use crate::consistency::GlobalCheckpoint;
use crate::model::{Ccp, GeneralCheckpoint};

/// A set of faulty processes `F ⊆ Π`.
pub type FaultySet = BTreeSet<ProcessId>;

impl Ccp {
    /// The recovery line `R_F` for faulty set `F`, by **Lemma 1**:
    ///
    /// `R_F = ⋃_i { c_i^k, k = max(γ | ∀ p_f ∈ F, s_f^last ↛ c_i^γ) }`
    ///
    /// i.e. the last checkpoint (volatile or not) of each process that is not
    /// causally preceded by the last stable checkpoint of any faulty process
    /// in that process's live incarnation
    /// ([`last_stable_precedes_live`](Self::last_stable_precedes_live) —
    /// knowledge of incarnations killed by earlier replayed rollbacks never
    /// blocks, which keeps the scan total under repeated crashes).
    ///
    /// Lemma 1 is proved for RD-trackable CCPs; callers analysing non-RDT
    /// patterns should use
    /// [`brute_force_recovery_line`](Self::brute_force_recovery_line).
    ///
    /// # Panics
    ///
    /// Panics if `F` mentions a process outside the system.
    pub fn recovery_line(&self, faulty: &FaultySet) -> GlobalCheckpoint {
        for f in faulty {
            assert!(f.index() < self.n(), "faulty process out of range");
        }
        let components = self
            .processes()
            .map(|i| {
                let ceiling = if faulty.contains(&i) {
                    // Faulty: volatile state is lost; best case last stable.
                    self.last_stable(i)
                } else {
                    self.volatile(i).index
                };
                // Scan downward for the max γ with no faulty slast preceding.
                let mut k = ceiling;
                loop {
                    let c = GeneralCheckpoint::new(i, k);
                    let blocked = faulty.iter().any(|&f| {
                        // A checkpoint never precedes itself, whatever
                        // incarnation its stored copy was written in.
                        !(f == i && k == self.last_stable(f))
                            && self.last_stable_precedes_live(f, c)
                    });
                    if !blocked {
                        break k;
                    }
                    k = k.prev().expect(
                        "s_i^0 is not causally preceded by anything: Lemma 1 is well-defined",
                    );
                }
            })
            .collect();
        GlobalCheckpoint::new(components)
    }

    /// Exhaustive recovery-line computation straight from **Definition 5**:
    /// among all consistent global checkpoints that exclude the volatile
    /// state of every faulty process, the one minimizing rolled-back
    /// checkpoints (maximizing total progress).
    ///
    /// Exponential in `n` — a validation oracle for
    /// [`recovery_line`](Self::recovery_line), usable for small systems only.
    ///
    /// Returns `None` only if `faulty` is inconsistent with the system size.
    pub fn brute_force_recovery_line(&self, faulty: &FaultySet) -> Option<GlobalCheckpoint> {
        if faulty.iter().any(|f| f.index() >= self.n()) {
            return None;
        }
        let ceilings: Vec<usize> = self
            .processes()
            .map(|p| {
                if faulty.contains(&p) {
                    self.last_stable(p).value()
                } else {
                    self.volatile(p).index.value()
                }
            })
            .collect();

        let mut best: Option<GlobalCheckpoint> = None;
        let mut idx = vec![0usize; self.n()];
        loop {
            let gc = GlobalCheckpoint::new(idx.iter().map(|&v| CheckpointIndex::new(v)).collect());
            if self.is_consistent_global(&gc) {
                let better = match &best {
                    None => true,
                    Some(b) => gc.total_progress() > b.total_progress(),
                };
                if better {
                    best = Some(gc);
                }
            }
            // Odometer over 0..=ceiling per process.
            let mut pos = 0;
            loop {
                if pos == self.n() {
                    return best;
                }
                if idx[pos] < ceilings[pos] {
                    idx[pos] += 1;
                    break;
                }
                idx[pos] = 0;
                pos += 1;
            }
        }
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::CheckpointIndex;

    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn faulty(ids: &[usize]) -> FaultySet {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    /// p1 checkpoints, informs p2; p2 checkpoints, informs p3.
    fn chain() -> Ccp {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        b.build()
    }

    #[test]
    fn empty_faulty_set_keeps_all_volatile_states() {
        let ccp = chain();
        let rl = ccp.recovery_line(&faulty(&[]));
        assert_eq!(rl, ccp.volatile_global());
    }

    #[test]
    fn failure_of_chain_head_rolls_back_dependents() {
        let ccp = chain();
        // p1 fails. s_1^last = s_1^1 precedes s_2^1 and v_2 and v_3.
        let rl = ccp.recovery_line(&faulty(&[0]));
        // p1 keeps s_1^1 (its own last stable is allowed: slast ↛ slast).
        assert_eq!(rl.component(p(0)).index, CheckpointIndex::new(1));
        // p2 rolls back to s_2^0: both s_2^1 and v_2 depend on s_1^1.
        assert_eq!(rl.component(p(1)).index, CheckpointIndex::new(0));
        // p3's volatile depends on s_2^1 hence transitively on s_1^1.
        assert_eq!(rl.component(p(2)).index, CheckpointIndex::new(0));
    }

    #[test]
    fn failure_of_chain_tail_rolls_back_nobody_else() {
        let ccp = chain();
        let rl = ccp.recovery_line(&faulty(&[2]));
        // s_3^last = s_3^0 precedes only v_3.
        assert_eq!(rl.component(p(0)), ccp.volatile(p(0)));
        assert_eq!(rl.component(p(1)), ccp.volatile(p(1)));
        assert_eq!(rl.component(p(2)).index, CheckpointIndex::new(0));
    }

    #[test]
    fn lemma1_matches_brute_force_on_rdt_ccps() {
        let ccp = chain();
        assert!(ccp.is_rdt());
        for f in [
            faulty(&[]),
            faulty(&[0]),
            faulty(&[1]),
            faulty(&[2]),
            faulty(&[0, 1]),
            faulty(&[0, 2]),
            faulty(&[1, 2]),
            faulty(&[0, 1, 2]),
        ] {
            let lemma = ccp.recovery_line(&f);
            let brute = ccp.brute_force_recovery_line(&f).unwrap();
            assert_eq!(lemma, brute, "faulty set {f:?}");
            assert!(ccp.is_consistent_global(&lemma));
        }
    }

    #[test]
    fn recovery_line_is_consistent() {
        let ccp = chain();
        let rl = ccp.recovery_line(&faulty(&[0, 2]));
        assert!(ccp.is_consistent_global(&rl));
    }

    #[test]
    fn all_faulty_recovery_line_uses_stable_checkpoints_only() {
        let ccp = chain();
        let rl = ccp.recovery_line(&faulty(&[0, 1, 2]));
        for m in rl.members() {
            assert!(!ccp.is_volatile(m), "{m:?} must be stable");
        }
    }

    #[test]
    fn brute_force_rejects_out_of_range_faulty() {
        let ccp = chain();
        assert!(ccp.brute_force_recovery_line(&faulty(&[7])).is_none());
    }
}
