//! Obsolete-checkpoint characterizations (Section 3, Theorems 1 and 2).

use std::collections::BTreeSet;

use rdt_base::{CheckpointId, ProcessId};

use crate::model::{Ccp, GeneralCheckpoint};
use crate::recovery_line::FaultySet;

impl Ccp {
    /// **Theorem 1** — exact characterization of obsolete checkpoints in
    /// RD-trackable CCPs: stable checkpoint `s_i^γ` is obsolete iff there is
    /// no process `p_f` with
    /// `s_f^last → c_i^{γ+1}  ∧  s_f^last ↛ s_i^γ`.
    ///
    /// This is the ground-truth oracle the online collectors are validated
    /// against.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a stable checkpoint of this CCP.
    pub fn is_obsolete(&self, s: CheckpointId) -> bool {
        let g = GeneralCheckpoint::from(s);
        assert!(
            self.exists(g) && !self.is_volatile(g),
            "{s} is not a stable checkpoint of this CCP"
        );
        let next = GeneralCheckpoint::new(s.process, s.index.next());
        !self
            .processes()
            .any(|f| self.last_stable_precedes(f, next) && !self.last_stable_precedes(f, g))
    }

    /// **Theorem 2** — the causal-knowledge-only sufficient condition:
    /// `s_i^γ` is (identifiably) obsolete if there is no `p_f` with
    /// `last_k_i(f) ≥ 0 ∧ s_f^lastk_i → c_i^{γ+1} ∧ s_f^lastk_i ↛ s_i^γ`,
    /// where `lastk_i(f)` is the last checkpoint of `p_f` that `p_i`'s
    /// volatile state causally knows (Equation 3).
    ///
    /// Everything this returns `true` for is also obsolete under
    /// [`is_obsolete`](Self::is_obsolete); the converse may fail — that gap
    /// is exactly what Theorem 5 proves unavoidable for asynchronous GC.
    ///
    /// # Panics
    ///
    /// Panics if `s` is not a stable checkpoint of this CCP.
    pub fn is_causally_identifiable_obsolete(&self, s: CheckpointId) -> bool {
        let g = GeneralCheckpoint::from(s);
        assert!(
            self.exists(g) && !self.is_volatile(g),
            "{s} is not a stable checkpoint of this CCP"
        );
        let i = s.process;
        let next = GeneralCheckpoint::new(i, s.index.next());
        let dv_next = self.dv(next).expect("γ+1 exists for stable γ");
        let dv_s = self.dv(g).expect("stable checkpoint exists");
        !self.processes().any(|f| {
            match self.volatile_dv(i).last_known(f) {
                None => false, // last_k_i(f) = −1
                Some(lastk) => {
                    dv_next.dominates_checkpoint(f, lastk) && !dv_s.dominates_checkpoint(f, lastk)
                }
            }
        })
    }

    /// All obsolete stable checkpoints of the CCP (Theorem 1).
    pub fn obsolete_set(&self) -> BTreeSet<CheckpointId> {
        self.stable_checkpoints()
            .filter(|&s| self.is_obsolete(s))
            .collect()
    }

    /// All causally identifiable obsolete checkpoints (Theorem 2) — the set
    /// an *optimal asynchronous* collector must eliminate (Definition 9).
    pub fn causally_identifiable_obsolete_set(&self) -> BTreeSet<CheckpointId> {
        self.stable_checkpoints()
            .filter(|&s| self.is_causally_identifiable_obsolete(s))
            .collect()
    }

    /// **Definition 7** — needlessness by exhaustive enumeration: `s` is
    /// needless iff it belongs to the recovery line of *no* faulty set
    /// `F ⊆ Π`. Exponential in `n`; oracle use only.
    ///
    /// By Lemma 3 this coincides with obsolescence for RD-trackable CCPs.
    pub fn is_needless_exhaustive(&self, s: CheckpointId) -> bool {
        let n = self.n();
        let g = GeneralCheckpoint::from(s);
        for mask in 0u64..(1u64 << n) {
            let faulty: FaultySet = (0..n)
                .filter(|i| mask & (1 << i) != 0)
                .map(ProcessId::new)
                .collect();
            if self.recovery_line(&faulty).component(s.process) == g {
                return false;
            }
        }
        true
    }

    /// **Lemma 2** — needlessness via single failures only: `s` is needless
    /// iff it belongs to no `R_{{p_f}}` for any single faulty process `p_f`
    /// (and is not the process's own last stable checkpoint, which `R_∅`
    /// retains implicitly through the volatile state).
    pub fn is_needless_single_failures(&self, s: CheckpointId) -> bool {
        let g = GeneralCheckpoint::from(s);
        // F = ∅ keeps every volatile state; a stable checkpoint is in R_∅
        // never (volatile components only), so only single failures matter —
        // plus Lemma 2 reduces any larger F to some single failure.
        self.processes().all(|f| {
            let faulty: FaultySet = std::iter::once(f).collect();
            self.recovery_line(&faulty).component(s.process) != g
        })
    }

    /// The checkpoints `p_i` must retain by Theorem 1: for every `p_f` with
    /// `s_f^last → v_i`, the most recent stable checkpoint of `p_i` not
    /// causally preceded by `s_f^last`.
    pub fn retained_set(&self) -> BTreeSet<CheckpointId> {
        self.stable_checkpoints()
            .filter(|&s| !self.is_obsolete(s))
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::CheckpointIndex;

    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn s(i: usize, idx: usize) -> CheckpointId {
        CheckpointId::new(p(i), CheckpointIndex::new(idx))
    }

    /// p1 checkpoints twice with a message to p2 in between.
    fn small() -> Ccp {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0)); // s_1^1
        b.message(p(0), p(1)); // p2 depends on s_1^1
        b.checkpoint(p(0)); // s_1^2
        b.build()
    }

    #[test]
    fn last_stable_is_never_obsolete() {
        let ccp = small();
        for proc_ in ccp.processes() {
            let last = CheckpointId::new(proc_, ccp.last_stable(proc_));
            assert!(!ccp.is_obsolete(last), "{last}");
        }
    }

    #[test]
    fn superseded_unreferenced_checkpoint_is_obsolete() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0)); // s_1^1
        b.checkpoint(p(0)); // s_1^2
        let ccp = b.build();
        // No process depends on p1 at all: s_1^0 and s_1^1 are obsolete.
        assert!(ccp.is_obsolete(s(0, 0)));
        assert!(ccp.is_obsolete(s(0, 1)));
        assert!(!ccp.is_obsolete(s(0, 2)));
    }

    #[test]
    fn dependency_pins_a_non_last_checkpoint() {
        // p2's last stable (s_2^0) precedes nothing of p1; but p1's s_1^1
        // precedes p2's volatile. From p2's perspective: s_1^last = s_1^2
        // does NOT precede v_2 (message was sent in interval 2, carrying
        // knowledge of s_1^1 only)… so which of p2's checkpoints pin p1's?
        let ccp = small();
        // s_1^1 → v_2 but s_1^2 ↛ v_2. For p1's checkpoints the only other
        // process is p2 with s_2^last = s_2^0, which precedes only v_2.
        // So ALL of p1's non-last checkpoints are obsolete by Theorem 1.
        assert!(ccp.is_obsolete(s(0, 0)));
        assert!(ccp.is_obsolete(s(0, 1)));
        assert!(!ccp.is_obsolete(s(0, 2)));
        // p2's own s_2^0: s_1^last = s_1^2 ↛ v_2 and ↛ s_2^0; s_2^last is
        // s_2^0 itself (→ v_2, ↛ itself) so it is retained.
        assert!(!ccp.is_obsolete(s(1, 0)));
    }

    #[test]
    fn theorem1_equals_exhaustive_needlessness() {
        let ccp = small();
        for c in ccp.stable_checkpoints() {
            assert_eq!(
                ccp.is_obsolete(c),
                ccp.is_needless_exhaustive(c),
                "Lemma 3 violated at {c}"
            );
        }
    }

    #[test]
    fn lemma2_single_failures_suffice() {
        let ccp = small();
        for c in ccp.stable_checkpoints() {
            assert_eq!(
                ccp.is_needless_exhaustive(c),
                ccp.is_needless_single_failures(c),
                "Lemma 2 violated at {c}"
            );
        }
    }

    #[test]
    fn theorem2_implies_theorem1() {
        let ccp = small();
        for c in ccp.stable_checkpoints() {
            if ccp.is_causally_identifiable_obsolete(c) {
                assert!(ccp.is_obsolete(c), "Theorem 2 unsound at {c}");
            }
        }
    }

    #[test]
    fn knowledge_gap_example() {
        // p3 checkpoints after messaging p2; p2 cannot know about s_3^2, so
        // a checkpoint of p2 pinned by stale knowledge of p3 stays retained
        // by Theorem 2 while Theorem 1 already calls it obsolete.
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(1)); // s_2^1  (here "p3" is process 1 of a 2-system)
        b.message(p(1), p(0)); // p1 learns s_2^1
        b.checkpoint(p(0)); // s_1^1, depends on s_2^1
        b.checkpoint(p(1)); // s_2^2: p1 never learns of it
        let ccp = b.build();
        // By Theorem 1: is s_1^0 obsolete? p_f = p2: s_2^last = s_2^2.
        // s_2^2 ↛ c_1^1 so no pin from p2 ⇒ s_1^0 obsolete.
        assert!(ccp.is_obsolete(s(0, 0)));
        // By Theorem 2 (p1's knowledge): last_k_1(p2) = 1, s_2^1 → c_1^1
        // and s_2^1 ↛ s_1^0 ⇒ NOT identifiable.
        assert!(!ccp.is_causally_identifiable_obsolete(s(0, 0)));
    }

    #[test]
    fn obsolete_set_and_retained_set_partition_stable_checkpoints() {
        let ccp = small();
        let obsolete = ccp.obsolete_set();
        let retained = ccp.retained_set();
        assert_eq!(obsolete.len() + retained.len(), ccp.stable_count());
        assert!(obsolete.is_disjoint(&retained));
    }

    #[test]
    fn fresh_system_retains_exactly_the_initial_checkpoints() {
        let ccp = CcpBuilder::new(3).build();
        assert!(ccp.obsolete_set().is_empty());
        assert_eq!(ccp.retained_set().len(), 3);
    }
}
