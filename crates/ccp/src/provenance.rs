//! Recovery-line provenance: *why* each component of a recovery line is
//! where it is.
//!
//! [`Ccp::recovery_line`] answers "where does process `i` roll back to";
//! [`Ccp::explain_recovery_line`] additionally records, per component,
//! the exact dependency-vector entry — `(faulty process, incarnation,
//! interval)` — that blocked the next-higher candidate and therefore
//! *pins* the chosen checkpoint, plus every dead-incarnation entry the
//! Lemma-1 scan *amnestied* (knowledge that would have blocked under the
//! raw-interval test but belongs to an incarnation of the faulty process
//! killed by an earlier rollback).
//!
//! The explanation re-runs the same downward scan as `recovery_line`, so
//! [`LineExplanation::line`] is the recovery line by construction;
//! [`LineExplanation::cross_check`] re-derives both facts independently
//! (line equality against [`Ccp::recovery_line`], pin validity against
//! the domination predicate) so `rdt explain` can gate itself against the
//! oracle.

use rdt_base::{CheckpointIndex, ProcessId};

use crate::consistency::GlobalCheckpoint;
use crate::model::{Ccp, GeneralCheckpoint};
use crate::recovery_line::FaultySet;

/// The DV entry that pins one recovery-line component: the knowledge in
/// the lowest *rejected* candidate that ties it to a faulty process's
/// lost execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct PinCause {
    /// The faulty process whose last stable checkpoint causally precedes
    /// the rejected candidate.
    pub blocker: ProcessId,
    /// The rejected candidate — one checkpoint above the chosen one.
    pub rejected: CheckpointIndex,
    /// Incarnation component of the rejected candidate's DV entry for
    /// `blocker`.
    pub incarnation: u32,
    /// Interval component of the same entry: the rejected candidate knows
    /// `blocker`'s execution up to (but excluding) this interval.
    pub interval: usize,
    /// `blocker`'s last stable checkpoint index (`α` in the
    /// `α < DV[f]` domination test the pin is derived from).
    pub last_stable: CheckpointIndex,
}

/// One dead-incarnation DV entry the scan amnestied: it would have
/// blocked its candidate under the raw-interval test, but the knowledge
/// belongs to an incarnation of the faulty process that a rollback
/// already killed, so it does not tie the candidate to *lost* execution.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct AmnestiedEntry {
    /// The candidate checkpoint (of the component's process) whose DV
    /// carried the entry.
    pub at: CheckpointIndex,
    /// The faulty process the entry speaks about.
    pub faulty: ProcessId,
    /// The dead incarnation the entry belongs to.
    pub incarnation: u32,
    /// The raw interval that would have blocked (`last_stable < interval`).
    pub interval: usize,
    /// The faulty process's live incarnation (strictly newer).
    pub live_incarnation: u32,
}

/// Provenance for one process's recovery-line component.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ComponentProvenance {
    /// The process this component belongs to.
    pub process: ProcessId,
    /// The chosen component: where the process rolls back to (or keeps
    /// running from, when `volatile_kept`).
    pub chosen: CheckpointIndex,
    /// The scan ceiling: the volatile index for non-faulty processes, the
    /// last stable checkpoint for faulty ones.
    pub ceiling: CheckpointIndex,
    /// Whether the chosen component is the process's volatile state (no
    /// rollback at all — only possible for non-faulty processes).
    pub volatile_kept: bool,
    /// Why nothing newer survives: the DV entry pinning this component.
    /// `None` exactly when `chosen == ceiling` (nothing was rejected).
    pub pinned_by: Option<PinCause>,
    /// Dead-incarnation entries amnestied while scanning this process,
    /// newest candidate first.
    pub amnestied: Vec<AmnestiedEntry>,
}

/// A recovery line with per-component provenance.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct LineExplanation {
    /// One entry per process, in process order.
    pub components: Vec<ComponentProvenance>,
}

impl LineExplanation {
    /// The explained recovery line itself.
    pub fn line(&self) -> GlobalCheckpoint {
        GlobalCheckpoint::new(self.components.iter().map(|c| c.chosen).collect())
    }

    /// Independently re-derives everything this explanation claims:
    /// the line must equal [`Ccp::recovery_line`], every pin's domination
    /// must hold at the rejected candidate and fail at the chosen one, and
    /// every amnestied entry must be a genuinely dead incarnation that the
    /// raw-interval test would have flagged. `rdt explain` runs this and
    /// turns a failure into a non-zero exit, which is what CI gates on.
    ///
    /// # Errors
    ///
    /// A description of the first claim that does not hold.
    pub fn cross_check(&self, ccp: &Ccp, faulty: &FaultySet) -> Result<(), String> {
        let oracle = ccp.recovery_line(faulty);
        if self.line() != oracle {
            return Err(format!(
                "explained line {:?} differs from the Lemma-1 oracle {:?}",
                self.line(),
                oracle
            ));
        }
        for comp in &self.components {
            let i = comp.process;
            match &comp.pinned_by {
                None => {
                    if comp.chosen != comp.ceiling {
                        return Err(format!(
                            "process {i}: no pin recorded but chosen {:?} < ceiling {:?}",
                            comp.chosen, comp.ceiling
                        ));
                    }
                }
                Some(pin) => {
                    if pin.rejected.value() != comp.chosen.value() + 1 {
                        return Err(format!(
                            "process {i}: pin names candidate {:?}, expected the one \
                             right above chosen {:?}",
                            pin.rejected, comp.chosen
                        ));
                    }
                    let rejected = GeneralCheckpoint::new(i, pin.rejected);
                    if !ccp.last_stable_precedes_live(pin.blocker, rejected) {
                        return Err(format!(
                            "process {i}: pin claims {} blocks candidate {:?}, but the \
                             domination test disagrees",
                            pin.blocker, pin.rejected
                        ));
                    }
                    // The named entry must be the candidate's actual DV entry.
                    let dv = ccp
                        .dv(rejected)
                        .map_err(|e| format!("process {i}: rejected candidate has no DV: {e}"))?;
                    let entry = dv.lineage(pin.blocker);
                    if entry.incarnation().value() != pin.incarnation
                        || entry.interval().value() != pin.interval
                    {
                        return Err(format!(
                            "process {i}: pin names entry ({}, {}), DV holds ({}, {})",
                            pin.incarnation,
                            pin.interval,
                            entry.incarnation(),
                            entry.interval().value()
                        ));
                    }
                    if ccp.last_stable(pin.blocker) != pin.last_stable {
                        return Err(format!(
                            "process {i}: pin records last_stable {:?} for {}, ccp says {:?}",
                            pin.last_stable,
                            pin.blocker,
                            ccp.last_stable(pin.blocker)
                        ));
                    }
                }
            }
            for a in &comp.amnestied {
                let live = ccp.incarnation(a.faulty).value();
                if a.incarnation >= live {
                    return Err(format!(
                        "process {i}: amnestied entry for {} claims dead incarnation {} \
                         but live is {live}",
                        a.faulty, a.incarnation
                    ));
                }
                if ccp.last_stable(a.faulty).value() >= a.interval {
                    return Err(format!(
                        "process {i}: amnestied entry for {} (interval {}) would not have \
                         blocked anyway",
                        a.faulty, a.interval
                    ));
                }
            }
        }
        Ok(())
    }
}

impl Ccp {
    /// [`recovery_line`](Self::recovery_line) with provenance: the same
    /// Lemma-1 downward scan, additionally recording which DV entry pinned
    /// each chosen component and which dead-incarnation entries were
    /// amnestied along the way.
    ///
    /// # Panics
    ///
    /// Panics if `faulty` mentions a process outside the system, like
    /// `recovery_line`.
    pub fn explain_recovery_line(&self, faulty: &FaultySet) -> LineExplanation {
        for f in faulty {
            assert!(f.index() < self.n(), "faulty process out of range");
        }
        let components = self
            .processes()
            .map(|i| {
                let is_faulty = faulty.contains(&i);
                let ceiling = if is_faulty {
                    self.last_stable(i)
                } else {
                    self.volatile(i).index
                };
                let mut amnestied = Vec::new();
                let mut blocker_of_last_rejected: Option<PinCause> = None;
                let mut k = ceiling;
                let chosen = loop {
                    let c = GeneralCheckpoint::new(i, k);
                    let dv = self.dv(c).expect("scan candidates exist");
                    let mut blocked = None;
                    for &f in faulty {
                        // A checkpoint never precedes itself, whatever
                        // incarnation its stored copy was written in.
                        if f == i && k == self.last_stable(f) {
                            continue;
                        }
                        let entry = dv.lineage(f);
                        let live = self.incarnation(f);
                        let alpha = self.last_stable(f);
                        let would_block_raw = alpha.value() < entry.interval().value();
                        if self.last_stable_precedes_live(f, c) {
                            if blocked.is_none() {
                                blocked = Some(PinCause {
                                    blocker: f,
                                    rejected: k,
                                    incarnation: entry.incarnation().value(),
                                    interval: entry.interval().value(),
                                    last_stable: alpha,
                                });
                            }
                        } else if would_block_raw && entry.incarnation() < live {
                            // Dead-incarnation knowledge: the raw-interval
                            // test would have blocked, the live test did not.
                            amnestied.push(AmnestiedEntry {
                                at: k,
                                faulty: f,
                                incarnation: entry.incarnation().value(),
                                interval: entry.interval().value(),
                                live_incarnation: live.value(),
                            });
                        }
                    }
                    match blocked {
                        None => break k,
                        Some(pin) => {
                            blocker_of_last_rejected = Some(pin);
                            k = k.prev().expect(
                                "s_i^0 is not causally preceded by anything: \
                                 Lemma 1 is well-defined",
                            );
                        }
                    }
                };
                ComponentProvenance {
                    process: i,
                    chosen,
                    ceiling,
                    volatile_kept: !is_faulty && chosen == self.volatile(i).index,
                    pinned_by: blocker_of_last_rejected,
                    amnestied,
                }
            })
            .collect();
        LineExplanation { components }
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn faulty(ids: &[usize]) -> FaultySet {
        ids.iter().map(|&i| ProcessId::new(i)).collect()
    }

    /// p1 checkpoints, informs p2; p2 checkpoints, informs p3.
    fn chain() -> Ccp {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.message(p(0), p(1));
        b.checkpoint(p(1));
        b.message(p(1), p(2));
        b.build()
    }

    #[test]
    fn explanation_line_matches_recovery_line_on_all_masks() {
        let ccp = chain();
        for mask in 0u32..8 {
            let f: FaultySet = (0..3).filter(|i| mask & (1 << i) != 0).map(p).collect();
            let exp = ccp.explain_recovery_line(&f);
            assert_eq!(exp.line(), ccp.recovery_line(&f), "mask {mask}");
            exp.cross_check(&ccp, &f).unwrap();
        }
    }

    #[test]
    fn pin_names_the_blocking_dv_entry() {
        let ccp = chain();
        // p0 fails: p1 rolls back from volatile (index 2 region) to s_1^0,
        // because its newer states depend on s_0^1.
        let exp = ccp.explain_recovery_line(&faulty(&[0]));
        let c1 = &exp.components[1];
        assert_eq!(c1.chosen, CheckpointIndex::new(0));
        assert!(!c1.volatile_kept);
        let pin = c1.pinned_by.as_ref().expect("p1 was pinned");
        assert_eq!(pin.blocker, p(0));
        assert_eq!(pin.rejected, CheckpointIndex::new(1));
        assert_eq!(pin.last_stable, CheckpointIndex::new(1));
        // s_1^1 was taken after the message from p0's interval 2, so its DV
        // entry for p0 is (inc 0, interval 2): knowledge past s_0^1.
        assert_eq!(pin.incarnation, 0);
        assert_eq!(pin.interval, 2);

        // p0 itself keeps its last stable: ceiling, no pin.
        let c0 = &exp.components[0];
        assert_eq!(c0.chosen, c0.ceiling);
        assert!(c0.pinned_by.is_none());
    }

    #[test]
    fn unaffected_processes_keep_volatile_unpinned() {
        let ccp = chain();
        let exp = ccp.explain_recovery_line(&faulty(&[2]));
        for i in [0usize, 1] {
            let c = &exp.components[i];
            assert!(c.volatile_kept, "p{i} keeps running");
            assert!(c.pinned_by.is_none());
            assert!(c.amnestied.is_empty(), "crash-free: nothing to amnesty");
        }
    }

    #[test]
    fn cross_check_catches_a_forged_pin() {
        let ccp = chain();
        let f = faulty(&[0]);
        let mut exp = ccp.explain_recovery_line(&f);
        let pin = exp.components[1].pinned_by.as_mut().unwrap();
        pin.interval += 7;
        assert!(exp.cross_check(&ccp, &f).is_err());
    }

    #[test]
    fn cross_check_catches_a_forged_line() {
        let ccp = chain();
        let f = faulty(&[0]);
        let mut exp = ccp.explain_recovery_line(&f);
        exp.components[2].chosen = CheckpointIndex::new(1);
        assert!(exp.cross_check(&ccp, &f).is_err());
    }
}
