//! Zigzag paths, causal paths and the RDT predicate
//! (Definitions 3 and 4, after Netzer and Xu).

use rdt_base::{CheckpointId, MessageId};

use crate::model::{Ccp, GeneralCheckpoint, MessageRecord};

/// Precomputed zigzag/causal reachability over the delivered messages of a
/// [`Ccp`].
///
/// Definition 3 (zigzag path): `[m_1, …, m_k]` connects `c_a^α` to `c_b^β`
/// iff `m_1` is sent by `p_a` after `c_a^α`, each `m_{i+1}` is sent by the
/// receiver of `m_i` in the *same or a later* checkpoint interval, and `m_k`
/// is received by `p_b` before `c_b^β`.
///
/// A zigzag path is *causal* (a C-path) when each receipt precedes the next
/// send in program order; otherwise it is a Z-path.
///
/// The analysis is an offline oracle: it is rebuilt from scratch for the CCP
/// it was created from and caches all-pairs message reachability as bitsets.
#[derive(Debug, Clone)]
pub struct ZigzagAnalysis {
    /// Delivered messages in a stable order.
    msgs: Vec<MessageRecord>,
    /// `reach_zz[i]` = bitset of messages reachable from message `i` via
    /// zigzag edges (reflexive).
    reach_zz: Vec<Bitset>,
    /// Same for causal edges.
    reach_causal: Vec<Bitset>,
}

#[derive(Debug, Clone)]
struct Bitset(Vec<u64>);

impl Bitset {
    fn new(len: usize) -> Self {
        Self(vec![0; len.div_ceil(64)])
    }

    fn set(&mut self, i: usize) {
        self.0[i / 64] |= 1 << (i % 64);
    }

    fn get(&self, i: usize) -> bool {
        self.0[i / 64] & (1 << (i % 64)) != 0
    }
}

impl ZigzagAnalysis {
    /// Builds the analysis for a CCP.
    pub fn new(ccp: &Ccp) -> Self {
        let msgs: Vec<MessageRecord> = ccp.messages().filter(|m| m.delivered()).cloned().collect();
        let m = msgs.len();

        // Edge m -> m': the receiver of m sends m' in the same or a later
        // interval (zigzag), or strictly after the receive event (causal).
        let mut succ_zz: Vec<Vec<usize>> = vec![Vec::new(); m];
        let mut succ_causal: Vec<Vec<usize>> = vec![Vec::new(); m];
        for (i, a) in msgs.iter().enumerate() {
            let (ri, rp) = (
                a.recv_interval.expect("delivered"),
                a.recv_pos.expect("delivered"),
            );
            for (j, b) in msgs.iter().enumerate() {
                if b.src() != a.dst {
                    continue;
                }
                if b.send_interval >= ri {
                    succ_zz[i].push(j);
                }
                if b.send_pos > rp {
                    succ_causal[i].push(j);
                }
            }
        }

        let reach = |succ: &Vec<Vec<usize>>| -> Vec<Bitset> {
            (0..m)
                .map(|start| {
                    let mut seen = Bitset::new(m);
                    seen.set(start);
                    let mut stack = vec![start];
                    while let Some(x) = stack.pop() {
                        for &y in &succ[x] {
                            if !seen.get(y) {
                                seen.set(y);
                                stack.push(y);
                            }
                        }
                    }
                    seen
                })
                .collect()
        };

        Self {
            reach_zz: reach(&succ_zz),
            reach_causal: reach(&succ_causal),
            msgs,
        }
    }

    /// Whether a zigzag path connects `a` to `b` (`a ⤳ b`).
    pub fn zigzag_reaches(&self, a: GeneralCheckpoint, b: GeneralCheckpoint) -> bool {
        self.reaches(&self.reach_zz, a, b)
    }

    /// Whether a *causal* path (C-path) of messages connects `a` to `b`.
    pub fn causal_path_reaches(&self, a: GeneralCheckpoint, b: GeneralCheckpoint) -> bool {
        self.reaches(&self.reach_causal, a, b)
    }

    /// A concrete zigzag path witnessing `a ⤳ b`, as a message sequence, or
    /// `None` if no zigzag path exists. The witness satisfies
    /// [`is_zigzag_path`](Self::is_zigzag_path) by construction.
    pub fn zigzag_witness(
        &self,
        a: GeneralCheckpoint,
        b: GeneralCheckpoint,
    ) -> Option<Vec<MessageId>> {
        self.witness(a, b, |prev, next| {
            next.send_interval >= prev.recv_interval.expect("delivered")
        })
    }

    /// A concrete C-path witnessing a causal message chain from `a` to `b`.
    pub fn causal_witness(
        &self,
        a: GeneralCheckpoint,
        b: GeneralCheckpoint,
    ) -> Option<Vec<MessageId>> {
        self.witness(a, b, |prev, next| {
            next.send_pos > prev.recv_pos.expect("delivered")
        })
    }

    /// BFS over message edges collecting parent pointers, then reconstructs
    /// the shortest (in hop count) witness path.
    fn witness(
        &self,
        a: GeneralCheckpoint,
        b: GeneralCheckpoint,
        link_ok: impl Fn(&MessageRecord, &MessageRecord) -> bool,
    ) -> Option<Vec<MessageId>> {
        let m = self.msgs.len();
        let is_start =
            |r: &MessageRecord| r.src() == a.process && r.send_interval.value() > a.index.value();
        let is_end = |r: &MessageRecord| {
            r.dst == b.process && r.recv_interval.expect("delivered").value() <= b.index.value()
        };

        let mut parent: Vec<Option<usize>> = vec![None; m];
        let mut visited = vec![false; m];
        let mut queue = std::collections::VecDeque::new();
        for (i, r) in self.msgs.iter().enumerate() {
            if is_start(r) {
                visited[i] = true;
                queue.push_back(i);
            }
        }
        while let Some(i) = queue.pop_front() {
            if is_end(&self.msgs[i]) {
                let mut path = vec![self.msgs[i].id];
                let mut cur = i;
                while let Some(p) = parent[cur] {
                    path.push(self.msgs[p].id);
                    cur = p;
                }
                path.reverse();
                return Some(path);
            }
            for (j, next) in self.msgs.iter().enumerate() {
                if !visited[j] && next.src() == self.msgs[i].dst && link_ok(&self.msgs[i], next) {
                    visited[j] = true;
                    parent[j] = Some(i);
                    queue.push_back(j);
                }
            }
        }
        None
    }

    fn reaches(&self, reach: &[Bitset], a: GeneralCheckpoint, b: GeneralCheckpoint) -> bool {
        // Starts: messages sent by a.process after c_a^α (interval > α).
        // Ends: messages received by b.process before c_b^β (interval ≤ β).
        for (i, first) in self.msgs.iter().enumerate() {
            if first.src() != a.process || first.send_interval.value() <= a.index.value() {
                continue;
            }
            for (j, last) in self.msgs.iter().enumerate() {
                if last.dst != b.process
                    || last.recv_interval.expect("delivered").value() > b.index.value()
                {
                    continue;
                }
                if reach[i].get(j) {
                    return true;
                }
            }
        }
        false
    }

    /// Whether the sequence of message ids forms a zigzag path from `a` to
    /// `b` — useful to check the concrete examples of the paper's Figure 1.
    pub fn is_zigzag_path(
        &self,
        a: GeneralCheckpoint,
        path: &[MessageId],
        b: GeneralCheckpoint,
    ) -> bool {
        self.is_path(a, path, b, |prev, next| {
            next.send_interval >= prev.recv_interval.expect("delivered")
        })
    }

    /// Whether the sequence forms a *causal* path (each receipt precedes the
    /// next send in program order).
    pub fn is_causal_path(
        &self,
        a: GeneralCheckpoint,
        path: &[MessageId],
        b: GeneralCheckpoint,
    ) -> bool {
        self.is_path(a, path, b, |prev, next| {
            next.send_pos > prev.recv_pos.expect("delivered")
        })
    }

    fn is_path(
        &self,
        a: GeneralCheckpoint,
        path: &[MessageId],
        b: GeneralCheckpoint,
        link_ok: impl Fn(&MessageRecord, &MessageRecord) -> bool,
    ) -> bool {
        let records: Option<Vec<&MessageRecord>> = path
            .iter()
            .map(|id| self.msgs.iter().find(|m| m.id == *id))
            .collect();
        let Some(records) = records else {
            return false;
        };
        let Some(first) = records.first() else {
            return false;
        };
        let last = records.last().expect("non-empty");
        if first.src() != a.process || first.send_interval.value() <= a.index.value() {
            return false;
        }
        if last.dst != b.process || last.recv_interval.expect("delivered").value() > b.index.value()
        {
            return false;
        }
        records.windows(2).all(|w| {
            let (prev, next) = (w[0], w[1]);
            next.src() == prev.dst && link_ok(prev, next)
        })
    }
}

impl Ccp {
    /// Builds the zigzag analysis for this CCP.
    ///
    /// The analysis is O(M²) in the number of delivered messages; build it
    /// once and reuse it for multiple queries.
    pub fn zigzag(&self) -> ZigzagAnalysis {
        ZigzagAnalysis::new(self)
    }

    /// Rollback-dependency trackability (Definition 4): for any two general
    /// checkpoints, `c ⤳ c' ⇒ c → c'`.
    pub fn is_rdt(&self) -> bool {
        let zz = self.zigzag();
        let all: Vec<GeneralCheckpoint> = self.general_checkpoints().collect();
        for &a in &all {
            for &b in &all {
                if zz.zigzag_reaches(a, b) && !self.precedes(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// Stable checkpoints on a zigzag cycle (`c ⤳ c`), which are *useless*:
    /// they can take part in no consistent global checkpoint (Section 2.2).
    pub fn useless_checkpoints(&self) -> Vec<CheckpointId> {
        let zz = self.zigzag();
        self.stable_checkpoints()
            .filter(|c| {
                let g = GeneralCheckpoint::from(*c);
                zz.zigzag_reaches(g, g)
            })
            .collect()
    }
}

#[cfg(test)]
mod tests {
    use rdt_base::{CheckpointIndex, ProcessId};

    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    fn g(i: usize, idx: usize) -> GeneralCheckpoint {
        GeneralCheckpoint::new(p(i), CheckpointIndex::new(idx))
    }

    /// The paper's Figure 2 pattern: messages crossing checkpoint boundaries
    /// so every non-initial checkpoint lies on a zigzag cycle.
    fn domino() -> Ccp {
        let mut b = CcpBuilder::new(2);
        let _m1 = b.message(p(1), p(0)); // received by p1 before s_1^1
        b.checkpoint(p(0)); // s_1^1
        let _m2 = b.message(p(0), p(1)); // sent after s_1^1, recv in m1's interval
        b.checkpoint(p(1)); // s_2^1
        let _m3 = b.message(p(1), p(0)); // sent after s_2^1, recv before s_1^2
        b.checkpoint(p(0)); // s_1^2
        let _m4 = b.message(p(0), p(1)); // sent after s_1^2, recv in m3's interval
        b.build()
    }

    #[test]
    fn crossing_messages_make_checkpoints_useless() {
        let ccp = domino();
        let useless = ccp.useless_checkpoints();
        // All three non-initial stable checkpoints are useless.
        assert_eq!(useless.len(), 3);
        assert!(!ccp.is_rdt());
    }

    #[test]
    fn initial_checkpoints_are_never_useless() {
        let ccp = domino();
        for c in ccp.useless_checkpoints() {
            assert!(c.index > CheckpointIndex::ZERO);
        }
    }

    #[test]
    fn causal_chain_is_both_zigzag_and_causal() {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        let m1 = b.message(p(0), p(1));
        let m2 = b.message(p(1), p(2));
        let ccp = b.build();
        let zz = ccp.zigzag();
        let a = g(0, 1);
        let c = ccp.volatile(p(2));
        assert!(zz.is_causal_path(a, &[m1, m2], c));
        assert!(zz.is_zigzag_path(a, &[m1, m2], c));
        assert!(zz.zigzag_reaches(a, c));
        assert!(zz.causal_path_reaches(a, c));
    }

    #[test]
    fn non_causal_zigzag_is_not_a_c_path() {
        // m' received by p2 AFTER p2 already sent m'' in the same interval:
        // [m', m''] is a Z-path but not a C-path.
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0)); // s_1^1
        let m_prime = b.send(p(0), p(1)); // sent after s_1^1
        let m_dprime = b.send(p(1), p(2)); // p2 sends BEFORE receiving m'
        b.deliver(m_prime);
        b.deliver(m_dprime);
        b.checkpoint(p(2)); // s_3^1, after receiving m''
        let ccp = b.build();
        let zz = ccp.zigzag();
        let a = g(0, 1);
        let c = g(2, 1);
        assert!(zz.is_zigzag_path(a, &[m_prime, m_dprime], c));
        assert!(!zz.is_causal_path(a, &[m_prime, m_dprime], c));
        assert!(zz.zigzag_reaches(a, c));
        assert!(!zz.causal_path_reaches(a, c));
        // And the zigzag is NOT doubled by causal precedence: RDT broken.
        assert!(!ccp.precedes(a, c));
        assert!(!ccp.is_rdt());
    }

    #[test]
    fn empty_path_is_rejected() {
        let ccp = CcpBuilder::new(2).build();
        let zz = ccp.zigzag();
        assert!(!zz.is_zigzag_path(g(0, 0), &[], g(1, 0)));
    }

    #[test]
    fn message_free_ccp_is_rdt() {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        b.checkpoint(p(1));
        assert!(b.build().is_rdt());
    }

    #[test]
    fn witnesses_are_valid_paths() {
        let fig2 = {
            let mut b = CcpBuilder::new(2);
            let _ = b.message(p(1), p(0));
            b.checkpoint(p(0));
            let _ = b.message(p(0), p(1));
            b.checkpoint(p(1));
            b.build()
        };
        let zz = fig2.zigzag();
        let cycle_at = g(0, 1);
        let witness = zz.zigzag_witness(cycle_at, cycle_at).expect("cycle exists");
        assert!(zz.is_zigzag_path(cycle_at, &witness, cycle_at));
        // No causal path can cycle a checkpoint.
        assert!(zz.causal_witness(cycle_at, cycle_at).is_none());
    }

    #[test]
    fn witness_none_when_unreachable() {
        let ccp = CcpBuilder::new(2).build();
        let zz = ccp.zigzag();
        assert!(zz.zigzag_witness(g(0, 0), g(1, 0)).is_none());
    }

    #[test]
    fn causal_witness_matches_chain() {
        let mut b = CcpBuilder::new(3);
        b.checkpoint(p(0));
        let m1 = b.message(p(0), p(1));
        let m2 = b.message(p(1), p(2));
        let ccp = b.build();
        let zz = ccp.zigzag();
        let w = zz
            .causal_witness(g(0, 1), ccp.volatile(p(2)))
            .expect("chain exists");
        assert_eq!(w, vec![m1, m2]);
    }

    #[test]
    fn path_with_wrong_start_process_is_rejected() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(p(0));
        let m = b.message(p(0), p(1));
        let ccp = b.build();
        let zz = ccp.zigzag();
        // Path starts at p1's checkpoint, not p2's.
        assert!(!zz.is_zigzag_path(g(1, 0), &[m], ccp.volatile(p(1))));
    }
}
