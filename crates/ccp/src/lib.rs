//! Offline model of **checkpoint and communication patterns** (CCPs) with the
//! analyses of the ICDCS 2005 paper *Optimal Asynchronous Garbage Collection
//! for RDT Checkpointing Protocols*:
//!
//! * causal precedence between checkpoints (Definition 1, via Equation 2);
//! * zigzag and causal paths, useless checkpoints and the
//!   **rollback-dependency trackability** predicate (Definitions 3–4);
//! * consistent global checkpoints (Section 2.2);
//! * recovery lines — Lemma 1 for RD-trackable CCPs plus an exhaustive
//!   Definition-5 computation for validation (Section 2.4);
//! * the **obsolete-checkpoint** characterizations: Theorem 1 (exact),
//!   Theorem 2 (causal knowledge only), needlessness by Definition 7 and by
//!   Lemma 2 (Section 3).
//!
//! This crate is the *oracle* of the workspace: the online algorithms in
//! `rdt-core` and `rdt-protocols` are validated against these exhaustive,
//! trusted-but-slow implementations. The paper's Figures 1–3 ship as
//! ready-made CCPs in [`figures`].
//!
//! # Example
//!
//! ```
//! use rdt_base::ProcessId;
//! use rdt_ccp::CcpBuilder;
//!
//! let p1 = ProcessId::new(0);
//! let p2 = ProcessId::new(1);
//!
//! let mut b = CcpBuilder::new(2);
//! b.checkpoint(p1);
//! b.message(p1, p2);
//! let ccp = b.build();
//!
//! assert!(ccp.is_rdt());
//! // p1's failure rolls p2 back to its initial checkpoint.
//! let line = ccp.recovery_line(&[p1].into_iter().collect());
//! assert_eq!(line.to_raw(), vec![1, 0]);
//! ```

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod audit;
mod builder;
mod causality;
mod consistency;
pub mod figures;
mod minmax;
mod model;
mod obsolete;
mod paths;
mod provenance;
mod recovery_line;
mod render;

pub use audit::collection_safety_violations;
pub use builder::CcpBuilder;
pub use consistency::GlobalCheckpoint;
pub use model::{Ccp, GeneralCheckpoint, LocalEvent, MessageRecord};
pub use paths::ZigzagAnalysis;
pub use provenance::{AmnestiedEntry, ComponentProvenance, LineExplanation, PinCause};
pub use recovery_line::FaultySet;
