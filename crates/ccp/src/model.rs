//! The checkpoint-and-communication-pattern (CCP) data model (Section 2.2).

use std::collections::BTreeMap;

use serde::{Deserialize, Serialize};

use rdt_base::{
    CheckpointId, CheckpointIndex, DependencyVector, Error, Incarnation, IntervalIndex, MessageId,
    ProcessId, Result,
};

/// A general checkpoint `c_i^γ` of a CCP: either the stable checkpoint
/// `s_i^γ` (for `γ ≤ last_s(i)`) or the volatile checkpoint `v_i`
/// (for `γ = last_s(i) + 1`) — Equation 1 of the paper.
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct GeneralCheckpoint {
    /// The owning process.
    pub process: ProcessId,
    /// The checkpoint index `γ`.
    pub index: CheckpointIndex,
}

impl GeneralCheckpoint {
    /// Creates a general checkpoint reference.
    pub const fn new(process: ProcessId, index: CheckpointIndex) -> Self {
        Self { process, index }
    }

    /// Views this as a stable-checkpoint id (caller must know it is stable).
    pub const fn as_checkpoint_id(self) -> CheckpointId {
        CheckpointId::new(self.process, self.index)
    }
}

impl From<CheckpointId> for GeneralCheckpoint {
    fn from(c: CheckpointId) -> Self {
        Self::new(c.process, c.index)
    }
}

/// One event in a process's local history.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub enum LocalEvent {
    /// The process stores stable checkpoint `s_i^γ`.
    Checkpoint(CheckpointIndex),
    /// The process sends a message.
    Send(MessageId),
    /// The process receives a message.
    Receive(MessageId),
}

/// Everything the model records about one message.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageRecord {
    /// The message id.
    pub id: MessageId,
    /// Destination process.
    pub dst: ProcessId,
    /// Interval `I_src^γ` in which the send occurred.
    pub send_interval: IntervalIndex,
    /// Position of the send in the sender's local history.
    pub send_pos: usize,
    /// The sender's dependency vector at send time (what was piggybacked).
    pub send_dv: DependencyVector,
    /// Interval in which the receive occurred, if delivered.
    pub recv_interval: Option<IntervalIndex>,
    /// Position of the receive in the receiver's local history, if delivered.
    pub recv_pos: Option<usize>,
}

impl MessageRecord {
    /// The sending process.
    pub fn src(&self) -> ProcessId {
        self.id.sender
    }

    /// Whether the message was delivered (lost/in-transit messages are
    /// excluded from a CCP's dependency relation, Section 2.2).
    pub fn delivered(&self) -> bool {
        self.recv_interval.is_some()
    }
}

/// A checkpoint-and-communication pattern: the set of checkpoints taken by
/// all processes in a consistent cut plus the dependency relation created by
/// the delivered messages (Section 2.2 of the paper).
///
/// A `Ccp` is an *offline* artifact: it is built by [`CcpBuilder`] (or
/// replayed from a [`TraceEvent`] sequence) and then analyzed — causal
/// precedence, zigzag paths, the RDT predicate, recovery lines and the
/// obsolete-checkpoint characterizations are all queries on this structure.
/// The online algorithms in `rdt-core`/`rdt-protocols` are validated against
/// these queries.
///
/// [`CcpBuilder`]: crate::CcpBuilder
/// [`TraceEvent`]: rdt_base::TraceEvent
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Ccp {
    pub(crate) n: usize,
    /// Per-process local histories, in program order. Every history starts
    /// with `Checkpoint(0)` — the mandatory initial stable checkpoint.
    pub(crate) events: Vec<Vec<LocalEvent>>,
    /// All messages ever sent, keyed by id.
    pub(crate) messages: BTreeMap<MessageId, MessageRecord>,
    /// Per-process, per-index dependency vectors of the *stable* checkpoints.
    pub(crate) checkpoint_dvs: Vec<Vec<DependencyVector>>,
    /// Per-process dependency vector of the volatile state `v_i`.
    pub(crate) volatile_dvs: Vec<DependencyVector>,
    /// Per-process incarnation numbers: `0` until the first rollback,
    /// bumped by each replayed `Restore` event.
    pub(crate) incarnations: Vec<Incarnation>,
}

impl Ccp {
    /// Number of processes `n`.
    pub fn n(&self) -> usize {
        self.n
    }

    /// Process ids of the system.
    pub fn processes(&self) -> impl ExactSizeIterator<Item = ProcessId> {
        ProcessId::all(self.n)
    }

    /// Index of the last stable checkpoint of `p`, the paper's `last_s(i)`.
    ///
    /// Always defined: every process stores `s_i^0` before executing.
    /// Reflects the *live* history: checkpoints discarded by a replayed
    /// rollback no longer count.
    pub fn last_stable(&self, p: ProcessId) -> CheckpointIndex {
        CheckpointIndex::new(self.checkpoint_dvs[p.index()].len() - 1)
    }

    /// The live incarnation of `p`: `0` plus one per replayed rollback.
    pub fn incarnation(&self, p: ProcessId) -> Incarnation {
        self.incarnations[p.index()]
    }

    /// The volatile checkpoint of `p`, i.e. `c_i^{last_s(i)+1}`.
    pub fn volatile(&self, p: ProcessId) -> GeneralCheckpoint {
        GeneralCheckpoint::new(p, self.last_stable(p).next())
    }

    /// Whether `c` refers to an existing general checkpoint (stable or
    /// volatile) of this CCP.
    pub fn exists(&self, c: GeneralCheckpoint) -> bool {
        c.process.index() < self.n && c.index <= self.volatile(c.process).index
    }

    /// Whether `c` is the volatile checkpoint of its process.
    pub fn is_volatile(&self, c: GeneralCheckpoint) -> bool {
        c.index == self.volatile(c.process).index
    }

    /// The dependency vector of a general checkpoint.
    ///
    /// # Errors
    ///
    /// [`Error::UnknownCheckpoint`] if the checkpoint does not exist.
    pub fn dv(&self, c: GeneralCheckpoint) -> Result<&DependencyVector> {
        if !self.exists(c) {
            return Err(Error::UnknownCheckpoint {
                process: c.process,
                index: c.index,
            });
        }
        if self.is_volatile(c) {
            Ok(&self.volatile_dvs[c.process.index()])
        } else {
            Ok(&self.checkpoint_dvs[c.process.index()][c.index.value()])
        }
    }

    /// The dependency vector of the volatile state of `p`.
    pub fn volatile_dv(&self, p: ProcessId) -> &DependencyVector {
        &self.volatile_dvs[p.index()]
    }

    /// All *stable* checkpoints of the CCP, in `(process, index)` order.
    pub fn stable_checkpoints(&self) -> impl Iterator<Item = CheckpointId> + '_ {
        self.processes().flat_map(move |p| {
            (0..=self.last_stable(p).value())
                .map(move |g| CheckpointId::new(p, CheckpointIndex::new(g)))
        })
    }

    /// All general checkpoints (stable plus volatile), in order.
    pub fn general_checkpoints(&self) -> impl Iterator<Item = GeneralCheckpoint> + '_ {
        self.processes().flat_map(move |p| {
            (0..=self.volatile(p).index.value())
                .map(move |g| GeneralCheckpoint::new(p, CheckpointIndex::new(g)))
        })
    }

    /// The local history of `p`, in program order.
    pub fn local_events(&self, p: ProcessId) -> &[LocalEvent] {
        &self.events[p.index()]
    }

    /// All message records, in id order.
    pub fn messages(&self) -> impl Iterator<Item = &MessageRecord> {
        self.messages.values()
    }

    /// The record of a specific message.
    pub fn message(&self, id: MessageId) -> Option<&MessageRecord> {
        self.messages.get(&id)
    }

    /// Number of delivered messages.
    pub fn delivered_count(&self) -> usize {
        self.messages.values().filter(|m| m.delivered()).count()
    }

    /// Total number of stable checkpoints in the CCP.
    pub fn stable_count(&self) -> usize {
        self.checkpoint_dvs.iter().map(Vec::len).sum()
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CcpBuilder;

    #[test]
    fn initial_ccp_has_one_stable_checkpoint_per_process() {
        let ccp = CcpBuilder::new(3).build();
        for p in ccp.processes() {
            assert_eq!(ccp.last_stable(p), CheckpointIndex::ZERO);
            assert_eq!(ccp.volatile(p).index, CheckpointIndex::new(1));
        }
        assert_eq!(ccp.stable_count(), 3);
    }

    #[test]
    fn exists_covers_stable_and_volatile_only() {
        let ccp = CcpBuilder::new(2).build();
        let p = ProcessId::new(0);
        assert!(ccp.exists(GeneralCheckpoint::new(p, CheckpointIndex::new(0))));
        assert!(ccp.exists(GeneralCheckpoint::new(p, CheckpointIndex::new(1)))); // volatile
        assert!(!ccp.exists(GeneralCheckpoint::new(p, CheckpointIndex::new(2))));
        assert!(!ccp.exists(GeneralCheckpoint::new(
            ProcessId::new(5),
            CheckpointIndex::ZERO
        )));
    }

    #[test]
    fn dv_of_initial_checkpoint_is_zero() {
        let ccp = CcpBuilder::new(2).build();
        let p = ProcessId::new(1);
        let dv = ccp
            .dv(GeneralCheckpoint::new(p, CheckpointIndex::ZERO))
            .unwrap();
        assert_eq!(dv.to_raw(), vec![0, 0]);
        // Volatile state is in interval 1 for the owner.
        assert_eq!(ccp.volatile_dv(p).to_raw(), vec![0, 1]);
    }

    #[test]
    fn unknown_checkpoint_is_an_error() {
        let ccp = CcpBuilder::new(2).build();
        let missing = GeneralCheckpoint::new(ProcessId::new(0), CheckpointIndex::new(7));
        assert!(matches!(
            ccp.dv(missing),
            Err(Error::UnknownCheckpoint { .. })
        ));
    }

    #[test]
    fn general_checkpoints_enumerates_stable_plus_volatile() {
        let mut b = CcpBuilder::new(2);
        b.checkpoint(ProcessId::new(0));
        let ccp = b.build();
        let all: Vec<_> = ccp.general_checkpoints().collect();
        // p1: s0, s1, v (index 2); p2: s0, v (index 1).
        assert_eq!(all.len(), 5);
    }
}
