//! Global checkpoints and consistency (Section 2.2).

use std::fmt;

use serde::{Deserialize, Serialize};

use rdt_base::{CheckpointIndex, ProcessId};

use crate::model::{Ccp, GeneralCheckpoint};

/// A global checkpoint: one general checkpoint per process.
///
/// It is *consistent* iff all members are pairwise consistent — equivalently,
/// iff it includes the sending of every received message.
#[derive(Debug, Clone, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct GlobalCheckpoint {
    components: Vec<CheckpointIndex>,
}

impl GlobalCheckpoint {
    /// Creates a global checkpoint from one index per process.
    ///
    /// # Panics
    ///
    /// Panics if `components` is empty.
    pub fn new(components: Vec<CheckpointIndex>) -> Self {
        assert!(!components.is_empty(), "needs at least one process");
        Self { components }
    }

    /// Creates from raw indices.
    pub fn from_raw(raw: Vec<usize>) -> Self {
        Self::new(raw.into_iter().map(CheckpointIndex::new).collect())
    }

    /// Number of processes.
    pub fn n(&self) -> usize {
        self.components.len()
    }

    /// The component of process `p`.
    pub fn component(&self, p: ProcessId) -> GeneralCheckpoint {
        GeneralCheckpoint::new(p, self.components[p.index()])
    }

    /// All members, in process order.
    pub fn members(&self) -> impl Iterator<Item = GeneralCheckpoint> + '_ {
        self.components
            .iter()
            .enumerate()
            .map(|(i, &c)| GeneralCheckpoint::new(ProcessId::new(i), c))
    }

    /// Raw indices, in process order.
    pub fn to_raw(&self) -> Vec<usize> {
        self.components.iter().map(|c| c.value()).collect()
    }

    /// Sum of indices — the quantity maximized by a recovery line (fewer
    /// general checkpoints rolled back).
    pub fn total_progress(&self) -> usize {
        self.components.iter().map(|c| c.value()).sum()
    }
}

impl fmt::Display for GlobalCheckpoint {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (i, c) in self.components.iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "c_{}^{}", ProcessId::new(i), c)?;
        }
        write!(f, "}}")
    }
}

impl Ccp {
    /// Whether a global checkpoint exists in this CCP and is consistent
    /// (all members pairwise consistent).
    pub fn is_consistent_global(&self, gc: &GlobalCheckpoint) -> bool {
        if gc.n() != self.n() {
            return false;
        }
        let members: Vec<GeneralCheckpoint> = gc.members().collect();
        if members.iter().any(|&m| !self.exists(m)) {
            return false;
        }
        for (i, &a) in members.iter().enumerate() {
            for &b in &members[i + 1..] {
                if !self.consistent_pair(a, b) {
                    return false;
                }
            }
        }
        true
    }

    /// The global checkpoint made of every process's volatile state — always
    /// consistent for the CCP of a consistent cut.
    pub fn volatile_global(&self) -> GlobalCheckpoint {
        GlobalCheckpoint::new(self.processes().map(|p| self.volatile(p).index).collect())
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::CcpBuilder;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    /// The paper's Figure 1 consistency examples: `{v1, s_2^1, s_3^1}` is
    /// consistent while `{s_1^0, s_2^1, s_3^1}` is not (`s_1^0 → s_2^1`).
    fn fig1_like() -> Ccp {
        let mut b = CcpBuilder::new(3);
        // m1: p1 → p2 after s_1^0, received before s_2^1.
        b.message(p(0), p(1));
        b.checkpoint(p(1)); // s_2^1
        b.checkpoint(p(2)); // s_3^1
        b.build()
    }

    #[test]
    fn volatile_global_is_consistent() {
        let ccp = fig1_like();
        let gc = ccp.volatile_global();
        assert!(ccp.is_consistent_global(&gc));
    }

    #[test]
    fn paper_consistent_example() {
        let ccp = fig1_like();
        // {v1, s_2^1, s_3^1}: v1 has index 1 (p1 took only s_1^0).
        let gc = GlobalCheckpoint::from_raw(vec![1, 1, 1]);
        assert!(ccp.is_consistent_global(&gc));
    }

    #[test]
    fn paper_inconsistent_example() {
        let ccp = fig1_like();
        // {s_1^0, s_2^1, s_3^1} is inconsistent: s_1^0 → s_2^1 via m1.
        let gc = GlobalCheckpoint::from_raw(vec![0, 1, 1]);
        assert!(!ccp.is_consistent_global(&gc));
    }

    #[test]
    fn nonexistent_member_is_inconsistent() {
        let ccp = fig1_like();
        let gc = GlobalCheckpoint::from_raw(vec![9, 0, 0]);
        assert!(!ccp.is_consistent_global(&gc));
    }

    #[test]
    fn wrong_size_is_inconsistent() {
        let ccp = fig1_like();
        let gc = GlobalCheckpoint::from_raw(vec![0, 0]);
        assert!(!ccp.is_consistent_global(&gc));
    }

    #[test]
    fn total_progress_sums_indices() {
        let gc = GlobalCheckpoint::from_raw(vec![1, 4, 2]);
        assert_eq!(gc.total_progress(), 7);
        assert_eq!(gc.to_string(), "{c_p1^1, c_p2^4, c_p3^2}");
    }

    #[test]
    fn all_initial_is_always_consistent() {
        let ccp = fig1_like();
        let gc = GlobalCheckpoint::from_raw(vec![0, 0, 0]);
        assert!(ccp.is_consistent_global(&gc));
    }
}
