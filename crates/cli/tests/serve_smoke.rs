//! End-to-end smoke tests for `rdt serve`: real OS processes over
//! Unix-domain sockets, with and without the kill-9 chaos cycle.

use std::process::Command;

fn rdt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdt"))
}

fn stdout_of(output: &std::process::Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

#[test]
fn clean_run_agrees_with_the_oracle() {
    let output = rdt()
        .args(["serve", "-n", "3", "--ops", "60", "-S", "42", "--json"])
        .output()
        .expect("spawning rdt");
    let stdout = stdout_of(&output);
    assert!(
        output.status.success(),
        "serve failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(
        stdout.contains("\"lines_agree\": true"),
        "no agreement in {stdout}"
    );
    assert!(stdout.contains("\"chaos\": false"));
}

#[test]
fn chaos_cycle_survives_kill9_and_matches_the_oracle() {
    let output = rdt()
        .args(["serve", "-n", "3", "-S", "1337", "--chaos", "--json"])
        .output()
        .expect("spawning rdt");
    let stdout = stdout_of(&output);
    assert!(
        output.status.success(),
        "chaos serve failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    assert!(stdout.contains("\"chaos\": true"));
    assert!(
        stdout.contains("\"lines_agree\": true"),
        "no agreement in {stdout}"
    );
}

#[test]
fn serve_rejects_a_single_process() {
    let output = rdt()
        .args(["serve", "-n", "1"])
        .output()
        .expect("spawning rdt");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("at least two"));
}
