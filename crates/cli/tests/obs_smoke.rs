//! End-to-end smoke tests for the observability subcommands: `rdt
//! explain` provenance against the oracle, and the serve → flight dump →
//! `rdt causal` merge pipeline.

use std::path::PathBuf;
use std::process::Command;

fn rdt() -> Command {
    Command::new(env!("CARGO_BIN_EXE_rdt"))
}

fn stdout_of(output: &std::process::Output) -> String {
    String::from_utf8_lossy(&output.stdout).into_owned()
}

fn temp_dir(tag: &str) -> PathBuf {
    let dir = std::env::temp_dir().join(format!("rdt_obs_smoke_{tag}_{}", std::process::id()));
    let _ = std::fs::remove_dir_all(&dir);
    std::fs::create_dir_all(&dir).unwrap();
    dir
}

#[test]
fn explain_cross_checks_against_the_oracle() {
    let output = rdt()
        .args(["explain", "-n", "3", "-s", "200", "-S", "11", "--json"])
        .output()
        .expect("spawning rdt");
    let stdout = stdout_of(&output);
    assert!(
        output.status.success(),
        "explain failed: {stdout}\n{}",
        String::from_utf8_lossy(&output.stderr)
    );
    // One document per single-process failure, each carrying the line and
    // per-component provenance.
    assert!(stdout.contains("\"faulty\""), "no scenarios in {stdout}");
    assert!(stdout.contains("\"line\""));
    assert!(stdout.contains("\"amnestied\""));
}

#[test]
fn explain_rejects_crashy_workloads() {
    let output = rdt()
        .args(["explain", "-n", "3", "-s", "100", "--crash-prob", "0.1"])
        .output()
        .expect("spawning rdt");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("crash-free"));
}

#[test]
fn serve_flight_dumps_merge_into_a_causal_trace() {
    let dir = temp_dir("causal");
    let serve = rdt()
        .args(["serve", "-n", "3", "--ops", "60", "-S", "42", "--json"])
        .arg("--dir")
        .arg(&dir)
        .output()
        .expect("spawning rdt serve");
    assert!(
        serve.status.success(),
        "serve failed: {}\n{}",
        stdout_of(&serve),
        String::from_utf8_lossy(&serve.stderr)
    );
    for rank in 0..3 {
        assert!(
            dir.join(format!("flight_p{rank}.jsonl")).exists(),
            "worker {rank} left no flight dump"
        );
    }
    assert!(
        dir.join("metrics_merged.prom").exists(),
        "coordinator wrote no merged metrics snapshot"
    );

    let merged = dir.join("causal.jsonl");
    let causal = rdt()
        .arg("causal")
        .arg("--dir")
        .arg(&dir)
        .arg("-o")
        .arg(&merged)
        .output()
        .expect("spawning rdt causal");
    assert!(
        causal.status.success(),
        "causal merge failed: {}",
        String::from_utf8_lossy(&causal.stderr)
    );

    // Happened-before sanity on the merged trace itself: no recv before
    // the send of the same (origin, seq) frame.
    let body = std::fs::read_to_string(&merged).unwrap();
    let mut seen_send = std::collections::BTreeSet::new();
    let mut events = 0usize;
    for line in body.lines() {
        rdt_obs::check::check_jsonl_line(line).unwrap();
        let v = rdt_obs::json::parse(line).unwrap();
        let kind = v.get("kind").unwrap().as_str().unwrap().to_string();
        let process = v.get("process").unwrap().as_u64().unwrap();
        let peer = v.get("peer").unwrap().as_u64().unwrap();
        let seq = v.get("seq").unwrap().as_u64().unwrap();
        match kind.as_str() {
            "send" | "synthetic_send" => {
                seen_send.insert((process, seq));
            }
            "recv" | "apply" => {
                assert!(
                    seen_send.contains(&(peer, seq)),
                    "{kind} of ({peer}, {seq}) precedes its send"
                );
            }
            other => panic!("unexpected kind {other}"),
        }
        events += 1;
    }
    assert!(events > 0, "empty causal trace");
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn causal_requires_inputs() {
    let output = rdt().arg("causal").output().expect("spawning rdt");
    assert!(!output.status.success());
    assert!(String::from_utf8_lossy(&output.stderr).contains("no inputs"));
}
