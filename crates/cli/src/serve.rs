//! `rdt serve` — the real runtime: N OS processes exchanging piggybacked
//! traffic over Unix-domain loopback sockets with live checkpoint GC, and
//! a kill-9 chaos harness that checks online recovery against the offline
//! CCP oracle.
//!
//! # Topology
//!
//! The parent re-executes its own binary once per rank with the hidden
//! `__serve-worker` subcommand. Each worker binds a datagram socket in the
//! shared run directory, opens its durable checkpoint directory
//! (`p<rank>/`, a `DiskSink` behind a generic `Middleware`), and drives a
//! [`LiveNode`] — the same delivery path as the threaded runtime — over a
//! [`RealEnv`] bundle: monotonic clock, seeded generator, UDS transport.
//!
//! # The trace log and its write ordering
//!
//! Every worker appends a per-process event log (`trace_p<rank>.log`)
//! that the chaos harness later merges into a global [`TraceEvent`]
//! sequence for the offline oracle. The per-op discipline is **apply →
//! log → transmit**:
//!
//! 1. the middleware operation runs (which commits durable state through
//!    the sink),
//! 2. the event line(s) are written to the log,
//! 3. only then is a sent frame put on the wire.
//!
//! A SIGKILL therefore leaves at most one in-doubt *tail* op per worker,
//! and each case reconciles from what survives: an applied-but-unlogged
//! checkpoint is visible on disk (the harness appends a synthetic
//! `Checkpoint` event); an applied-but-unlogged send was never
//! transmitted, so no peer saw it; an applied-but-unlogged deliver merged
//! only volatile state, which the crash discards. Because a send is
//! logged (and page-cache durable — the OS survives the kill) before the
//! frame leaves, every `Deliver` in any log can find its `Send` in the
//! sender's log, and the merge is total.
//!
//! # Chaos cycle
//!
//! With `--chaos`, the workers run an endless workload; once every log
//! shows traffic the parent SIGKILLs all of them mid-flight, rebuilds
//! every process from its surviving files, runs a full recovery session
//! (all processes faulty — rollback exercises the incarnation WAL against
//! the real filesystem), and asserts the online recovery line equals the
//! offline `rdt-ccp` oracle replaying the merged logs. It then respawns
//! every worker with `--resume` (rollback to the recovered line, more
//! traffic, clean exit) to prove the system keeps executing.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write;
use std::path::{Path, PathBuf};
use std::process::{Child, Command as OsCommand};
use std::time::{Duration, Instant};

use clap::ArgMatches;

use rdt_base::{MessageId, ProcessId, TraceEvent};
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_env::transport::MAX_FRAME;
use rdt_env::{RealEnv, Rng as _, Transport as _, UdsTransport};
use rdt_protocols::{Middleware, ProtocolKind};
use rdt_recovery::{FaultySet, RecoveryManager};
use rdt_sim::LiveNode;
use rdt_storage::{DiskSink, DurableStore};

use crate::json::Json;
use crate::opts::{parse_gc, parse_protocol};

/// Everything both the parent and a worker need to agree on.
#[derive(Debug, Clone)]
struct ServeConfig {
    n: usize,
    ops: usize,
    seed: u64,
    protocol: ProtocolKind,
    gc: GcKind,
    dir: PathBuf,
}

fn parse_config(
    m: &ArgMatches,
    default_dir: impl FnOnce() -> PathBuf,
) -> Result<ServeConfig, String> {
    let get = |name: &str| m.get_one::<String>(name).expect("defaulted").clone();
    let n: usize = get("processes").parse().map_err(|e| format!("-n: {e}"))?;
    if n < 2 {
        return Err("-n: at least two processes required".into());
    }
    Ok(ServeConfig {
        n,
        ops: get("ops").parse().map_err(|e| format!("--ops: {e}"))?,
        seed: get("seed").parse().map_err(|e| format!("-S: {e}"))?,
        protocol: parse_protocol(&get("protocol"))?,
        gc: parse_gc(&get("gc"))?,
        dir: m
            .get_one::<String>("dir")
            .map(PathBuf::from)
            .unwrap_or_else(default_dir),
    })
}

fn trace_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("trace_p{rank}.log"))
}

fn summary_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("summary_p{rank}.txt"))
}

fn store_dir(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("p{rank}"))
}

fn prom_path(dir: &Path, rank: usize) -> PathBuf {
    dir.join(format!("metrics_p{rank}.prom"))
}

/// The worker's flight-recorder dump. A resumed worker writes to a
/// separate file so a chaos cycle preserves the kill-point dumps for
/// post-mortem harvesting (`rdt causal --dir`).
fn flight_path(dir: &Path, rank: usize, resume: bool) -> PathBuf {
    if resume {
        dir.join(format!("flight_resume_p{rank}.jsonl"))
    } else {
        dir.join(format!("flight_p{rank}.jsonl"))
    }
}

// ---------------------------------------------------------------------------
// Worker side
// ---------------------------------------------------------------------------

#[derive(Debug, Default)]
struct WorkerStats {
    sent: u64,
    delivered: u64,
    basic: u64,
    forced: u64,
    eliminated: u64,
    restart: Option<rdt_storage::RestartReport>,
}

/// Drains every frame currently deliverable, logging each event.
fn pump(
    transport: &mut UdsTransport,
    node: &mut LiveNode<DiskSink>,
    log: &mut std::fs::File,
    buf: &mut [u8],
    stats: &mut WorkerStats,
    prof: &mut rdt_obs::Profiler,
) -> Result<(), String> {
    loop {
        let t = prof.start();
        let received = transport.recv(buf);
        prof.stop("live/recv", t);
        match received {
            Ok(Some(len)) => {
                let outcome = node
                    .deliver_frame(&buf[..len])
                    .map_err(|e| format!("deliver failed: {e}"))?;
                let Some(out) = outcome else { continue };
                // Forced-on-receive precedes the Deliver in trace order
                // (the checkpoint is stored before the merge), and both
                // lines go down in one write for per-op tail atomicity.
                let mut lines = String::new();
                if let Some(f) = out.forced {
                    lines.push_str(&format!("C {}\n", f.value()));
                    stats.forced += 1;
                }
                lines.push_str(&format!("D {} {}\n", out.sender.index(), out.seq));
                log.write_all(lines.as_bytes())
                    .map_err(|e| format!("trace log write failed: {e}"))?;
                stats.delivered += 1;
                stats.eliminated += out.eliminated as u64;
            }
            Ok(None) => return Ok(()),
            Err(e) => return Err(format!("recv failed: {e}")),
        }
    }
}

/// Writes one worker's Prometheus-style textfile dump
/// (`metrics_p<rank>.prom`): phase latencies — frame encode/decode,
/// socket send/recv, `store/*` I/O — when `RDT_PROFILE` is on, plus the
/// always-present traffic counters. The closest a socket-driven worker
/// gets to a `/metrics` endpoint without a server thread.
fn write_prom(
    dir: &Path,
    rank: usize,
    node: &LiveNode<DiskSink>,
    prof: &rdt_obs::Profiler,
    stats: &WorkerStats,
) -> Result<(), String> {
    let mut report = rdt_obs::ProfileReport::new();
    if let Some(p) = prof.report() {
        report.merge(p);
    }
    if let Some(p) = node.profile() {
        report.merge(p);
    }
    if let Some(p) = node.middleware().sink().disk().profile() {
        report.merge(&p);
    }
    report.add("frames_sent", stats.sent);
    report.add("frames_delivered", stats.delivered);
    report.add("checkpoints_basic", stats.basic);
    report.add("checkpoints_forced", stats.forced);
    report.add("checkpoints_eliminated", stats.eliminated);
    if let Some(restart) = &stats.restart {
        report.add("restart_loaded", restart.loaded as u64);
        report.add("restart_quarantined", restart.quarantined as u64);
        report.add("restart_skipped_alien", restart.skipped_alien as u64);
        report.add("restart_transient_retries", restart.transient_retries);
    }
    std::fs::write(prom_path(dir, rank), report.to_prometheus())
        .map_err(|e| format!("metrics dump failed: {e}"))
}

/// The hidden `__serve-worker` subcommand: one real process of the system.
pub fn worker(m: &ArgMatches) -> Result<(), String> {
    let cfg = parse_config(m, || unreachable!("the parent always passes --dir"))?;
    let rank: usize = m
        .get_one::<String>("rank")
        .expect("required")
        .parse()
        .map_err(|e| format!("--rank: {e}"))?;
    let resume = m.get_flag("resume");
    let me = ProcessId::new(rank);

    // Always-on flight recorder: the bounded ring costs nothing until
    // frames move, periodic flushes survive a SIGKILL, and the panic hook
    // dumps on any worker failure.
    rdt_obs::flight::install(&flight_path(&cfg.dir, rank, resume), 0);

    let transport = UdsTransport::bind(&cfg.dir, rank, Duration::from_millis(1))
        .map_err(|e| format!("bind failed: {e}"))?;
    let disk = DurableStore::open(store_dir(&cfg.dir, rank), me)
        .map_err(|e| format!("durable store failed: {e}"))?;

    let mut restart_report = None;
    let mut node = if resume {
        let (store, report) = disk
            .rebuild_reported()
            .map_err(|e| format!("rebuild failed: {e}"))?;
        restart_report = Some(report);
        let target = store
            .indices()
            .last()
            .ok_or_else(|| "resume found no checkpoint to anchor recovery".to_string())?;
        let mut mw = Middleware::from_store_with(
            me,
            cfg.n,
            cfg.protocol,
            cfg.gc,
            store,
            DiskSink::over(disk),
        );
        // Uncoordinated self-recovery to the newest surviving checkpoint
        // (the parent's recovery session already truncated every store to
        // the line); the write-ahead incarnation log runs again here.
        mw.rollback(target, None)
            .map_err(|e| format!("resume rollback failed: {e}"))?;
        LiveNode::over(mw)
    } else {
        LiveNode::over(Middleware::with_storage(
            me,
            cfg.n,
            cfg.protocol,
            cfg.gc,
            DiskSink::over(disk),
        ))
    };
    if let Some(e) = node.middleware_mut().take_sink_error() {
        return Err(format!("initial commit failed: {e}"));
    }

    let mut log = std::fs::OpenOptions::new()
        .create(true)
        .append(true)
        .open(trace_path(&cfg.dir, rank))
        .map_err(|e| format!("trace log open failed: {e}"))?;

    let mut env = RealEnv::new(
        cfg.seed ^ (rank as u64).wrapping_mul(0x9e37_79b9_7f4a_7c15),
        transport,
    );
    let mut buf = vec![0u8; MAX_FRAME];
    let mut stats = WorkerStats {
        restart: restart_report,
        ..WorkerStats::default()
    };
    // Frame-path and socket-path profiling, plus periodic .prom dumps,
    // keyed off the same env switch as everywhere else.
    let profiling = rdt_obs::profile::env_enabled();
    node.set_profiling(profiling);
    let mut prof = rdt_obs::Profiler::new(profiling);
    let mut step = 0usize;
    loop {
        if cfg.ops > 0 && step >= cfg.ops {
            break;
        }
        step += 1;
        if step.is_multiple_of(64) {
            write_prom(&cfg.dir, rank, &node, &prof, &stats)?;
        }
        pump(
            &mut env.transport,
            &mut node,
            &mut log,
            &mut buf,
            &mut stats,
            &mut prof,
        )?;
        let roll = env.rng.between(0, 99);
        if roll < 35 {
            let idx = node
                .checkpoint()
                .map_err(|e| format!("checkpoint failed: {e}"))?;
            log.write_all(format!("C {}\n", idx.value()).as_bytes())
                .map_err(|e| format!("trace log write failed: {e}"))?;
            stats.basic += 1;
        } else {
            let peer = {
                let k = env.rng.between(0, cfg.n as u64 - 2) as usize;
                ProcessId::new(if k >= rank { k + 1 } else { k })
            };
            let (frame, forced) = node.send_frame(peer);
            let mut lines = format!("S {} {}\n", frame.seq, peer.index());
            if let Some(idx) = forced {
                lines.push_str(&format!("C {}\n", idx.value()));
                stats.forced += 1;
            }
            log.write_all(lines.as_bytes())
                .map_err(|e| format!("trace log write failed: {e}"))?;
            // Transmit strictly after the send is in the log: a peer can
            // only deliver a message whose Send the oracle will find.
            let t = prof.start();
            let sent = env.transport.send(peer, &frame.encode());
            prof.stop("live/send", t);
            sent.map_err(|e| format!("send failed: {e}"))?;
            stats.sent += 1;
        }
        if let Some(e) = node.middleware_mut().take_sink_error() {
            return Err(format!("durable commit failed: {e}"));
        }
        std::thread::sleep(Duration::from_micros(300));
    }

    // Finite run: drain in-flight traffic for a grace window, then report.
    let deadline = Instant::now() + Duration::from_millis(250);
    while Instant::now() < deadline {
        pump(
            &mut env.transport,
            &mut node,
            &mut log,
            &mut buf,
            &mut stats,
            &mut prof,
        )?;
        std::thread::sleep(Duration::from_millis(5));
    }
    if let Some(e) = node.middleware_mut().take_sink_error() {
        return Err(format!("durable commit failed: {e}"));
    }
    write_prom(&cfg.dir, rank, &node, &prof, &stats)?;
    rdt_obs::flight::flush();
    let retained = node.middleware().store().len();
    std::fs::write(
        summary_path(&cfg.dir, rank),
        format!(
            "sent={} delivered={} basic={} forced={} eliminated={} retained={}\n",
            stats.sent, stats.delivered, stats.basic, stats.forced, stats.eliminated, retained
        ),
    )
    .map_err(|e| format!("summary write failed: {e}"))?;
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent side: log merge and the recovery-line check
// ---------------------------------------------------------------------------

/// One parsed line of a worker's trace log.
#[derive(Debug, Clone, Copy)]
enum LogEvent {
    Checkpoint,
    Send { seq: u64, to: usize },
    Deliver { sender: usize, seq: u64 },
}

fn parse_log_line(line: &str) -> Option<LogEvent> {
    let mut parts = line.split_whitespace();
    let ev = match parts.next()? {
        "C" => {
            let _idx: usize = parts.next()?.parse().ok()?;
            LogEvent::Checkpoint
        }
        "S" => LogEvent::Send {
            seq: parts.next()?.parse().ok()?,
            to: parts.next()?.parse().ok()?,
        },
        "D" => LogEvent::Deliver {
            sender: parts.next()?.parse().ok()?,
            seq: parts.next()?.parse().ok()?,
        },
        _ => return None,
    };
    if parts.next().is_some() {
        return None;
    }
    Some(ev)
}

/// Reads one worker's log leniently: a torn final line (the SIGKILL tail)
/// is dropped; garbage anywhere else is an error.
fn read_log(dir: &Path, rank: usize) -> Result<VecDeque<LogEvent>, String> {
    let raw = match std::fs::read_to_string(trace_path(dir, rank)) {
        Ok(s) => s,
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => String::new(),
        Err(e) => return Err(format!("reading trace of p{rank}: {e}")),
    };
    let mut events = VecDeque::new();
    let lines: Vec<&str> = raw.lines().collect();
    for (i, line) in lines.iter().enumerate() {
        if line.trim().is_empty() {
            continue;
        }
        match parse_log_line(line) {
            Some(ev) => events.push_back(ev),
            None if i + 1 == lines.len() && !raw.ends_with('\n') => {} // torn tail
            None => return Err(format!("corrupt trace line in p{rank}: {line:?}")),
        }
    }
    Ok(events)
}

/// Merges the per-process logs into one oracle-replayable trace:
/// checkpoints and sends merge eagerly in local order, a deliver waits
/// until its send has merged, and checkpoints the disk knows but the log
/// missed (the applied-but-unlogged kill tail) are appended synthetically.
/// Undelivered sends become `Drop` events.
fn merged_trace(dir: &Path, cfg: &ServeConfig) -> Result<Vec<TraceEvent>, String> {
    let mut queues: Vec<VecDeque<LogEvent>> = (0..cfg.n)
        .map(|i| read_log(dir, i))
        .collect::<Result<_, _>>()?;

    // Disk reconciliation: the sink commits before the log is written, so
    // the disk may be exactly one checkpoint ahead of the log — never
    // behind. Structural checkpoint indices are sequential, so the gap
    // closes with synthetic Checkpoint events at the queue tail.
    for (i, queue) in queues.iter_mut().enumerate() {
        let disk = DurableStore::open(store_dir(dir, i), ProcessId::new(i))
            .map_err(|e| format!("opening store of p{i}: {e}"))?;
        let disk_max = disk
            .indices()
            .map_err(|e| format!("listing store of p{i}: {e}"))?
            .last()
            .map_or(0, |c| c.value());
        let log_max = queue
            .iter()
            .filter(|e| matches!(e, LogEvent::Checkpoint))
            .count();
        for _ in log_max..disk_max {
            queue.push_back(LogEvent::Checkpoint);
        }
    }

    let mut trace = Vec::new();
    let mut sent: BTreeMap<(usize, u64), bool> = BTreeMap::new();
    loop {
        let mut progress = false;
        for (i, queue) in queues.iter_mut().enumerate() {
            while let Some(&ev) = queue.front() {
                match ev {
                    LogEvent::Checkpoint => trace.push(TraceEvent::Checkpoint {
                        process: ProcessId::new(i),
                        forced: false,
                    }),
                    LogEvent::Send { seq, to } => {
                        trace.push(TraceEvent::Send {
                            id: MessageId::new(ProcessId::new(i), seq),
                            to: ProcessId::new(to),
                        });
                        sent.insert((i, seq), false);
                    }
                    LogEvent::Deliver { sender, seq } => {
                        let Some(delivered) = sent.get_mut(&(sender, seq)) else {
                            break; // the send has not merged yet: wait
                        };
                        *delivered = true;
                        trace.push(TraceEvent::Deliver {
                            id: MessageId::new(ProcessId::new(sender), seq),
                        });
                    }
                }
                queue.pop_front();
                progress = true;
            }
        }
        if queues.iter().all(VecDeque::is_empty) {
            break;
        }
        if !progress {
            return Err("unmergeable trace logs: a deliver references an unlogged send".into());
        }
    }
    for ((sender, seq), delivered) in sent {
        if !delivered {
            trace.push(TraceEvent::Drop {
                id: MessageId::new(ProcessId::new(sender), seq),
            });
        }
    }
    Ok(trace)
}

/// Rebuilds every process from disk, runs a full recovery session (all
/// faulty), and returns `(online line, offline oracle line)`.
fn check_lines(dir: &Path, cfg: &ServeConfig) -> Result<(Vec<usize>, Vec<usize>), String> {
    let trace = merged_trace(dir, cfg)?;
    let faulty: FaultySet = ProcessId::all(cfg.n).collect();
    let offline = CcpBuilder::from_trace(cfg.n, &trace)
        .map_err(|e| format!("oracle replay failed: {e}"))?
        .build()
        .recovery_line(&faulty)
        .to_raw();

    let mut mws = Vec::with_capacity(cfg.n);
    for i in 0..cfg.n {
        let me = ProcessId::new(i);
        let disk = DurableStore::open(store_dir(dir, i), me)
            .map_err(|e| format!("opening store of p{i}: {e}"))?;
        let (store, _report) = disk
            .rebuild_reported()
            .map_err(|e| format!("rebuilding p{i}: {e}"))?;
        if store.is_empty() {
            return Err(format!("p{i} has no surviving checkpoint to recover from"));
        }
        mws.push(Middleware::from_store_with(
            me,
            cfg.n,
            cfg.protocol,
            cfg.gc,
            store,
            DiskSink::over(disk),
        ));
    }
    let session = RecoveryManager::new()
        .recover(&mut mws, &faulty)
        .map_err(|e| format!("online recovery failed: {e}"))?;
    let online: Vec<usize> = session.line.iter().map(|c| c.value()).collect();
    Ok((online, offline))
}

// ---------------------------------------------------------------------------
// Parent side: process management
// ---------------------------------------------------------------------------

fn spawn_workers(cfg: &ServeConfig, ops: usize, resume: bool) -> Result<Vec<Child>, String> {
    let exe = std::env::current_exe().map_err(|e| format!("current_exe: {e}"))?;
    (0..cfg.n)
        .map(|rank| {
            let mut cmd = OsCommand::new(&exe);
            cmd.arg("__serve-worker")
                .arg("--rank")
                .arg(rank.to_string())
                .arg("--processes")
                .arg(cfg.n.to_string())
                .arg("--ops")
                .arg(ops.to_string())
                .arg("--seed")
                .arg(cfg.seed.to_string())
                .arg("--protocol")
                .arg(cfg.protocol.to_string())
                .arg("--gc")
                .arg(cfg.gc.to_string())
                .arg("--dir")
                .arg(&cfg.dir);
            if resume {
                cmd.arg("--resume");
            }
            cmd.spawn().map_err(|e| format!("spawning p{rank}: {e}"))
        })
        .collect()
}

/// Waits for every worker and fails on the first non-zero exit.
fn join_workers(children: Vec<Child>) -> Result<(), String> {
    let mut failure = None;
    for (rank, mut child) in children.into_iter().enumerate() {
        let status = child
            .wait()
            .map_err(|e| format!("waiting on p{rank}: {e}"))?;
        if !status.success() && failure.is_none() {
            failure = Some(format!("worker p{rank} exited with {status}"));
        }
    }
    failure.map_or(Ok(()), Err)
}

/// Polls until every worker's trace log shows real traffic (so a SIGKILL
/// lands mid-flight, not before startup) and every flight recorder has
/// flushed at least once (so the kill leaves a harvestable dump).
/// Fails fast if a worker dies.
fn wait_for_traffic(cfg: &ServeConfig, children: &mut [Child]) -> Result<(), String> {
    let deadline = Instant::now() + Duration::from_secs(20);
    loop {
        let all_busy = (0..cfg.n)
            .all(|i| std::fs::metadata(trace_path(&cfg.dir, i)).is_ok_and(|m| m.len() >= 200))
            && (0..cfg.n)
                .all(|i| std::fs::metadata(flight_path(&cfg.dir, i, false)).is_ok_and(|m| m.len() > 0));
        if all_busy {
            return Ok(());
        }
        for (rank, child) in children.iter_mut().enumerate() {
            if let Ok(Some(status)) = child.try_wait() {
                return Err(format!("worker p{rank} died before the kill: {status}"));
            }
        }
        if Instant::now() >= deadline {
            return Err("workers produced no traffic within 20s".into());
        }
        std::thread::sleep(Duration::from_millis(20));
    }
}

fn kill_workers(children: &mut [Child]) -> Result<(), String> {
    for (rank, child) in children.iter_mut().enumerate() {
        child.kill().map_err(|e| format!("killing p{rank}: {e}"))?; // SIGKILL
        child.wait().map_err(|e| format!("reaping p{rank}: {e}"))?;
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Parent side: metrics aggregation
// ---------------------------------------------------------------------------

/// Parses every worker's `metrics_p<rank>.prom` textfile back into a
/// [`rdt_obs::ProfileReport`] and folds them into one snapshot: per-worker
/// series keep a `/p<rank>` suffix, and un-suffixed series carry the
/// cluster-wide totals.
fn merge_prom(dir: &Path, n: usize) -> Result<rdt_obs::ProfileReport, String> {
    let mut merged = rdt_obs::ProfileReport::new();
    for i in 0..n {
        let path = prom_path(dir, i);
        let text = match std::fs::read_to_string(&path) {
            Ok(t) => t,
            Err(e) if e.kind() == std::io::ErrorKind::NotFound => continue,
            Err(e) => return Err(format!("{}: {e}", path.display())),
        };
        let parsed = rdt_obs::ProfileReport::from_prometheus(&text)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        merged.merge_suffixed(&parsed, &format!("p{i}"));
    }
    Ok(merged)
}

/// Serves the live merged snapshot over plain HTTP/1.0 on `addr` from a
/// detached thread — each scrape re-reads and re-merges whatever `.prom`
/// dumps the workers have written so far. The thread dies with the
/// process; `serve` is the only caller, so no shutdown plumbing.
fn spawn_metrics_listener(
    addr: &str,
    dir: PathBuf,
    n: usize,
) -> Result<std::net::SocketAddr, String> {
    let listener =
        std::net::TcpListener::bind(addr).map_err(|e| format!("--metrics-addr {addr}: {e}"))?;
    let local = listener
        .local_addr()
        .map_err(|e| format!("--metrics-addr: {e}"))?;
    std::thread::spawn(move || {
        for stream in listener.incoming() {
            let Ok(mut stream) = stream else { continue };
            let mut head = [0u8; 1024];
            let _ = std::io::Read::read(&mut stream, &mut head);
            // A worker may be mid-rewrite of its dump; a scrape must not
            // kill the run, so merge errors become a comment body.
            let body = match merge_prom(&dir, n) {
                Ok(report) => report.to_prometheus(),
                Err(e) => format!("# merge pending: {e}\n"),
            };
            let response = format!(
                "HTTP/1.0 200 OK\r\nContent-Type: text/plain; version=0.0.4\r\n\
                 Content-Length: {}\r\n\r\n{body}",
                body.len()
            );
            let _ = stream.write_all(response.as_bytes());
        }
    });
    Ok(local)
}

#[derive(Debug, Default)]
struct ServeSummary {
    sent: u64,
    delivered: u64,
    basic: u64,
    forced: u64,
    eliminated: u64,
    max_retained: u64,
}

fn read_summaries(dir: &Path, n: usize) -> ServeSummary {
    let mut out = ServeSummary::default();
    for i in 0..n {
        let Ok(raw) = std::fs::read_to_string(summary_path(dir, i)) else {
            continue;
        };
        for field in raw.split_whitespace() {
            let Some((key, value)) = field.split_once('=') else {
                continue;
            };
            let Ok(v) = value.parse::<u64>() else {
                continue;
            };
            match key {
                "sent" => out.sent += v,
                "delivered" => out.delivered += v,
                "basic" => out.basic += v,
                "forced" => out.forced += v,
                "eliminated" => out.eliminated += v,
                "retained" => out.max_retained = out.max_retained.max(v),
                _ => {}
            }
        }
    }
    out
}

/// The `serve` subcommand.
pub fn serve(m: &ArgMatches) -> Result<(), String> {
    let user_dir = m.get_one::<String>("dir").is_some();
    let cfg = parse_config(m, || {
        std::env::temp_dir().join(format!("rdt-serve-{}", std::process::id()))
    })?;
    let chaos = m.get_flag("chaos");
    let json = m.get_flag("json");
    std::fs::create_dir_all(&cfg.dir).map_err(|e| format!("run dir: {e}"))?;
    if let Some(addr) = m.get_one::<String>("metrics-addr") {
        let local = spawn_metrics_listener(addr, cfg.dir.clone(), cfg.n)?;
        eprintln!("serving merged metrics on http://{local}/metrics");
    }

    let outcome = run_serve(&cfg, chaos);
    // Final aggregation: fold every worker's textfile dump into one
    // scrape-able snapshot, kept in the run dir and optionally exported.
    let metrics = merge_prom(&cfg.dir, cfg.n).map(|r| r.to_prometheus());
    if let Ok(text) = &metrics {
        let _ = std::fs::write(cfg.dir.join("metrics_merged.prom"), text);
    }
    let summary = read_summaries(&cfg.dir, cfg.n);
    if !user_dir {
        let _ = std::fs::remove_dir_all(&cfg.dir);
    }
    let (online, offline) = outcome?;
    if let Some(path) = m.get_one::<String>("metrics-out") {
        std::fs::write(path, metrics?).map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    let agree = online == offline;

    if json {
        let doc = Json::obj()
            .field("processes", Json::UInt(cfg.n as u64))
            .field("transport", Json::Str("unix-datagram".into()))
            .field("chaos", Json::Bool(chaos))
            .field("online_line", Json::uints(online.iter().copied()))
            .field("oracle_line", Json::uints(offline.iter().copied()))
            .field("lines_agree", Json::Bool(agree))
            .field("sent", Json::UInt(summary.sent))
            .field("delivered", Json::UInt(summary.delivered))
            .field("basic_checkpoints", Json::UInt(summary.basic))
            .field("forced_checkpoints", Json::UInt(summary.forced))
            .field("collected", Json::UInt(summary.eliminated))
            .field("max_retained", Json::UInt(summary.max_retained))
            .build();
        println!("{}", doc.pretty());
    } else {
        println!(
            "served {} real processes over unix-datagram loopback ({} {})",
            cfg.n, cfg.protocol, cfg.gc
        );
        if summary.sent + summary.delivered > 0 {
            println!(
                "traffic: {} sent, {} delivered; checkpoints: {} basic + {} forced, {} collected live (max retained {})",
                summary.sent,
                summary.delivered,
                summary.basic,
                summary.forced,
                summary.eliminated,
                summary.max_retained
            );
        }
        if chaos {
            println!("chaos: SIGKILL mid-flight, restart from disk, resumed to a clean exit");
        }
        println!("online recovery line {online:?}");
        println!("oracle recovery line {offline:?}");
    }
    if agree {
        Ok(())
    } else {
        Err(format!(
            "online recovery line {online:?} disagrees with the offline oracle {offline:?}"
        ))
    }
}

/// Runs the workers (one chaos cycle when asked) and returns the
/// `(online, offline)` recovery lines of the kill point (chaos) or the
/// final state (clean run).
fn run_serve(cfg: &ServeConfig, chaos: bool) -> Result<(Vec<usize>, Vec<usize>), String> {
    if chaos {
        // Endless workload; the kill decides the cut.
        let mut children = spawn_workers(cfg, 0, false)?;
        if let Err(e) = wait_for_traffic(cfg, &mut children) {
            let _ = kill_workers(&mut children);
            return Err(e);
        }
        kill_workers(&mut children)?;
        let lines = check_lines(&cfg.dir, cfg)?;
        // Restart the real processes from the recovered disks: rollback
        // (second WAL round), fresh traffic, clean exit.
        let resumed = spawn_workers(cfg, cfg.ops.max(20), true)?;
        join_workers(resumed)?;
        Ok(lines)
    } else {
        let children = spawn_workers(cfg, cfg.ops, false)?;
        join_workers(children)?;
        check_lines(&cfg.dir, cfg)
    }
}

/// Argument set shared by `serve` and the hidden worker.
fn common_args(cmd: clap::Command) -> clap::Command {
    let arg = |name: &'static str, help: &'static str, default: &'static str| {
        clap::Arg::new(name)
            .long(name)
            .help(help)
            .default_value(default)
            .value_name(name)
    };
    cmd.arg(arg("processes", "number of OS processes", "3").short('n'))
        .arg(arg("ops", "workload operations per process", "200"))
        .arg(arg("seed", "workload seed", "0").short('S'))
        .arg(arg("protocol", "checkpointing protocol", "fdas").short('P'))
        .arg(arg(
            "gc",
            "garbage collector (rdt-lgc, none, simple, wang, time:<horizon>)",
            "rdt-lgc",
        ))
        .arg(
            clap::Arg::new("dir")
                .long("dir")
                .help("run directory for sockets, stores and logs (default: a temp dir)")
                .value_name("path"),
        )
}

/// Builds the `serve` subcommand.
pub fn serve_args(cmd: clap::Command) -> clap::Command {
    common_args(cmd)
        .arg(
            clap::Arg::new("chaos")
                .long("chaos")
                .help("one kill-9 + restart cycle: SIGKILL all workers mid-flight, verify the online recovery line against the offline ccp oracle, resume to a clean exit")
                .action(clap::ArgAction::SetTrue),
        )
        .arg(
            clap::Arg::new("json")
                .long("json")
                .help("emit machine-readable JSON instead of text")
                .action(clap::ArgAction::SetTrue),
        )
        .arg(
            clap::Arg::new("metrics-out")
                .long("metrics-out")
                .help("write the merged cluster-wide Prometheus snapshot to this file")
                .value_name("path"),
        )
        .arg(
            clap::Arg::new("metrics-addr")
                .long("metrics-addr")
                .help("serve the live merged snapshot over HTTP on this address (e.g. 127.0.0.1:9464)")
                .value_name("addr"),
        )
}

/// Builds the hidden `__serve-worker` subcommand.
pub fn worker_args(cmd: clap::Command) -> clap::Command {
    common_args(cmd)
        .arg(
            clap::Arg::new("rank")
                .long("rank")
                .help("this worker's process id")
                .required(true)
                .value_name("rank"),
        )
        .arg(
            clap::Arg::new("resume")
                .long("resume")
                .help("restart from the surviving durable store instead of a fresh system")
                .action(clap::ArgAction::SetTrue),
        )
}
