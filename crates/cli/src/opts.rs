//! Shared option parsing: workload, protocol, collector and channel
//! settings, reused by every subcommand.

use clap::{Arg, ArgMatches, Command};

use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::{ChannelConfig, ShardConfig, SimConfig};
use rdt_workloads::{Pattern, WorkloadSpec};

/// Parses a `--pattern` value.
///
/// Accepted: `uniform`, `ring`, `token-ring`, `client-server:<servers>`,
/// `bursty:<burst>`.
///
/// # Errors
///
/// A human-readable message for unknown names or malformed parameters.
pub fn parse_pattern(s: &str) -> Result<Pattern, String> {
    let (name, param) = match s.split_once(':') {
        Some((n, p)) => (n, Some(p)),
        None => (s, None),
    };
    let numeric = |p: Option<&str>, what: &str| -> Result<usize, String> {
        p.ok_or_else(|| format!("{name} needs a parameter, e.g. {name}:{what}"))?
            .parse::<usize>()
            .map_err(|e| format!("bad {name} parameter: {e}"))
    };
    match name {
        "uniform" | "uniform-random" => Ok(Pattern::UniformRandom),
        "ring" => Ok(Pattern::Ring),
        "token-ring" | "token" => Ok(Pattern::TokenRing),
        "star" => Ok(Pattern::Star),
        "pipeline" => Ok(Pattern::Pipeline),
        "client-server" | "cs" => Ok(Pattern::ClientServer {
            servers: numeric(param, "2")?,
        }),
        "bursty" => Ok(Pattern::Bursty {
            burst: numeric(param, "8")?,
        }),
        other => Err(format!(
            "unknown pattern '{other}' (try uniform, ring, token-ring, star, pipeline, \
             client-server:<k>, bursty:<k>)"
        )),
    }
}

/// Parses a `--protocol` value (the [`ProtocolKind`] display names).
///
/// # Errors
///
/// A message listing the valid names.
pub fn parse_protocol(s: &str) -> Result<ProtocolKind, String> {
    ProtocolKind::ALL
        .into_iter()
        .find(|k| k.to_string() == s)
        .ok_or_else(|| {
            let names: Vec<String> = ProtocolKind::ALL.iter().map(|k| k.to_string()).collect();
            format!("unknown protocol '{s}' (one of: {})", names.join(", "))
        })
}

/// Parses a `--gc` value: `rdt-lgc`, `none`, `simple`, `wang`,
/// `time:<horizon>`.
///
/// # Errors
///
/// A message listing the valid names.
pub fn parse_gc(s: &str) -> Result<GcKind, String> {
    match s {
        "rdt-lgc" | "lgc" => Ok(GcKind::RdtLgc),
        "none" | "no-gc" => Ok(GcKind::None),
        "simple" | "simple-coordinated" => Ok(GcKind::SimpleCoordinated),
        "wang" | "wang-global" => Ok(GcKind::WangGlobal),
        other => {
            if let Some(h) = other.strip_prefix("time:") {
                let horizon = h
                    .parse::<u64>()
                    .map_err(|e| format!("bad time horizon: {e}"))?;
                return Ok(GcKind::TimeBased { horizon });
            }
            Err(format!(
                "unknown collector '{other}' (one of: rdt-lgc, none, simple, wang, time:<horizon>)"
            ))
        }
    }
}

/// Attaches the shared workload/simulation arguments to a subcommand.
pub fn with_common_args(cmd: Command) -> Command {
    cmd.arg(arg_with_default(
        "processes",
        'n',
        "number of processes",
        "4",
    ))
    .arg(arg_with_default(
        "steps",
        's',
        "application operations",
        "500",
    ))
    .arg(arg_with_default("seed", 'S', "workload seed", "0"))
    .arg(arg_with_default(
        "pattern",
        'p',
        "traffic pattern (uniform, ring, token-ring, client-server:<k>, bursty:<k>)",
        "uniform",
    ))
    .arg(arg_with_default(
        "protocol",
        'P',
        "checkpointing protocol",
        "fdas",
    ))
    .arg(arg_with_default(
        "gc",
        'g',
        "garbage collector (rdt-lgc, none, simple, wang, time:<horizon>)",
        "rdt-lgc",
    ))
    .arg(arg_with_default(
        "checkpoint-prob",
        'c',
        "per-op basic checkpoint probability",
        "0.2",
    ))
    .arg(arg_with_default(
        "crash-prob",
        'x',
        "per-op crash probability",
        "0.0",
    ))
    .arg(arg_with_default(
        "loss",
        'l',
        "message loss probability",
        "0.0",
    ))
    .arg(arg_with_default(
        "min-delay",
        'd',
        "minimum message delay (ticks)",
        "1",
    ))
    .arg(arg_with_default(
        "max-delay",
        'D',
        "maximum message delay (ticks)",
        "20",
    ))
    .arg(
        Arg::new("control-every")
            .long("control-every")
            .help("coordinator control round period, in ticks (coordinated collectors)")
            .value_name("TICKS"),
    )
    .arg(arg_with_default(
        "shards",
        'j',
        "worker shards for the parallel engine (1 = sequential)",
        "1",
    ))
    .arg(
        Arg::new("profile")
            .long("profile")
            .help("record phase timings (drain, control rounds, per-shard barriers); simulation output stays byte-identical")
            .action(clap::ArgAction::SetTrue),
    )
    .arg(
        Arg::new("metrics-out")
            .long("metrics-out")
            .help("write the full metrics (and the phase profile, with --profile) as JSON to this file")
            .value_name("path"),
    )
    .arg(
        Arg::new("json")
            .long("json")
            .help("emit machine-readable JSON instead of tables")
            .action(clap::ArgAction::SetTrue),
    )
}

fn arg_with_default(
    name: &'static str,
    short: char,
    help: &'static str,
    default: &'static str,
) -> Arg {
    Arg::new(name)
        .long(name)
        .short(short)
        .help(help)
        .default_value(default)
        .value_name(name)
}

/// Everything a subcommand needs to run the simulator.
#[derive(Debug, Clone)]
pub struct RunOpts {
    /// The workload to generate.
    pub spec: WorkloadSpec,
    /// The protocol in force.
    pub protocol: ProtocolKind,
    /// The collector in force.
    pub gc: GcKind,
    /// Simulator settings.
    pub config: SimConfig,
    /// JSON output requested.
    pub json: bool,
    /// Where to write the full metrics + profile document, if anywhere.
    pub metrics_out: Option<std::path::PathBuf>,
}

/// Extracts [`RunOpts`] from parsed matches.
///
/// # Errors
///
/// Propagates the parse errors of the individual values.
pub fn run_opts(m: &ArgMatches) -> Result<RunOpts, String> {
    let get = |name: &str| m.get_one::<String>(name).expect("defaulted").clone();
    let n: usize = get("processes").parse().map_err(|e| format!("-n: {e}"))?;
    if n < 2 {
        return Err("-n: at least two processes required".into());
    }
    let steps: usize = get("steps").parse().map_err(|e| format!("-s: {e}"))?;
    let seed: u64 = get("seed").parse().map_err(|e| format!("-S: {e}"))?;
    let ckpt: f64 = get("checkpoint-prob")
        .parse()
        .map_err(|e| format!("-c: {e}"))?;
    let crash: f64 = get("crash-prob").parse().map_err(|e| format!("-x: {e}"))?;
    let loss: f64 = get("loss").parse().map_err(|e| format!("-l: {e}"))?;
    let min_delay: u64 = get("min-delay").parse().map_err(|e| format!("-d: {e}"))?;
    let max_delay: u64 = get("max-delay").parse().map_err(|e| format!("-D: {e}"))?;
    if max_delay < min_delay {
        return Err("-D: max delay below min delay".into());
    }
    if !(0.0..=1.0).contains(&ckpt) || !(0.0..=1.0).contains(&crash) || ckpt + crash > 1.0 {
        return Err("probabilities must be in [0,1] with checkpoint+crash ≤ 1".into());
    }
    if !(0.0..=1.0).contains(&loss) {
        return Err("-l: loss must be in [0,1]".into());
    }
    let shards: usize = get("shards").parse().map_err(|e| format!("-j: {e}"))?;
    if shards == 0 {
        return Err("-j: at least one shard required".into());
    }

    let spec = WorkloadSpec::uniform_random(n, steps)
        .with_pattern(parse_pattern(&get("pattern"))?)
        .with_seed(seed)
        .with_checkpoint_prob(ckpt)
        .with_crash_prob(crash);
    let config = SimConfig {
        channel: ChannelConfig {
            min_delay,
            max_delay,
            loss_rate: loss,
        },
        control_every: m
            .get_one::<String>("control-every")
            .map(|v| {
                v.parse::<u64>()
                    .map_err(|e| format!("--control-every: {e}"))
            })
            .transpose()?,
        shard: ShardConfig {
            shards,
            ..ShardConfig::default()
        },
        profile: m.get_flag("profile"),
        ..SimConfig::default()
    };
    Ok(RunOpts {
        spec,
        protocol: parse_protocol(&get("protocol"))?,
        gc: parse_gc(&get("gc"))?,
        config,
        json: m.get_flag("json"),
        metrics_out: m.get_one::<String>("metrics-out").map(Into::into),
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn patterns_parse() {
        assert_eq!(parse_pattern("uniform").unwrap(), Pattern::UniformRandom);
        assert_eq!(parse_pattern("ring").unwrap(), Pattern::Ring);
        assert_eq!(parse_pattern("token-ring").unwrap(), Pattern::TokenRing);
        assert_eq!(parse_pattern("star").unwrap(), Pattern::Star);
        assert_eq!(parse_pattern("pipeline").unwrap(), Pattern::Pipeline);
        assert_eq!(
            parse_pattern("client-server:2").unwrap(),
            Pattern::ClientServer { servers: 2 }
        );
        assert_eq!(
            parse_pattern("bursty:8").unwrap(),
            Pattern::Bursty { burst: 8 }
        );
        assert!(parse_pattern("mesh").is_err());
        assert!(parse_pattern("bursty").is_err());
        assert!(parse_pattern("bursty:x").is_err());
    }

    #[test]
    fn protocols_parse_by_display_name() {
        for kind in ProtocolKind::ALL {
            assert_eq!(parse_protocol(&kind.to_string()).unwrap(), kind);
        }
        assert!(parse_protocol("nope").is_err());
    }

    #[test]
    fn collectors_parse() {
        assert_eq!(parse_gc("rdt-lgc").unwrap(), GcKind::RdtLgc);
        assert_eq!(parse_gc("none").unwrap(), GcKind::None);
        assert_eq!(parse_gc("simple").unwrap(), GcKind::SimpleCoordinated);
        assert_eq!(parse_gc("wang").unwrap(), GcKind::WangGlobal);
        assert_eq!(
            parse_gc("time:300").unwrap(),
            GcKind::TimeBased { horizon: 300 }
        );
        assert!(parse_gc("time:x").is_err());
        assert!(parse_gc("hourly").is_err());
    }

    #[test]
    fn run_opts_apply_defaults_and_validate() {
        let cmd = with_common_args(Command::new("t"));
        let m = cmd.clone().get_matches_from(["t"]);
        let opts = run_opts(&m).unwrap();
        assert_eq!(opts.spec.n, 4);
        assert_eq!(opts.spec.steps, 500);
        assert_eq!(opts.protocol, ProtocolKind::Fdas);
        assert_eq!(opts.gc, GcKind::RdtLgc);
        assert!(!opts.json);

        let m = cmd
            .clone()
            .get_matches_from(["t", "-n", "8", "-g", "time:99", "--json"]);
        let opts = run_opts(&m).unwrap();
        assert_eq!(opts.spec.n, 8);
        assert_eq!(opts.gc, GcKind::TimeBased { horizon: 99 });
        assert!(opts.json);

        let m = cmd.clone().get_matches_from(["t", "-j", "4"]);
        let opts = run_opts(&m).unwrap();
        assert_eq!(opts.config.shard.shards, 4);
        assert!(!opts.config.profile);
        assert!(opts.metrics_out.is_none());

        let m = cmd
            .clone()
            .get_matches_from(["t", "--profile", "--metrics-out", "m.json"]);
        let opts = run_opts(&m).unwrap();
        assert!(opts.config.profile);
        assert_eq!(
            opts.metrics_out.as_deref(),
            Some(std::path::Path::new("m.json"))
        );

        let m = cmd.clone().get_matches_from(["t", "-n", "1"]);
        assert!(run_opts(&m).is_err());
        let m = cmd.clone().get_matches_from(["t", "-j", "0"]);
        assert!(run_opts(&m).is_err());
        let m = cmd.get_matches_from(["t", "-d", "9", "-D", "2"]);
        assert!(run_opts(&m).is_err());
    }
}
