//! `rdt causal` — merge per-worker observability dumps into one
//! happened-before-ordered trace.
//!
//! Each worker of an `rdt serve` run (or any process with the flight
//! recorder / `RDT_LOG_JSONL` active) leaves a JSONL dump whose
//! `rdt_sim::live` events describe its local frame activity: `frame_send`,
//! `frame_recv`, `frame_apply`. This analyzer interleaves those per-process
//! program orders into one global sequence in which every receive appears
//! after its matching send — a linearization of Lamport's happened-before
//! relation — and cross-checks the dependency-vector lineage on the wire:
//! what a receiver *learned* about the sender can never be older than what
//! the sender *said* at send time.
//!
//! Flight-recorder rings are bounded and flushed periodically, so a dump
//! may be truncated at both ends: old records evicted from the ring, and a
//! kill-9 losing the unflushed tail. The send sequence numbers surviving
//! in a process's dump span its *recorded window*; receives referencing a
//! send outside that window get a `synthetic_send` placeholder, while a
//! missing send *inside* the window is a real causality violation and
//! fails the merge.

use std::collections::{BTreeMap, VecDeque};
use std::io::Write as _;

use rdt_obs::json::{self, JsonValue};

const TARGET: &str = "rdt_sim::live";

#[derive(Debug, Clone, Copy, PartialEq, Eq)]
enum Kind {
    Send,
    Recv,
    Apply,
}

impl Kind {
    fn as_str(self) -> &'static str {
        match self {
            Kind::Send => "send",
            Kind::Recv => "recv",
            Kind::Apply => "apply",
        }
    }
}

/// One frame event parsed out of a worker dump, in that worker's program
/// order. `peer` is the destination for sends and the origin for
/// receives/applies; `seq` is always the *sender's* sequence number, so
/// `(origin, seq)` names a frame globally.
#[derive(Debug, Clone)]
struct FrameEvent {
    kind: Kind,
    process: u64,
    peer: u64,
    seq: u64,
    inc: u64,
    interval: u64,
    forced: bool,
    eliminated: u64,
    src: String,
}

impl FrameEvent {
    /// The frame's global identity: (origin process, send seq).
    fn frame_id(&self) -> (u64, u64) {
        match self.kind {
            Kind::Send => (self.process, self.seq),
            Kind::Recv | Kind::Apply => (self.peer, self.seq),
        }
    }
}

/// Entry point for the `causal` subcommand.
pub fn causal(m: &clap::ArgMatches) -> Result<(), String> {
    let mut inputs: Vec<std::path::PathBuf> = m
        .get_many::<String>("inputs")
        .map(|vals| vals.map(std::path::PathBuf::from).collect())
        .unwrap_or_default();
    if let Some(dir) = m.get_one::<String>("dir") {
        inputs.extend(harvest(std::path::Path::new(dir))?);
    }
    if inputs.is_empty() {
        return Err("no inputs: pass dump files or --dir <serve dir>".into());
    }

    let mut queues: Vec<(u64, VecDeque<FrameEvent>)> = Vec::new();
    let mut owner_file: BTreeMap<u64, String> = BTreeMap::new();
    for path in &inputs {
        let body = std::fs::read_to_string(path)
            .map_err(|e| format!("{}: {e}", path.display()))?;
        for (lineno, line) in body.lines().enumerate() {
            let Some(ev) = parse_frame_event(path, lineno, line)? else {
                continue;
            };
            match owner_file.get(&ev.process) {
                Some(prev) if *prev != path.display().to_string() => {
                    return Err(format!(
                        "process {} appears in both {prev} and {}: cannot \
                         reconstruct one program order",
                        ev.process,
                        path.display()
                    ));
                }
                _ => {
                    owner_file
                        .entry(ev.process)
                        .or_insert_with(|| path.display().to_string());
                }
            }
            match queues.iter_mut().find(|(p, _)| *p == ev.process) {
                Some((_, q)) => q.push_back(ev),
                None => {
                    let p = ev.process;
                    queues.push((p, VecDeque::from([ev])));
                }
            }
        }
    }
    queues.sort_by_key(|(p, _)| *p);

    let merged = merge(queues)?;

    let mut doc = String::new();
    for line in &merged.lines {
        rdt_obs::check::check_jsonl_line(line)
            .map_err(|e| format!("internal: emitted invalid causal line: {e}"))?;
        doc.push_str(line);
        doc.push('\n');
    }
    match m.get_one::<String>("out") {
        Some(path) => std::fs::write(path, &doc).map_err(|e| format!("{path}: {e}"))?,
        None => {
            let mut stdout = std::io::stdout().lock();
            stdout.write_all(doc.as_bytes()).map_err(|e| e.to_string())?;
        }
    }
    eprintln!(
        "causal: {} events from {} processes merged ({} synthetic sends)",
        merged.lines.len(),
        merged.processes,
        merged.synthetic
    );
    Ok(())
}

/// Collects `flight_p*.jsonl` dumps under `dir`, sorted by name.
fn harvest(dir: &std::path::Path) -> Result<Vec<std::path::PathBuf>, String> {
    let mut found = Vec::new();
    let entries = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    for entry in entries {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let name = name.to_string_lossy();
        if name.starts_with("flight_p") && name.ends_with(".jsonl") {
            found.push(entry.path());
        }
    }
    if found.is_empty() {
        return Err(format!(
            "{}: no flight_p*.jsonl dumps found",
            dir.display()
        ));
    }
    found.sort();
    Ok(found)
}

/// Parses one dump line into a [`FrameEvent`]; `Ok(None)` for lines that
/// are valid JSON but not live frame events (trace lines, other targets,
/// `gc_collect`, …).
fn parse_frame_event(
    path: &std::path::Path,
    lineno: usize,
    line: &str,
) -> Result<Option<FrameEvent>, String> {
    if line.trim().is_empty() {
        return Ok(None);
    }
    let src = format!("{}:{}", path.display(), lineno + 1);
    let v = json::parse(line).map_err(|e| format!("{src}: {e}"))?;
    if v.get("type").is_some() {
        return Ok(None); // simulator trace line, not a log envelope
    }
    if v.get("target").and_then(JsonValue::as_str) != Some(TARGET) {
        return Ok(None);
    }
    let kind = match v.get("event").and_then(JsonValue::as_str) {
        Some("frame_send") => Kind::Send,
        Some("frame_recv") => Kind::Recv,
        Some("frame_apply") => Kind::Apply,
        _ => return Ok(None),
    };
    let u = |key: &str| -> Result<u64, String> {
        v.get(key)
            .and_then(JsonValue::as_u64)
            .ok_or_else(|| format!("{src}: missing integer field {key:?}"))
    };
    let peer_key = if kind == Kind::Send { "to" } else { "from" };
    let process = u("process")?;
    let peer = u(peer_key)?;
    let seq = u("seq")?;
    let (mut inc, mut interval) = (0, 0);
    if matches!(kind, Kind::Send | Kind::Apply) {
        inc = u("inc")?;
        interval = u("interval")?;
    }
    let (mut forced, mut eliminated) = (false, 0);
    if kind == Kind::Apply {
        forced = matches!(v.get("forced"), Some(JsonValue::Bool(true)));
        eliminated = u("eliminated")?;
    }
    Ok(Some(FrameEvent {
        kind,
        process,
        peer,
        seq,
        inc,
        interval,
        forced,
        eliminated,
        src,
    }))
}

#[derive(Debug)]
struct Merged {
    lines: Vec<String>,
    processes: usize,
    synthetic: usize,
}

/// What the merger knows about a frame once its send has been emitted.
#[derive(Clone, Copy)]
struct SentFrame {
    inc: u64,
    interval: u64,
    synthetic: bool,
}

/// Interleaves the per-process queues into one happened-before-consistent
/// sequence. A receive (or apply) is *enabled* once its send has been
/// emitted; a send is always enabled. A receive referencing a send outside
/// its origin's recorded window gets a `synthetic_send`; one inside the
/// window with no matching send is a violation. If no head is enabled and
/// work remains, the dumps imply a causal cycle and the merge fails.
fn merge(mut queues: Vec<(u64, VecDeque<FrameEvent>)>) -> Result<Merged, String> {
    // Recorded send window per origin: [lowest, highest] send seq
    // surviving in its dump. Sends are numbered monotonically per origin,
    // so anything below the window was evicted from the bounded ring and
    // anything above it was lost in the unflushed tail of a kill — both
    // legitimately absent. Only a gap *inside* the window is a violation.
    let mut window: BTreeMap<u64, (u64, u64)> = BTreeMap::new();
    let mut in_dump: BTreeMap<(u64, u64), ()> = BTreeMap::new();
    let dumped: Vec<u64> = queues.iter().map(|(p, _)| *p).collect();
    for (p, q) in &queues {
        for ev in q {
            if ev.kind == Kind::Send {
                in_dump.insert((*p, ev.seq), ());
                let w = window.entry(*p).or_insert((ev.seq, ev.seq));
                w.0 = w.0.min(ev.seq);
                w.1 = w.1.max(ev.seq);
            }
        }
    }

    let mut emitted: BTreeMap<(u64, u64), SentFrame> = BTreeMap::new();
    let mut lines = Vec::new();
    let mut pos: u64 = 0;
    let mut synthetic = 0usize;
    let processes = queues.len();

    let emit = |kind: &str, ev: &FrameEvent, pos: &mut u64, lines: &mut Vec<String>| {
        let mut obj = vec![
            ("type".to_string(), JsonValue::Str("causal".into())),
            ("pos".to_string(), JsonValue::UInt(*pos)),
            ("kind".to_string(), JsonValue::Str(kind.into())),
            ("process".to_string(), JsonValue::UInt(ev.process)),
            ("peer".to_string(), JsonValue::UInt(ev.peer)),
            ("seq".to_string(), JsonValue::UInt(ev.seq)),
        ];
        if kind != "recv" {
            obj.push(("inc".to_string(), JsonValue::UInt(ev.inc)));
            obj.push(("interval".to_string(), JsonValue::UInt(ev.interval)));
        }
        if kind == "apply" {
            obj.push(("forced".to_string(), JsonValue::Bool(ev.forced)));
            obj.push(("eliminated".to_string(), JsonValue::UInt(ev.eliminated)));
        }
        let mut out = String::new();
        JsonValue::Obj(obj).render(&mut out);
        lines.push(out);
        *pos += 1;
    };

    loop {
        let mut progress = false;
        let mut exhausted = true;
        for i in 0..queues.len() {
            let Some(head) = queues[i].1.front().cloned() else {
                continue;
            };
            exhausted = false;
            match head.kind {
                Kind::Send => {
                    emitted.insert(
                        head.frame_id(),
                        SentFrame {
                            inc: head.inc,
                            interval: head.interval,
                            synthetic: false,
                        },
                    );
                    emit("send", &head, &mut pos, &mut lines);
                }
                Kind::Recv | Kind::Apply => {
                    let id = head.frame_id();
                    let sent = match emitted.get(&id) {
                        Some(s) => *s,
                        None if in_dump.contains_key(&id) => continue, // wait for the send
                        None => {
                            let outside_window = !dumped.contains(&head.peer)
                                || window
                                    .get(&head.peer)
                                    .map_or(true, |(lo, hi)| head.seq < *lo || head.seq > *hi);
                            if !outside_window {
                                return Err(format!(
                                    "{}: {} of frame ({}, {}) has no matching send \
                                     inside process {}'s recorded window {:?}",
                                    head.src,
                                    head.kind.as_str(),
                                    head.peer,
                                    head.seq,
                                    head.peer,
                                    window.get(&head.peer)
                                ));
                            }
                            // The send fell outside the origin's surviving
                            // ring (evicted head or unflushed kill tail):
                            // stand in for it so the order stays consistent.
                            let ghost = FrameEvent {
                                kind: Kind::Send,
                                process: head.peer,
                                peer: head.process,
                                seq: head.seq,
                                inc: 0,
                                interval: 0,
                                forced: false,
                                eliminated: 0,
                                src: head.src.clone(),
                            };
                            let s = SentFrame {
                                inc: 0,
                                interval: 0,
                                synthetic: true,
                            };
                            emitted.insert(id, s);
                            synthetic += 1;
                            emit("synthetic_send", &ghost, &mut pos, &mut lines);
                            s
                        }
                    };
                    if head.kind == Kind::Apply
                        && !sent.synthetic
                        && (head.inc, head.interval) < (sent.inc, sent.interval)
                    {
                        return Err(format!(
                            "{}: apply of frame ({}, {}) learned lineage \
                             (inc {}, interval {}) older than the send's \
                             (inc {}, interval {})",
                            head.src,
                            head.peer,
                            head.seq,
                            head.inc,
                            head.interval,
                            sent.inc,
                            sent.interval
                        ));
                    }
                    emit(head.kind.as_str(), &head, &mut pos, &mut lines);
                }
            }
            queues[i].1.pop_front();
            progress = true;
        }
        if exhausted {
            break;
        }
        if !progress {
            let heads: Vec<String> = queues
                .iter()
                .filter_map(|(p, q)| {
                    q.front().map(|ev| {
                        format!(
                            "p{p} waiting on {} of ({}, {})",
                            ev.kind.as_str(),
                            ev.peer,
                            ev.seq
                        )
                    })
                })
                .collect();
            return Err(format!(
                "dumps imply a causal cycle — no event is enabled: {}",
                heads.join("; ")
            ));
        }
    }

    Ok(Merged {
        lines,
        processes,
        synthetic,
    })
}

#[cfg(test)]
mod tests {
    use super::*;

    fn log_line(event: &str, fields: &[(&str, JsonValue)]) -> String {
        let mut obj = vec![
            ("level".to_string(), JsonValue::Str("debug".into())),
            ("target".to_string(), JsonValue::Str(TARGET.into())),
            ("event".to_string(), JsonValue::Str(event.into())),
            ("msg".to_string(), JsonValue::Str(String::new())),
        ];
        for (k, v) in fields {
            obj.push((k.to_string(), v.clone()));
        }
        let mut out = String::new();
        JsonValue::Obj(obj).render(&mut out);
        out
    }

    fn parse_lines(process_lines: &[(u64, Vec<String>)]) -> Vec<(u64, VecDeque<FrameEvent>)> {
        let mut queues = Vec::new();
        for (p, lines) in process_lines {
            let mut q = VecDeque::new();
            for (i, line) in lines.iter().enumerate() {
                let path = std::path::PathBuf::from(format!("p{p}.jsonl"));
                if let Some(ev) = parse_frame_event(&path, i, line).unwrap() {
                    q.push_back(ev);
                }
            }
            queues.push((*p, q));
        }
        queues
    }

    fn send(process: u64, to: u64, seq: u64, inc: u64, interval: u64) -> String {
        log_line(
            "frame_send",
            &[
                ("process", JsonValue::UInt(process)),
                ("to", JsonValue::UInt(to)),
                ("seq", JsonValue::UInt(seq)),
                ("inc", JsonValue::UInt(inc)),
                ("interval", JsonValue::UInt(interval)),
            ],
        )
    }

    fn recv(process: u64, from: u64, seq: u64) -> String {
        log_line(
            "frame_recv",
            &[
                ("process", JsonValue::UInt(process)),
                ("from", JsonValue::UInt(from)),
                ("seq", JsonValue::UInt(seq)),
            ],
        )
    }

    fn apply(process: u64, from: u64, seq: u64, inc: u64, interval: u64) -> String {
        log_line(
            "frame_apply",
            &[
                ("process", JsonValue::UInt(process)),
                ("from", JsonValue::UInt(from)),
                ("seq", JsonValue::UInt(seq)),
                ("inc", JsonValue::UInt(inc)),
                ("interval", JsonValue::UInt(interval)),
                ("forced", JsonValue::Bool(false)),
                ("eliminated", JsonValue::UInt(0)),
            ],
        )
    }

    #[test]
    fn merges_recv_after_its_send() {
        // p1's dump lists its recv first; the merge must still place p0's
        // send before it.
        let queues = parse_lines(&[
            (1, vec![recv(1, 0, 0), apply(1, 0, 0, 0, 1)]),
            (0, vec![send(0, 1, 0, 0, 1)]),
        ]);
        let merged = merge(queues).unwrap();
        let kinds: Vec<String> = merged
            .lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("kind")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert_eq!(kinds, ["send", "recv", "apply"]);
        assert_eq!(merged.synthetic, 0);
        for l in &merged.lines {
            rdt_obs::check::check_jsonl_line(l).unwrap();
        }
    }

    #[test]
    fn synthesizes_sends_evicted_below_the_horizon() {
        // p0's ring starts at send seq 5; the recv of seq 2 predates it.
        let queues = parse_lines(&[
            (0, vec![send(0, 1, 5, 0, 3)]),
            (1, vec![recv(1, 0, 2), recv(1, 0, 5)]),
        ]);
        let merged = merge(queues).unwrap();
        assert_eq!(merged.synthetic, 1);
        let kinds: Vec<String> = merged
            .lines
            .iter()
            .map(|l| {
                json::parse(l)
                    .unwrap()
                    .get("kind")
                    .unwrap()
                    .as_str()
                    .unwrap()
                    .to_string()
            })
            .collect();
        assert!(kinds.contains(&"synthetic_send".to_string()));
        // The real send of seq 5 still precedes its recv.
        let send_pos = kinds.iter().position(|k| k == "send").unwrap();
        let recv5 = merged
            .lines
            .iter()
            .position(|l| {
                let v = json::parse(l).unwrap();
                v.get("kind").unwrap().as_str() == Some("recv")
                    && v.get("seq").unwrap().as_u64() == Some(5)
            })
            .unwrap();
        assert!(send_pos < recv5);
    }

    #[test]
    fn rejects_a_recv_with_no_send_inside_the_recorded_window() {
        // p0's dump spans seqs 0..=5, so seq 3 can neither have been
        // evicted (below 0) nor lost in the kill tail (above 5).
        let queues = parse_lines(&[
            (0, vec![send(0, 1, 0, 0, 1), send(0, 1, 5, 0, 2)]),
            (1, vec![recv(1, 0, 3)]),
        ]);
        let err = merge(queues).unwrap_err();
        assert!(err.contains("no matching send"), "{err}");
    }

    #[test]
    fn synthesizes_sends_lost_in_the_unflushed_kill_tail() {
        // p0 was killed after transmitting seq 6 but before its ring
        // flushed it; p1's dump kept the recv.
        let queues = parse_lines(&[
            (0, vec![send(0, 1, 5, 0, 2)]),
            (1, vec![recv(1, 0, 5), recv(1, 0, 6)]),
        ]);
        let merged = merge(queues).unwrap();
        assert_eq!(merged.synthetic, 1);
    }

    #[test]
    fn rejects_an_apply_that_unlearned_the_senders_lineage() {
        let queues = parse_lines(&[
            (0, vec![send(0, 1, 0, 1, 4)]),
            (1, vec![recv(1, 0, 0), apply(1, 0, 0, 1, 3)]),
        ]);
        let err = merge(queues).unwrap_err();
        assert!(err.contains("older than the send"), "{err}");
    }

    #[test]
    fn skips_foreign_lines_and_gc_events() {
        let path = std::path::PathBuf::from("x.jsonl");
        for line in [
            r#"{"type":"run","n":2,"steps":5,"seed":1,"shards":1,"protocol":"fdas","gc":"rdt"}"#,
            r#"{"level":"info","target":"rdt_sim::engine","event":"other","msg":""}"#,
            &log_line("gc_collect", &[("process", JsonValue::UInt(0))]),
        ] {
            assert!(parse_frame_event(&path, 0, line).unwrap().is_none());
        }
    }
}
