//! The `simulate`, `analyze`, `audit`, `line`, `trace` and `torture`
//! subcommands.

use rdt_analysis::{worst_single_failure, CcpStats, OccupancyTimeline};
use rdt_base::{ProcessId, TraceEvent};
use rdt_ccp::{collection_safety_violations, CcpBuilder};
use rdt_sim::{Metrics, SimulationBuilder, SimulationReport};

use crate::json::Json;
use crate::opts::RunOpts;

/// Runs the simulator once with the given options.
fn run(opts: &RunOpts, record_trace: bool) -> Result<SimulationReport, String> {
    run_with(opts, record_trace, false)
}

fn run_with(
    opts: &RunOpts,
    record_trace: bool,
    record_occupancy: bool,
) -> Result<SimulationReport, String> {
    let mut builder = SimulationBuilder::new(opts.spec.clone())
        .protocol(opts.protocol)
        .garbage_collector(opts.gc)
        .config(opts.config);
    if record_trace {
        builder = builder.record_trace();
    }
    if record_occupancy {
        builder = builder.record_occupancy();
    }
    builder.run().map_err(|e| format!("simulation failed: {e}"))
}

/// The full [`Metrics`] struct as JSON — every field, not the curated
/// `simulate` summary. Shared by `--metrics-out` and the bench sweep.
fn metrics_json(m: &Metrics) -> Json {
    Json::obj()
        .field("ticks", Json::UInt(m.ticks))
        .field("control_rounds", Json::UInt(m.control_rounds))
        .field("recovery_sessions", Json::UInt(m.recovery_sessions))
        .field("total_rolled_back", Json::UInt(m.total_rolled_back))
        .field("degraded_lines", Json::UInt(m.degraded_lines))
        .field("sequential_fallbacks", Json::UInt(m.sequential_fallbacks))
        .field(
            "peak_global_retained",
            Json::UInt(m.peak_global_retained as u64),
        )
        .field(
            "per_process",
            Json::Arr(
                m.per_process
                    .iter()
                    .map(|p| {
                        Json::obj()
                            .field("retained", Json::UInt(p.retained as u64))
                            .field("peak_retained", Json::UInt(p.peak_retained as u64))
                            .field("total_stored", Json::UInt(p.total_stored as u64))
                            .field("total_collected", Json::UInt(p.total_collected as u64))
                            .field("basic", Json::UInt(p.basic))
                            .field("forced", Json::UInt(p.forced))
                            .field("sent", Json::UInt(p.sent))
                            .field("delivered", Json::UInt(p.delivered))
                            .field("lost", Json::UInt(p.lost))
                            .field("retained_sum", Json::UInt(p.retained_sum))
                            .field("samples", Json::UInt(p.samples))
                            .build()
                    })
                    .collect(),
            ),
        )
        .build()
}

/// Writes the full metrics + profile document for `--metrics-out`.
fn write_metrics_out(path: &std::path::Path, report: &SimulationReport) -> Result<(), String> {
    let doc = Json::obj()
        .field("metrics", metrics_json(&report.metrics))
        .maybe(
            "profile",
            report
                .profile
                .as_ref()
                .map(|p| Json::Raw(p.to_json().to_string())),
        )
        .build();
    std::fs::write(path, doc.pretty() + "\n")
        .map_err(|e| format!("writing {}: {e}", path.display()))
}

#[derive(Debug)]
struct SimulateSummary {
    n: usize,
    steps: usize,
    protocol: String,
    gc: String,
    ticks: u64,
    delivered: u64,
    lost: u64,
    basic_checkpoints: u64,
    forced_checkpoints: u64,
    collected: usize,
    recovery_sessions: u64,
    rolled_back: u64,
    max_retained: usize,
    peak_global_retained: usize,
    avg_retained: f64,
    per_process_retained: Vec<usize>,
    occupancy: Option<OccupancySummary>,
    profile: Option<rdt_obs::ProfileReport>,
}

impl SimulateSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("n", Json::UInt(self.n as u64))
            .field("steps", Json::UInt(self.steps as u64))
            .field("protocol", Json::Str(self.protocol.clone()))
            .field("gc", Json::Str(self.gc.clone()))
            .field("ticks", Json::UInt(self.ticks))
            .field("delivered", Json::UInt(self.delivered))
            .field("lost", Json::UInt(self.lost))
            .field("basic_checkpoints", Json::UInt(self.basic_checkpoints))
            .field("forced_checkpoints", Json::UInt(self.forced_checkpoints))
            .field("collected", Json::UInt(self.collected as u64))
            .field("recovery_sessions", Json::UInt(self.recovery_sessions))
            .field("rolled_back", Json::UInt(self.rolled_back))
            .field("max_retained", Json::UInt(self.max_retained as u64))
            .field(
                "peak_global_retained",
                Json::UInt(self.peak_global_retained as u64),
            )
            .field("avg_retained", Json::Float(self.avg_retained))
            .field(
                "per_process_retained",
                Json::uints(self.per_process_retained.iter().copied()),
            )
            .maybe(
                "occupancy",
                self.occupancy.as_ref().map(OccupancySummary::to_json),
            )
            .maybe(
                "profile",
                self.profile
                    .as_ref()
                    .map(|p| Json::Raw(p.to_json().to_string())),
            )
            .build()
    }
}

#[derive(Debug)]
struct OccupancySummary {
    global_peak: usize,
    global_peak_at: u64,
    time_averaged_global: f64,
    final_global: usize,
    per_process_peak: Vec<usize>,
}

impl OccupancySummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("global_peak", Json::UInt(self.global_peak as u64))
            .field("global_peak_at", Json::UInt(self.global_peak_at))
            .field(
                "time_averaged_global",
                Json::Float(self.time_averaged_global),
            )
            .field("final_global", Json::UInt(self.final_global as u64))
            .field(
                "per_process_peak",
                Json::uints(self.per_process_peak.iter().copied()),
            )
            .build()
    }
}

/// `rdt simulate` — run a workload and report the storage metrics.
pub fn simulate(opts: &RunOpts, occupancy: bool) -> Result<(), String> {
    let report = run_with(opts, false, occupancy)?;
    if let Some(path) = &opts.metrics_out {
        write_metrics_out(path, &report)?;
    }
    let m = &report.metrics;
    let occupancy = report.occupancy.as_ref().map(|samples| {
        let tl = OccupancyTimeline::from_raw(opts.spec.n, samples.iter().copied());
        let (at, peak) = tl.global_peak();
        OccupancySummary {
            global_peak: peak,
            global_peak_at: at,
            time_averaged_global: tl.time_averaged_global(),
            final_global: tl.final_global(),
            per_process_peak: ProcessId::all(opts.spec.n)
                .map(|p| tl.process_peak(p))
                .collect(),
        }
    });
    let summary = SimulateSummary {
        n: opts.spec.n,
        steps: opts.spec.steps,
        protocol: opts.protocol.to_string(),
        gc: opts.gc.to_string(),
        ticks: m.ticks,
        delivered: m.total_delivered(),
        lost: m.per_process.iter().map(|p| p.lost).sum(),
        basic_checkpoints: m.total_basic(),
        forced_checkpoints: m.total_forced(),
        collected: m.total_collected(),
        recovery_sessions: m.recovery_sessions,
        rolled_back: m.total_rolled_back,
        max_retained: m.max_retained_per_process(),
        peak_global_retained: m.peak_global_retained,
        avg_retained: m.avg_retained(),
        per_process_retained: m.per_process.iter().map(|p| p.retained).collect(),
        occupancy,
        profile: report.profile.clone(),
    };
    if opts.json {
        println!("{}", summary.to_json().pretty());
        return Ok(());
    }
    println!(
        "simulated {} ops on {} processes over {} ticks",
        summary.steps, summary.n, summary.ticks
    );
    println!("protocol {}  gc {}", summary.protocol, summary.gc);
    println!(
        "messages: {} delivered, {} lost",
        summary.delivered, summary.lost
    );
    println!(
        "checkpoints: {} basic + {} forced, {} collected",
        summary.basic_checkpoints, summary.forced_checkpoints, summary.collected
    );
    if summary.recovery_sessions > 0 {
        println!(
            "recovery: {} sessions, {} checkpoints rolled back",
            summary.recovery_sessions, summary.rolled_back
        );
    }
    println!(
        "retention: max {} on one process (peak global {}), time-averaged {:.2}",
        summary.max_retained, summary.peak_global_retained, summary.avg_retained
    );
    println!(
        "final per-process occupancy: {:?}",
        summary.per_process_retained
    );
    if let Some(occ) = &summary.occupancy {
        println!(
            "timeline: global peak {} at tick {}, time-averaged {:.2}, final {}",
            occ.global_peak, occ.global_peak_at, occ.time_averaged_global, occ.final_global
        );
        println!("per-process peaks: {:?}", occ.per_process_peak);
    }
    if let Some(profile) = &summary.profile {
        println!("phases (by total time):");
        let mut phases: Vec<_> = profile.phases.iter().collect();
        phases.sort_by(|a, b| b.1.total_ns.cmp(&a.1.total_ns).then(a.0.cmp(b.0)));
        for (name, stats) in phases {
            println!(
                "  {name:<24} {:>9} calls  {:>12} ns total  {:>9} ns mean",
                stats.count,
                stats.total_ns,
                stats.mean_ns()
            );
        }
        for (name, value) in &profile.counters {
            println!("  {name:<24} {value:>9}");
        }
    }
    Ok(())
}

/// `rdt trace` — replay a run and emit its global event sequence as JSONL
/// (one `{"type":"run"}` header, one `{"type":"event"}` line per trace
/// event, and — with `--profile` — `span`/`counter` lines from the phase
/// profile). The stream is what `obs_check` validates in CI.
pub fn trace(opts: &RunOpts, out: Option<&str>) -> Result<(), String> {
    let report = run(opts, true)?;
    if let Some(path) = &opts.metrics_out {
        write_metrics_out(path, &report)?;
    }
    let trace = report.trace.as_ref().expect("trace recording requested");
    let mut lines = String::new();
    lines.push_str(
        &Json::obj()
            .field("type", Json::Str("run".into()))
            .field("n", Json::UInt(opts.spec.n as u64))
            .field("steps", Json::UInt(opts.spec.steps as u64))
            .field("seed", Json::UInt(opts.spec.seed))
            .field("shards", Json::UInt(opts.config.shard.shards as u64))
            .field("protocol", Json::Str(opts.protocol.to_string()))
            .field("gc", Json::Str(opts.gc.to_string()))
            .build()
            .compact(),
    );
    lines.push('\n');
    for (i, event) in trace.iter().enumerate() {
        let base = Json::obj()
            .field("type", Json::Str("event".into()))
            .field("i", Json::UInt(i as u64));
        let doc = match event {
            TraceEvent::Checkpoint { process, forced } => base
                .field("kind", Json::Str("ckpt".into()))
                .field("process", Json::UInt(process.index() as u64))
                .field("forced", Json::Bool(*forced)),
            TraceEvent::Send { id, to } => base
                .field("kind", Json::Str("send".into()))
                .field("from", Json::UInt(id.sender.index() as u64))
                .field("seq", Json::UInt(id.seq))
                .field("to", Json::UInt(to.index() as u64)),
            TraceEvent::Deliver { id } => base
                .field("kind", Json::Str("deliver".into()))
                .field("from", Json::UInt(id.sender.index() as u64))
                .field("seq", Json::UInt(id.seq)),
            TraceEvent::Drop { id } => base
                .field("kind", Json::Str("drop".into()))
                .field("from", Json::UInt(id.sender.index() as u64))
                .field("seq", Json::UInt(id.seq)),
            TraceEvent::Collect { process, index } => base
                .field("kind", Json::Str("collect".into()))
                .field("process", Json::UInt(process.index() as u64))
                .field("index", Json::UInt(index.value() as u64)),
            TraceEvent::Crash { process } => base
                .field("kind", Json::Str("crash".into()))
                .field("process", Json::UInt(process.index() as u64)),
            TraceEvent::Restore { process, to } => base
                .field("kind", Json::Str("restore".into()))
                .field("process", Json::UInt(process.index() as u64))
                .field("to", Json::UInt(to.value() as u64)),
        };
        lines.push_str(&doc.build().compact());
        lines.push('\n');
    }
    if let Some(profile) = &report.profile {
        for (phase, stats) in &profile.phases {
            lines.push_str(
                &Json::obj()
                    .field("type", Json::Str("span".into()))
                    .field("phase", Json::Str(phase.clone()))
                    .field("count", Json::UInt(stats.count))
                    .field("total_ns", Json::UInt(stats.total_ns))
                    .build()
                    .compact(),
            );
            lines.push('\n');
        }
        for (name, value) in &profile.counters {
            lines.push_str(
                &Json::obj()
                    .field("type", Json::Str("counter".into()))
                    .field("name", Json::Str(name.clone()))
                    .field("value", Json::UInt(*value))
                    .build()
                    .compact(),
            );
            lines.push('\n');
        }
    }
    match out {
        Some(path) => std::fs::write(path, lines).map_err(|e| format!("writing {path}: {e}")),
        None => {
            print!("{lines}");
            Ok(())
        }
    }
}

#[derive(Debug)]
struct AnalyzeSummary {
    rdt: bool,
    stable_checkpoints: usize,
    delivered: usize,
    causal_density: f64,
    zigzag_density: f64,
    doubling_ratio: f64,
    useless: usize,
    obsolete: usize,
    causally_identifiable_obsolete: usize,
    optimality_gap: usize,
    worst_failure_process: Option<String>,
    worst_failure_rolled_back: Option<usize>,
    worst_failure_reaches_initial: Option<bool>,
}

impl AnalyzeSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("rdt", Json::Bool(self.rdt))
            .field(
                "stable_checkpoints",
                Json::UInt(self.stable_checkpoints as u64),
            )
            .field("delivered", Json::UInt(self.delivered as u64))
            .field("causal_density", Json::Float(self.causal_density))
            .field("zigzag_density", Json::Float(self.zigzag_density))
            .field("doubling_ratio", Json::Float(self.doubling_ratio))
            .field("useless", Json::UInt(self.useless as u64))
            .field("obsolete", Json::UInt(self.obsolete as u64))
            .field(
                "causally_identifiable_obsolete",
                Json::UInt(self.causally_identifiable_obsolete as u64),
            )
            .field("optimality_gap", Json::UInt(self.optimality_gap as u64))
            .maybe(
                "worst_failure_process",
                self.worst_failure_process.clone().map(Json::Str),
            )
            .maybe(
                "worst_failure_rolled_back",
                self.worst_failure_rolled_back.map(|v| Json::UInt(v as u64)),
            )
            .maybe(
                "worst_failure_reaches_initial",
                self.worst_failure_reaches_initial.map(Json::Bool),
            )
            .build()
    }
}

/// `rdt analyze` — run crash-free, replay the trace into a CCP and report
/// pattern statistics plus the worst single-failure propagation. With
/// `dot = Some("ccp" | "rgraph")`, emit a Graphviz digraph instead (pipe
/// through `dot -Tsvg`).
pub fn analyze(opts: &RunOpts, dot: Option<&str>) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err(
            "analyze needs a crash-free workload: its path-based CCP statistics \
             (zigzag, propagation) cover a single execution epoch"
                .into(),
        );
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let ccp = CcpBuilder::from_trace(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?
        .build();
    match dot {
        Some("ccp") => {
            print!("{}", ccp.render_dot());
            return Ok(());
        }
        Some("rgraph") => {
            print!(
                "{}",
                rdt_analysis::RollbackGraph::new(&ccp).render_dot(None)
            );
            return Ok(());
        }
        Some(other) => return Err(format!("--dot takes 'ccp' or 'rgraph', not '{other}'")),
        None => {}
    }
    let stats = CcpStats::compute(&ccp);
    let worst = worst_single_failure(&ccp);
    let summary = AnalyzeSummary {
        rdt: stats.is_rdt,
        stable_checkpoints: stats.stable_checkpoints,
        delivered: stats.delivered_messages,
        causal_density: stats.causal_density(),
        zigzag_density: stats.zigzag_density(),
        doubling_ratio: stats.doubling_ratio(),
        useless: stats.useless_checkpoints,
        obsolete: stats.obsolete,
        causally_identifiable_obsolete: stats.causally_identifiable_obsolete,
        optimality_gap: stats.optimality_gap(),
        worst_failure_process: worst.as_ref().map(|w| w.faulty[0].to_string()),
        worst_failure_rolled_back: worst.as_ref().map(|w| w.total()),
        worst_failure_reaches_initial: worst.as_ref().map(|w| w.reached_initial),
    };
    if opts.json {
        println!("{}", summary.to_json().pretty());
        return Ok(());
    }
    println!("pattern: {stats}");
    println!(
        "doubling ratio {:.3} (1.0 = every zigzag dependency trackable)",
        summary.doubling_ratio
    );
    println!(
        "obsolete {} / causally identifiable {} (gap {} — the price of causal-only knowledge)",
        summary.obsolete, summary.causally_identifiable_obsolete, summary.optimality_gap
    );
    if let Some(w) = worst {
        println!(
            "worst single failure: {} rolls back {} checkpoints across {} processes{}",
            w.faulty[0],
            w.total(),
            w.affected_processes(),
            if w.reached_initial {
                " — DOMINO to the initial state"
            } else {
                ""
            }
        );
    }
    Ok(())
}

#[derive(Debug)]
struct AuditSummary {
    collector: String,
    collected: usize,
    violations: Vec<String>,
}

impl AuditSummary {
    fn to_json(&self) -> Json {
        Json::obj()
            .field("collector", Json::Str(self.collector.clone()))
            .field("collected", Json::UInt(self.collected as u64))
            .field(
                "violations",
                Json::Arr(self.violations.iter().cloned().map(Json::Str).collect()),
            )
            .build()
    }
}

/// `rdt audit` — run crash-free and check every garbage-collection event
/// against the Theorem-1 oracle at its own cut.
pub fn audit(opts: &RunOpts) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err("audit needs a crash-free workload (crash traces cannot replay)".into());
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let violations = collection_safety_violations(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?;
    let summary = AuditSummary {
        collector: opts.gc.to_string(),
        collected: report.metrics.total_collected(),
        violations: violations.iter().map(|c| c.to_string()).collect(),
    };
    if opts.json {
        println!("{}", summary.to_json().pretty());
    } else {
        println!(
            "{}: {} checkpoints collected, {} safety violations",
            summary.collector,
            summary.collected,
            summary.violations.len()
        );
        for v in &summary.violations {
            println!("  VIOLATION: {v} was not obsolete when eliminated");
        }
        if summary.violations.is_empty() {
            println!("every elimination was provably obsolete (Theorem 1) at its cut");
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} safety violations", violations.len()))
    }
}

/// `rdt line` — recovery lines for every single-process failure of a
/// crash-free run, via the offline oracle.
pub fn line(opts: &RunOpts) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err(
            "line needs a crash-free workload: the per-failure line report \
             describes a single execution epoch (crashy runs report their \
             actual recovery sessions in `simulate`)"
                .into(),
        );
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let ccp = CcpBuilder::from_trace(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?
        .build();
    #[derive(Debug)]
    struct Line {
        faulty: String,
        line: Vec<usize>,
        rolled_back: usize,
    }
    let lines: Vec<Line> = ProcessId::all(opts.spec.n)
        .map(|f| {
            let gc = ccp.recovery_line(&[f].into_iter().collect());
            let rolled: usize = ProcessId::all(opts.spec.n)
                .map(|p| ccp.volatile(p).index.value() - gc.component(p).index.value())
                .sum();
            Line {
                faulty: f.to_string(),
                line: gc.to_raw(),
                rolled_back: rolled,
            }
        })
        .collect();
    if opts.json {
        let doc = Json::Arr(
            lines
                .iter()
                .map(|l| {
                    Json::obj()
                        .field("faulty", Json::Str(l.faulty.clone()))
                        .field("line", Json::uints(l.line.iter().copied()))
                        .field("rolled_back", Json::UInt(l.rolled_back as u64))
                        .build()
                })
                .collect(),
        );
        println!("{}", doc.pretty());
    } else {
        for l in &lines {
            println!(
                "failure of {:<4} → line {:?} ({} checkpoints rolled back)",
                l.faulty, l.line, l.rolled_back
            );
        }
    }
    Ok(())
}

/// `rdt explain` — recovery-line provenance: for each failure scenario,
/// which DV entry pins each component of the line and which entries were
/// amnestied. Every explanation is cross-checked against the Lemma-1
/// oracle ([`rdt_ccp::LineExplanation::cross_check`]); a mismatch is a
/// hard error, so CI can gate on the exit code alone.
pub fn explain(opts: &RunOpts, faulty_arg: Option<&str>) -> Result<(), String> {
    use rdt_ccp::{FaultySet, LineExplanation};
    if opts.spec.crash_prob > 0.0 {
        return Err(
            "explain needs a crash-free workload: provenance describes a \
             single execution epoch"
                .into(),
        );
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let ccp = CcpBuilder::from_trace(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?
        .build();

    let scenarios: Vec<FaultySet> = match faulty_arg {
        Some(list) => {
            let mut set = FaultySet::new();
            for part in list.split(',') {
                let i: usize = part
                    .trim()
                    .parse()
                    .map_err(|e| format!("--faulty {part:?}: {e}"))?;
                if i >= opts.spec.n {
                    return Err(format!("--faulty: process {i} outside 0..{}", opts.spec.n));
                }
                set.insert(ProcessId::new(i));
            }
            vec![set]
        }
        None => ProcessId::all(opts.spec.n)
            .map(|f| [f].into_iter().collect())
            .collect(),
    };

    let mut docs = Vec::new();
    for faulty in &scenarios {
        let exp = ccp.explain_recovery_line(faulty);
        // The oracle gate: re-derive the line and every pin independently.
        exp.cross_check(&ccp, faulty)
            .map_err(|e| format!("provenance cross-check failed: {e}"))?;
        if opts.json {
            docs.push(explanation_json(faulty, &exp));
        } else {
            print_explanation(faulty, &exp);
        }
    }
    if opts.json {
        println!("{}", Json::Arr(docs).pretty());
    }
    return Ok(());

    fn explanation_json(faulty: &FaultySet, exp: &LineExplanation) -> Json {
        Json::obj()
            .field("faulty", Json::uints(faulty.iter().map(|f| f.index())))
            .field("line", Json::uints(exp.line().to_raw()))
            .field(
                "components",
                Json::Arr(
                    exp.components
                        .iter()
                        .map(|c| {
                            Json::obj()
                                .field("process", Json::UInt(c.process.index() as u64))
                                .field("chosen", Json::UInt(c.chosen.value() as u64))
                                .field("ceiling", Json::UInt(c.ceiling.value() as u64))
                                .field("volatile_kept", Json::Bool(c.volatile_kept))
                                .maybe(
                                    "pinned_by",
                                    c.pinned_by.as_ref().map(|p| {
                                        Json::obj()
                                            .field(
                                                "process",
                                                Json::UInt(p.blocker.index() as u64),
                                            )
                                            .field(
                                                "incarnation",
                                                Json::UInt(u64::from(p.incarnation)),
                                            )
                                            .field("interval", Json::UInt(p.interval as u64))
                                            .field(
                                                "rejected",
                                                Json::UInt(p.rejected.value() as u64),
                                            )
                                            .field(
                                                "last_stable",
                                                Json::UInt(p.last_stable.value() as u64),
                                            )
                                            .build()
                                    }),
                                )
                                .field(
                                    "amnestied",
                                    Json::Arr(
                                        c.amnestied
                                            .iter()
                                            .map(|a| {
                                                Json::obj()
                                                    .field(
                                                        "at",
                                                        Json::UInt(a.at.value() as u64),
                                                    )
                                                    .field(
                                                        "process",
                                                        Json::UInt(a.faulty.index() as u64),
                                                    )
                                                    .field(
                                                        "incarnation",
                                                        Json::UInt(u64::from(a.incarnation)),
                                                    )
                                                    .field(
                                                        "interval",
                                                        Json::UInt(a.interval as u64),
                                                    )
                                                    .field(
                                                        "live_incarnation",
                                                        Json::UInt(u64::from(
                                                            a.live_incarnation,
                                                        )),
                                                    )
                                                    .build()
                                            })
                                            .collect(),
                                    ),
                                )
                                .build()
                        })
                        .collect(),
                ),
            )
            .build()
    }

    fn print_explanation(faulty: &FaultySet, exp: &LineExplanation) {
        let names: Vec<String> = faulty.iter().map(|f| f.to_string()).collect();
        println!(
            "failure of {{{}}} → line {:?}",
            names.join(","),
            exp.line().to_raw()
        );
        for c in &exp.components {
            let state = if c.volatile_kept {
                "keeps running (volatile)".to_string()
            } else if c.chosen == c.ceiling {
                format!("restarts from s^{} (its ceiling)", c.chosen.value())
            } else {
                format!("rolls back to s^{}", c.chosen.value())
            };
            match &c.pinned_by {
                None => println!("  {}: {state} — unpinned", c.process),
                Some(pin) => println!(
                    "  {}: {state} — pinned by DV[{}] = (inc {}, interval {}) at \
                     rejected s^{}: knowledge past {}'s last stable s^{}",
                    c.process,
                    pin.blocker,
                    pin.incarnation,
                    pin.interval,
                    pin.rejected.value(),
                    pin.blocker,
                    pin.last_stable.value()
                ),
            }
            for a in &c.amnestied {
                println!(
                    "      amnestied at s^{}: DV[{}] = (inc {}, interval {}) — dead \
                     incarnation (live is {})",
                    a.at.value(),
                    a.faulty,
                    a.incarnation,
                    a.interval,
                    a.live_incarnation
                );
            }
        }
    }
}

/// The `torture` subcommand: crash-point sweep + seeded corruption plans
/// over the durable storage layer (see `rdt_storage::torture`).
pub fn torture(m: &clap::ArgMatches) -> Result<(), String> {
    use rdt_storage::torture::{run_torture, TortureOptions};
    let get = |name: &str| m.get_one::<String>(name).expect("defaulted").clone();
    let n: usize = get("processes").parse().map_err(|e| format!("-n: {e}"))?;
    if n < 2 {
        return Err("-n: at least two processes required".into());
    }
    let opts = TortureOptions {
        n,
        events: get("events")
            .parse()
            .map_err(|e| format!("--events: {e}"))?,
        seed: get("seed").parse().map_err(|e| format!("-S: {e}"))?,
        protocol: crate::opts::parse_protocol(&get("protocol"))?,
        gc: crate::opts::parse_gc(&get("gc"))?,
        max_crash_points: get("max-crash-points")
            .parse()
            .map_err(|e| format!("--max-crash-points: {e}"))?,
        fault_plans: get("fault-plans")
            .parse()
            .map_err(|e| format!("--fault-plans: {e}"))?,
        root: None,
    };
    let report = run_torture(&opts).map_err(|e| format!("torture harness failed: {e}"))?;
    if m.get_flag("json") {
        let doc = Json::obj()
            .field("total_ops", Json::UInt(report.total_ops))
            .field(
                "crash_points_tested",
                Json::UInt(report.crash_points_tested as u64),
            )
            .field(
                "fault_plans_tested",
                Json::UInt(report.fault_plans_tested as u64),
            )
            .field("quarantined", Json::UInt(report.quarantined as u64))
            .field("transient_retries", Json::UInt(report.transient_retries))
            .field(
                "restarts",
                Json::Arr(
                    report
                        .restarts
                        .iter()
                        .map(|r| {
                            Json::obj()
                                .field("crash_point", Json::UInt(r.crash_point))
                                .field("loaded", Json::UInt(r.loaded as u64))
                                .field("quarantined", Json::UInt(r.quarantined as u64))
                                .field("skipped_alien", Json::UInt(r.skipped_alien as u64))
                                .field("transient_retries", Json::UInt(r.transient_retries))
                                .build()
                        })
                        .collect(),
                ),
            )
            .field(
                "failures",
                Json::Arr(
                    report
                        .failures
                        .iter()
                        .map(|f| Json::Str(f.clone()))
                        .collect(),
                ),
            )
            .field("passed", Json::Bool(report.passed()))
            .build();
        println!("{}", doc.pretty());
    } else {
        println!(
            "tortured {} backend ops: {} crash points, {} fault plans \
             ({} quarantined, {} transient retries absorbed)",
            report.total_ops,
            report.crash_points_tested,
            report.fault_plans_tested,
            report.quarantined,
            report.transient_retries,
        );
        for failure in &report.failures {
            println!("  FAIL {failure}");
        }
        if report.passed() {
            println!("every crash point recovered to the oracle line");
        }
    }
    // Metrics are written even for a failing sweep: the counters are most
    // interesting exactly when a probe violated the contract.
    if let Some(path) = m.get_one::<String>("metrics-out") {
        let mut metrics = rdt_obs::ProfileReport::new();
        metrics.add("torture_ops", report.total_ops);
        metrics.add("torture_crash_points_tested", report.crash_points_tested as u64);
        metrics.add("torture_fault_plans_tested", report.fault_plans_tested as u64);
        metrics.add("torture_failures", report.failures.len() as u64);
        metrics.add("restart_quarantined", report.quarantined as u64);
        metrics.add("restart_transient_retries", report.transient_retries);
        for r in &report.restarts {
            metrics.add("restart_loaded", r.loaded as u64);
            metrics.add("restart_skipped_alien", r.skipped_alien as u64);
        }
        std::fs::write(path, metrics.to_prometheus())
            .map_err(|e| format!("--metrics-out {path}: {e}"))?;
    }
    if report.passed() {
        Ok(())
    } else {
        Err(format!(
            "{} of {} probes violated the crash-consistency contract",
            report.failures.len(),
            report.crash_points_tested + report.fault_plans_tested
        ))
    }
}
