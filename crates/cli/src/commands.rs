//! The `simulate`, `analyze` and `audit` subcommands.

use serde::Serialize;

use rdt_analysis::{worst_single_failure, CcpStats, OccupancyTimeline};
use rdt_base::ProcessId;
use rdt_ccp::{collection_safety_violations, CcpBuilder};
use rdt_sim::{SimulationBuilder, SimulationReport};

use crate::opts::RunOpts;

/// Runs the simulator once with the given options.
fn run(opts: &RunOpts, record_trace: bool) -> Result<SimulationReport, String> {
    run_with(opts, record_trace, false)
}

fn run_with(
    opts: &RunOpts,
    record_trace: bool,
    record_occupancy: bool,
) -> Result<SimulationReport, String> {
    let mut builder = SimulationBuilder::new(opts.spec.clone())
        .protocol(opts.protocol)
        .garbage_collector(opts.gc)
        .config(opts.config);
    if record_trace {
        builder = builder.record_trace();
    }
    if record_occupancy {
        builder = builder.record_occupancy();
    }
    builder.run().map_err(|e| format!("simulation failed: {e}"))
}

#[derive(Debug, Serialize)]
struct SimulateSummary {
    n: usize,
    steps: usize,
    protocol: String,
    gc: String,
    ticks: u64,
    delivered: u64,
    lost: u64,
    basic_checkpoints: u64,
    forced_checkpoints: u64,
    collected: usize,
    recovery_sessions: u64,
    rolled_back: u64,
    max_retained: usize,
    peak_global_retained: usize,
    avg_retained: f64,
    per_process_retained: Vec<usize>,
    #[serde(skip_serializing_if = "Option::is_none")]
    occupancy: Option<OccupancySummary>,
}

#[derive(Debug, Serialize)]
struct OccupancySummary {
    global_peak: usize,
    global_peak_at: u64,
    time_averaged_global: f64,
    final_global: usize,
    per_process_peak: Vec<usize>,
}

/// `rdt simulate` — run a workload and report the storage metrics.
pub fn simulate(opts: &RunOpts, occupancy: bool) -> Result<(), String> {
    let report = run_with(opts, false, occupancy)?;
    let m = &report.metrics;
    let occupancy = report.occupancy.as_ref().map(|samples| {
        let tl = OccupancyTimeline::from_raw(opts.spec.n, samples.iter().copied());
        let (at, peak) = tl.global_peak();
        OccupancySummary {
            global_peak: peak,
            global_peak_at: at,
            time_averaged_global: tl.time_averaged_global(),
            final_global: tl.final_global(),
            per_process_peak: ProcessId::all(opts.spec.n)
                .map(|p| tl.process_peak(p))
                .collect(),
        }
    });
    let summary = SimulateSummary {
        n: opts.spec.n,
        steps: opts.spec.steps,
        protocol: opts.protocol.to_string(),
        gc: opts.gc.to_string(),
        ticks: m.ticks,
        delivered: m.total_delivered(),
        lost: m.per_process.iter().map(|p| p.lost).sum(),
        basic_checkpoints: m.total_basic(),
        forced_checkpoints: m.total_forced(),
        collected: m.total_collected(),
        recovery_sessions: m.recovery_sessions,
        rolled_back: m.total_rolled_back,
        max_retained: m.max_retained_per_process(),
        peak_global_retained: m.peak_global_retained,
        avg_retained: m.avg_retained(),
        per_process_retained: m.per_process.iter().map(|p| p.retained).collect(),
        occupancy,
    };
    if opts.json {
        println!("{}", to_json(&summary)?);
        return Ok(());
    }
    println!("simulated {} ops on {} processes over {} ticks", summary.steps, summary.n, summary.ticks);
    println!("protocol {}  gc {}", summary.protocol, summary.gc);
    println!(
        "messages: {} delivered, {} lost",
        summary.delivered, summary.lost
    );
    println!(
        "checkpoints: {} basic + {} forced, {} collected",
        summary.basic_checkpoints, summary.forced_checkpoints, summary.collected
    );
    if summary.recovery_sessions > 0 {
        println!(
            "recovery: {} sessions, {} checkpoints rolled back",
            summary.recovery_sessions, summary.rolled_back
        );
    }
    println!(
        "retention: max {} on one process (peak global {}), time-averaged {:.2}",
        summary.max_retained, summary.peak_global_retained, summary.avg_retained
    );
    println!("final per-process occupancy: {:?}", summary.per_process_retained);
    if let Some(occ) = &summary.occupancy {
        println!(
            "timeline: global peak {} at tick {}, time-averaged {:.2}, final {}",
            occ.global_peak, occ.global_peak_at, occ.time_averaged_global, occ.final_global
        );
        println!("per-process peaks: {:?}", occ.per_process_peak);
    }
    Ok(())
}

#[derive(Debug, Serialize)]
struct AnalyzeSummary {
    rdt: bool,
    stable_checkpoints: usize,
    delivered: usize,
    causal_density: f64,
    zigzag_density: f64,
    doubling_ratio: f64,
    useless: usize,
    obsolete: usize,
    causally_identifiable_obsolete: usize,
    optimality_gap: usize,
    worst_failure_process: Option<String>,
    worst_failure_rolled_back: Option<usize>,
    worst_failure_reaches_initial: Option<bool>,
}

/// `rdt analyze` — run crash-free, replay the trace into a CCP and report
/// pattern statistics plus the worst single-failure propagation. With
/// `dot = Some("ccp" | "rgraph")`, emit a Graphviz digraph instead (pipe
/// through `dot -Tsvg`).
pub fn analyze(opts: &RunOpts, dot: Option<&str>) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err("analyze needs a crash-free workload (crash traces cannot replay)".into());
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let ccp = CcpBuilder::from_trace(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?
        .build();
    match dot {
        Some("ccp") => {
            print!("{}", ccp.render_dot());
            return Ok(());
        }
        Some("rgraph") => {
            print!("{}", rdt_analysis::RollbackGraph::new(&ccp).render_dot(None));
            return Ok(());
        }
        Some(other) => return Err(format!("--dot takes 'ccp' or 'rgraph', not '{other}'")),
        None => {}
    }
    let stats = CcpStats::compute(&ccp);
    let worst = worst_single_failure(&ccp);
    let summary = AnalyzeSummary {
        rdt: stats.is_rdt,
        stable_checkpoints: stats.stable_checkpoints,
        delivered: stats.delivered_messages,
        causal_density: stats.causal_density(),
        zigzag_density: stats.zigzag_density(),
        doubling_ratio: stats.doubling_ratio(),
        useless: stats.useless_checkpoints,
        obsolete: stats.obsolete,
        causally_identifiable_obsolete: stats.causally_identifiable_obsolete,
        optimality_gap: stats.optimality_gap(),
        worst_failure_process: worst.as_ref().map(|w| w.faulty[0].to_string()),
        worst_failure_rolled_back: worst.as_ref().map(|w| w.total()),
        worst_failure_reaches_initial: worst.as_ref().map(|w| w.reached_initial),
    };
    if opts.json {
        println!("{}", to_json(&summary)?);
        return Ok(());
    }
    println!("pattern: {stats}");
    println!(
        "doubling ratio {:.3} (1.0 = every zigzag dependency trackable)",
        summary.doubling_ratio
    );
    println!(
        "obsolete {} / causally identifiable {} (gap {} — the price of causal-only knowledge)",
        summary.obsolete, summary.causally_identifiable_obsolete, summary.optimality_gap
    );
    if let Some(w) = worst {
        println!(
            "worst single failure: {} rolls back {} checkpoints across {} processes{}",
            w.faulty[0],
            w.total(),
            w.affected_processes(),
            if w.reached_initial { " — DOMINO to the initial state" } else { "" }
        );
    }
    Ok(())
}

#[derive(Debug, Serialize)]
struct AuditSummary {
    collector: String,
    collected: usize,
    violations: Vec<String>,
}

/// `rdt audit` — run crash-free and check every garbage-collection event
/// against the Theorem-1 oracle at its own cut.
pub fn audit(opts: &RunOpts) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err("audit needs a crash-free workload (crash traces cannot replay)".into());
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let violations = collection_safety_violations(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?;
    let summary = AuditSummary {
        collector: opts.gc.to_string(),
        collected: report.metrics.total_collected(),
        violations: violations.iter().map(|c| c.to_string()).collect(),
    };
    if opts.json {
        println!("{}", to_json(&summary)?);
    } else {
        println!(
            "{}: {} checkpoints collected, {} safety violations",
            summary.collector,
            summary.collected,
            summary.violations.len()
        );
        for v in &summary.violations {
            println!("  VIOLATION: {v} was not obsolete when eliminated");
        }
        if summary.violations.is_empty() {
            println!("every elimination was provably obsolete (Theorem 1) at its cut");
        }
    }
    if violations.is_empty() {
        Ok(())
    } else {
        Err(format!("{} safety violations", violations.len()))
    }
}

/// `rdt line` — recovery lines for every single-process failure of a
/// crash-free run, via the offline oracle.
pub fn line(opts: &RunOpts) -> Result<(), String> {
    if opts.spec.crash_prob > 0.0 {
        return Err("line needs a crash-free workload (crash traces cannot replay)".into());
    }
    let report = run(opts, true)?;
    let trace = report.trace.expect("trace recording requested");
    let ccp = CcpBuilder::from_trace(opts.spec.n, &trace)
        .map_err(|e| format!("trace replay failed: {e}"))?
        .build();
    #[derive(Debug, Serialize)]
    struct Line {
        faulty: String,
        line: Vec<usize>,
        rolled_back: usize,
    }
    let lines: Vec<Line> = ProcessId::all(opts.spec.n)
        .map(|f| {
            let gc = ccp.recovery_line(&[f].into_iter().collect());
            let rolled: usize = ProcessId::all(opts.spec.n)
                .map(|p| ccp.volatile(p).index.value() - gc.component(p).index.value())
                .sum();
            Line {
                faulty: f.to_string(),
                line: gc.to_raw(),
                rolled_back: rolled,
            }
        })
        .collect();
    if opts.json {
        println!("{}", to_json(&lines)?);
    } else {
        for l in &lines {
            println!(
                "failure of {:<4} → line {:?} ({} checkpoints rolled back)",
                l.faulty, l.line, l.rolled_back
            );
        }
    }
    Ok(())
}

fn to_json<T: Serialize>(value: &T) -> Result<String, String> {
    serde_json::to_string_pretty(value).map_err(|e| e.to_string())
}
