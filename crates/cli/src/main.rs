//! `rdt` — command-line driver for the rdt-checkpointing workspace.
//!
//! ```sh
//! rdt simulate -n 8 -s 2000 --protocol fdas --gc rdt-lgc
//! rdt analyze  -n 4 --pattern ring
//! rdt audit    --gc time:60 -D 400
//! rdt line     -n 4 -s 300
//! ```

#![forbid(unsafe_code)]

mod commands;
mod json;
mod opts;

use clap::Command;

use crate::opts::{run_opts, with_common_args};

fn cli() -> Command {
    Command::new("rdt")
        .about("Simulate, analyze and audit RDT checkpointing with asynchronous garbage collection (ICDCS 2005)")
        .subcommand_required(true)
        .arg_required_else_help(true)
        .subcommand(with_common_args(
            Command::new("simulate")
                .about("run a workload and report storage metrics")
                .arg(
                    clap::Arg::new("occupancy")
                        .long("occupancy")
                        .help("also report the storage-occupancy timeline (peak / averages)")
                        .action(clap::ArgAction::SetTrue),
                ),
        ))
        .subcommand(with_common_args(
            Command::new("analyze")
                .about("replay a crash-free run into a CCP: RDT, densities, propagation")
                .arg(
                    clap::Arg::new("dot")
                        .long("dot")
                        .help("emit a Graphviz digraph instead of statistics: 'ccp' or 'rgraph'")
                        .value_name("what"),
                ),
        ))
        .subcommand(with_common_args(
            Command::new("audit")
                .about("check every garbage-collection event against the Theorem-1 oracle"),
        ))
        .subcommand(with_common_args(
            Command::new("line").about("recovery lines for every single-process failure"),
        ))
}

fn main() {
    let matches = cli().get_matches();
    let (name, sub) = matches.subcommand().expect("subcommand required");
    let result = run_opts(sub).and_then(|opts| match name {
        "simulate" => commands::simulate(&opts, sub.get_flag("occupancy")),
        "analyze" => commands::analyze(&opts, sub.get_one::<String>("dot").map(String::as_str)),
        "audit" => commands::audit(&opts),
        "line" => commands::line(&opts),
        _ => unreachable!("clap rejects unknown subcommands"),
    });
    if let Err(msg) = result {
        eprintln!("rdt: {msg}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_definition_is_well_formed() {
        cli().debug_assert();
    }

    #[test]
    fn subcommands_share_common_args() {
        for sub in ["simulate", "analyze", "audit", "line"] {
            let m = cli()
                .try_get_matches_from(["rdt", sub, "-n", "3", "--json"])
                .expect("parses");
            let (_, subm) = m.subcommand().unwrap();
            assert!(run_opts(subm).is_ok());
        }
    }
}
