//! `rdt` — command-line driver for the rdt-checkpointing workspace.
//!
//! ```sh
//! rdt simulate -n 8 -s 2000 --protocol fdas --gc rdt-lgc
//! rdt analyze  -n 4 --pattern ring
//! rdt audit    --gc time:60 -D 400
//! rdt line     -n 4 -s 300
//! ```

#![forbid(unsafe_code)]

mod causal;
mod commands;
mod json;
mod opts;
mod serve;

use clap::Command;

use crate::opts::{run_opts, with_common_args};

fn cli() -> Command {
    Command::new("rdt")
        .about("Simulate, analyze and audit RDT checkpointing with asynchronous garbage collection (ICDCS 2005)")
        .subcommand_required(true)
        .arg_required_else_help(true)
        .subcommand(with_common_args(
            Command::new("simulate")
                .about("run a workload and report storage metrics")
                .arg(
                    clap::Arg::new("occupancy")
                        .long("occupancy")
                        .help("also report the storage-occupancy timeline (peak / averages)")
                        .action(clap::ArgAction::SetTrue),
                ),
        ))
        .subcommand(with_common_args(
            Command::new("analyze")
                .about("replay a crash-free run into a CCP: RDT, densities, propagation")
                .arg(
                    clap::Arg::new("dot")
                        .long("dot")
                        .help("emit a Graphviz digraph instead of statistics: 'ccp' or 'rgraph'")
                        .value_name("what"),
                ),
        ))
        .subcommand(with_common_args(
            Command::new("audit")
                .about("check every garbage-collection event against the Theorem-1 oracle"),
        ))
        .subcommand(with_common_args(
            Command::new("line").about("recovery lines for every single-process failure"),
        ))
        .subcommand(with_common_args(
            Command::new("explain")
                .about("recovery-line provenance: which DV entry pins each checkpoint, cross-checked against the Lemma-1 oracle")
                .arg(
                    clap::Arg::new("faulty")
                        .long("faulty")
                        .help("comma-separated failing processes (default: every single-process failure)")
                        .value_name("list"),
                ),
        ))
        .subcommand(
            Command::new("causal")
                .about("merge per-worker observability dumps into one happened-before-ordered trace")
                .arg(
                    clap::Arg::new("inputs")
                        .help("per-worker JSONL dumps (flight-recorder or RDT_LOG_JSONL output)")
                        .value_name("file")
                        .action(clap::ArgAction::Append),
                )
                .arg(
                    clap::Arg::new("dir")
                        .long("dir")
                        .help("harvest every flight_p*.jsonl under this directory")
                        .value_name("dir"),
                )
                .arg(
                    clap::Arg::new("out")
                        .long("out")
                        .short('o')
                        .help("write the merged causal JSONL to this file instead of stdout")
                        .value_name("path"),
                ),
        )
        .subcommand(with_common_args(
            Command::new("trace")
                .about("replay a run and emit its global event sequence as JSONL (spans with --profile)")
                .arg(
                    clap::Arg::new("out")
                        .long("out")
                        .short('o')
                        .help("write the JSONL stream to this file instead of stdout")
                        .value_name("path"),
                ),
        ))
        .subcommand(torture_args(Command::new("torture").about(
            "crash-point sweep + corruption fault plans over the durable storage layer",
        )))
        .subcommand(serve::serve_args(Command::new("serve").about(
            "run N real OS processes over loopback sockets with live checkpoint GC (--chaos for a kill-9 + restart cycle)",
        )))
        .subcommand(serve::worker_args(
            Command::new("__serve-worker")
                .about("internal: one process of an `rdt serve` run")
                .hide(true),
        ))
}

/// The torture subcommand has its own argument set: it drives the storage
/// harness, not the simulator, so channel/workload options do not apply.
fn torture_args(cmd: Command) -> Command {
    let arg =
        |name: &'static str, short: Option<char>, help: &'static str, default: &'static str| {
            let a = clap::Arg::new(name)
                .long(name)
                .help(help)
                .default_value(default)
                .value_name(name);
            match short {
                Some(s) => a.short(s),
                None => a,
            }
        };
    cmd.arg(arg("processes", Some('n'), "number of processes", "4"))
        .arg(arg("events", Some('e'), "scripted workload events", "60"))
        .arg(arg("seed", Some('S'), "script and fault-plan seed", "1"))
        .arg(arg("protocol", Some('P'), "checkpointing protocol", "fdas"))
        .arg(arg(
            "gc",
            Some('g'),
            "garbage collector (rdt-lgc, none, simple, wang, time:<horizon>)",
            "rdt-lgc",
        ))
        .arg(arg(
            "max-crash-points",
            None,
            "crash-point budget (0 disables the sweep; sampled evenly when below the op count)",
            "200",
        ))
        .arg(arg(
            "fault-plans",
            None,
            "seeded corruption plans to run (0 disables)",
            "16",
        ))
        .arg(
            clap::Arg::new("json")
                .long("json")
                .help("emit machine-readable JSON instead of tables")
                .action(clap::ArgAction::SetTrue),
        )
        .arg(
            clap::Arg::new("metrics-out")
                .long("metrics-out")
                .help("write sweep and restart counters as a Prometheus textfile")
                .value_name("path"),
        )
}

fn main() {
    let matches = cli().get_matches();
    let (name, sub) = matches.subcommand().expect("subcommand required");
    let result = if name == "torture" {
        commands::torture(sub)
    } else if name == "serve" {
        serve::serve(sub)
    } else if name == "__serve-worker" {
        serve::worker(sub)
    } else if name == "causal" {
        causal::causal(sub)
    } else {
        run_opts(sub).and_then(|opts| match name {
            "simulate" => commands::simulate(&opts, sub.get_flag("occupancy")),
            "analyze" => commands::analyze(&opts, sub.get_one::<String>("dot").map(String::as_str)),
            "audit" => commands::audit(&opts),
            "line" => commands::line(&opts),
            "explain" => {
                commands::explain(&opts, sub.get_one::<String>("faulty").map(String::as_str))
            }
            "trace" => commands::trace(&opts, sub.get_one::<String>("out").map(String::as_str)),
            _ => unreachable!("clap rejects unknown subcommands"),
        })
    };
    if let Err(msg) = result {
        eprintln!("rdt: {msg}");
        std::process::exit(1);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn cli_definition_is_well_formed() {
        cli().debug_assert();
    }

    #[test]
    fn subcommands_share_common_args() {
        for sub in ["simulate", "analyze", "audit", "line", "explain", "trace"] {
            let m = cli()
                .try_get_matches_from(["rdt", sub, "-n", "3", "--json"])
                .expect("parses");
            let (_, subm) = m.subcommand().unwrap();
            assert!(run_opts(subm).is_ok());
        }
    }

    #[test]
    fn torture_subcommand_parses_its_own_args() {
        let m = cli()
            .try_get_matches_from([
                "rdt",
                "torture",
                "-n",
                "3",
                "--events",
                "20",
                "--max-crash-points",
                "10",
                "--fault-plans",
                "2",
                "--json",
            ])
            .expect("parses");
        let (name, subm) = m.subcommand().unwrap();
        assert_eq!(name, "torture");
        assert_eq!(subm.get_one::<String>("events").unwrap(), "20");
        assert!(subm.get_flag("json"));
    }
}
