//! Minimal JSON emission for the `--json` output mode.
//!
//! The build environment has no crates registry, so instead of
//! `serde_json` the subcommands construct [`Json`] values explicitly and
//! pretty-print them here. The emitted documents are plain JSON (RFC 8259)
//! and stable across runs for identical reports.

use std::fmt::Write as _;

/// A JSON value.
#[derive(Debug, Clone)]
pub enum Json {
    /// `true` / `false`.
    Bool(bool),
    /// An unsigned integer (covers every counter the CLI reports).
    UInt(u64),
    /// A floating-point number, emitted with three decimals.
    Float(f64),
    /// A string (escaped on output).
    Str(String),
    /// An array.
    Arr(Vec<Json>),
    /// An object with insertion-ordered keys.
    Obj(Vec<(&'static str, Json)>),
    /// A pre-rendered JSON document spliced in verbatim (compact, no
    /// re-indentation) — used to embed `rdt_obs` documents, whose keys
    /// are dynamic phase names the `'static`-keyed [`Json::Obj`] cannot
    /// hold.
    Raw(String),
}

impl Json {
    /// Object builder preserving field order.
    pub fn obj() -> ObjBuilder {
        ObjBuilder(Vec::new())
    }

    /// Array of unsigned integers.
    pub fn uints<I: IntoIterator<Item = usize>>(values: I) -> Json {
        Json::Arr(values.into_iter().map(|v| Json::UInt(v as u64)).collect())
    }

    /// Pretty-prints with two-space indentation and a trailing-newline-free
    /// body, matching `serde_json::to_string_pretty` conventions.
    pub fn pretty(&self) -> String {
        let mut out = String::new();
        self.write(&mut out, 0);
        out
    }

    /// Renders on one line — no indentation or newlines — for JSONL
    /// streams where one value is one line.
    pub fn compact(&self) -> String {
        let mut out = String::new();
        self.write_compact(&mut out);
        out
    }

    fn write_compact(&self, out: &mut String) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Raw(doc) => out.push_str(doc),
            Json::Arr(items) => {
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    item.write_compact(out);
                }
                out.push(']');
            }
            Json::Obj(fields) => {
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    write_escaped(out, key);
                    out.push(':');
                    value.write_compact(out);
                }
                out.push('}');
            }
        }
    }

    fn write(&self, out: &mut String, depth: usize) {
        match self {
            Json::Bool(b) => {
                let _ = write!(out, "{b}");
            }
            Json::UInt(v) => {
                let _ = write!(out, "{v}");
            }
            Json::Float(v) => {
                if v.is_finite() {
                    let _ = write!(out, "{v:.3}");
                } else {
                    out.push_str("null");
                }
            }
            Json::Str(s) => write_escaped(out, s),
            Json::Raw(doc) => out.push_str(doc),
            Json::Arr(items) => {
                if items.is_empty() {
                    out.push_str("[]");
                    return;
                }
                out.push('[');
                for (i, item) in items.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    item.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push(']');
            }
            Json::Obj(fields) => {
                if fields.is_empty() {
                    out.push_str("{}");
                    return;
                }
                out.push('{');
                for (i, (key, value)) in fields.iter().enumerate() {
                    if i > 0 {
                        out.push(',');
                    }
                    out.push('\n');
                    indent(out, depth + 1);
                    write_escaped(out, key);
                    out.push_str(": ");
                    value.write(out, depth + 1);
                }
                out.push('\n');
                indent(out, depth);
                out.push('}');
            }
        }
    }
}

/// Builder returned by [`Json::obj`].
pub struct ObjBuilder(Vec<(&'static str, Json)>);

impl ObjBuilder {
    /// Appends a field.
    pub fn field(mut self, key: &'static str, value: Json) -> Self {
        self.0.push((key, value));
        self
    }

    /// Appends a field only when `value` is `Some`.
    pub fn maybe(mut self, key: &'static str, value: Option<Json>) -> Self {
        if let Some(value) = value {
            self.0.push((key, value));
        }
        self
    }

    /// Finishes the object.
    pub fn build(self) -> Json {
        Json::Obj(self.0)
    }
}

fn indent(out: &mut String, depth: usize) {
    for _ in 0..depth {
        out.push_str("  ");
    }
}

fn write_escaped(out: &mut String, s: &str) {
    out.push('"');
    for c in s.chars() {
        match c {
            '"' => out.push_str("\\\""),
            '\\' => out.push_str("\\\\"),
            '\n' => out.push_str("\\n"),
            '\r' => out.push_str("\\r"),
            '\t' => out.push_str("\\t"),
            c if (c as u32) < 0x20 => {
                let _ = write!(out, "\\u{:04x}", c as u32);
            }
            c => out.push(c),
        }
    }
    out.push('"');
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn nested_pretty_output() {
        let doc = Json::obj()
            .field("n", Json::UInt(4))
            .field("name", Json::Str("a\"b".into()))
            .field("xs", Json::uints([1, 2]))
            .maybe("absent", None)
            .maybe("present", Some(Json::Bool(true)))
            .build();
        let text = doc.pretty();
        assert!(text.contains("\"n\": 4"));
        assert!(text.contains("\\\"b\""));
        assert!(!text.contains("absent"));
        assert!(text.contains("\"present\": true"));
        assert!(text.starts_with("{\n") && text.ends_with('}'));
    }

    #[test]
    fn empty_containers_render_compact() {
        assert_eq!(Json::Arr(vec![]).pretty(), "[]");
        assert_eq!(Json::Obj(vec![]).pretty(), "{}");
    }

    #[test]
    fn compact_renders_one_line() {
        let doc = Json::obj()
            .field("a", Json::UInt(1))
            .field("xs", Json::uints([2, 3]))
            .field("raw", Json::Raw("{\"k\":0}".into()))
            .build();
        assert_eq!(doc.compact(), "{\"a\":1,\"xs\":[2,3],\"raw\":{\"k\":0}}");
    }
}
