//! Sharded-engine scaling: one full simulation, sequential vs. sharded.
//!
//! Runs the same seeded workload through the conservative-lookahead
//! parallel engine at shards ∈ {1, 2, 4} and through the sequential
//! engine (`shards = 1` dispatches to it directly), at system sizes up
//! to n = 10 000 simulated processes. The ring pattern keeps cross-shard
//! traffic proportional to the number of shard boundaries under the
//! contiguous partitioning, which is the favourable case for conservative
//! synchronization; speedup on a multi-core host is bounded by the
//! fraction of events that are shard-local.
//!
//! On a single-vCPU host (the pinned CI machine) the sharded runs measure
//! pure overhead — planning pass, barrier exchanges, log merge — not
//! speedup; BENCHMARKS.md records both readings.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rdt_sim::SimulationBuilder;
use rdt_workloads::{Pattern, WorkloadSpec};

/// One full simulation; returns a value derived from the report so the
/// run cannot be optimized away.
fn run(n: usize, steps: usize, shards: usize) -> u64 {
    let spec = WorkloadSpec::uniform_random(n, steps)
        .with_pattern(Pattern::Ring)
        .with_seed(42)
        .with_checkpoint_prob(0.05);
    let report = SimulationBuilder::new(spec)
        .shards(shards)
        .run()
        .expect("simulation runs");
    report.metrics.ticks + report.metrics.total_delivered()
}

fn bench_shard_scaling(c: &mut Criterion) {
    let mut group = c.benchmark_group("shard_scaling");
    for (n, steps) in [(2_500usize, 5_000usize), (10_000, 20_000)] {
        group.throughput(Throughput::Elements(steps as u64));
        for shards in [1usize, 2, 4] {
            group.bench_with_input(
                BenchmarkId::new(format!("n{n}"), shards),
                &shards,
                |b, &shards| {
                    b.iter(|| run(n, steps, shards));
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_shard_scaling);
criterion_main!(benches);
