//! Section 4.5: merging RDT-LGC into FDAS adds no asymptotic cost — the
//! dependency-vector propagation both already perform dominates.
//!
//! Compares plain FDAS (no collector) against the merged FDAS + RDT-LGC
//! (Algorithm 4) on identical event streams.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rdt_base::{DependencyVector, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};

/// A mixed stream: receive fresh info, occasionally checkpoint.
fn run_stream(n: usize, events: usize, gc: GcKind) -> usize {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, gc);
    let mut peer_dv = DependencyVector::new(n);
    for k in 0..events {
        if k % 7 == 0 {
            mw.basic_checkpoint().expect("alive");
        } else {
            let j = 1 + (k % (n - 1));
            peer_dv.begin_next_interval(ProcessId::new(j));
            mw.receive_piggyback(&Piggyback {
                dv: peer_dv.clone(),
                index: 0,
            })
            .expect("alive");
        }
    }
    mw.store().len()
}

fn bench_merged(c: &mut Criterion) {
    const EVENTS: usize = 512;
    let mut group = c.benchmark_group("merged_overhead");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for n in [8usize, 64] {
        group.bench_with_input(BenchmarkId::new("fdas_plain", n), &n, |b, &n| {
            b.iter(|| run_stream(n, EVENTS, GcKind::None));
        });
        group.bench_with_input(BenchmarkId::new("fdas_with_lgc", n), &n, |b, &n| {
            b.iter(|| run_stream(n, EVENTS, GcKind::RdtLgc));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merged);
criterion_main!(benches);
