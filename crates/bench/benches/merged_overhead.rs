//! Section 4.5: merging RDT-LGC into FDAS adds no asymptotic cost — the
//! dependency-vector propagation both already perform dominates.
//!
//! Compares plain FDAS (no collector) against the merged FDAS + RDT-LGC
//! (Algorithm 4) on identical event streams. The piggyback stream is
//! prebuilt outside the timed region (it models the *peer's* traffic, not
//! this process's work), and events run through the middleware's pooled
//! `_into` entry points — the same way the simulator drives it.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rdt_base::{DependencyVector, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{CheckpointReport, Middleware, Piggyback, ProtocolKind, ReceiveReport};

const EVENTS: usize = 512;

/// The peer traffic a mixed stream consumes: one fresh-info piggyback per
/// non-checkpoint slot.
fn peer_stream(n: usize) -> Vec<Piggyback> {
    let mut peer_dv = DependencyVector::new(n);
    (0..EVENTS)
        .map(|k| {
            let j = 1 + (k % (n - 1));
            peer_dv.begin_next_interval(ProcessId::new(j));
            Piggyback::new(peer_dv.clone(), 0)
        })
        .collect()
}

/// A mixed stream: receive fresh info, occasionally checkpoint.
fn run_stream(n: usize, stream: &[Piggyback], gc: GcKind) -> usize {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, gc);
    let mut receive = ReceiveReport::default();
    let mut checkpoint = CheckpointReport::default();
    for (k, pb) in stream.iter().enumerate() {
        if k % 7 == 0 {
            mw.basic_checkpoint_into(&mut checkpoint).expect("alive");
        } else {
            mw.receive_piggyback_into(pb, &mut receive).expect("alive");
        }
    }
    mw.store().len()
}

fn bench_merged(c: &mut Criterion) {
    let mut group = c.benchmark_group("merged_overhead");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for n in [8usize, 64] {
        let stream = peer_stream(n);
        group.bench_with_input(BenchmarkId::new("fdas_plain", n), &n, |b, &n| {
            b.iter(|| run_stream(n, &stream, GcKind::None));
        });
        group.bench_with_input(BenchmarkId::new("fdas_with_lgc", n), &n, |b, &n| {
            b.iter(|| run_stream(n, &stream, GcKind::RdtLgc));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_merged);
criterion_main!(benches);
