//! Section 4.5 complexity claim: every RDT-LGC event handler is O(n).
//!
//! Measures the amortized cost of processing a news-bearing receive and of
//! taking a checkpoint, as the system size n grows. The per-event cost
//! should scale linearly in n (dependency-vector merge dominates).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rdt_base::{DependencyVector, Payload, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};

/// Processes `events` receives on a fresh middleware, each bringing fresh
/// causal information from a rotating peer.
fn run_receives(n: usize, events: usize) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut peer_dv = DependencyVector::new(n);
    let mut acc = 0u64;
    for k in 0..events {
        let j = 1 + (k % (n - 1));
        peer_dv.begin_next_interval(ProcessId::new(j));
        let report = mw
            .receive_piggyback(&Piggyback {
                dv: peer_dv.clone(),
                index: 0,
            })
            .expect("alive");
        acc += report.updated.len() as u64;
    }
    acc
}

/// Takes `events` basic checkpoints on a fresh middleware.
fn run_checkpoints(n: usize, events: usize) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut acc = 0u64;
    for _ in 0..events {
        acc += mw.basic_checkpoint().expect("alive").eliminated.len() as u64;
    }
    acc
}

/// Sends `events` messages (piggyback construction is the O(n) part).
fn run_sends(n: usize, events: usize) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut acc = 0u64;
    for _ in 0..events {
        let msg = mw.send(ProcessId::new(1), Payload::empty());
        acc += msg.meta.dv.len() as u64;
    }
    acc
}

fn bench_events(c: &mut Criterion) {
    const EVENTS: usize = 512;
    let mut group = c.benchmark_group("event_complexity");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for n in [4usize, 16, 64, 256] {
        group.bench_with_input(BenchmarkId::new("receive", n), &n, |b, &n| {
            b.iter(|| run_receives(n, EVENTS));
        });
        group.bench_with_input(BenchmarkId::new("checkpoint", n), &n, |b, &n| {
            b.iter(|| run_checkpoints(n, EVENTS));
        });
        group.bench_with_input(BenchmarkId::new("send", n), &n, |b, &n| {
            b.iter(|| run_sends(n, EVENTS));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
