//! Section 4.5 complexity claim: every RDT-LGC event handler is O(n).
//!
//! Measures the amortized cost of processing a news-bearing receive, of
//! taking a checkpoint, and of sending, as the system size n grows.
//! Receive and checkpoint cost should scale linearly in n
//! (dependency-vector merge and snapshot copy dominate); the send series
//! is flat by design — `Rc`-interned piggybacks make every send after
//! the first in an interval an O(1) pointer clone with a non-atomic
//! refcount, which is exactly the optimization this suite demonstrates.
//! Peer piggybacks are prebuilt outside the timed region —
//! they model the network's input, not this process's work — and events
//! run through the middleware's pooled `_into` entry points, exactly as
//! the simulator drives them.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};

use rdt_base::{DependencyVector, Payload, ProcessId};
use rdt_core::GcKind;
use rdt_protocols::{CheckpointReport, Middleware, Piggyback, ProtocolKind, ReceiveReport};

const EVENTS: usize = 512;

/// One fresh-causal-information piggyback per event, from a rotating peer.
fn peer_stream(n: usize) -> Vec<Piggyback> {
    let mut peer_dv = DependencyVector::new(n);
    (0..EVENTS)
        .map(|k| {
            let j = 1 + (k % (n - 1));
            peer_dv.begin_next_interval(ProcessId::new(j));
            Piggyback::new(peer_dv.clone(), 0)
        })
        .collect()
}

/// Processes the prebuilt receives on a fresh middleware, each bringing
/// fresh causal information.
fn run_receives(n: usize, stream: &[Piggyback]) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut report = ReceiveReport::default();
    let mut acc = 0u64;
    for pb in stream {
        mw.receive_piggyback_into(pb, &mut report).expect("alive");
        acc += report.updated.len() as u64;
    }
    acc
}

/// Takes `EVENTS` basic checkpoints on a fresh middleware.
fn run_checkpoints(n: usize) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut report = CheckpointReport::default();
    let mut acc = 0u64;
    for _ in 0..EVENTS {
        mw.basic_checkpoint_into(&mut report).expect("alive");
        acc += report.eliminated.len() as u64;
    }
    acc
}

/// Sends `EVENTS` messages. The dependency vector never mutates between
/// sends, so after the first send the interned snapshot is shared: this
/// measures the steady-state O(1) send path (the pre-interning stack
/// cloned the full vector here, O(n) with an allocation per send).
fn run_sends(n: usize) -> u64 {
    let mut mw = Middleware::new(ProcessId::new(0), n, ProtocolKind::Fdas, GcKind::RdtLgc);
    let mut acc = 0u64;
    for _ in 0..EVENTS {
        let msg = mw.send(ProcessId::new(1), Payload::empty());
        acc += msg.meta.dv.len() as u64;
    }
    acc
}

fn bench_events(c: &mut Criterion) {
    let mut group = c.benchmark_group("event_complexity");
    group.throughput(Throughput::Elements(EVENTS as u64));
    for n in [4usize, 16, 64, 256] {
        let stream = peer_stream(n);
        group.bench_with_input(BenchmarkId::new("receive", n), &n, |b, &n| {
            b.iter(|| run_receives(n, &stream));
        });
        group.bench_with_input(BenchmarkId::new("checkpoint", n), &n, |b, &n| {
            b.iter(|| run_checkpoints(n));
        });
        group.bench_with_input(BenchmarkId::new("send", n), &n, |b, &n| {
            b.iter(|| run_sends(n));
        });
    }
    group.finish();
}

criterion_group!(benches, bench_events);
criterion_main!(benches);
