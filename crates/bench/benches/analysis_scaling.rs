//! Ablation: scaling of the offline analyses with system size.
//!
//! * `rollback_graph_build` — `RollbackGraph::new` is linear in events +
//!   messages (one pass over the message table).
//! * `rollback_graph_closure` — one undone-interval closure is linear in
//!   intervals + edges.
//! * `dv_merge` — a dependency-vector merge is `O(n)`, the per-event cost
//!   Section 4.5 claims for the whole middleware.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use rdt_analysis::RollbackGraph;
use rdt_base::{DependencyVector, ProcessId};
use rdt_ccp::{Ccp, CcpBuilder};
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::WorkloadSpec;

/// Builds a protocol-generated CCP with `n` processes and `steps` ops.
fn ccp_for(n: usize, steps: usize) -> Ccp {
    let spec = WorkloadSpec::uniform_random(n, steps)
        .with_seed(7)
        .with_checkpoint_prob(0.2);
    let report = SimulationBuilder::new(spec)
        .protocol(ProtocolKind::Fdas)
        .garbage_collector(GcKind::None)
        .record_trace()
        .run()
        .expect("simulation runs");
    CcpBuilder::from_trace(n, &report.trace.unwrap())
        .expect("crash-free")
        .build()
}

fn bench_rollback_graph(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_graph_build");
    for n in [2usize, 4, 8, 16] {
        let ccp = ccp_for(n, 200 * n);
        group.bench_with_input(BenchmarkId::from_parameter(n), &ccp, |b, ccp| {
            b.iter(|| RollbackGraph::new(std::hint::black_box(ccp)));
        });
    }
    group.finish();

    let mut group = c.benchmark_group("rollback_graph_closure");
    for n in [2usize, 4, 8, 16] {
        let ccp = ccp_for(n, 200 * n);
        let rg = RollbackGraph::new(&ccp);
        group.bench_with_input(BenchmarkId::from_parameter(n), &rg, |b, rg| {
            b.iter(|| rg.undone([ProcessId::new(0)]));
        });
    }
    group.finish();
}

fn bench_dv_merge(c: &mut Criterion) {
    let mut group = c.benchmark_group("dv_merge");
    for n in [4usize, 16, 64, 256] {
        let mut a = DependencyVector::new(n);
        let mut b = DependencyVector::new(n);
        for i in 0..n {
            let p = ProcessId::new(i);
            if i % 2 == 0 {
                a.begin_next_interval(p);
            } else {
                b.begin_next_interval(p);
            }
        }
        group.bench_with_input(BenchmarkId::from_parameter(n), &n, |bench, _| {
            bench.iter(|| {
                let mut dst = a.clone();
                dst.merge_from(std::hint::black_box(&b))
            });
        });
    }
    group.finish();
}

criterion_group!(benches, bench_rollback_graph, bench_dv_merge);
criterion_main!(benches);
