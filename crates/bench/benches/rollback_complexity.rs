//! Section 4.5 complexity claim: Algorithm 3 (rollback garbage collection)
//! runs in O(n log s) for n processes and s stored checkpoints, thanks to
//! the binary search over the monotone dependency-vector entries.

use criterion::{criterion_group, criterion_main, BatchSize, BenchmarkId, Criterion};

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId};
use rdt_core::{CheckpointStore, GarbageCollector, LastIntervals, RdtLgc};

/// Builds a store holding `s` checkpoints of a process in an `n`-system,
/// with dependency entries growing over time (the realistic monotone shape).
fn build_store(n: usize, s: usize) -> (CheckpointStore, DependencyVector, LastIntervals) {
    let owner = ProcessId::new(0);
    let mut store = CheckpointStore::new(owner);
    let mut dv = DependencyVector::new(n);
    for k in 0..s {
        // Knowledge of peers advances every few checkpoints.
        if k % 3 == 0 {
            for j in 1..n {
                if (k / 3) % j.max(1) == 0 {
                    dv.begin_next_interval(ProcessId::new(j));
                }
            }
        }
        store.insert(CheckpointIndex::new(k), dv.clone());
        dv.begin_next_interval(owner);
    }
    let li = LastIntervals::from_dv(&dv);
    (store, dv, li)
}

fn bench_rollback(c: &mut Criterion) {
    let mut group = c.benchmark_group("rollback_complexity");
    for n in [8usize, 64] {
        for s in [16usize, 128, 1024] {
            let (store, dv, li) = build_store(n, s);
            let ri = CheckpointIndex::new(s - 1);
            group.bench_with_input(
                BenchmarkId::new(format!("algorithm3_n{n}"), s),
                &s,
                |b, _| {
                    b.iter_batched(
                        || (RdtLgc::new(ProcessId::new(0), n), store.clone()),
                        |(mut gc, mut store)| gc.after_rollback(&mut store, ri, Some(&li), &dv),
                        BatchSize::SmallInput,
                    );
                },
            );
        }
    }
    group.finish();
}

criterion_group!(benches, bench_rollback);
criterion_main!(benches);
