//! Parallel sweep driver: fans independent simulation runs out across
//! cores with deterministic per-run seeds.
//!
//! Every run of a sweep is an independent seeded simulation, so the grid
//! `cells × seeds` parallelizes embarrassingly. Seeds are derived with
//! [`derive_seed`] — a SplitMix64 mix of the base seed and the run index —
//! so a sweep's workload set is identical no matter how many workers
//! execute it, in what order, or whether it runs serially (`RAYON_NUM_THREADS=1`).
//!
//! Results always come back in input order: parallelism never changes
//! what a figure or table prints.

use rayon::prelude::*;

/// Deterministic seed for run `run` of a sweep anchored at `base`.
///
/// SplitMix64 over `base + run`: well-distributed, collision-free for any
/// practical sweep size, and stable across platforms.
pub fn derive_seed(base: u64, run: u64) -> u64 {
    let mut z = base
        .wrapping_add(run.wrapping_mul(0x9e37_79b9_7f4a_7c15))
        .wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

/// Maps `f` over `inputs` on the worker pool, preserving input order.
pub fn par_map<T, R, F>(inputs: Vec<T>, f: F) -> Vec<R>
where
    T: Send,
    R: Send,
    F: Fn(T) -> R + Sync,
{
    inputs.into_par_iter().map(f).collect()
}

/// Runs `runs_per_cell` seeded executions of every cell, fanning the full
/// `cells × runs` grid across cores. Returns one `Vec<R>` per cell, in
/// cell order, each in run order; run `k` of every cell uses
/// `derive_seed(base_seed, k)`, so all cells see the same seed set.
pub fn par_sweep<C, R, F>(cells: Vec<C>, runs_per_cell: u64, base_seed: u64, run: F) -> Vec<Vec<R>>
where
    C: Sync + Send,
    R: Send,
    F: Fn(&C, u64) -> R + Sync,
{
    let grid: Vec<(usize, u64)> = (0..cells.len())
        .flat_map(|cell| (0..runs_per_cell).map(move |k| (cell, k)))
        .collect();
    let flat: Vec<R> = grid
        .into_par_iter()
        .map(|(cell, k)| run(&cells[cell], derive_seed(base_seed, k)))
        .collect();
    let mut out: Vec<Vec<R>> = Vec::with_capacity(cells.len());
    let mut flat = flat.into_iter();
    for _ in 0..cells.len() {
        out.push(flat.by_ref().take(runs_per_cell as usize).collect());
    }
    out
}

/// Arithmetic mean, for aggregating per-seed measurements.
pub fn mean(values: &[f64]) -> f64 {
    if values.is_empty() {
        return 0.0;
    }
    values.iter().sum::<f64>() / values.len() as f64
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn derived_seeds_are_distinct_and_stable() {
        let a: Vec<u64> = (0..100).map(|k| derive_seed(7, k)).collect();
        let b: Vec<u64> = (0..100).map(|k| derive_seed(7, k)).collect();
        assert_eq!(a, b);
        let mut dedup = a.clone();
        dedup.sort_unstable();
        dedup.dedup();
        assert_eq!(dedup.len(), a.len());
        assert_ne!(derive_seed(7, 0), derive_seed(8, 0));
    }

    #[test]
    fn par_map_preserves_order() {
        let out = par_map((0..500u64).collect(), |x| x * 3);
        assert_eq!(out, (0..500).map(|x| x * 3).collect::<Vec<_>>());
    }

    #[test]
    fn par_sweep_grid_shape_and_determinism() {
        let cells = vec![10u64, 20, 30];
        let once = par_sweep(cells.clone(), 4, 99, |&c, seed| (c, seed));
        let twice = par_sweep(cells, 4, 99, |&c, seed| (c, seed));
        assert_eq!(once, twice);
        assert_eq!(once.len(), 3);
        for (i, runs) in once.iter().enumerate() {
            assert_eq!(runs.len(), 4);
            assert!(runs.iter().all(|&(c, _)| c == (i as u64 + 1) * 10));
            // Every cell sees the same seed set.
            assert_eq!(
                runs.iter().map(|&(_, s)| s).collect::<Vec<_>>(),
                once[0].iter().map(|&(_, s)| s).collect::<Vec<_>>()
            );
        }
    }
}
