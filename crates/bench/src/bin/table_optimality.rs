//! Synthetic Table S2 — Theorems 4 and 5 measured: on random executions,
//! RDT-LGC never eliminates a non-obsolete checkpoint (safety) and never
//! retains a causally identifiable obsolete one (optimality); the retained
//! surplus over the Theorem-1 ideal is exactly the knowledge gap.

use rdt_base::{CheckpointId, CheckpointIndex};
use rdt_bench::header;
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::{Pattern, WorkloadSpec};

fn main() {
    header(
        "table_optimality (S2)",
        "Theorem 4 (safety) and Theorem 5 (optimality) vs the exhaustive oracle",
        "n = 4, 300 ops per run, FDAS + RDT-LGC",
    );
    println!(
        "{:<16} {:>5} {:>9} {:>10} {:>11} {:>10} {:>9}",
        "pattern", "seed", "stable", "collected", "safety-viol", "missed-id", "gap"
    );

    let mut total_violations = 0usize;
    for pattern in [
        Pattern::UniformRandom,
        Pattern::Ring,
        Pattern::TokenRing,
        Pattern::Star,
        Pattern::Pipeline,
    ] {
        for seed in 0..4u64 {
            let n = 4;
            let spec = WorkloadSpec::uniform_random(n, 300)
                .with_pattern(pattern)
                .with_seed(seed)
                .with_checkpoint_prob(0.3);
            let report = SimulationBuilder::new(spec)
                .protocol(ProtocolKind::Fdas)
                .garbage_collector(GcKind::RdtLgc)
                .record_trace()
                .run()
                .expect("simulation runs");
            let trace = report.trace.as_ref().expect("recorded");
            let ccp = CcpBuilder::from_trace(n, trace)
                .expect("crash-free")
                .build();
            let obsolete = ccp.obsolete_set();
            let identifiable = ccp.causally_identifiable_obsolete_set();

            let mut safety_violations = 0usize;
            let mut missed_identifiable = 0usize;
            let mut knowledge_gap = 0usize;
            let mut collected = 0usize;
            for p in ccp.processes() {
                let retained = &report.final_retained[p.index()];
                for idx in 0..=ccp.last_stable(p).value() {
                    let id = CheckpointId::new(p, CheckpointIndex::new(idx));
                    if retained.contains(&idx) {
                        if identifiable.contains(&id) {
                            missed_identifiable += 1; // optimality breach
                        } else if obsolete.contains(&id) {
                            knowledge_gap += 1; // unavoidable (Theorem 5)
                        }
                    } else {
                        collected += 1;
                        if !obsolete.contains(&id) {
                            safety_violations += 1; // safety breach
                        }
                    }
                }
            }
            total_violations += safety_violations + missed_identifiable;
            println!(
                "{:<16} {:>5} {:>9} {:>10} {:>11} {:>10} {:>9}",
                pattern.to_string(),
                seed,
                ccp.stable_count(),
                collected,
                safety_violations,
                missed_identifiable,
                knowledge_gap,
            );
        }
    }
    println!();
    assert_eq!(total_violations, 0, "Theorems 4/5 must hold");
    println!(
        "safety-viol = 0 and missed-id = 0 everywhere: Theorems 4 and 5 hold.\n\
         gap = obsolete-but-unidentifiable checkpoints — what *any* purely\n\
         asynchronous collector must retain. The gap is driven by *stale*\n\
         causal knowledge: largest where news arrives second-hand and ages\n\
         (uniform-random, star spokes), smallest where knowledge circulates\n\
         fresh (token-ring) or never crosses at all (pipeline upstream — no\n\
         knowledge means no Theorem-1 pin to miss)."
    );
}
