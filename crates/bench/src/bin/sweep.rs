//! Free-form exploration CLI: run one simulation with parameters from the
//! command line and print the full report.
//!
//! ```sh
//! cargo run --release -p rdt-bench --bin sweep -- \
//!     n=8 steps=5000 seed=3 protocol=fdas gc=rdt-lgc pattern=ring \
//!     ckpt=0.3 crash=0.005 loss=0.1 state-size=4096 runs=32
//! ```
//!
//! With `runs=K` (K > 1) the sweep fans K runs out across all cores, each
//! with a deterministic seed derived from `seed` — same results at any
//! worker count — and prints aggregate statistics.
//!
//! Unknown keys abort with the list of valid ones.

use rdt_bench::{derive_seed, par_map};
use rdt_core::GcKind;
use rdt_obs::json::JsonValue;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::{ChannelConfig, ShardConfig, SimConfig, SimulationBuilder};
use rdt_workloads::{Pattern, WorkloadSpec};

#[derive(Debug)]
struct Args {
    n: usize,
    steps: usize,
    seed: u64,
    protocol: ProtocolKind,
    gc: GcKind,
    pattern: Pattern,
    ckpt: f64,
    crash: f64,
    correlated: f64,
    loss: f64,
    state_size: usize,
    control_every: Option<u64>,
    mode: RecoveryMode,
    runs: u64,
    shards: usize,
    profile: bool,
    metrics_out: Option<String>,
}

impl Default for Args {
    fn default() -> Self {
        Self {
            n: 6,
            steps: 2_000,
            seed: 0,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            pattern: Pattern::UniformRandom,
            ckpt: 0.25,
            crash: 0.0,
            correlated: 0.0,
            loss: 0.0,
            state_size: 0,
            control_every: None,
            mode: RecoveryMode::Coordinated,
            runs: 1,
            shards: 1,
            profile: false,
            metrics_out: None,
        }
    }
}

fn parse_protocol(v: &str) -> ProtocolKind {
    match v {
        "no-forced" => ProtocolKind::NoForced,
        "cbr" => ProtocolKind::Cbr,
        "fdi" => ProtocolKind::Fdi,
        "fdas" => ProtocolKind::Fdas,
        "bcs" => ProtocolKind::Bcs,
        "cas" => ProtocolKind::Cas,
        "casbr" => ProtocolKind::Casbr,
        "mrs" => ProtocolKind::Mrs,
        other => die(&format!(
            "unknown protocol '{other}' (no-forced|cbr|fdi|fdas|bcs|cas|casbr|mrs)"
        )),
    }
}

fn parse_gc(v: &str) -> GcKind {
    match v {
        "rdt-lgc" => GcKind::RdtLgc,
        "none" | "no-gc" => GcKind::None,
        "simple" | "simple-coordinated" => GcKind::SimpleCoordinated,
        "wang" | "wang-global" => GcKind::WangGlobal,
        other => die(&format!("unknown gc '{other}' (rdt-lgc|none|simple|wang)")),
    }
}

fn parse_pattern(v: &str, n: usize) -> Pattern {
    match v {
        "uniform" | "uniform-random" => Pattern::UniformRandom,
        "ring" => Pattern::Ring,
        "client-server" => Pattern::ClientServer {
            servers: (n / 4).max(1),
        },
        "bursty" => Pattern::Bursty { burst: 8 },
        "token-ring" => Pattern::TokenRing,
        other => die(&format!(
            "unknown pattern '{other}' (uniform|ring|client-server|bursty|token-ring)"
        )),
    }
}

fn die(msg: &str) -> ! {
    eprintln!("sweep: {msg}");
    std::process::exit(2);
}

fn parse_args() -> Args {
    let mut args = Args::default();
    let mut pattern_raw: Option<String> = None;
    for raw in std::env::args().skip(1) {
        let Some((key, value)) = raw.split_once('=') else {
            die(&format!("expected key=value, got '{raw}'"));
        };
        match key {
            "n" => args.n = value.parse().unwrap_or_else(|_| die("n must be an integer")),
            "steps" => args.steps = value.parse().unwrap_or_else(|_| die("steps must be an integer")),
            "seed" => args.seed = value.parse().unwrap_or_else(|_| die("seed must be an integer")),
            "protocol" => args.protocol = parse_protocol(value),
            "gc" => args.gc = parse_gc(value),
            "pattern" => pattern_raw = Some(value.to_string()),
            "ckpt" => args.ckpt = value.parse().unwrap_or_else(|_| die("ckpt must be a float")),
            "crash" => args.crash = value.parse().unwrap_or_else(|_| die("crash must be a float")),
            "correlated" => {
                args.correlated =
                    value.parse().unwrap_or_else(|_| die("correlated must be a float"));
            }
            "loss" => args.loss = value.parse().unwrap_or_else(|_| die("loss must be a float")),
            "state-size" => {
                args.state_size = value.parse().unwrap_or_else(|_| die("state-size must be an integer"));
            }
            "control-every" => {
                args.control_every =
                    Some(value.parse().unwrap_or_else(|_| die("control-every must be an integer")));
            }
            "runs" => {
                args.runs = value
                    .parse()
                    .ok()
                    .filter(|&r| r >= 1)
                    .unwrap_or_else(|| die("runs must be a positive integer"));
            }
            "shards" => {
                args.shards = value
                    .parse()
                    .ok()
                    .filter(|&s| s >= 1)
                    .unwrap_or_else(|| die("shards must be a positive integer"));
            }
            "mode" => {
                args.mode = match value {
                    "coordinated" => RecoveryMode::Coordinated,
                    "uncoordinated" => RecoveryMode::Uncoordinated,
                    other => die(&format!("unknown mode '{other}'")),
                }
            }
            "profile" => {
                args.profile = match value {
                    "1" | "true" | "on" => true,
                    "0" | "false" | "off" => false,
                    other => die(&format!("profile must be on/off, got '{other}'")),
                }
            }
            "metrics-out" => args.metrics_out = Some(value.to_string()),
            other => die(&format!(
                "unknown key '{other}' (n steps seed protocol gc pattern ckpt crash correlated loss state-size control-every mode runs shards profile metrics-out)"
            )),
        }
    }
    if let Some(p) = pattern_raw {
        args.pattern = parse_pattern(&p, args.n);
    }
    args
}

fn run_one(args: &Args, seed: u64) -> rdt_sim::SimulationReport {
    let spec = WorkloadSpec::uniform_random(args.n, args.steps)
        .with_pattern(args.pattern)
        .with_seed(seed)
        .with_checkpoint_prob(args.ckpt)
        .with_crash_prob(args.crash);
    let config = SimConfig {
        channel: ChannelConfig::lossy(args.loss),
        control_every: args.control_every,
        correlated_crash_prob: args.correlated,
        state_size: args.state_size,
        shard: ShardConfig {
            shards: args.shards,
            ..ShardConfig::default()
        },
        profile: args.profile,
        ..SimConfig::default()
    };
    SimulationBuilder::new(spec)
        .protocol(args.protocol)
        .garbage_collector(args.gc)
        .config(config)
        .recovery_mode(args.mode)
        .run()
        .expect("simulation runs")
}

/// The full metrics (and the phase profile, when recorded) as one JSON
/// document — the `metrics-out=` payload, mirroring `rdt run
/// --metrics-out`.
fn metrics_doc(report: &rdt_sim::SimulationReport) -> JsonValue {
    let m = &report.metrics;
    let u = |v: u64| JsonValue::UInt(v);
    let per_process = JsonValue::Arr(
        m.per_process
            .iter()
            .map(|p| {
                JsonValue::Obj(vec![
                    ("retained".into(), u(p.retained as u64)),
                    ("peak_retained".into(), u(p.peak_retained as u64)),
                    ("total_stored".into(), u(p.total_stored as u64)),
                    ("total_collected".into(), u(p.total_collected as u64)),
                    ("basic".into(), u(p.basic)),
                    ("forced".into(), u(p.forced)),
                    ("sent".into(), u(p.sent)),
                    ("delivered".into(), u(p.delivered)),
                    ("lost".into(), u(p.lost)),
                    ("retained_sum".into(), u(p.retained_sum)),
                    ("samples".into(), u(p.samples)),
                ])
            })
            .collect(),
    );
    let metrics = JsonValue::Obj(vec![
        ("ticks".into(), u(m.ticks)),
        ("control_rounds".into(), u(m.control_rounds)),
        ("recovery_sessions".into(), u(m.recovery_sessions)),
        ("total_rolled_back".into(), u(m.total_rolled_back)),
        ("degraded_lines".into(), u(m.degraded_lines)),
        ("sequential_fallbacks".into(), u(m.sequential_fallbacks)),
        (
            "peak_global_retained".into(),
            u(m.peak_global_retained as u64),
        ),
        ("per_process".into(), per_process),
    ]);
    let mut doc = vec![("metrics".into(), metrics)];
    if let Some(profile) = &report.profile {
        doc.push(("profile".into(), profile.to_json()));
    }
    JsonValue::Obj(doc)
}

fn main() {
    let args = parse_args();
    println!("{args:#?}");

    if args.runs > 1 {
        // Fan the derived-seed runs out across every core; aggregate.
        let seeds: Vec<u64> = (0..args.runs).map(|k| derive_seed(args.seed, k)).collect();
        let reports = par_map(seeds, |seed| run_one(&args, seed));
        if let Some(path) = &args.metrics_out {
            let doc = JsonValue::Arr(reports.iter().map(metrics_doc).collect());
            if let Err(e) = std::fs::write(path, doc.to_string() + "\n") {
                die(&format!("writing {path}: {e}"));
            }
        }
        let k = reports.len() as f64;
        println!();
        println!(
            "aggregate over {} parallel runs (deterministic derived seeds):",
            args.runs
        );
        println!(
            "checkpoints: {:.1} basic + {:.1} forced, {:.1} collected (per-run mean)",
            reports
                .iter()
                .map(|r| r.metrics.total_basic() as f64)
                .sum::<f64>()
                / k,
            reports
                .iter()
                .map(|r| r.metrics.total_forced() as f64)
                .sum::<f64>()
                / k,
            reports
                .iter()
                .map(|r| r.metrics.total_collected() as f64)
                .sum::<f64>()
                / k,
        );
        println!(
            "retention: avg {:.2} per process, worst max {} (bound n+1 = {})",
            reports
                .iter()
                .map(|r| r.metrics.avg_retained())
                .sum::<f64>()
                / k,
            reports
                .iter()
                .map(|r| r.metrics.max_retained_per_process())
                .max()
                .unwrap_or(0),
            args.n + 1
        );
        println!(
            "recovery sessions: {} total across runs ({} degraded lines)",
            reports
                .iter()
                .map(|r| r.recovery_sessions.len())
                .sum::<usize>(),
            reports
                .iter()
                .map(|r| r.metrics.degraded_lines)
                .sum::<u64>()
        );
        return;
    }

    let report = run_one(&args, args.seed);
    if let Some(path) = &args.metrics_out {
        if let Err(e) = std::fs::write(path, metrics_doc(&report).to_string() + "\n") {
            die(&format!("writing {path}: {e}"));
        }
    }

    println!();
    println!("ticks: {}", report.metrics.ticks);
    println!(
        "checkpoints: {} basic + {} forced, {} collected",
        report.metrics.total_basic(),
        report.metrics.total_forced(),
        report.metrics.total_collected()
    );
    println!("messages delivered: {}", report.metrics.total_delivered());
    println!(
        "retention: avg {:.2} / max {} per process (bound n+1 = {})",
        report.metrics.avg_retained(),
        report.metrics.max_retained_per_process(),
        args.n + 1
    );
    println!(
        "recovery sessions: {} (degraded lines: {})",
        report.recovery_sessions.len(),
        report.metrics.degraded_lines
    );
    println!(
        "incarnations: {:?}",
        report
            .final_incarnations
            .iter()
            .map(|v| v.value())
            .collect::<Vec<_>>()
    );
    for (i, retained) in report.final_retained.iter().enumerate() {
        println!("  p{} retains {retained:?}", i + 1);
    }
}
