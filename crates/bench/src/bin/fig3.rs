//! Regenerates Figure 3: recovery-line determination for F = {p2, p3} and
//! the obsolete-checkpoint classification of the shown window.

use rdt_bench::header;
use rdt_ccp::figures::figure3;

fn main() {
    header(
        "fig3",
        "Figure 3 — recovery-line determination, F = {p2, p3}",
        "4 processes, window indices 6..11",
    );
    let fig = figure3();
    println!("RD-trackable: {}", fig.ccp.is_rdt());
    println!();

    let line = fig.ccp.recovery_line(&fig.faulty);
    let brute = fig.ccp.brute_force_recovery_line(&fig.faulty).unwrap();
    println!("Lemma-1 recovery line : {line}");
    println!("Definition-5 (brute)  : {brute}");
    println!("agreement             : {}", line == brute);
    println!();

    for p in fig.ccp.processes() {
        let comp = line.component(p);
        let volatile = fig.ccp.is_volatile(comp);
        println!(
            "{p}: component c_{p}^{}{}",
            comp.index,
            if volatile { " (volatile)" } else { "" }
        );
    }
    let p2 = rdt_base::ProcessId::new(1);
    let p3 = rdt_base::ProcessId::new(2);
    let slast2 = rdt_ccp::GeneralCheckpoint::new(p2, fig.ccp.last_stable(p2));
    let slast3 = rdt_ccp::GeneralCheckpoint::new(p3, fig.ccp.last_stable(p3));
    println!();
    println!(
        "s_2^last → s_3^last (so s_3^last ∉ R_F, as in the paper): {}",
        fig.ccp.precedes(slast2, slast3)
    );
    println!();

    let window: Vec<String> = fig
        .ccp
        .obsolete_set()
        .into_iter()
        .filter(|c| c.index.value() >= fig.window_start[c.process.index()])
        .map(|c| c.to_string())
        .collect();
    println!("obsolete in window: {window:?}");
    println!(
        "paper's five {{c_2^7, c_2^9, c_3^8, c_4^6, c_4^8}} plus c_1^8 — the\n\
         c_1^8 pin is unrealizable in any finite CCP (causality cycle; see\n\
         EXPERIMENTS.md)."
    );
}
