//! Regenerates Figure 1: the running-example CCP, its path classification
//! and the RDT property (with and without m3).

use rdt_base::{CheckpointIndex, ProcessId};
use rdt_bench::header;
use rdt_ccp::figures::figure1;
use rdt_ccp::GeneralCheckpoint;

fn main() {
    header("fig1", "Figure 1 — example CCP and path classification", "");
    let fig = figure1();
    let [m1, m2, m3, m4, m5] = fig.messages;
    println!("{}", fig.ccp.render_ascii());
    println!("{}", fig.ccp.summary());
    println!();

    let zz = fig.ccp.zigzag();
    let g =
        |i: usize, idx: usize| GeneralCheckpoint::new(ProcessId::new(i), CheckpointIndex::new(idx));
    let rows = [
        (
            "[m1, m2]",
            zz.is_causal_path(g(0, 0), &[m1, m2], g(2, 2)),
            "C-path (paper: C-path)",
        ),
        (
            "[m1, m4]",
            zz.is_causal_path(g(0, 0), &[m1, m4], g(2, 2)),
            "C-path (paper: C-path)",
        ),
        (
            "[m5, m4]",
            zz.is_zigzag_path(g(0, 1), &[m5, m4], g(2, 2))
                && !zz.is_causal_path(g(0, 1), &[m5, m4], g(2, 2)),
            "Z-path, non-causal (paper: Z-path)",
        ),
        (
            "[m3]  ",
            zz.is_causal_path(g(0, 1), &[m3], g(2, 2)),
            "C-path doubling [m5, m4]",
        ),
    ];
    for (path, holds, label) in rows {
        println!("{path}  {}  {label}", if holds { "✓" } else { "✗" });
    }
    println!();
    println!("RDT with m3    : {}", fig.ccp.is_rdt());
    println!("RDT without m3 : {}", fig.ccp_without_m3.is_rdt());
    println!(
        "without m3, s_1^1 ⤳ s_3^2 but s_1^1 ↛ s_3^2: {}",
        fig.ccp_without_m3.zigzag().zigzag_reaches(g(0, 1), g(2, 2))
            && !fig.ccp_without_m3.precedes(g(0, 1), g(2, 2))
    );
}
