//! Synthetic Table S3 — recovery sessions (Algorithm 3): rollback depth and
//! checkpoints eliminated during recovery, coordinated (LI / Theorem 1)
//! versus uncoordinated (DV / Theorem 2).

use rdt_bench::header;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_recovery::RecoveryMode;
use rdt_sim::SimulationBuilder;
use rdt_workloads::WorkloadSpec;

fn main() {
    header(
        "table_rollback (S3)",
        "recovery sessions: LI (Theorem 1) vs DV (Theorem 2) garbage collection",
        "n = 6, 3000 ops, crash prob 0.004, FDAS + RDT-LGC",
    );
    println!(
        "{:<15} {:>5} {:>9} {:>12} {:>14} {:>12}",
        "mode", "seed", "sessions", "rolled-back", "gc-eliminated", "max-retain"
    );

    for mode in [RecoveryMode::Coordinated, RecoveryMode::Uncoordinated] {
        for seed in 0..4u64 {
            let n = 6;
            let spec = WorkloadSpec::uniform_random(n, 3_000)
                .with_seed(seed)
                .with_checkpoint_prob(0.25)
                .with_crash_prob(0.004);
            let report = SimulationBuilder::new(spec)
                .protocol(ProtocolKind::Fdas)
                .garbage_collector(GcKind::RdtLgc)
                .recovery_mode(mode)
                .run()
                .expect("simulation runs");
            let eliminated: usize = report
                .recovery_sessions
                .iter()
                .map(|s| s.eliminated.len())
                .sum();
            println!(
                "{:<15} {:>5} {:>9} {:>12} {:>14} {:>12}",
                mode.to_string(),
                seed,
                report.recovery_sessions.len(),
                report.metrics.total_rolled_back,
                eliminated,
                report.metrics.max_retained_per_process(),
            );
            assert!(report.metrics.max_retained_per_process() <= n + 1);
        }
    }
    println!();
    println!(
        "same seeds ⇒ identical pre-crash executions: coordinated sessions\n\
         eliminate at least as much (Theorem 1 ⊇ Theorem 2); both preserve\n\
         the ≤ n+1 retention bound through failures."
    );
}
