//! CI regression guard over the committed benchmark record.
//!
//! Compares a fresh `BENCH_JSON` NDJSON capture (one object per benchmark,
//! as the criterion shim emits) against the `results` map of a committed
//! `BENCH_<label>.json`, per suite (the part of the name before the first
//! `/`). Fails — exit code 1 — when any suite's **geometric mean** of
//! `current / committed` exceeds the allowed ratio.
//!
//! ```sh
//! rm -f /tmp/bench.ndjson
//! BENCH_QUICK=1 BENCH_JSON=/tmp/bench.ndjson cargo bench -p rdt-bench \
//!     --bench merged_overhead --bench event_complexity
//! cargo run -p rdt-bench --bin bench_guard -- /tmp/bench.ndjson BENCH_after.json 1.25
//! ```
//!
//! The geomean (not per-benchmark deltas) is the gate because single cells
//! on a virtualized single-core CI host are noisy at the ±10% level; a
//! whole suite drifting by >25% is a real regression, not noise. Every
//! benchmark named in the committed record must also be present in the
//! capture — a renamed or dropped suite fails the gate rather than
//! silently escaping it.
//!
//! Caveat: the committed record carries absolute nanoseconds from the host
//! that recorded it, so a systematically slower/faster CI machine shifts
//! every ratio by a constant factor. If the gate trips on a hardware
//! change rather than a code change, re-record `BENCH_after.json` on a
//! representative host (see BENCHMARKS.md) or pass a wider `max_ratio` —
//! do not delete the step.
//!
//! Parsing is hand-rolled (the workspace's serde is an offline shim): both
//! inputs are scanned for `"key": number` pairs, which covers the NDJSON
//! capture and the committed record's flat `results` map alike.

use std::collections::BTreeMap;
use std::process::ExitCode;

/// Extracts `"string": number` pairs from `text`. For NDJSON capture lines
/// the benchmark name is assembled from the `group` and `bench` fields;
/// for committed records the flat `results` keys (containing `/`) are
/// taken verbatim.
fn parse_means(text: &str) -> BTreeMap<String, f64> {
    let mut out = BTreeMap::new();
    for line in text.lines() {
        // NDJSON shape: {"group":"g","bench":"b","mean_ns":N,"batches":M}
        if let (Some(group), Some(bench), Some(mean)) = (
            string_field(line, "group"),
            string_field(line, "bench"),
            number_field(line, "mean_ns"),
        ) {
            out.insert(format!("{group}/{bench}"), mean);
            continue;
        }
        // Committed shape: `"suite/bench/param": N,` inside "results".
        if let Some((key, value)) = flat_pair(line) {
            if key.contains('/') {
                out.insert(key, value);
            }
        }
    }
    out
}

/// `"name":"value"` → value.
fn string_field(line: &str, name: &str) -> Option<String> {
    let tag = format!("\"{name}\":\"");
    let start = line.find(&tag)? + tag.len();
    let end = line[start..].find('"')? + start;
    Some(line[start..end].to_string())
}

/// `"name":number` → number.
fn number_field(line: &str, name: &str) -> Option<f64> {
    let tag = format!("\"{name}\":");
    let start = line.find(&tag)? + tag.len();
    let rest = &line[start..];
    let end = rest
        .find(|c: char| !matches!(c, '0'..='9' | '.' | '-' | '+' | 'e' | 'E'))
        .unwrap_or(rest.len());
    rest[..end].parse().ok()
}

/// A whole line of the form `"key": number[,]` → (key, number).
fn flat_pair(line: &str) -> Option<(String, f64)> {
    let line = line.trim().trim_end_matches(',');
    let rest = line.strip_prefix('"')?;
    let quote = rest.find('"')?;
    let key = &rest[..quote];
    let value = rest[quote + 1..].trim().strip_prefix(':')?.trim();
    Some((key.to_string(), value.parse().ok()?))
}

fn suite_of(name: &str) -> &str {
    name.split('/').next().unwrap_or(name)
}

/// What the gate decided. `Skip` is deliberate: an absent or empty capture
/// (a PR that never ran the bench step, a baseline not yet recorded, a
/// brand-new suite) is not a regression and must not fail CI — but it must
/// say loudly that nothing was gated.
#[derive(Debug, PartialEq)]
enum Outcome {
    Skip(String),
    Pass,
    Fail,
}

fn guard(
    current: &BTreeMap<String, f64>,
    committed: &BTreeMap<String, f64>,
    max_ratio: f64,
) -> Outcome {
    if current.is_empty() {
        return Outcome::Skip("the fresh capture has no benchmarks".into());
    }
    if committed.is_empty() {
        return Outcome::Skip("the committed baseline has no benchmarks".into());
    }

    // Per-suite log-ratio accumulation over the benchmarks both runs have.
    let mut suites: BTreeMap<&str, (f64, u32)> = BTreeMap::new();
    let mut fresh_suites: BTreeMap<&str, u32> = BTreeMap::new();
    for (name, &now) in current {
        let Some(&then) = committed.get(name) else {
            *fresh_suites.entry(suite_of(name)).or_insert(0) += 1;
            continue;
        };
        let ratio = now / then;
        println!("{name:<44} {then:>12.1} -> {now:>12.1} ns  x{ratio:.3}");
        rdt_obs::debug("bench_guard", "compare")
            .str("bench", name)
            .f64("committed_ns", then)
            .f64("current_ns", now)
            .f64("ratio", ratio)
            .emit();
        let slot = suites.entry(suite_of(name)).or_insert((0.0, 0));
        slot.0 += ratio.ln();
        slot.1 += 1;
    }
    for (suite, count) in &fresh_suites {
        if !suites.contains_key(suite) {
            rdt_obs::info("bench_guard", "ungated_suite")
                .message("suite is absent from the baseline — not gated until it is recorded")
                .str("suite", *suite)
                .u64("benches", u64::from(*count))
                .emit();
        }
    }
    if suites.is_empty() {
        return Outcome::Skip("no benchmark overlaps the committed baseline".into());
    }

    let mut failed = false;
    // Every committed benchmark must be present in the fresh capture: a
    // renamed group or a dropped `--bench` flag must fail the gate, not
    // silently shrink what it measures.
    for name in committed.keys() {
        if !current.contains_key(name) {
            rdt_obs::warn("bench_guard", "missing_benchmark")
                .message("in the committed record but not captured")
                .str("bench", name)
                .emit();
            failed = true;
        }
    }
    for (suite, (log_sum, count)) in &suites {
        let geomean = (log_sum / f64::from(*count)).exp();
        let (level, verdict) = if geomean > max_ratio {
            failed = true;
            (rdt_obs::Level::Warn, "REGRESSION")
        } else {
            (rdt_obs::Level::Info, "ok")
        };
        rdt_obs::event(level, "bench_guard", "suite_gate")
            .message(verdict)
            .str("suite", *suite)
            .f64("geomean", geomean)
            .u64("benches", u64::from(*count))
            .f64("max_ratio", max_ratio)
            .emit();
    }
    if failed {
        Outcome::Fail
    } else {
        Outcome::Pass
    }
}

fn main() -> ExitCode {
    // Gate decisions are part of the CI record: raise the threshold so
    // the info-level verdicts reach the sink (stderr, or RDT_LOG_JSONL).
    rdt_obs::set_level(Some(rdt_obs::Level::Info));
    let args: Vec<String> = std::env::args().skip(1).collect();
    let (current_path, committed_path) = match (args.first(), args.get(1)) {
        (Some(a), Some(b)) => (a, b),
        _ => {
            eprintln!("usage: bench_guard <current.ndjson> <committed.json> [max_ratio]");
            return ExitCode::FAILURE;
        }
    };
    let max_ratio: f64 = args
        .get(2)
        .map(|s| s.parse().expect("max_ratio is a number"))
        .unwrap_or(1.25);

    let read = |path: &str, what: &str| match std::fs::read_to_string(path) {
        Ok(text) => Ok(text),
        Err(e) if e.kind() == std::io::ErrorKind::NotFound => {
            Err(format!("{what} {path} does not exist"))
        }
        Err(e) => Err(format!("{what} {path} is unreadable: {e}")),
    };
    let outcome = match (
        read(current_path, "capture"),
        read(committed_path, "baseline"),
    ) {
        (Ok(current), Ok(committed)) => {
            guard(&parse_means(&current), &parse_means(&committed), max_ratio)
        }
        (Err(why), _) | (_, Err(why)) => Outcome::Skip(why),
    };
    match outcome {
        Outcome::Skip(why) => {
            rdt_obs::warn("bench_guard", "skipped")
                .message(format!("{why}; nothing was gated"))
                .emit();
            ExitCode::SUCCESS
        }
        Outcome::Pass => {
            rdt_obs::info("bench_guard", "passed")
                .f64("max_ratio", max_ratio)
                .emit();
            ExitCode::SUCCESS
        }
        Outcome::Fail => {
            rdt_obs::error("bench_guard", "gate_failed")
                .message("geomean regression beyond the allowed ratio")
                .f64("max_ratio", max_ratio)
                .emit();
            ExitCode::FAILURE
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn parses_ndjson_capture_lines() {
        let text = "{\"group\":\"event_complexity\",\"bench\":\"send/4\",\"mean_ns\":123.5,\"batches\":9}\n";
        let means = parse_means(text);
        assert_eq!(means.get("event_complexity/send/4"), Some(&123.5));
    }

    #[test]
    fn parses_committed_flat_results() {
        let text = "{\n  \"results\": {\n    \"merged_overhead/fdas_plain/8\": 9088.3,\n    \"event_complexity/send/16\": 15824.9\n  }\n}\n";
        let means = parse_means(text);
        assert_eq!(means.get("merged_overhead/fdas_plain/8"), Some(&9088.3));
        assert_eq!(means.get("event_complexity/send/16"), Some(&15824.9));
        assert_eq!(means.len(), 2, "metadata keys without '/' are ignored");
    }

    #[test]
    fn suite_is_the_leading_path_component() {
        assert_eq!(suite_of("event_complexity/send/4"), "event_complexity");
        assert_eq!(suite_of("flat"), "flat");
    }

    fn means(pairs: &[(&str, f64)]) -> BTreeMap<String, f64> {
        pairs.iter().map(|(k, v)| (k.to_string(), *v)).collect()
    }

    #[test]
    fn empty_inputs_skip_instead_of_failing() {
        let some = means(&[("s/a", 1.0)]);
        assert!(matches!(
            guard(&BTreeMap::new(), &some, 1.25),
            Outcome::Skip(_)
        ));
        assert!(matches!(
            guard(&some, &BTreeMap::new(), 1.25),
            Outcome::Skip(_)
        ));
    }

    #[test]
    fn disjoint_suites_skip_instead_of_failing() {
        let current = means(&[("new_suite/a", 1.0), ("new_suite/b", 2.0)]);
        let committed = means(&[("old_suite/a", 1.0)]);
        assert!(matches!(
            guard(&current, &committed, 1.25),
            Outcome::Skip(_)
        ));
    }

    #[test]
    fn fresh_suite_rides_along_while_overlap_is_gated() {
        let current = means(&[("gated/a", 1.0), ("brand_new/a", 99.0)]);
        let committed = means(&[("gated/a", 1.0)]);
        assert_eq!(guard(&current, &committed, 1.25), Outcome::Pass);
    }

    #[test]
    fn regression_and_dropped_benchmarks_still_fail() {
        let committed = means(&[("s/a", 1.0), ("s/b", 1.0)]);
        let slow = means(&[("s/a", 2.0), ("s/b", 2.0)]);
        assert_eq!(guard(&slow, &committed, 1.25), Outcome::Fail);
        let partial = means(&[("s/a", 1.0)]);
        assert_eq!(guard(&partial, &committed, 1.25), Outcome::Fail);
    }
}
