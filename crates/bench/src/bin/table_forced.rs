//! Synthetic Table S4 — forced-checkpoint overhead of the checkpointing
//! protocols on identical traffic (the trade-off Section 5 surveys).

use rdt_bench::{header, par_sweep};
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::{Pattern, WorkloadSpec};

fn main() {
    let steps = 4_000;
    header(
        "table_forced (S4)",
        "forced checkpoints by protocol × pattern (identical traffic)",
        &format!("n = 8, {steps} ops, ckpt prob 0.2, seed-averaged over 3 derived seeds"),
    );
    println!(
        "{:<16} {:<10} {:>8} {:>8} {:>14} {:>6}",
        "pattern", "protocol", "basic", "forced", "forced/deliv", "RDT"
    );

    let patterns = [
        Pattern::UniformRandom,
        Pattern::Ring,
        Pattern::ClientServer { servers: 2 },
        Pattern::Bursty { burst: 8 },
    ];
    // One grid cell per (pattern, protocol); seeds fan out across cores.
    let cells: Vec<(Pattern, ProtocolKind)> = patterns
        .iter()
        .flat_map(|&pattern| ProtocolKind::ALL.map(|protocol| (pattern, protocol)))
        .collect();
    let measured = par_sweep(cells, 3, 0, |&(pattern, protocol), seed| {
        let spec = WorkloadSpec::uniform_random(8, steps)
            .with_pattern(pattern)
            .with_seed(seed)
            .with_checkpoint_prob(0.2);
        let report = SimulationBuilder::new(spec)
            .protocol(protocol)
            .garbage_collector(GcKind::RdtLgc)
            .run()
            .expect("simulation runs");
        (
            report.metrics.total_basic() as f64,
            report.metrics.total_forced() as f64,
            report.metrics.total_delivered() as f64,
        )
    });
    let mut grid = measured.into_iter();

    for pattern in patterns {
        let per_protocol: Vec<(ProtocolKind, f64, f64, f64)> = ProtocolKind::ALL
            .into_iter()
            .map(|protocol| {
                let runs = grid.next().expect("grid covers every cell");
                let k = runs.len() as f64;
                let (basic, forced, delivered) = runs
                    .into_iter()
                    .fold((0.0, 0.0, 0.0), |(b, f, d), (rb, rf, rd)| {
                        (b + rb, f + rf, d + rd)
                    });
                (protocol, basic / k, forced / k, delivered / k)
            })
            .collect();
        for (protocol, basic, forced, delivered) in &per_protocol {
            println!(
                "{:<16} {:<10} {:>8.0} {:>8.0} {:>14.3} {:>6}",
                pattern.to_string(),
                protocol.to_string(),
                basic,
                forced,
                forced / delivered.max(1.0),
                protocol.ensures_rdt(),
            );
        }
        // The forced-checkpoint hierarchy (Section 5's trade-off).
        let f = |k: ProtocolKind| {
            per_protocol
                .iter()
                .find(|(p, ..)| *p == k)
                .map(|(_, _, forced, _)| *forced)
                .unwrap()
        };
        assert!(f(ProtocolKind::Casbr) >= f(ProtocolKind::Cbr));
        assert!(f(ProtocolKind::Casbr) >= f(ProtocolKind::Cas));
        assert!(f(ProtocolKind::Cbr) >= f(ProtocolKind::Fdi));
        assert!(f(ProtocolKind::Cbr) >= f(ProtocolKind::Mrs));
        assert!(f(ProtocolKind::Mrs) >= f(ProtocolKind::Fdas));
        assert!(f(ProtocolKind::Fdi) >= f(ProtocolKind::Fdas));
        println!();
    }
    println!(
        "hierarchy holds on every pattern: CASBR ≥ CBR ≥ {{FDI, MRS}} ≥ FDAS and\n\
         CASBR ≥ CAS (Wang's RDT model family); BCS forces less but is not RDT;\n\
         no-forced is free but domino-prone."
    );
}
