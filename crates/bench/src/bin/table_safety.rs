//! Synthetic Table S6 — garbage-collection **safety** under the Theorem-1
//! oracle: the cost of replacing causal knowledge with time assumptions.
//!
//! Every elimination the simulator performs is audited at its own cut by
//! `rdt_ccp::collection_safety_violations`. RDT-LGC (Theorem 4) and the
//! coordinated collectors are provably safe; the time-based collector of
//! Manivannan & Singhal \[14\] is safe only while its real-time assumption
//! holds — shrink the horizon or slow the channel and it collects
//! checkpoints future recovery lines still need.

use rdt_bench::{header, par_sweep};
use rdt_ccp::collection_safety_violations;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::{ChannelConfig, SimConfig, SimulationBuilder};
use rdt_workloads::WorkloadSpec;

fn main() {
    let n = 4;
    let steps = 400;
    let seeds = 6u64;
    header(
        "table_safety (S6)",
        "GC safety violations vs the Theorem-1 oracle (audited per elimination)",
        &format!("n = {n}, {steps} ops, ckpt prob 0.15, {seeds} derived seeds, FDAS"),
    );
    println!(
        "{:<18} {:<12} {:>10} {:>12} {:>12}",
        "collector", "channel", "collected", "violations", "avg stored"
    );

    let channels = [
        ("fast(1-20)", ChannelConfig::reliable()),
        (
            "slow(50-400)",
            ChannelConfig {
                min_delay: 50,
                max_delay: 400,
                loss_rate: 0.0,
            },
        ),
    ];
    let collectors = [
        GcKind::RdtLgc,
        GcKind::TimeBased { horizon: 2_000 },
        GcKind::TimeBased { horizon: 500 },
        GcKind::TimeBased { horizon: 60 },
    ];

    let cells: Vec<(GcKind, &str, ChannelConfig)> = collectors
        .iter()
        .flat_map(|&gc| channels.map(|(label, channel)| (gc, label, channel)))
        .collect();
    let measured = par_sweep(cells, seeds, 0, |&(gc, _, channel), seed| {
        let spec = WorkloadSpec::uniform_random(n, steps)
            .with_seed(seed)
            .with_checkpoint_prob(0.15);
        let config = SimConfig {
            channel,
            ..SimConfig::default()
        };
        let report = SimulationBuilder::new(spec)
            .protocol(ProtocolKind::Fdas)
            .garbage_collector(gc)
            .config(config)
            .record_trace()
            .run()
            .expect("simulation runs");
        let violations = collection_safety_violations(n, &report.trace.unwrap())
            .expect("crash-free trace replays")
            .len();
        (
            report.metrics.total_collected(),
            violations,
            report.metrics.avg_retained(),
        )
    });
    let mut grid = measured.into_iter();

    for gc in collectors {
        for (label, _channel) in channels {
            let runs = grid.next().expect("grid covers every cell");
            let collected: usize = runs.iter().map(|r| r.0).sum();
            let violations: usize = runs.iter().map(|r| r.1).sum();
            let avg_stored: f64 = runs.iter().map(|r| r.2).sum();
            println!(
                "{:<18} {:<12} {:>10} {:>12} {:>12.2}",
                gc.to_string(),
                label,
                collected,
                violations,
                avg_stored / seeds as f64,
            );
            if gc == GcKind::RdtLgc {
                assert_eq!(violations, 0, "Theorem 4: RDT-LGC is safe");
            }
        }
    }
    println!(
        "\nshape: RDT-LGC collects aggressively with zero violations on every\n\
         channel and holds storage near the optimum. The time-based collector\n\
         must pick a horizon blind: far above the real checkpoint cadence it is\n\
         safe but hoards storage; at or below the cadence it matches RDT-LGC's\n\
         storage only by destroying non-obsolete checkpoints. Causal knowledge\n\
         is what makes 'aggressive' compatible with 'safe'."
    );
}
