//! Synthetic Table S1 — the practical evaluation the paper proposes as
//! future work (Section 6): uncollected-checkpoint storage by collector,
//! across system sizes and communication patterns.

use rdt_bench::{header, rule};
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::{Pattern, WorkloadSpec};

fn main() {
    let steps = 4_000;
    let seeds = [1u64, 2, 3];
    header(
        "table_storage (S1)",
        "storage overhead by collector × pattern × n",
        &format!("{steps} ops per run, mean over seeds {seeds:?}, FDAS, ckpt prob 0.3"),
    );
    println!(
        "{:<8} {:>3}  {:<20} {:>9} {:>9} {:>10}",
        "pattern", "n", "collector", "avg/proc", "max/proc", "collected"
    );

    for pattern in [
        Pattern::UniformRandom,
        Pattern::Ring,
        Pattern::ClientServer { servers: 2 },
        Pattern::TokenRing,
    ] {
        for n in [4usize, 8, 16] {
            for gc in GcKind::ALL {
                let mut avgs = Vec::new();
                let mut maxs = Vec::new();
                let mut collected = Vec::new();
                for &seed in &seeds {
                    let spec = WorkloadSpec::uniform_random(n, steps)
                        .with_pattern(pattern)
                        .with_seed(seed)
                        .with_checkpoint_prob(0.3);
                    let mut b = SimulationBuilder::new(spec)
                        .protocol(ProtocolKind::Fdas)
                        .garbage_collector(gc);
                    if gc.needs_control_messages() {
                        b = b.control_every(1_000);
                    }
                    let report = b.run().expect("simulation runs");
                    avgs.push(report.metrics.avg_retained());
                    maxs.push(report.metrics.max_retained_per_process() as f64);
                    collected.push(report.metrics.total_collected() as f64);
                }
                let mean = |v: &[f64]| v.iter().sum::<f64>() / v.len() as f64;
                println!(
                    "{:<8} {:>3}  {:<20} {:>9.2} {:>9.1} {:>10.0}",
                    pattern.to_string(),
                    n,
                    gc.to_string(),
                    mean(&avgs),
                    mean(&maxs),
                    mean(&collected),
                );
                if gc == GcKind::RdtLgc {
                    assert!(
                        maxs.iter().all(|&m| m <= (n + 1) as f64),
                        "RDT-LGC bound violated"
                    );
                }
            }
            rule(70);
        }
    }
    println!(
        "shape: rdt-lgc ≤ n+1 always and tracks wang-global between control\n\
         rounds with zero coordination; simple-coordinated lags (collects only\n\
         up to the all-fail line); no-gc grows with the checkpoint count."
    );
}
