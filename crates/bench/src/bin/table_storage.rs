//! Synthetic Table S1 — the practical evaluation the paper proposes as
//! future work (Section 6): uncollected-checkpoint storage by collector,
//! across system sizes and communication patterns.
//!
//! The `pattern × n × collector × seed` grid fans out across cores through
//! the parallel sweep driver; per-run seeds are deterministic, so the
//! printed table is identical at any worker count.

use rdt_bench::{header, par_sweep, parallel::mean, rule};
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::{Pattern, WorkloadSpec};

struct Cell {
    pattern: Pattern,
    n: usize,
    gc: GcKind,
}

struct Measured {
    avg: f64,
    max: f64,
    collected: f64,
}

fn main() {
    let steps = 4_000;
    let seeds = 3u64;
    header(
        "table_storage (S1)",
        "storage overhead by collector × pattern × n",
        &format!("{steps} ops per run, mean over {seeds} derived seeds, FDAS, ckpt prob 0.3"),
    );
    println!(
        "{:<8} {:>3}  {:<20} {:>9} {:>9} {:>10}",
        "pattern", "n", "collector", "avg/proc", "max/proc", "collected"
    );

    let patterns = [
        Pattern::UniformRandom,
        Pattern::Ring,
        Pattern::ClientServer { servers: 2 },
        Pattern::TokenRing,
    ];
    let mut cells = Vec::new();
    for pattern in patterns {
        for n in [4usize, 8, 16] {
            for gc in GcKind::ALL {
                cells.push(Cell { pattern, n, gc });
            }
        }
    }

    let results = par_sweep(cells, seeds, 1, |cell, seed| {
        let spec = WorkloadSpec::uniform_random(cell.n, steps)
            .with_pattern(cell.pattern)
            .with_seed(seed)
            .with_checkpoint_prob(0.3);
        let mut b = SimulationBuilder::new(spec)
            .protocol(ProtocolKind::Fdas)
            .garbage_collector(cell.gc);
        if cell.gc.needs_control_messages() {
            b = b.control_every(1_000);
        }
        let report = b.run().expect("simulation runs");
        Measured {
            avg: report.metrics.avg_retained(),
            max: report.metrics.max_retained_per_process() as f64,
            collected: report.metrics.total_collected() as f64,
        }
    });

    let mut rows = results.iter();
    for pattern in patterns {
        for n in [4usize, 8, 16] {
            for gc in GcKind::ALL {
                let runs = rows.next().expect("grid covers every cell");
                let avgs: Vec<f64> = runs.iter().map(|m| m.avg).collect();
                let maxs: Vec<f64> = runs.iter().map(|m| m.max).collect();
                let collected: Vec<f64> = runs.iter().map(|m| m.collected).collect();
                println!(
                    "{:<8} {:>3}  {:<20} {:>9.2} {:>9.1} {:>10.0}",
                    pattern.to_string(),
                    n,
                    gc.to_string(),
                    mean(&avgs),
                    mean(&maxs),
                    mean(&collected),
                );
                if gc == GcKind::RdtLgc {
                    assert!(
                        maxs.iter().all(|&m| m <= (n + 1) as f64),
                        "RDT-LGC bound violated"
                    );
                }
            }
            rule(70);
        }
    }
    println!(
        "shape: rdt-lgc ≤ n+1 always and tracks wang-global between control\n\
         rounds with zero coordination; simple-coordinated lags (collects only\n\
         up to the all-fail line); no-gc grows with the checkpoint count."
    );
}
