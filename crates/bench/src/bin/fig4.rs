//! Regenerates Figure 4: the RDT-LGC execution trace with per-event DV/UC
//! state, the on-the-fly eliminations and the knowledge-gap retention.

use rdt_base::{CheckpointId, CheckpointIndex, Payload, ProcessId};
use rdt_bench::header;
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};
use rdt_workloads::figures::figure4_script;
use rdt_workloads::ScriptOp;

fn fmt_uc(uc: &[Option<CheckpointIndex>]) -> String {
    let inner: Vec<String> = uc
        .iter()
        .map(|slot| slot.map_or_else(|| "∗".into(), |i| i.to_string()))
        .collect();
    format!("({})", inner.join(","))
}

fn main() {
    header(
        "fig4",
        "Figure 4 — RDT-LGC execution (DV over UC after each event)",
        "3 processes, FDAS + RDT-LGC",
    );
    let n = 3;
    let mut mws: Vec<Middleware> = (0..n)
        .map(|i| Middleware::new(ProcessId::new(i), n, ProtocolKind::Fdas, GcKind::RdtLgc))
        .collect();
    let mut pending: Vec<Option<(ProcessId, Piggyback)>> = Vec::new();
    let mut eliminated: Vec<CheckpointId> = Vec::new();

    for op in figure4_script().ops() {
        let what = match *op {
            ScriptOp::Checkpoint(p) => {
                let r = mws[p.index()].basic_checkpoint().expect("alive");
                eliminated.extend(r.eliminated.iter().map(|i| CheckpointId::new(p, *i)));
                format!("ckpt  s_{p}^{}", r.stored)
            }
            ScriptOp::Send { from, to } => {
                let pb = mws[from.index()].piggyback();
                let _ = mws[from.index()].send(to, Payload::empty());
                pending.push(Some((to, pb)));
                format!("send  {from} → {to}")
            }
            ScriptOp::Deliver { send_ordinal } => {
                let (to, pb) = pending[send_ordinal].take().expect("sent once");
                let r = mws[to.index()].receive_piggyback(&pb).expect("alive");
                eliminated.extend(r.eliminated.iter().map(|i| CheckpointId::new(to, *i)));
                format!("recv  m{} at {to}", send_ordinal + 1)
            }
        };
        print!("{what:<16}");
        for mw in &mws {
            print!(
                "  {}:{}{}",
                mw.owner(),
                mw.dv(),
                fmt_uc(&mw.uc_snapshot().expect("RDT-LGC")),
            );
        }
        println!();
    }

    println!();
    println!(
        "eliminated on the fly: {:?}",
        eliminated
            .iter()
            .map(ToString::to_string)
            .collect::<Vec<_>>()
    );
    for mw in &mws {
        println!(
            "{} retains {:?}",
            mw.owner(),
            mw.store().indices().map(|i| i.value()).collect::<Vec<_>>()
        );
    }

    // Oracle cross-check of the knowledge gap (rebuild trace faithfully).
    let run = rdt_sim::run_script(n, &figure4_script(), ProtocolKind::Fdas, GcKind::RdtLgc)
        .expect("script runs");
    let ccp = CcpBuilder::from_trace(n, &run.trace)
        .expect("crash-free")
        .build();
    let s21 = CheckpointId::new(ProcessId::new(1), CheckpointIndex::new(1));
    println!();
    println!(
        "s_2^1: obsolete by Theorem 1 = {}, causally identifiable = {} →\n\
         RDT-LGC retains it; Theorem 5 says no asynchronous collector can\n\
         collect it.",
        ccp.is_obsolete(s21),
        ccp.is_causally_identifiable_obsolete(s21),
    );
}
