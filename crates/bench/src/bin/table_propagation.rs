//! Synthetic Table S5 — rollback propagation by protocol (Agbaria et al.,
//! SRDS 2001 style): how far does a single failure roll the system back?
//!
//! For each protocol, identical crash-free traffic is run through the
//! simulator, the trace is replayed into an offline CCP, and every single
//! failure's rollback is quantified through the rollback-dependency graph
//! (`rdt-analysis`). The paper's §1 claim is visible in the shape: RDT
//! protocols bound the propagation, BCS (domino-free, not RDT) sits close,
//! and no-forced checkpointing suffers unbounded cascades.

use rdt_analysis::PropagationReport;
use rdt_base::ProcessId;
use rdt_bench::{header, mean_pm};
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::SimulationBuilder;
use rdt_workloads::WorkloadSpec;

fn main() {
    let n = 6;
    let steps = 1_500;
    let seeds = 5u64;
    header(
        "table_propagation (S5)",
        "single-failure rollback propagation by protocol",
        &format!("n = {n}, {steps} ops, ckpt prob 0.15, {seeds} seeds, all single failures"),
    );
    println!(
        "{:<10} {:>14} {:>10} {:>10} {:>10} {:>6}",
        "protocol", "avg rolled", "worst", "affected", "domino%", "RDT"
    );

    for protocol in [
        ProtocolKind::NoForced,
        ProtocolKind::Bcs,
        ProtocolKind::Cas,
        ProtocolKind::Casbr,
        ProtocolKind::Cbr,
        ProtocolKind::Mrs,
        ProtocolKind::Fdi,
        ProtocolKind::Fdas,
    ] {
        let mut totals = Vec::new();
        let mut worst = 0usize;
        let mut affected = Vec::new();
        let mut domino = 0usize;
        let mut cases = 0usize;
        for seed in 0..seeds {
            let spec = WorkloadSpec::uniform_random(n, steps)
                .with_seed(seed)
                .with_checkpoint_prob(0.15);
            let report = SimulationBuilder::new(spec)
                .protocol(protocol)
                .garbage_collector(GcKind::None)
                .record_trace()
                .run()
                .expect("simulation runs");
            let ccp = CcpBuilder::from_trace(n, &report.trace.unwrap())
                .expect("crash-free trace replays")
                .build();
            for f in ProcessId::all(n) {
                let r = PropagationReport::compute(&ccp, &[f]);
                totals.push(r.total() as f64);
                worst = worst.max(r.total());
                affected.push(r.affected_processes() as f64);
                domino += usize::from(r.reached_initial);
                cases += 1;
            }
        }
        println!(
            "{:<10} {:>14} {:>10} {:>10} {:>9.1}% {:>6}",
            protocol.to_string(),
            mean_pm(&totals),
            worst,
            mean_pm(&affected),
            100.0 * domino as f64 / cases as f64,
            protocol.ensures_rdt(),
        );
    }
    println!(
        "\nshape: no-forced cascades (large rolled-back counts, frequent dominoes\n\
         to the initial state); every RDT protocol and BCS stay bounded — the\n\
         denser the forced checkpointing, the shallower the rollback."
    );
}
