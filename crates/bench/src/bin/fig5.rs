//! Regenerates Figure 5 / Section 4.5: the worst-case retention scenario.
//! Sweeps n and reports per-process retention (= n, the tight bound), the
//! transient per-process peak (n+1), steady global storage (n²) and the
//! transient global peak (n(n+1)); then confirms "n collected, n² remain".

use rdt_base::ProcessId;
use rdt_bench::header;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::run_script;
use rdt_workloads::figures::figure5_worst_case;

fn main() {
    header(
        "fig5",
        "Figure 5 — worst-case retention for RDT-LGC",
        "sweep n = 2..10, FDAS + RDT-LGC",
    );
    println!(
        "{:>3} {:>9} {:>10} {:>9} {:>12} {:>10}",
        "n", "per-proc", "peak/proc", "global", "peak global", "collected"
    );
    for n in 2..=10usize {
        let run = run_script(
            n,
            &figure5_worst_case(n),
            ProtocolKind::Fdas,
            GcKind::RdtLgc,
        )
        .expect("script runs");
        let per_proc: Vec<usize> = (0..n)
            .map(|i| run.retained(ProcessId::new(i)).len())
            .collect();
        assert!(per_proc.iter().all(|&r| r == n), "tight bound reached");
        let steady: usize = per_proc.iter().sum();

        // Everyone takes one more checkpoint: n+1 transient per process.
        let mut processes = run.processes;
        let mut collected = 0usize;
        let mut peak_global = 0usize;
        for mw in processes.iter_mut() {
            let report = mw.basic_checkpoint().expect("alive");
            collected += report.eliminated.len();
            peak_global += mw.store().peak();
        }
        let peak_proc = processes.iter().map(|mw| mw.store().peak()).max().unwrap();
        let after: usize = processes.iter().map(|mw| mw.store().len()).sum();

        println!(
            "{n:>3} {:>9} {:>10} {steady:>9} {peak_global:>12} {collected:>10}",
            per_proc[0], peak_proc,
        );
        assert_eq!(steady, n * n, "n² steady state");
        assert_eq!(peak_global, n * (n + 1), "n(n+1) transient peak");
        assert_eq!(after, n * n, "n collected, n² remain stored");
    }
    println!();
    println!(
        "matches Section 4.5: per-process retention reaches n (tight by\n\
         Theorem 5), n+1 during a store, n(n+1) global transient, n² after."
    );
}
