//! Regenerates Figure 2: useless checkpoints and the domino effect under a
//! protocol without forced checkpoints, contrasted with the RDT protocols.

use rdt_base::ProcessId;
use rdt_bench::header;
use rdt_ccp::CcpBuilder;
use rdt_core::GcKind;
use rdt_protocols::ProtocolKind;
use rdt_sim::run_script;
use rdt_workloads::figures::figure2_script;

fn main() {
    header(
        "fig2",
        "Figure 2 — useless checkpoints and the domino effect",
        "2 processes, crossing messages m1..m4",
    );
    println!(
        "{:<10} {:>6} {:>5} {:>8} {:>24}",
        "protocol", "forced", "RDT", "useless", "line after p1 failure"
    );
    for protocol in [
        ProtocolKind::NoForced,
        ProtocolKind::Bcs,
        ProtocolKind::Fdas,
        ProtocolKind::Fdi,
        ProtocolKind::Cbr,
    ] {
        let run = run_script(2, &figure2_script(), protocol, GcKind::RdtLgc).expect("script runs");
        let ccp = CcpBuilder::from_trace(2, &run.trace)
            .expect("crash-free trace")
            .build();
        let forced: u64 = run.processes.iter().map(|m| m.forced_count()).sum();
        let faulty = [ProcessId::new(0)].into_iter().collect();
        let line = ccp.brute_force_recovery_line(&faulty).expect("line exists");
        println!(
            "{:<10} {:>6} {:>5} {:>8} {:>24}",
            protocol.to_string(),
            forced,
            ccp.is_rdt(),
            ccp.useless_checkpoints().len(),
            line.to_string(),
        );
    }
    println!();
    println!(
        "no-forced: every non-initial checkpoint useless, failure → initial state\n\
         (the paper's domino effect). All RDT protocols keep the line current."
    );
}
