//! Shared helpers for the figure-regeneration binaries and criterion
//! benches of the `rdt-checkpointing` workspace.
//!
//! Each binary regenerates one figure or (synthetic) table of the paper —
//! see DESIGN.md §3 for the experiment index and EXPERIMENTS.md for the
//! recorded paper-vs-measured outcomes:
//!
//! | target | artifact |
//! |--------|----------|
//! | `fig1` | Figure 1 — zigzag/causal path classification, RDT |
//! | `fig2` | Figure 2 — useless checkpoints and the domino effect |
//! | `fig3` | Figure 3 — recovery-line determination, `F = {p2, p3}` |
//! | `fig4` | Figure 4 — the RDT-LGC execution trace |
//! | `fig5` | Figure 5 — worst case: `n` / `n+1` / `n²` / `n(n+1)` |
//! | `table_storage` | §6 practical evaluation — storage by collector |
//! | `table_optimality` | Theorems 4–5 — safety/optimality vs oracle |
//! | `table_rollback` | Algorithm 3 — LI vs DV recovery sessions |
//! | `table_forced` | §5 — forced checkpoints by protocol |
//! | `table_propagation` | §1 / Agbaria et al. — rollback blast radius |
//! | `table_safety` | §5 / Theorem 4 — per-elimination GC safety audit |

#![forbid(unsafe_code)]

pub mod parallel;

pub use parallel::{derive_seed, par_map, par_sweep};

/// Prints a horizontal rule sized for the standard table width.
pub fn rule(width: usize) {
    println!("{}", "-".repeat(width));
}

/// Prints the standard experiment header: id, description, parameters.
pub fn header(id: &str, what: &str, params: &str) {
    rule(78);
    println!("{id} — {what}");
    if !params.is_empty() {
        println!("params: {params}");
    }
    rule(78);
}

/// Formats a mean ± standard deviation pair.
pub fn mean_pm(values: &[f64]) -> String {
    if values.is_empty() {
        return "-".to_string();
    }
    let mean = values.iter().sum::<f64>() / values.len() as f64;
    let var = values.iter().map(|v| (v - mean) * (v - mean)).sum::<f64>() / values.len() as f64;
    format!("{mean:.2}±{:.2}", var.sqrt())
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn mean_pm_formats() {
        assert_eq!(mean_pm(&[2.0, 2.0]), "2.00±0.00");
        assert_eq!(mean_pm(&[]), "-");
    }
}
