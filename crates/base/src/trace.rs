//! A common exchange format for executions.
//!
//! Workload generators produce scripts of [`TraceEvent`]s, the simulators
//! consume and re-emit them (enriched with forced checkpoints, drops and
//! failures), and the offline [`rdt-ccp`] oracle replays them into a
//! checkpoint-and-communication pattern for validation.
//!
//! [`rdt-ccp`]: https://docs.rs/rdt-ccp

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{CheckpointIndex, MessageId, ProcessId};

/// One step of a distributed execution, in a global order that respects
/// causality (a [`TraceEvent::Deliver`] never precedes its
/// [`TraceEvent::Send`]).
#[derive(Debug, Clone, Copy, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub enum TraceEvent {
    /// Process `process` stores a stable checkpoint.
    ///
    /// `forced` distinguishes protocol-induced checkpoints from basic
    /// (autonomous) ones; the offline model treats them identically.
    Checkpoint {
        /// The checkpointing process.
        process: ProcessId,
        /// Whether the checkpoint was forced by the protocol.
        forced: bool,
    },
    /// Process `from` sends message `id` to process `to`.
    Send {
        /// The message id (sender + per-sender sequence).
        id: MessageId,
        /// Destination process.
        to: ProcessId,
    },
    /// The destination of `id` receives it.
    Deliver {
        /// The message being delivered.
        id: MessageId,
    },
    /// Message `id` is dropped by the network (never delivered).
    Drop {
        /// The lost message.
        id: MessageId,
    },
    /// Process `process` eliminates stable checkpoint `index` (garbage
    /// collection). Does not affect the CCP's dependency structure; recorded
    /// so offline auditors can check each elimination against the
    /// Theorem-1 oracle at the cut where it happened.
    Collect {
        /// The collecting process.
        process: ProcessId,
        /// The eliminated checkpoint's index.
        index: CheckpointIndex,
    },
    /// Process crashes, losing its volatile state.
    Crash {
        /// The crashed process.
        process: ProcessId,
    },
    /// Process restores checkpoint `to` during a recovery session and resumes
    /// execution from it (later checkpoints are discarded).
    Restore {
        /// The recovering process.
        process: ProcessId,
        /// The checkpoint index restored.
        to: CheckpointIndex,
    },
}

impl TraceEvent {
    /// The process whose local history this event extends, if any.
    ///
    /// `Drop` happens in the network and belongs to no process.
    pub fn process(&self) -> Option<ProcessId> {
        match self {
            TraceEvent::Checkpoint { process, .. } => Some(*process),
            TraceEvent::Send { id, .. } => Some(id.sender),
            TraceEvent::Deliver { .. } => None, // destination resolved via the Send
            TraceEvent::Drop { .. } => None,
            TraceEvent::Collect { process, .. } => Some(*process),
            TraceEvent::Crash { process } => Some(*process),
            TraceEvent::Restore { process, .. } => Some(*process),
        }
    }
}

impl fmt::Display for TraceEvent {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            TraceEvent::Checkpoint { process, forced } => {
                write!(
                    f,
                    "ckpt {process}{}",
                    if *forced { " (forced)" } else { "" }
                )
            }
            TraceEvent::Send { id, to } => write!(f, "send {id} → {to}"),
            TraceEvent::Deliver { id } => write!(f, "deliver {id}"),
            TraceEvent::Drop { id } => write!(f, "drop {id}"),
            TraceEvent::Collect { process, index } => write!(f, "collect {process} s^{index}"),
            TraceEvent::Crash { process } => write!(f, "crash {process}"),
            TraceEvent::Restore { process, to } => write!(f, "restore {process} → {to}"),
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = TraceEvent::Send {
            id: MessageId::new(ProcessId::new(0), 3),
            to: ProcessId::new(1),
        };
        assert_eq!(e.to_string(), "send m(p1#3) → p2");
    }

    #[test]
    fn process_attribution() {
        let p = ProcessId::new(2);
        assert_eq!(
            TraceEvent::Checkpoint {
                process: p,
                forced: false
            }
            .process(),
            Some(p)
        );
        assert_eq!(
            TraceEvent::Drop {
                id: MessageId::new(p, 0)
            }
            .process(),
            None
        );
    }
}
