//! Allocation-free reporting of merge results.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::ProcessId;

/// The set of processes whose dependency-vector entries a merge updated —
/// the paper's "new causal information" set that drives RDT-LGC's
/// `release`/`link` calls (Algorithm 2, lines 4–5).
///
/// Stored as a bitset: one `u128` word covers systems of up to 128
/// processes without touching the heap (the common case on the hot
/// receive path); larger systems spill the high bits into a lazily
/// allocated vector of `u64` words.
///
/// Iteration order is ascending process id, matching the order the old
/// `Vec<ProcessId>` reporting produced.
///
/// # Example
///
/// ```
/// use rdt_base::{ProcessId, UpdateSet};
///
/// let mut set = UpdateSet::new();
/// assert!(set.is_empty());
/// set.insert(ProcessId::new(2));
/// set.insert(ProcessId::new(0));
/// assert_eq!(set.len(), 2);
/// assert!(set.contains(ProcessId::new(2)));
/// assert_eq!(set.to_vec(), vec![ProcessId::new(0), ProcessId::new(2)]);
/// ```
#[derive(Debug, Clone, Default, Serialize, Deserialize)]
pub struct UpdateSet {
    /// Bits for processes `0..128`.
    lo: u128,
    /// Bits for processes `128..`, 64 per word; empty unless touched.
    hi: Vec<u64>,
}

/// Membership equality: spill words holding only zeros do not distinguish
/// sets (a cleared set equals a never-spilled one).
impl PartialEq for UpdateSet {
    fn eq(&self, other: &Self) -> bool {
        fn trimmed(words: &[u64]) -> &[u64] {
            let end = words
                .iter()
                .rposition(|&w| w != 0)
                .map_or(0, |last| last + 1);
            &words[..end]
        }
        self.lo == other.lo && trimmed(&self.hi) == trimmed(&other.hi)
    }
}

impl Eq for UpdateSet {}

impl std::hash::Hash for UpdateSet {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.lo.hash(state);
        let end = self
            .hi
            .iter()
            .rposition(|&w| w != 0)
            .map_or(0, |last| last + 1);
        self.hi[..end].hash(state);
    }
}

impl UpdateSet {
    /// The empty set. Never allocates.
    pub const fn new() -> Self {
        Self {
            lo: 0,
            hi: Vec::new(),
        }
    }

    /// Adds `p` to the set. Allocates only for `p.index() >= 128`.
    pub fn insert(&mut self, p: ProcessId) {
        let i = p.index();
        if i < 128 {
            self.lo |= 1u128 << i;
        } else {
            let word = (i - 128) / 64;
            if self.hi.len() <= word {
                self.hi.resize(word + 1, 0);
            }
            self.hi[word] |= 1u64 << ((i - 128) % 64);
        }
    }

    /// ORs a 64-bit mask of members into the set: bit `b` of `bits` stands
    /// for process `word * 64 + b`. This is how the branch-free
    /// dependency-vector merge reports a whole 64-entry chunk at once,
    /// straight from its compare mask. Allocates only when a non-zero mask
    /// lands beyond process 128.
    pub fn or_word(&mut self, word: usize, bits: u64) {
        match word {
            0 => self.lo |= bits as u128,
            1 => self.lo |= (bits as u128) << 64,
            _ => {
                if bits == 0 {
                    return;
                }
                let spill = word - 2;
                if self.hi.len() <= spill {
                    self.hi.resize(spill + 1, 0);
                }
                self.hi[spill] |= bits;
            }
        }
    }

    /// Whether `p` is in the set.
    pub fn contains(&self, p: ProcessId) -> bool {
        let i = p.index();
        if i < 128 {
            self.lo & (1u128 << i) != 0
        } else {
            let word = (i - 128) / 64;
            self.hi
                .get(word)
                .is_some_and(|w| w & (1u64 << ((i - 128) % 64)) != 0)
        }
    }

    /// Whether the set is empty.
    pub fn is_empty(&self) -> bool {
        self.lo == 0 && self.hi.iter().all(|&w| w == 0)
    }

    /// Number of processes in the set.
    pub fn len(&self) -> usize {
        self.lo.count_ones() as usize
            + self
                .hi
                .iter()
                .map(|w| w.count_ones() as usize)
                .sum::<usize>()
    }

    /// Empties the set, keeping any spill capacity.
    pub fn clear(&mut self) {
        self.lo = 0;
        self.hi.iter_mut().for_each(|w| *w = 0);
    }

    /// Iterates the members in ascending process-id order.
    pub fn iter(&self) -> impl Iterator<Item = ProcessId> + '_ {
        let lo_bits = BitIter { word: self.lo };
        let hi_bits = self
            .hi
            .iter()
            .enumerate()
            .flat_map(|(k, &w)| BitIter { word: w as u128 }.map(move |b| b + 128 + k * 64));
        lo_bits.chain(hi_bits).map(ProcessId::new)
    }

    /// The members as a vector, ascending (convenience for tests and
    /// display paths; the hot path iterates instead).
    pub fn to_vec(&self) -> Vec<ProcessId> {
        self.iter().collect()
    }
}

impl FromIterator<ProcessId> for UpdateSet {
    fn from_iter<I: IntoIterator<Item = ProcessId>>(iter: I) -> Self {
        let mut set = Self::new();
        for p in iter {
            set.insert(p);
        }
        set
    }
}

impl<'a> IntoIterator for &'a UpdateSet {
    type Item = ProcessId;
    type IntoIter = Box<dyn Iterator<Item = ProcessId> + 'a>;

    fn into_iter(self) -> Self::IntoIter {
        Box::new(self.iter())
    }
}

impl fmt::Display for UpdateSet {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{{")?;
        for (k, p) in self.iter().enumerate() {
            if k > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{p}")?;
        }
        write!(f, "}}")
    }
}

/// Iterates set bits of one 128-bit word, ascending.
struct BitIter {
    word: u128,
}

impl Iterator for BitIter {
    type Item = usize;

    fn next(&mut self) -> Option<usize> {
        if self.word == 0 {
            return None;
        }
        let bit = self.word.trailing_zeros() as usize;
        self.word &= self.word - 1;
        Some(bit)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn empty_set_has_no_members() {
        let set = UpdateSet::new();
        assert!(set.is_empty());
        assert_eq!(set.len(), 0);
        assert_eq!(set.to_vec(), Vec::<ProcessId>::new());
        assert_eq!(set.to_string(), "{}");
    }

    #[test]
    fn insert_contains_roundtrip_across_words() {
        let mut set = UpdateSet::new();
        for i in [0usize, 5, 63, 64, 127, 128, 190, 300] {
            set.insert(p(i));
        }
        for i in [0usize, 5, 63, 64, 127, 128, 190, 300] {
            assert!(set.contains(p(i)), "{i}");
        }
        for i in [1usize, 62, 126, 129, 299, 301] {
            assert!(!set.contains(p(i)), "{i}");
        }
        assert_eq!(set.len(), 8);
    }

    #[test]
    fn iteration_is_ascending() {
        let mut set = UpdateSet::new();
        for i in [300usize, 2, 128, 64, 0] {
            set.insert(p(i));
        }
        assert_eq!(set.to_vec(), vec![p(0), p(2), p(64), p(128), p(300)]);
    }

    #[test]
    fn no_spill_allocation_below_128() {
        let mut set = UpdateSet::new();
        for i in 0..128 {
            set.insert(p(i));
        }
        assert_eq!(set.hi.capacity(), 0, "lo word must absorb 0..128");
        assert_eq!(set.len(), 128);
    }

    #[test]
    fn clear_retains_spill_capacity() {
        let mut set = UpdateSet::new();
        set.insert(p(200));
        let cap = set.hi.capacity();
        set.clear();
        assert!(set.is_empty());
        assert_eq!(set.hi.capacity(), cap);
        assert!(!set.contains(p(200)));
    }

    #[test]
    fn duplicate_inserts_are_idempotent() {
        let mut set = UpdateSet::new();
        set.insert(p(3));
        set.insert(p(3));
        assert_eq!(set.len(), 1);
    }

    #[test]
    fn from_iterator_collects() {
        let set: UpdateSet = [p(1), p(4)].into_iter().collect();
        assert_eq!(set.to_vec(), vec![p(1), p(4)]);
        assert_eq!(set.to_string(), "{p2, p5}");
    }

    #[test]
    fn or_word_matches_per_bit_inserts() {
        let mut by_word = UpdateSet::new();
        by_word.or_word(0, 1 << 3 | 1 << 63);
        by_word.or_word(1, 1 << 0); // process 64
        by_word.or_word(2, 1 << 5); // process 133
        by_word.or_word(3, 0); // no members: must not allocate spill
        let by_insert: UpdateSet = [p(3), p(63), p(64), p(133)].into_iter().collect();
        assert_eq!(by_word, by_insert);
        assert_eq!(by_word.to_vec(), vec![p(3), p(63), p(64), p(133)]);
    }

    #[test]
    fn or_word_zero_mask_never_spills() {
        let mut set = UpdateSet::new();
        set.or_word(5, 0);
        assert!(set.is_empty());
        assert_eq!(set.hi.capacity(), 0);
    }

    #[test]
    fn equality_ignores_spill_capacity() {
        let mut a = UpdateSet::new();
        a.insert(p(1));
        let mut b = UpdateSet::new();
        b.insert(p(200));
        b.clear();
        b.insert(p(1));
        // Same members even though b carries zeroed spill words.
        assert_eq!(a, b);
        assert!(b.hi.iter().all(|&w| w == 0));
    }
}
