//! Transitive dependency vectors (Section 4.2 of the paper).

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{
    CheckpointIndex, DvEntry, Error, Incarnation, IntervalIndex, ProcessId, Result, UpdateSet,
};

/// Vectors covering at most this many processes live entirely inline (no
/// heap allocation for construction, cloning or merging).
const INLINE_CAP: usize = 16;

/// Storage for the entries: inline for small systems, heap beyond.
///
/// The representation is an implementation detail — equality, hashing and
/// ordering are defined over the entry slice, and a given vector's
/// representation is fixed by its length (`n ≤ 16` inline), so the two
/// variants never compare against each other in practice.
// The size asymmetry is the design: the large Inline variant IS the
// no-allocation fast path, and every vector of a given system size uses one
// fixed variant, so no memory is "wasted" on the small one.
#[allow(clippy::large_enum_variant)]
#[derive(Clone, Serialize, Deserialize)]
enum Entries {
    /// Up to [`INLINE_CAP`] entries stored in place.
    Inline {
        /// Number of live entries in `buf`.
        len: u8,
        /// Entry storage; `buf[len..]` is meaningless padding.
        buf: [DvEntry; INLINE_CAP],
    },
    /// Arbitrary-size fallback.
    Heap(Vec<DvEntry>),
}

impl Entries {
    fn from_vec(entries: Vec<DvEntry>) -> Self {
        if entries.len() <= INLINE_CAP {
            let mut buf = [DvEntry::ZERO; INLINE_CAP];
            buf[..entries.len()].copy_from_slice(&entries);
            Entries::Inline {
                len: entries.len() as u8,
                buf,
            }
        } else {
            Entries::Heap(entries)
        }
    }

    fn zeros(n: usize) -> Self {
        if n <= INLINE_CAP {
            Entries::Inline {
                len: n as u8,
                buf: [DvEntry::ZERO; INLINE_CAP],
            }
        } else {
            Entries::Heap(vec![DvEntry::ZERO; n])
        }
    }

    fn as_slice(&self) -> &[DvEntry] {
        match self {
            Entries::Inline { len, buf } => &buf[..*len as usize],
            Entries::Heap(v) => v,
        }
    }

    fn as_mut_slice(&mut self) -> &mut [DvEntry] {
        match self {
            Entries::Inline { len, buf } => &mut buf[..*len as usize],
            Entries::Heap(v) => v,
        }
    }
}

/// A transitive dependency vector `DV` as maintained by every process of an
/// RDT checkpointing protocol and piggybacked on every application message.
///
/// Semantics (paper, Section 4.2):
///
/// * `DV[i]` — for the owner `p_i` — is the index of the checkpoint interval
///   `p_i` currently executes in. It starts at `0` and is incremented
///   immediately after each checkpoint is stored.
/// * `DV[j]`, `j ≠ i`, is the highest interval index of `p_j` upon which the
///   owner causally depends; it is updated whenever a message with a greater
///   entry arrives.
/// * The vector stored together with checkpoint `c_i^γ` satisfies
///   `DV(c_i^γ)[i] = γ`.
///
/// Equation 2 (`c_a^α → c_b^β ⟺ α < DV(c_b^β)[a]`) is exposed as
/// [`dominates_checkpoint`](Self::dominates_checkpoint), and Equation 3
/// (`last_k_i(j) = DV(v_i)[j] − 1`) as
/// [`last_known`](Self::last_known).
///
/// Vectors of systems with `n ≤ 16` processes are stored inline — no heap
/// allocation on construction, cloning, or merging — because the vector is
/// the payload of the per-event hot path ([`merge_from`](Self::merge_from)
/// on every receive, a clone into stable storage on every checkpoint).
/// Each entry is one packed `u64` word (incarnation in the top 16 bits,
/// interval in the low 48 — see [`DvEntry`] for the layout and the
/// order-preservation argument), so the inline vector is a flat `[u64; 16]`
/// and every merge/containment kernel is a single-compare-per-entry word
/// loop.
///
/// # Example
///
/// ```
/// use rdt_base::{DependencyVector, ProcessId};
///
/// let p0 = ProcessId::new(0);
/// let mut dv = DependencyVector::new(2);
/// assert_eq!(dv.entry(p0).value(), 0);
/// dv.begin_next_interval(p0); // checkpoint s_0^0 stored
/// assert_eq!(dv.entry(p0).value(), 1);
/// ```
#[derive(Clone, Serialize, Deserialize)]
pub struct DependencyVector {
    entries: Entries,
}

impl DependencyVector {
    /// Creates the all-zero vector `(0, …, 0)` of a system with `n` processes.
    ///
    /// # Panics
    ///
    /// Panics if `n == 0`; a system needs at least one process.
    pub fn new(n: usize) -> Self {
        assert!(n > 0, "a system needs at least one process");
        Self {
            entries: Entries::zeros(n),
        }
    }

    /// Builds a vector from raw interval indices.
    ///
    /// ```
    /// use rdt_base::DependencyVector;
    /// let dv = DependencyVector::from_raw(vec![1, 4, 2]);
    /// assert_eq!(dv.len(), 3);
    /// ```
    pub fn from_raw(raw: Vec<usize>) -> Self {
        assert!(!raw.is_empty(), "a system needs at least one process");
        Self {
            entries: Entries::from_vec(
                raw.into_iter()
                    .map(|g| DvEntry::new(Incarnation::ZERO, IntervalIndex::new(g)))
                    .collect(),
            ),
        }
    }

    /// Builds a vector from `(incarnation, interval)` pairs — the
    /// fully-qualified counterpart of [`from_raw`](Self::from_raw) for
    /// post-rollback scenarios.
    ///
    /// # Panics
    ///
    /// Panics if a component exceeds its packed [`DvEntry`] field; use
    /// [`try_from_lineages`](Self::try_from_lineages) for untrusted input.
    pub fn from_lineages(raw: Vec<(u32, usize)>) -> Self {
        assert!(!raw.is_empty(), "a system needs at least one process");
        Self {
            entries: Entries::from_vec(
                raw.into_iter()
                    .map(|(v, g)| DvEntry::new(Incarnation::new(v), IntervalIndex::new(g)))
                    .collect(),
            ),
        }
    }

    /// Fallible [`from_lineages`](Self::from_lineages) for untrusted input
    /// (e.g. decoding stored records): a component that does not fit its
    /// packed [`DvEntry`] field is a typed error, never a truncation.
    ///
    /// # Errors
    ///
    /// [`Error::IncarnationOverflow`] / [`Error::IntervalOverflow`] for
    /// components beyond the packed field widths;
    /// [`Error::SystemSizeMismatch`] for an empty slice.
    pub fn try_from_lineages(raw: &[(u32, usize)]) -> Result<Self> {
        if raw.is_empty() {
            return Err(Error::SystemSizeMismatch {
                expected: 1,
                actual: 0,
            });
        }
        let entries = raw
            .iter()
            .map(|&(v, g)| DvEntry::try_new(Incarnation::new(v), IntervalIndex::new(g)))
            .collect::<Result<Vec<_>>>()?;
        Ok(Self {
            entries: Entries::from_vec(entries),
        })
    }

    /// The number of processes `n` this vector covers.
    pub fn len(&self) -> usize {
        self.entries.as_slice().len()
    }

    /// Always `false`: vectors cover at least one process.
    pub fn is_empty(&self) -> bool {
        false
    }

    /// The *interval component* of the entry for process `p`.
    ///
    /// Interval indices are only comparable within one incarnation; use
    /// [`lineage`](Self::lineage) whenever the execution may have rolled
    /// back.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this system size.
    pub fn entry(&self, p: ProcessId) -> IntervalIndex {
        self.entries.as_slice()[p.index()].interval()
    }

    /// The full incarnation-qualified entry for process `p`.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this system size.
    pub fn lineage(&self, p: ProcessId) -> DvEntry {
        self.entries.as_slice()[p.index()]
    }

    /// The incarnation component of the entry for process `p` — the newest
    /// incarnation of `p` this vector has causally heard of.
    ///
    /// # Panics
    ///
    /// Panics if `p` is out of range for this system size.
    pub fn incarnation_of(&self, p: ProcessId) -> Incarnation {
        self.entries.as_slice()[p.index()].incarnation()
    }

    /// Fallible variant of [`entry`](Self::entry).
    ///
    /// # Errors
    ///
    /// Returns [`Error::ProcessOutOfRange`] if `p.index() >= n`.
    pub fn try_entry(&self, p: ProcessId) -> Result<IntervalIndex> {
        self.entries
            .as_slice()
            .get(p.index())
            .map(|e| e.interval())
            .ok_or(Error::ProcessOutOfRange {
                process: p,
                n: self.len(),
            })
    }

    /// Iterates over `(process, interval)` pairs.
    pub fn iter(&self) -> impl Iterator<Item = (ProcessId, IntervalIndex)> + '_ {
        self.entries
            .as_slice()
            .iter()
            .enumerate()
            .map(|(i, v)| (ProcessId::new(i), v.interval()))
    }

    /// Incarnation-qualified entries, in process order.
    pub fn as_slice(&self) -> &[DvEntry] {
        self.entries.as_slice()
    }

    /// Raw interval components as plain integers, in process order.
    pub fn to_raw(&self) -> Vec<usize> {
        self.entries
            .as_slice()
            .iter()
            .map(|e| e.interval().value())
            .collect()
    }

    /// Raw `(incarnation, interval)` components, in process order.
    pub fn to_raw_lineages(&self) -> Vec<(u32, usize)> {
        self.entries
            .as_slice()
            .iter()
            .map(|e| (e.incarnation().value(), e.interval().value()))
            .collect()
    }

    /// Increments the owner's entry: called by `p_i` immediately after it
    /// stores a checkpoint ("On taking checkpoint", Algorithm 2, line 4).
    ///
    /// Returns the interval the process now executes in.
    pub fn begin_next_interval(&mut self, owner: ProcessId) -> IntervalIndex {
        let e = &mut self.entries.as_mut_slice()[owner.index()];
        *e = e.next_interval();
        e.interval()
    }

    /// Opens a fresh incarnation after a rollback: called by `p_i` right
    /// after restoring a checkpoint, with the *globally fresh* incarnation
    /// number assigned by the recovery layer (strictly greater than any the
    /// process has used before — note the restored vector may carry an older
    /// incarnation than the execution that just died).
    ///
    /// The owner's entry becomes `(incarnation, restored interval + 1)`:
    /// re-executed intervals reuse indices, but the incarnation component
    /// keeps them distinguishable from the abandoned attempt's.
    ///
    /// # Panics
    ///
    /// Panics if `incarnation` does not exceed the restored entry's — reused
    /// `(incarnation, interval)` pairs would re-introduce the aliasing this
    /// type exists to prevent.
    pub fn resume_incarnation(&mut self, owner: ProcessId, incarnation: Incarnation) -> DvEntry {
        let e = &mut self.entries.as_mut_slice()[owner.index()];
        assert!(
            incarnation > e.incarnation(),
            "a rollback must open a strictly newer incarnation"
        );
        *e = DvEntry::new(incarnation, e.interval().next());
        *e
    }

    /// Merges the vector piggybacked on a received message
    /// ("On receiving m", Algorithm 2, lines 1–3): every entry of `other`
    /// that is greater replaces the local entry.
    ///
    /// Returns the processes whose entries were updated, i.e. those bringing
    /// *new causal information* — exactly the set for which RDT-LGC must
    /// `release`/`link` (Algorithm 2, lines 4–5). The [`UpdateSet`] is a
    /// bitset: reporting allocates nothing for systems of up to 128
    /// processes.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge_from(&mut self, other: &DependencyVector) -> UpdateSet {
        let mut updated = UpdateSet::new();
        self.merge_from_into(other, &mut updated);
        updated
    }

    /// [`merge_from`](Self::merge_from) writing the update report into a
    /// caller-owned set (cleared first). Lets hot loops reuse one
    /// [`UpdateSet`] across events instead of constructing one per merge.
    ///
    /// This is the per-receive hot kernel, a word-parallel loop: because a
    /// [`DvEntry`] is one packed `u64` whose unsigned order *is* the
    /// lexicographic `(incarnation, interval)` order, each entry costs one
    /// word compare, and the update report is derived from a compare mask
    /// (one bit per entry, held in a register and OR-ed into the
    /// [`UpdateSet`] once per 64-entry chunk) instead of per-entry
    /// `insert` calls, which would force the set's memory state through the
    /// loop. The store behind the compare stays guarded on purpose:
    /// per-event news is sparse (typically one entry), the branch predicts
    /// as not-taken, and measuring fully-branchless variants
    /// (unconditional `max` + mask, fused or two-pass) showed them 20–60%
    /// *slower* on this workload — the per-entry mask/`max` arithmetic
    /// costs more than the rarely-taken branch it replaces.
    ///
    /// # Panics
    ///
    /// Panics if the vectors have different lengths.
    pub fn merge_from_into(&mut self, other: &DependencyVector, updated: &mut UpdateSet) {
        assert_eq!(
            self.len(),
            other.len(),
            "dependency vectors must cover the same system"
        );
        updated.clear();
        let mine = self.entries.as_mut_slice();
        let theirs = other.entries.as_slice();
        for (word, (mc, tc)) in mine.chunks_mut(64).zip(theirs.chunks(64)).enumerate() {
            let mut mask = 0u64;
            for (bit, (m, t)) in mc.iter_mut().zip(tc).enumerate() {
                if t.packed() > m.packed() {
                    *m = *t;
                    mask |= 1u64 << bit;
                }
            }
            updated.or_word(word, mask);
        }
    }

    /// Whether merging `other` would bring new causal information, without
    /// performing the merge. FDAS uses this to decide whether a forced
    /// checkpoint is required before processing a receive.
    ///
    /// Unlike [`merge_from_into`](Self::merge_from_into) (whose store is
    /// deliberately branch-guarded), this read-only predicate is fully
    /// branch-free: the packed-word comparisons are OR-folded instead of
    /// short-circuited, so the loop has no data-dependent branches to
    /// mispredict.
    pub fn would_learn_from(&self, other: &DependencyVector) -> bool {
        assert_eq!(self.len(), other.len());
        self.entries
            .as_slice()
            .iter()
            .zip(other.entries.as_slice())
            .fold(false, |acc, (mine, theirs)| {
                acc | (theirs.packed() > mine.packed())
            })
    }

    /// Equation 2 of the paper: does checkpoint `c_a^α` causally precede the
    /// state (volatile or checkpointed) whose dependency vector is `self`?
    ///
    /// `c_a^α → state ⟺ α < DV(state)[a]`.
    ///
    /// Compares raw interval indices, i.e. answers the question *within one
    /// incarnation of `p_a`*. Recovery-line computations over executions
    /// that may have rolled back must use
    /// [`dominates_live_checkpoint`](Self::dominates_live_checkpoint).
    pub fn dominates_checkpoint(&self, a: ProcessId, alpha: CheckpointIndex) -> bool {
        alpha.value() < self.entry(a).value()
    }

    /// Incarnation-aware Equation 2: does checkpoint `c_a^α` of `p_a`'s
    /// **live** incarnation causally precede this state?
    ///
    /// An entry from a dead incarnation of `p_a` never dominates: the
    /// surviving prefix of every dead incarnation lies at or below the live
    /// execution's restore points, so whatever part of the recorded
    /// dependency still refers to existing states cannot exceed `p_a`'s
    /// current last stable checkpoint. The dead remainder refers to states
    /// already discarded by an earlier recovery session and must not block a
    /// live checkpoint — the orphaned-knowledge failure mode this predicate
    /// eliminates.
    pub fn dominates_live_checkpoint(
        &self,
        a: ProcessId,
        alpha: CheckpointIndex,
        live: Incarnation,
    ) -> bool {
        let e = self.lineage(a);
        debug_assert!(
            e.incarnation() <= live,
            "knowledge of {a} cannot be newer than its own incarnation"
        );
        e.incarnation() == live && alpha.value() < e.interval().value()
    }

    /// Equation 3 of the paper: the last checkpoint of `p_j` known here,
    /// `last_k(j) = DV[j] − 1`, or `None` if no checkpoint of `p_j` is known.
    pub fn last_known(&self, j: ProcessId) -> Option<CheckpointIndex> {
        self.entry(j).last_known_checkpoint()
    }

    /// Component-wise maximum of two vectors (the result of a merge, without
    /// mutating either operand). Branch-free: each entry is one packed-word
    /// `max`.
    pub fn join(&self, other: &DependencyVector) -> DependencyVector {
        assert_eq!(self.len(), other.len());
        let mut joined = self.clone();
        for (mine, theirs) in joined
            .entries
            .as_mut_slice()
            .iter_mut()
            .zip(other.entries.as_slice())
        {
            *mine = DvEntry::from_packed(mine.packed().max(theirs.packed()));
        }
        joined
    }

    /// Whether `self ≤ other` component-wise (causal-history containment):
    /// every causal dependency recorded here is also recorded in `other`.
    ///
    /// Branch-free word-parallel kernel: packed-word comparisons AND-folded
    /// instead of short-circuited (the vectors are short; predictability
    /// beats early exit).
    pub fn dominated_by(&self, other: &DependencyVector) -> bool {
        assert_eq!(self.len(), other.len());
        self.entries
            .as_slice()
            .iter()
            .zip(other.entries.as_slice())
            .fold(true, |acc, (a, b)| acc & (a.packed() <= b.packed()))
    }
}

/// Equality is defined over the entry slice, independent of representation.
impl PartialEq for DependencyVector {
    fn eq(&self, other: &Self) -> bool {
        self.entries.as_slice() == other.entries.as_slice()
    }
}

impl Eq for DependencyVector {}

impl std::hash::Hash for DependencyVector {
    fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
        self.entries.as_slice().hash(state);
    }
}

impl fmt::Debug for DependencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DependencyVector")
            .field("entries", &self.entries.as_slice())
            .finish()
    }
}

impl fmt::Display for DependencyVector {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "(")?;
        for (i, e) in self.entries.as_slice().iter().enumerate() {
            if i > 0 {
                write!(f, ", ")?;
            }
            write!(f, "{e}")?;
        }
        write!(f, ")")
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn new_vector_is_all_zero() {
        let dv = DependencyVector::new(4);
        assert!(dv.iter().all(|(_, e)| e == IntervalIndex::ZERO));
    }

    #[test]
    #[should_panic(expected = "at least one process")]
    fn zero_process_system_is_rejected() {
        let _ = DependencyVector::new(0);
    }

    #[test]
    fn begin_next_interval_increments_owner_only() {
        let mut dv = DependencyVector::new(3);
        let now = dv.begin_next_interval(p(1));
        assert_eq!(now, IntervalIndex::new(1));
        assert_eq!(dv.to_raw(), vec![0, 1, 0]);
    }

    #[test]
    fn merge_takes_componentwise_max_and_reports_updates() {
        let mut a = DependencyVector::from_raw(vec![2, 0, 5]);
        let b = DependencyVector::from_raw(vec![1, 3, 5]);
        let updated = a.merge_from(&b);
        assert_eq!(a.to_raw(), vec![2, 3, 5]);
        assert_eq!(updated.to_vec(), vec![p(1)]);
    }

    #[test]
    fn merge_with_no_news_reports_nothing() {
        let mut a = DependencyVector::from_raw(vec![2, 3, 5]);
        let b = DependencyVector::from_raw(vec![2, 1, 0]);
        assert!(a.merge_from(&b).is_empty());
        assert_eq!(a.to_raw(), vec![2, 3, 5]);
    }

    #[test]
    fn would_learn_matches_merge_behaviour() {
        let a = DependencyVector::from_raw(vec![2, 3, 5]);
        let higher = DependencyVector::from_raw(vec![0, 4, 0]);
        let lower = DependencyVector::from_raw(vec![2, 3, 5]);
        assert!(a.would_learn_from(&higher));
        assert!(!a.would_learn_from(&lower));
    }

    #[test]
    fn equation_2_checkpoint_domination() {
        // DV(state)[a] = 3 means checkpoints 0,1,2 of p_a precede the state.
        let dv = DependencyVector::from_raw(vec![3, 0]);
        assert!(dv.dominates_checkpoint(p(0), CheckpointIndex::new(2)));
        assert!(!dv.dominates_checkpoint(p(0), CheckpointIndex::new(3)));
        assert!(!dv.dominates_checkpoint(p(1), CheckpointIndex::new(0)));
    }

    #[test]
    fn equation_3_last_known() {
        let dv = DependencyVector::from_raw(vec![0, 4]);
        assert_eq!(dv.last_known(p(0)), None);
        assert_eq!(dv.last_known(p(1)), Some(CheckpointIndex::new(3)));
    }

    #[test]
    fn join_is_commutative_max() {
        let a = DependencyVector::from_raw(vec![2, 0, 5]);
        let b = DependencyVector::from_raw(vec![1, 3, 5]);
        assert_eq!(a.join(&b), b.join(&a));
        assert_eq!(a.join(&b).to_raw(), vec![2, 3, 5]);
    }

    #[test]
    fn dominated_by_is_componentwise() {
        let a = DependencyVector::from_raw(vec![1, 2, 3]);
        let b = DependencyVector::from_raw(vec![1, 3, 3]);
        assert!(a.dominated_by(&b));
        assert!(!b.dominated_by(&a));
        assert!(a.dominated_by(&a));
    }

    #[test]
    fn merge_prefers_newer_incarnations_over_higher_intervals() {
        // Stale knowledge of p1's dead incarnation 0, interval 9, is
        // superseded by live knowledge (incarnation 1, interval 3).
        let mut a = DependencyVector::from_lineages(vec![(0, 2), (0, 9)]);
        let b = DependencyVector::from_lineages(vec![(0, 1), (1, 3)]);
        let updated = a.merge_from(&b);
        assert_eq!(updated.to_vec(), vec![p(1)]);
        assert_eq!(a.to_raw_lineages(), vec![(0, 2), (1, 3)]);
        // The reverse merge learns nothing: dead knowledge never overwrites
        // live knowledge.
        let mut b2 = b.clone();
        assert!(b2
            .merge_from(&DependencyVector::from_lineages(vec![(0, 1), (0, 9)]))
            .is_empty());
        assert_eq!(b2.lineage(p(1)), b.lineage(p(1)));
    }

    #[test]
    fn resume_incarnation_bumps_and_advances() {
        let mut dv = DependencyVector::from_lineages(vec![(0, 3), (0, 1)]);
        let e = dv.resume_incarnation(p(0), Incarnation::new(2));
        assert_eq!(e, DvEntry::new(Incarnation::new(2), IntervalIndex::new(4)));
        assert_eq!(dv.incarnation_of(p(0)), Incarnation::new(2));
        assert_eq!(dv.entry(p(0)).value(), 4);
    }

    #[test]
    #[should_panic(expected = "strictly newer incarnation")]
    fn resume_incarnation_rejects_reuse() {
        let mut dv = DependencyVector::from_lineages(vec![(1, 3)]);
        dv.resume_incarnation(p(0), Incarnation::new(1));
    }

    #[test]
    fn dead_incarnation_entries_never_dominate_live_checkpoints() {
        // Entry (0, 9) for p1, whose live incarnation is 1: no domination,
        // whatever the checkpoint index.
        let dv = DependencyVector::from_lineages(vec![(0, 1), (0, 9)]);
        assert!(dv.dominates_checkpoint(p(1), CheckpointIndex::new(2)));
        assert!(!dv.dominates_live_checkpoint(p(1), CheckpointIndex::new(2), Incarnation::new(1)));
        // Same-incarnation knowledge dominates as in Equation 2.
        assert!(dv.dominates_live_checkpoint(p(1), CheckpointIndex::new(2), Incarnation::ZERO));
    }

    #[test]
    fn display_shows_incarnation_qualified_entries() {
        let dv = DependencyVector::from_lineages(vec![(0, 1), (2, 4)]);
        assert_eq!(dv.to_string(), "(1, 4@2)");
    }

    #[test]
    fn display_matches_paper_tuple_notation() {
        let dv = DependencyVector::from_raw(vec![1, 4, 2]);
        assert_eq!(dv.to_string(), "(1, 4, 2)");
    }

    #[test]
    fn try_from_lineages_guards_the_packing_boundary() {
        let ok = DependencyVector::try_from_lineages(&[(1, 4), (0, 0)]).unwrap();
        assert_eq!(ok, DependencyVector::from_lineages(vec![(1, 4), (0, 0)]));
        assert!(matches!(
            DependencyVector::try_from_lineages(&[(0, DvEntry::MAX_INTERVAL + 1)]),
            Err(Error::IntervalOverflow { .. })
        ));
        assert!(matches!(
            DependencyVector::try_from_lineages(&[(DvEntry::MAX_INCARNATION + 1, 0)]),
            Err(Error::IncarnationOverflow { .. })
        ));
        assert!(DependencyVector::try_from_lineages(&[]).is_err());
    }

    #[test]
    fn try_entry_rejects_out_of_range() {
        let dv = DependencyVector::new(2);
        assert!(dv.try_entry(p(1)).is_ok());
        assert!(matches!(
            dv.try_entry(p(2)),
            Err(Error::ProcessOutOfRange { n: 2, .. })
        ));
    }

    #[test]
    fn large_vectors_spill_to_the_heap_transparently() {
        let n = INLINE_CAP * 3;
        let mut big = DependencyVector::new(n);
        big.begin_next_interval(p(n - 1));
        assert_eq!(big.entry(p(n - 1)), IntervalIndex::new(1));
        assert_eq!(big.len(), n);
        let other =
            DependencyVector::from_raw((0..n).map(|i| if i == 0 { 7 } else { 0 }).collect());
        let updated = big.clone().merge_from(&other);
        assert_eq!(updated.to_vec(), vec![p(0)]);
        assert!(matches!(big.entries, Entries::Heap(_)));
    }

    #[test]
    fn inline_and_heap_boundaries() {
        let at_cap = DependencyVector::new(INLINE_CAP);
        assert!(matches!(at_cap.entries, Entries::Inline { .. }));
        let over = DependencyVector::new(INLINE_CAP + 1);
        assert!(matches!(over.entries, Entries::Heap(_)));
        // from_raw picks the same representation per length.
        let from_raw = DependencyVector::from_raw(vec![0; INLINE_CAP]);
        assert_eq!(at_cap, from_raw);
    }

    #[test]
    fn debug_output_shows_entries() {
        let dv = DependencyVector::from_raw(vec![1, 2]);
        let s = format!("{dv:?}");
        assert!(s.contains("DependencyVector"), "{s}");
        assert!(s.contains("entries"), "{s}");
    }
}
