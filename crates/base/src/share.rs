//! Shared, immutable dependency-vector snapshots.
//!
//! A sender piggybacks its current dependency vector on every outgoing
//! message; a burst of sends within one checkpoint interval piggybacks the
//! *same* vector. Interning the snapshot behind a reference-counted pointer
//! makes every send after the first an O(1) pointer copy — but the flavour
//! of the refcount matters on the hot path:
//!
//! * [`SharedDv`] — an [`Rc`]-backed snapshot, the **default**. The
//!   discrete-event simulator and every other driver in this workspace run
//!   a process's events on one thread, so the refcount traffic of cloning a
//!   piggyback per queued hop never needs to be atomic. `SharedDv` is
//!   deliberately `!Send`: the compiler, not a convention, keeps it on the
//!   thread that minted it.
//! * [`SyncDv`] — the [`Arc`]-backed counterpart for runtimes that really
//!   do hand snapshots across threads (`rdt_sim`'s threaded runtime). The
//!   atomic refcount cost is paid only where the `Send` bound is real,
//!   instead of on every message of the single-threaded hot path.
//!
//! Both types deref to [`DependencyVector`]; converting between them clones
//! the underlying vector (the two refcount headers are incompatible), which
//! is exactly the copy a cross-thread handoff must pay anyway.

use std::fmt;
use std::ops::Deref;
use std::rc::Rc;
use std::sync::Arc;

use serde::{Deserialize, Serialize};

use crate::DependencyVector;

/// A thread-local (non-atomic, `!Send`) shared dependency-vector snapshot —
/// the piggyback payload of the single-threaded hot path.
#[derive(Clone, Serialize, Deserialize)]
pub struct SharedDv(Rc<DependencyVector>);

impl SharedDv {
    /// Interns an owned vector.
    pub fn new(dv: DependencyVector) -> Self {
        Self(Rc::new(dv))
    }

    /// Deep-copies into the [`Arc`]-backed flavour for a cross-thread
    /// handoff.
    pub fn to_sync(&self) -> SyncDv {
        SyncDv::new(self.0.as_ref().clone())
    }
}

/// A `Send + Sync` (atomic) shared dependency-vector snapshot, for runtimes
/// that move piggybacks between threads.
#[derive(Clone, Serialize, Deserialize)]
pub struct SyncDv(Arc<DependencyVector>);

impl SyncDv {
    /// Interns an owned vector.
    pub fn new(dv: DependencyVector) -> Self {
        Self(Arc::new(dv))
    }

    /// Deep-copies into the thread-local flavour.
    pub fn to_local(&self) -> SharedDv {
        SharedDv::new(self.0.as_ref().clone())
    }
}

macro_rules! snapshot_impls {
    ($ty:ident) => {
        impl Deref for $ty {
            type Target = DependencyVector;

            fn deref(&self) -> &DependencyVector {
                &self.0
            }
        }

        impl AsRef<DependencyVector> for $ty {
            fn as_ref(&self) -> &DependencyVector {
                &self.0
            }
        }

        impl From<DependencyVector> for $ty {
            fn from(dv: DependencyVector) -> Self {
                Self::new(dv)
            }
        }

        /// Equality is over the snapshot's value, not pointer identity.
        impl PartialEq for $ty {
            fn eq(&self, other: &Self) -> bool {
                self.0 == other.0
            }
        }

        impl Eq for $ty {}

        impl std::hash::Hash for $ty {
            fn hash<H: std::hash::Hasher>(&self, state: &mut H) {
                self.0.hash(state);
            }
        }

        impl fmt::Debug for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Debug::fmt(&*self.0, f)
            }
        }

        impl fmt::Display for $ty {
            fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
                fmt::Display::fmt(&*self.0, f)
            }
        }
    };
}

snapshot_impls!(SharedDv);
snapshot_impls!(SyncDv);

impl From<Rc<DependencyVector>> for SharedDv {
    fn from(rc: Rc<DependencyVector>) -> Self {
        Self(rc)
    }
}

impl From<Arc<DependencyVector>> for SyncDv {
    fn from(arc: Arc<DependencyVector>) -> Self {
        Self(arc)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::ProcessId;

    #[test]
    fn clones_share_one_vector() {
        let a = SharedDv::new(DependencyVector::from_raw(vec![1, 2]));
        let b = a.clone();
        assert!(Rc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(b.entry(ProcessId::new(1)).value(), 2);
    }

    #[test]
    fn sync_flavour_is_send_and_sync() {
        fn assert_bounds<T: Send + Sync>() {}
        assert_bounds::<SyncDv>();
    }

    #[test]
    fn conversions_preserve_the_value() {
        let local = SharedDv::new(DependencyVector::from_lineages(vec![(1, 3), (0, 0)]));
        let sync = local.to_sync();
        assert_eq!(*local, *sync);
        assert_eq!(sync.to_local(), local);
    }

    #[test]
    fn equality_is_by_value_across_allocations() {
        let a = SharedDv::new(DependencyVector::from_raw(vec![4]));
        let b = SharedDv::new(DependencyVector::from_raw(vec![4]));
        assert!(!Rc::ptr_eq(&a.0, &b.0));
        assert_eq!(a, b);
        assert_eq!(format!("{a}"), "(4)");
    }
}
