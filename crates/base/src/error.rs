//! Error types shared across the workspace.

use std::fmt;

use crate::{CheckpointIndex, ProcessId};

/// Convenience alias for results using [`enum@Error`].
pub type Result<T> = std::result::Result<T, Error>;

/// Errors produced by the RDT checkpointing stack.
#[derive(Debug, Clone, PartialEq, Eq)]
#[non_exhaustive]
pub enum Error {
    /// A process id exceeded the system size `n`.
    ProcessOutOfRange {
        /// The offending process id.
        process: ProcessId,
        /// The system size.
        n: usize,
    },
    /// A checkpoint index was requested that the process has never taken or
    /// has already garbage-collected.
    UnknownCheckpoint {
        /// Owner of the checkpoint.
        process: ProcessId,
        /// The missing index.
        index: CheckpointIndex,
    },
    /// A stable checkpoint was requested from storage but is not present
    /// (collected, or never stored).
    CheckpointNotInStorage {
        /// Owner of the checkpoint.
        process: ProcessId,
        /// The missing index.
        index: CheckpointIndex,
    },
    /// Two artifacts from systems of different sizes were combined.
    SystemSizeMismatch {
        /// Size expected by the receiver.
        expected: usize,
        /// Size actually provided.
        actual: usize,
    },
    /// An operation was attempted on a crashed process.
    ProcessCrashed(ProcessId),
    /// A rollback target does not exist in stable storage.
    InvalidRollbackTarget {
        /// The process asked to roll back.
        process: ProcessId,
        /// The requested restoration index.
        index: CheckpointIndex,
    },
    /// A message id was referenced that was never sent.
    UnknownMessage(crate::MessageId),
    /// A message was delivered or dropped twice.
    DuplicateDelivery(crate::MessageId),
    /// A trace event is not supported in the current context.
    UnsupportedTraceEvent(String),
    /// A recovery-line computation exhausted a process's stored checkpoints
    /// under a collector whose safety guarantees forbid it (Lemma-1 totality
    /// violated — a garbage-collection safety bug, not a model property).
    RecoveryLineExhausted {
        /// The process whose stored checkpoints were all blocked.
        process: ProcessId,
    },
    /// An incarnation number does not fit the packed dependency-vector
    /// word's 16-bit incarnation field (`crate::DvEntry::MAX_INCARNATION`).
    IncarnationOverflow {
        /// The rejected incarnation number.
        incarnation: u32,
    },
    /// An interval index does not fit the packed dependency-vector word's
    /// 48-bit interval field (`crate::DvEntry::MAX_INTERVAL`).
    IntervalOverflow {
        /// The rejected interval index.
        interval: usize,
    },
    /// A configuration value is out of its valid range (caught at
    /// construction, before it can panic mid-run).
    InvalidConfig(String),
    /// The durability sink behind a middleware failed (write-ahead log or
    /// checkpoint commit); carries the sink's own error rendering.
    Storage(String),
}

impl fmt::Display for Error {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Error::ProcessOutOfRange { process, n } => {
                write!(f, "process {process} out of range for system of {n}")
            }
            Error::UnknownCheckpoint { process, index } => {
                write!(f, "unknown checkpoint {index} of {process}")
            }
            Error::CheckpointNotInStorage { process, index } => {
                write!(f, "checkpoint {index} of {process} not in stable storage")
            }
            Error::SystemSizeMismatch { expected, actual } => {
                write!(f, "system size mismatch: expected {expected}, got {actual}")
            }
            Error::ProcessCrashed(p) => write!(f, "process {p} is crashed"),
            Error::InvalidRollbackTarget { process, index } => {
                write!(f, "invalid rollback target {index} for {process}")
            }
            Error::UnknownMessage(id) => write!(f, "unknown message {id}"),
            Error::DuplicateDelivery(id) => write!(f, "message {id} delivered or dropped twice"),
            Error::UnsupportedTraceEvent(what) => write!(f, "unsupported trace event: {what}"),
            Error::RecoveryLineExhausted { process } => {
                write!(
                    f,
                    "recovery line exhausted the stored checkpoints of {process} under a safe collector"
                )
            }
            Error::IncarnationOverflow { incarnation } => {
                write!(
                    f,
                    "incarnation {incarnation} exceeds the packed 16-bit field"
                )
            }
            Error::IntervalOverflow { interval } => {
                write!(f, "interval {interval} exceeds the packed 48-bit field")
            }
            Error::InvalidConfig(what) => write!(f, "invalid configuration: {what}"),
            Error::Storage(what) => write!(f, "storage sink failed: {what}"),
        }
    }
}

impl std::error::Error for Error {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn errors_display_lowercase_without_punctuation() {
        let e = Error::ProcessOutOfRange {
            process: ProcessId::new(5),
            n: 3,
        };
        let s = e.to_string();
        assert!(s.starts_with("process"));
        assert!(!s.ends_with('.'));
    }

    #[test]
    fn error_is_std_error_send_sync() {
        fn assert_bounds<T: std::error::Error + Send + Sync + 'static>() {}
        assert_bounds::<Error>();
    }

    #[test]
    fn display_covers_all_variants() {
        let variants = [
            Error::ProcessOutOfRange {
                process: ProcessId::new(0),
                n: 1,
            },
            Error::UnknownCheckpoint {
                process: ProcessId::new(0),
                index: CheckpointIndex::new(1),
            },
            Error::CheckpointNotInStorage {
                process: ProcessId::new(0),
                index: CheckpointIndex::new(1),
            },
            Error::SystemSizeMismatch {
                expected: 2,
                actual: 3,
            },
            Error::ProcessCrashed(ProcessId::new(0)),
            Error::InvalidRollbackTarget {
                process: ProcessId::new(0),
                index: CheckpointIndex::new(9),
            },
        ];
        for v in variants {
            assert!(!v.to_string().is_empty());
        }
    }
}
