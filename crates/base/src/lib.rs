//! Core identifiers, dependency vectors and message metadata shared by every
//! crate in the `rdt-checkpointing` workspace.
//!
//! This crate implements the *vocabulary* of the ICDCS 2005 paper
//! ["Optimal Asynchronous Garbage Collection for RDT Checkpointing
//! Protocols"][paper]:
//!
//! * [`ProcessId`], [`CheckpointIndex`] and [`IntervalIndex`] — typed indices
//!   for processes `p_i`, stable checkpoints `s_i^γ` and checkpoint intervals
//!   `I_i^γ` (Section 2.2 of the paper); [`Incarnation`] and [`DvEntry`] —
//!   the incarnation-numbered interval identity (Strom/Yemini style) that
//!   keeps causal knowledge unambiguous across rollbacks: every rollback
//!   opens a fresh incarnation, and entries order lexicographically so
//!   newer-incarnation knowledge supersedes the dead execution's.
//! * [`DependencyVector`] — the transitive dependency vector of Strom and
//!   Yemini that RDT checkpointing protocols piggyback on every application
//!   message (Section 4.2). Equation 2 of the paper,
//!   `c_a^α → c_b^β ⟺ α < DV(c_b^β)[a]`, is exposed as
//!   [`DependencyVector::dominates_checkpoint`].
//! * [`MessageMeta`] / [`Message`] — the control information piggybacked on
//!   application messages, and an application message with an opaque payload.
//!
//! # Example
//!
//! ```
//! use rdt_base::{DependencyVector, ProcessId};
//!
//! let n = 3;
//! let p0 = ProcessId::new(0);
//! let p1 = ProcessId::new(1);
//!
//! // p0 takes its initial checkpoint and moves to interval 1.
//! let mut dv0 = DependencyVector::new(n);
//! let s0 = dv0.clone();               // DV stored with checkpoint s_0^0
//! dv0.begin_next_interval(p0);
//!
//! // p0 sends a message to p1; p1 merges the piggybacked vector. The
//! // update report is an allocation-free bitset.
//! let mut dv1 = DependencyVector::new(n);
//! dv1.begin_next_interval(p1);
//! let updated = dv1.merge_from(&dv0);
//! assert_eq!(updated.to_vec(), vec![p0]);
//!
//! // p1's volatile state now causally depends on checkpoint s_0^0 (Eq. 2).
//! assert!(dv1.dominates_checkpoint(p0, s0.entry(p0).as_checkpoint()));
//! ```
//!
//! [paper]: https://doi.org/10.1109/ICDCS.2005.55

#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod dv;
mod error;
mod ids;
mod message;
mod share;
mod trace;
mod update_set;

pub use dv::DependencyVector;
pub use error::{Error, Result};
pub use ids::{CheckpointId, CheckpointIndex, DvEntry, Incarnation, IntervalIndex, ProcessId};
pub use message::{Message, MessageId, MessageMeta, Payload};
pub use share::{SharedDv, SyncDv};
pub use trace::TraceEvent;
pub use update_set::UpdateSet;
