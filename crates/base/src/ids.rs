//! Typed indices for processes, checkpoints and checkpoint intervals.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process `p_i` in the system `Π = {p_1, …, p_n}`.
///
/// Internally zero-based (`0 ..= n-1`); the [`fmt::Display`] impl renders the
/// paper's one-based notation (`p1`, `p2`, …).
///
/// ```
/// use rdt_base::ProcessId;
/// let p = ProcessId::new(0);
/// assert_eq!(p.to_string(), "p1");
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a zero-based index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index, suitable for indexing vectors of length `n`.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process ids of a system with `n` processes.
    ///
    /// ```
    /// use rdt_base::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl ExactSizeIterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Index `γ` of a checkpoint `c_i^γ` within a single process.
///
/// Index `0` is the mandatory initial stable checkpoint `s_i^0` the paper
/// requires every process to store before executing (Section 2.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CheckpointIndex(usize);

impl CheckpointIndex {
    /// The initial checkpoint index (`γ = 0`).
    pub const ZERO: Self = Self(0);

    /// Creates a checkpoint index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index `γ`.
    pub const fn value(self) -> usize {
        self.0
    }

    /// The index of the checkpoint that follows this one (`γ + 1`).
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The index of the checkpoint preceding this one, or `None` for `γ = 0`.
    pub fn prev(self) -> Option<Self> {
        self.0.checked_sub(1).map(Self)
    }

    /// The interval `I_i^{γ+1}` that *starts* at this checkpoint.
    ///
    /// A process that has just stored checkpoint `γ` is executing in interval
    /// `γ + 1`; equivalently, `DV[i] = γ + 1` (Section 4.2).
    pub const fn interval_after(self) -> IntervalIndex {
        IntervalIndex(self.0 + 1)
    }
}

impl fmt::Display for CheckpointIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for CheckpointIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Index of a checkpoint interval `I_i^γ`: the events between `c_i^{γ-1}`
/// (inclusive) and `c_i^γ` (exclusive).
///
/// Interval indices are exactly the values stored in dependency-vector
/// entries: `DV[i]` is the interval `p_i` currently executes in, and
/// `DV(v_i)[j]` is the highest interval of `p_j` that `p_i` depends upon.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IntervalIndex(usize);

impl IntervalIndex {
    /// Interval `0`: execution before any knowledge of the process exists.
    ///
    /// A dependency-vector entry `DV[j] = 0` means "no checkpoint of `p_j`
    /// is known", i.e. `last_k_i(j) = −1` in the paper's notation.
    pub const ZERO: Self = Self(0);

    /// Creates an interval index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn value(self) -> usize {
        self.0
    }

    /// The next interval.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The checkpoint whose storage *opened* this interval, i.e. the last
    /// checkpoint known when a dependency-vector entry holds this value.
    ///
    /// Implements Equation 3 of the paper: `last_k_i(j) = DV(v_i)[j] − 1`.
    /// Returns `None` when the interval is `0` (no checkpoint known).
    pub fn last_known_checkpoint(self) -> Option<CheckpointIndex> {
        self.0.checked_sub(1).map(CheckpointIndex)
    }

    /// Interprets this interval index as the checkpoint index it equals
    /// numerically.
    ///
    /// Useful when a checkpoint is stored: the checkpoint `c_i^γ` is stored
    /// while `DV[i] = γ`, so the current self-entry *is* the new checkpoint's
    /// index.
    pub const fn as_checkpoint(self) -> CheckpointIndex {
        CheckpointIndex(self.0)
    }
}

impl fmt::Display for IntervalIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for IntervalIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Fully-qualified checkpoint identifier: process plus per-process index,
/// i.e. the paper's `c_i^γ`.
///
/// ```
/// use rdt_base::{CheckpointId, CheckpointIndex, ProcessId};
/// let c = CheckpointId::new(ProcessId::new(1), CheckpointIndex::new(3));
/// assert_eq!(c.to_string(), "c_p2^3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CheckpointId {
    /// The process that took the checkpoint.
    pub process: ProcessId,
    /// The per-process checkpoint index `γ`.
    pub index: CheckpointIndex,
}

impl CheckpointId {
    /// Creates a checkpoint identifier.
    pub const fn new(process: ProcessId, index: CheckpointIndex) -> Self {
        Self { process, index }
    }

    /// The initial checkpoint `s_i^0` of a process.
    pub const fn initial(process: ProcessId) -> Self {
        Self {
            process,
            index: CheckpointIndex::ZERO,
        }
    }
}

impl fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c_{}^{}", self.process, self.index)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(9).to_string(), "p10");
    }

    #[test]
    fn process_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn checkpoint_next_prev_roundtrip() {
        let c = CheckpointIndex::new(5);
        assert_eq!(c.next().prev(), Some(c));
        assert_eq!(CheckpointIndex::ZERO.prev(), None);
    }

    #[test]
    fn interval_after_checkpoint_matches_paper_convention() {
        // After storing checkpoint γ the process runs in interval γ+1.
        assert_eq!(
            CheckpointIndex::new(3).interval_after(),
            IntervalIndex::new(4)
        );
    }

    #[test]
    fn last_known_checkpoint_is_dv_minus_one() {
        // Equation 3: last_k_i(j) = DV(v_i)[j] − 1.
        assert_eq!(IntervalIndex::ZERO.last_known_checkpoint(), None);
        assert_eq!(
            IntervalIndex::new(4).last_known_checkpoint(),
            Some(CheckpointIndex::new(3))
        );
    }

    #[test]
    fn checkpoint_id_display() {
        let c = CheckpointId::new(ProcessId::new(2), CheckpointIndex::new(7));
        assert_eq!(c.to_string(), "c_p3^7");
    }

    #[test]
    fn checkpoint_id_ordering_is_process_major() {
        let a = CheckpointId::new(ProcessId::new(0), CheckpointIndex::new(9));
        let b = CheckpointId::new(ProcessId::new(1), CheckpointIndex::new(0));
        assert!(a < b);
    }

    #[test]
    fn initial_checkpoint_has_index_zero() {
        let c = CheckpointId::initial(ProcessId::new(1));
        assert_eq!(c.index, CheckpointIndex::ZERO);
    }
}
