//! Typed indices for processes, checkpoints and checkpoint intervals.
//!
//! # The incarnation model
//!
//! Interval indices alone do not survive rollbacks: after a process restores
//! checkpoint `γ` it re-executes intervals `γ+1, γ+2, …`, *reusing* the
//! indices of the execution it just abandoned. Causal knowledge about the
//! dead attempt (a dependency-vector entry recorded before the rollback)
//! then aliases knowledge about the live one, and a recovery manager
//! comparing raw interval indices can mistake a dependency on a rolled-back
//! state for a dependency on the live state — the failure mode that made
//! Lemma-1 recovery non-total under repeated crashes.
//!
//! Following Strom and Yemini's optimistic-recovery scheme, every interval
//! is therefore qualified by the **incarnation** of the execution it belongs
//! to: a per-process counter starting at `0` and bumped on every rollback.
//! The pair ([`Incarnation`], [`IntervalIndex`]) — a [`DvEntry`] — orders
//! lexicographically: any knowledge about a newer incarnation supersedes
//! knowledge about an older one, because the first interval of incarnation
//! `v+1` (the restored checkpoint's successor) is the upper bound of the
//! *surviving* prefix of incarnation `v`. Entries from dead incarnations
//! consequently never refer to states above the live process's last stable
//! checkpoint, which is what restores Lemma 1's totality (see
//! `rdt-recovery`).

use std::fmt;

use serde::{Deserialize, Serialize};

/// Identifier of a process `p_i` in the system `Π = {p_1, …, p_n}`.
///
/// Internally zero-based (`0 ..= n-1`); the [`fmt::Display`] impl renders the
/// paper's one-based notation (`p1`, `p2`, …).
///
/// ```
/// use rdt_base::ProcessId;
/// let p = ProcessId::new(0);
/// assert_eq!(p.to_string(), "p1");
/// assert_eq!(p.index(), 0);
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct ProcessId(usize);

impl ProcessId {
    /// Creates a process id from a zero-based index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The zero-based index, suitable for indexing vectors of length `n`.
    pub const fn index(self) -> usize {
        self.0
    }

    /// Iterates over all process ids of a system with `n` processes.
    ///
    /// ```
    /// use rdt_base::ProcessId;
    /// let all: Vec<_> = ProcessId::all(3).collect();
    /// assert_eq!(all, vec![ProcessId::new(0), ProcessId::new(1), ProcessId::new(2)]);
    /// ```
    pub fn all(n: usize) -> impl ExactSizeIterator<Item = ProcessId> {
        (0..n).map(ProcessId)
    }
}

impl fmt::Display for ProcessId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "p{}", self.0 + 1)
    }
}

impl From<usize> for ProcessId {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Index `γ` of a checkpoint `c_i^γ` within a single process.
///
/// Index `0` is the mandatory initial stable checkpoint `s_i^0` the paper
/// requires every process to store before executing (Section 2.2).
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct CheckpointIndex(usize);

impl CheckpointIndex {
    /// The initial checkpoint index (`γ = 0`).
    pub const ZERO: Self = Self(0);

    /// Creates a checkpoint index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index `γ`.
    pub const fn value(self) -> usize {
        self.0
    }

    /// The index of the checkpoint that follows this one (`γ + 1`).
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The index of the checkpoint preceding this one, or `None` for `γ = 0`.
    pub fn prev(self) -> Option<Self> {
        self.0.checked_sub(1).map(Self)
    }

    /// The interval `I_i^{γ+1}` that *starts* at this checkpoint.
    ///
    /// A process that has just stored checkpoint `γ` is executing in interval
    /// `γ + 1`; equivalently, `DV[i] = γ + 1` (Section 4.2).
    pub const fn interval_after(self) -> IntervalIndex {
        IntervalIndex(self.0 + 1)
    }
}

impl fmt::Display for CheckpointIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for CheckpointIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Index of a checkpoint interval `I_i^γ`: the events between `c_i^{γ-1}`
/// (inclusive) and `c_i^γ` (exclusive).
///
/// Interval indices are exactly the values stored in dependency-vector
/// entries: `DV[i]` is the interval `p_i` currently executes in, and
/// `DV(v_i)[j]` is the highest interval of `p_j` that `p_i` depends upon.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct IntervalIndex(usize);

impl IntervalIndex {
    /// Interval `0`: execution before any knowledge of the process exists.
    ///
    /// A dependency-vector entry `DV[j] = 0` means "no checkpoint of `p_j`
    /// is known", i.e. `last_k_i(j) = −1` in the paper's notation.
    pub const ZERO: Self = Self(0);

    /// Creates an interval index.
    pub const fn new(index: usize) -> Self {
        Self(index)
    }

    /// The raw index.
    pub const fn value(self) -> usize {
        self.0
    }

    /// The next interval.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }

    /// The checkpoint whose storage *opened* this interval, i.e. the last
    /// checkpoint known when a dependency-vector entry holds this value.
    ///
    /// Implements Equation 3 of the paper: `last_k_i(j) = DV(v_i)[j] − 1`.
    /// Returns `None` when the interval is `0` (no checkpoint known).
    pub fn last_known_checkpoint(self) -> Option<CheckpointIndex> {
        self.0.checked_sub(1).map(CheckpointIndex)
    }

    /// Interprets this interval index as the checkpoint index it equals
    /// numerically.
    ///
    /// Useful when a checkpoint is stored: the checkpoint `c_i^γ` is stored
    /// while `DV[i] = γ`, so the current self-entry *is* the new checkpoint's
    /// index.
    pub const fn as_checkpoint(self) -> CheckpointIndex {
        CheckpointIndex(self.0)
    }
}

impl fmt::Display for IntervalIndex {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<usize> for IntervalIndex {
    fn from(index: usize) -> Self {
        Self(index)
    }
}

/// Fully-qualified checkpoint identifier: process plus per-process index,
/// i.e. the paper's `c_i^γ`.
///
/// ```
/// use rdt_base::{CheckpointId, CheckpointIndex, ProcessId};
/// let c = CheckpointId::new(ProcessId::new(1), CheckpointIndex::new(3));
/// assert_eq!(c.to_string(), "c_p2^3");
/// ```
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct CheckpointId {
    /// The process that took the checkpoint.
    pub process: ProcessId,
    /// The per-process checkpoint index `γ`.
    pub index: CheckpointIndex,
}

impl CheckpointId {
    /// Creates a checkpoint identifier.
    pub const fn new(process: ProcessId, index: CheckpointIndex) -> Self {
        Self { process, index }
    }

    /// The initial checkpoint `s_i^0` of a process.
    pub const fn initial(process: ProcessId) -> Self {
        Self {
            process,
            index: CheckpointIndex::ZERO,
        }
    }
}

impl fmt::Display for CheckpointId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "c_{}^{}", self.process, self.index)
    }
}

/// The incarnation number `ν` of a process execution: `0` for the initial
/// run, bumped by one on every rollback (whether the process itself failed
/// or it rolled back as a dependent of a failed process).
///
/// Interval indices are only meaningful *within* an incarnation — rollback
/// reuses them — so causal knowledge is exchanged as
/// ([`Incarnation`], [`IntervalIndex`]) pairs ([`DvEntry`]). See the
/// [module docs](self) for the model.
#[derive(
    Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize,
)]
pub struct Incarnation(u32);

impl Incarnation {
    /// The initial incarnation (`ν = 0`): no rollback has happened yet.
    pub const ZERO: Self = Self(0);

    /// Creates an incarnation number.
    pub const fn new(v: u32) -> Self {
        Self(v)
    }

    /// The raw incarnation number.
    pub const fn value(self) -> u32 {
        self.0
    }

    /// The incarnation a rollback opens.
    pub const fn next(self) -> Self {
        Self(self.0 + 1)
    }
}

impl fmt::Display for Incarnation {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.0)
    }
}

impl From<u32> for Incarnation {
    fn from(v: u32) -> Self {
        Self(v)
    }
}

/// An incarnation-qualified interval — the unit of causal knowledge stored
/// in dependency-vector entries and last-interval vectors.
///
/// Ordering is lexicographic (incarnation first): knowledge of a newer
/// incarnation always supersedes knowledge of an older one, regardless of
/// the raw interval indices. This is sound because incarnation `ν + 1`
/// starts at the interval following the restored checkpoint, which bounds
/// the surviving prefix of incarnation `ν` from above.
///
/// # Packed representation
///
/// The pair is packed into one `u64` word — incarnation in the top
/// [`INCARNATION_BITS`](Self::INCARNATION_BITS) bits, interval in the low
/// [`INTERVAL_BITS`](Self::INTERVAL_BITS):
///
/// ```text
/// bit 63            48 47                                  0
///     ┌───────────────┬────────────────────────────────────┐
///     │ incarnation ν │            interval γ              │
///     └───────────────┴────────────────────────────────────┘
/// ```
///
/// Because the incarnation occupies the more significant bits, plain
/// unsigned `u64` ordering of the packed word **is** the lexicographic
/// `(incarnation, interval)` order: for entries with equal incarnations the
/// high 16 bits agree and the comparison falls through to the interval; for
/// different incarnations the high bits differ and decide the comparison
/// before the interval bits are ever reached. Every comparison, `max`, and
/// merge over entries is therefore a single branch-free word operation —
/// the property the dependency-vector merge kernels exploit.
///
/// Construction at or beyond the field widths (interval ≥ 2⁴⁸, incarnation
/// ≥ 2¹⁶) is rejected — [`try_new`](Self::try_new) returns a typed error
/// and [`new`](Self::new) panics — never silently truncated.
///
/// ```
/// use rdt_base::{DvEntry, Incarnation, IntervalIndex};
/// let dead = DvEntry::new(Incarnation::ZERO, IntervalIndex::new(9));
/// let live = DvEntry::new(Incarnation::new(1), IntervalIndex::new(3));
/// assert!(dead < live, "a newer incarnation wins even at a lower interval");
/// ```
#[derive(Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Default, Serialize, Deserialize)]
#[repr(transparent)]
pub struct DvEntry(u64);

impl DvEntry {
    /// Bits of the packed word holding the interval index (the low field).
    pub const INTERVAL_BITS: u32 = 48;

    /// Bits of the packed word holding the incarnation (the high field).
    pub const INCARNATION_BITS: u32 = 16;

    /// Largest representable interval index, `2^48 − 1`.
    pub const MAX_INTERVAL: usize = ((1u64 << Self::INTERVAL_BITS) - 1) as usize;

    /// Largest representable incarnation, `2^16 − 1`.
    pub const MAX_INCARNATION: u32 = (1u32 << Self::INCARNATION_BITS) - 1;

    /// The zero entry: no knowledge, initial incarnation.
    pub const ZERO: Self = Self(0);

    /// Creates an entry.
    ///
    /// # Panics
    ///
    /// Panics if either component exceeds its packed field
    /// ([`MAX_INCARNATION`](Self::MAX_INCARNATION),
    /// [`MAX_INTERVAL`](Self::MAX_INTERVAL)); use
    /// [`try_new`](Self::try_new) where overflow is an input condition
    /// rather than a bug.
    pub const fn new(incarnation: Incarnation, interval: IntervalIndex) -> Self {
        assert!(
            incarnation.value() <= Self::MAX_INCARNATION,
            "incarnation exceeds the packed 16-bit field"
        );
        assert!(
            interval.value() <= Self::MAX_INTERVAL,
            "interval exceeds the packed 48-bit field"
        );
        Self(((incarnation.value() as u64) << Self::INTERVAL_BITS) | interval.value() as u64)
    }

    /// Fallible [`new`](Self::new): rejects components that do not fit the
    /// packed fields with a typed error instead of truncating or panicking.
    ///
    /// # Errors
    ///
    /// [`crate::Error::IncarnationOverflow`] for incarnations ≥ 2¹⁶,
    /// [`crate::Error::IntervalOverflow`] for intervals ≥ 2⁴⁸.
    pub fn try_new(incarnation: Incarnation, interval: IntervalIndex) -> crate::Result<Self> {
        if incarnation.value() > Self::MAX_INCARNATION {
            return Err(crate::Error::IncarnationOverflow {
                incarnation: incarnation.value(),
            });
        }
        if interval.value() > Self::MAX_INTERVAL {
            return Err(crate::Error::IntervalOverflow {
                interval: interval.value(),
            });
        }
        Ok(Self::new(incarnation, interval))
    }

    /// The incarnation the interval belongs to (the high 16 bits).
    pub const fn incarnation(self) -> Incarnation {
        Incarnation::new((self.0 >> Self::INTERVAL_BITS) as u32)
    }

    /// The interval index within that incarnation (the low 48 bits).
    pub const fn interval(self) -> IntervalIndex {
        IntervalIndex::new((self.0 & (Self::MAX_INTERVAL as u64)) as usize)
    }

    /// The raw packed word. Unsigned ordering of packed words is the
    /// entries' lexicographic order (see the type docs).
    pub const fn packed(self) -> u64 {
        self.0
    }

    /// Rebuilds an entry from a packed word produced by
    /// [`packed`](Self::packed). Every `u64` is a valid packed entry, so
    /// this cannot fail.
    pub const fn from_packed(word: u64) -> Self {
        Self(word)
    }

    /// The next interval of the same incarnation (checkpoint taken).
    ///
    /// # Panics
    ///
    /// Panics if the interval field is exhausted (`MAX_INTERVAL`): silently
    /// carrying into the incarnation bits would corrupt the lineage.
    pub const fn next_interval(self) -> Self {
        assert!(
            self.interval().value() < Self::MAX_INTERVAL,
            "interval exceeds the packed 48-bit field"
        );
        Self(self.0 + 1)
    }

    /// Equation 3 within the entry's incarnation: the last checkpoint known,
    /// or `None` when the interval is `0`.
    pub fn last_known_checkpoint(self) -> Option<CheckpointIndex> {
        self.interval().last_known_checkpoint()
    }
}

impl fmt::Debug for DvEntry {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        f.debug_struct("DvEntry")
            .field("incarnation", &self.incarnation().value())
            .field("interval", &self.interval().value())
            .finish()
    }
}

impl fmt::Display for DvEntry {
    /// Renders as the bare interval for the initial incarnation (the paper's
    /// crash-free notation), and as `interval@incarnation` once rollbacks
    /// have happened.
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        if self.incarnation() == Incarnation::ZERO {
            write!(f, "{}", self.interval())
        } else {
            write!(f, "{}@{}", self.interval(), self.incarnation())
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn process_display_is_one_based() {
        assert_eq!(ProcessId::new(0).to_string(), "p1");
        assert_eq!(ProcessId::new(9).to_string(), "p10");
    }

    #[test]
    fn process_all_enumerates_in_order() {
        let ids: Vec<_> = ProcessId::all(4).map(|p| p.index()).collect();
        assert_eq!(ids, vec![0, 1, 2, 3]);
    }

    #[test]
    fn checkpoint_next_prev_roundtrip() {
        let c = CheckpointIndex::new(5);
        assert_eq!(c.next().prev(), Some(c));
        assert_eq!(CheckpointIndex::ZERO.prev(), None);
    }

    #[test]
    fn interval_after_checkpoint_matches_paper_convention() {
        // After storing checkpoint γ the process runs in interval γ+1.
        assert_eq!(
            CheckpointIndex::new(3).interval_after(),
            IntervalIndex::new(4)
        );
    }

    #[test]
    fn last_known_checkpoint_is_dv_minus_one() {
        // Equation 3: last_k_i(j) = DV(v_i)[j] − 1.
        assert_eq!(IntervalIndex::ZERO.last_known_checkpoint(), None);
        assert_eq!(
            IntervalIndex::new(4).last_known_checkpoint(),
            Some(CheckpointIndex::new(3))
        );
    }

    #[test]
    fn checkpoint_id_display() {
        let c = CheckpointId::new(ProcessId::new(2), CheckpointIndex::new(7));
        assert_eq!(c.to_string(), "c_p3^7");
    }

    #[test]
    fn checkpoint_id_ordering_is_process_major() {
        let a = CheckpointId::new(ProcessId::new(0), CheckpointIndex::new(9));
        let b = CheckpointId::new(ProcessId::new(1), CheckpointIndex::new(0));
        assert!(a < b);
    }

    #[test]
    fn initial_checkpoint_has_index_zero() {
        let c = CheckpointId::initial(ProcessId::new(1));
        assert_eq!(c.index, CheckpointIndex::ZERO);
    }

    #[test]
    fn dv_entries_order_lexicographically_incarnation_first() {
        let e = |v: u32, g: usize| DvEntry::new(Incarnation::new(v), IntervalIndex::new(g));
        assert!(e(0, 9) < e(1, 0));
        assert!(e(1, 2) < e(1, 3));
        assert!(e(2, 0) > e(1, 99));
        assert_eq!(e(1, 2).next_interval(), e(1, 3));
    }

    #[test]
    fn dv_entry_display_hides_initial_incarnation() {
        let e = |v: u32, g: usize| DvEntry::new(Incarnation::new(v), IntervalIndex::new(g));
        assert_eq!(e(0, 4).to_string(), "4");
        assert_eq!(e(2, 4).to_string(), "4@2");
    }

    #[test]
    fn incarnation_next_and_zero() {
        assert_eq!(Incarnation::ZERO.next(), Incarnation::new(1));
        assert_eq!(Incarnation::new(3).value(), 3);
        assert_eq!(DvEntry::ZERO.last_known_checkpoint(), None);
    }

    #[test]
    fn packed_word_roundtrips_components() {
        let e = DvEntry::new(Incarnation::new(7), IntervalIndex::new(123_456));
        assert_eq!(e.incarnation(), Incarnation::new(7));
        assert_eq!(e.interval(), IntervalIndex::new(123_456));
        assert_eq!(DvEntry::from_packed(e.packed()), e);
        assert_eq!(e.packed(), (7u64 << 48) | 123_456);
    }

    #[test]
    fn packed_order_equals_lexicographic_at_field_extremes() {
        // The largest interval of incarnation ν sorts below the zero
        // interval of ν + 1: the word comparison is the lexicographic one.
        let top = DvEntry::new(Incarnation::ZERO, IntervalIndex::new(DvEntry::MAX_INTERVAL));
        let next = DvEntry::new(Incarnation::new(1), IntervalIndex::ZERO);
        assert!(top < next);
        assert!(top.packed() < next.packed());
    }

    #[test]
    fn try_new_accepts_the_exact_field_maxima() {
        let e = DvEntry::try_new(
            Incarnation::new(DvEntry::MAX_INCARNATION),
            IntervalIndex::new(DvEntry::MAX_INTERVAL),
        )
        .expect("maxima fit");
        assert_eq!(e.incarnation().value(), DvEntry::MAX_INCARNATION);
        assert_eq!(e.interval().value(), DvEntry::MAX_INTERVAL);
        assert_eq!(e.packed(), u64::MAX);
    }

    #[test]
    fn try_new_rejects_one_past_each_field() {
        assert_eq!(
            DvEntry::try_new(
                Incarnation::new(DvEntry::MAX_INCARNATION + 1),
                IntervalIndex::ZERO,
            ),
            Err(crate::Error::IncarnationOverflow {
                incarnation: DvEntry::MAX_INCARNATION + 1
            })
        );
        assert_eq!(
            DvEntry::try_new(
                Incarnation::ZERO,
                IntervalIndex::new(DvEntry::MAX_INTERVAL + 1),
            ),
            Err(crate::Error::IntervalOverflow {
                interval: DvEntry::MAX_INTERVAL + 1
            })
        );
    }

    #[test]
    #[should_panic(expected = "incarnation exceeds the packed 16-bit field")]
    fn new_panics_on_incarnation_overflow() {
        let _ = DvEntry::new(
            Incarnation::new(DvEntry::MAX_INCARNATION + 1),
            IntervalIndex::ZERO,
        );
    }

    #[test]
    #[should_panic(expected = "interval exceeds the packed 48-bit field")]
    fn new_panics_on_interval_overflow() {
        let _ = DvEntry::new(
            Incarnation::ZERO,
            IntervalIndex::new(DvEntry::MAX_INTERVAL + 1),
        );
    }

    #[test]
    #[should_panic(expected = "interval exceeds the packed 48-bit field")]
    fn next_interval_refuses_to_carry_into_the_incarnation() {
        let top = DvEntry::new(Incarnation::ZERO, IntervalIndex::new(DvEntry::MAX_INTERVAL));
        let _ = top.next_interval();
    }

    #[test]
    fn debug_output_shows_unpacked_components() {
        let e = DvEntry::new(Incarnation::new(2), IntervalIndex::new(4));
        let s = format!("{e:?}");
        assert!(s.contains("incarnation: 2"), "{s}");
        assert!(s.contains("interval: 4"), "{s}");
    }
}
