//! Application messages and their piggybacked control information.

use std::fmt;

use serde::{Deserialize, Serialize};

use crate::{ProcessId, SharedDv};

/// Globally unique message identifier: the sender plus a per-sender sequence
/// number assigned at send time.
///
/// Identifiers order messages *per sender*; they say nothing about delivery
/// order, which the system model allows to differ (messages may be lost or
/// delivered out of order, Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Eq, PartialOrd, Ord, Hash, Serialize, Deserialize)]
pub struct MessageId {
    /// The sending process.
    pub sender: ProcessId,
    /// Sequence number local to the sender, starting at `0`.
    pub seq: u64,
}

impl MessageId {
    /// Creates a message id.
    pub const fn new(sender: ProcessId, seq: u64) -> Self {
        Self { sender, seq }
    }
}

impl fmt::Display for MessageId {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "m({}#{})", self.sender, self.seq)
    }
}

/// Control information piggybacked on an application message by an RDT
/// checkpointing protocol.
///
/// Per the paper's headline property, this is *all* the coordination an
/// asynchronous garbage collector may rely on (Definition 8): the dependency
/// vector the checkpointing protocol already propagates. No extra fields are
/// added for garbage collection. Each vector entry is incarnation-qualified
/// (a [`crate::DvEntry`]), so the piggyback also carries the sender's view
/// of every process's rollback lineage — the Strom/Yemini-style metadata
/// that keeps recovery total under repeated crashes.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct MessageMeta {
    /// Unique id (sender + per-sender sequence).
    pub id: MessageId,
    /// Destination process.
    pub dst: ProcessId,
    /// The sender's dependency vector at send time (`m.DV`), shared with
    /// the sender's interned snapshot: constructing a message does not
    /// deep-copy the vector. [`SharedDv`] is the thread-local (non-atomic)
    /// flavour — messages live on the thread that minted them; a runtime
    /// that ships piggybacks across threads uses [`crate::SyncDv`] at the
    /// boundary instead.
    pub dv: SharedDv,
}

impl MessageMeta {
    /// Creates message metadata. Accepts an owned vector (wrapped) or an
    /// already-interned [`SharedDv`] (shared without copying).
    pub fn new(id: MessageId, dst: ProcessId, dv: impl Into<SharedDv>) -> Self {
        Self {
            id,
            dst,
            dv: dv.into(),
        }
    }

    /// The sending process.
    pub fn src(&self) -> ProcessId {
        self.id.sender
    }
}

impl fmt::Display for MessageMeta {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}→{} DV={}", self.id, self.dst, self.dv)
    }
}

/// Opaque application payload carried by a [`Message`].
///
/// The checkpointing and garbage-collection layers never inspect payloads;
/// workload generators use them to label traffic.
#[derive(Debug, Clone, Default, PartialEq, Eq, Hash, Serialize, Deserialize)]
pub struct Payload(pub Vec<u8>);

impl Payload {
    /// An empty payload.
    pub const fn empty() -> Self {
        Self(Vec::new())
    }

    /// Payload from a UTF-8 label (handy in examples and traces).
    pub fn label(s: &str) -> Self {
        Self(s.as_bytes().to_vec())
    }

    /// Payload size in bytes.
    pub fn len(&self) -> usize {
        self.0.len()
    }

    /// Whether the payload is empty.
    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl From<Vec<u8>> for Payload {
    fn from(bytes: Vec<u8>) -> Self {
        Self(bytes)
    }
}

/// An application message: piggybacked control information plus payload.
#[derive(Debug, Clone, PartialEq, Eq, Serialize, Deserialize)]
pub struct Message {
    /// The piggybacked control information.
    pub meta: MessageMeta,
    /// The opaque application payload.
    pub payload: Payload,
}

impl Message {
    /// Creates a message.
    pub fn new(meta: MessageMeta, payload: Payload) -> Self {
        Self { meta, payload }
    }
}

impl fmt::Display for Message {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{}", self.meta)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::DependencyVector;

    #[test]
    fn message_id_orders_per_sender() {
        let a = MessageId::new(ProcessId::new(0), 1);
        let b = MessageId::new(ProcessId::new(0), 2);
        assert!(a < b);
    }

    #[test]
    fn meta_src_comes_from_id() {
        let meta = MessageMeta::new(
            MessageId::new(ProcessId::new(2), 0),
            ProcessId::new(1),
            DependencyVector::new(3),
        );
        assert_eq!(meta.src(), ProcessId::new(2));
    }

    #[test]
    fn payload_label_roundtrip() {
        let p = Payload::label("m3");
        assert_eq!(p.len(), 2);
        assert!(!p.is_empty());
        assert!(Payload::empty().is_empty());
    }

    #[test]
    fn display_is_informative() {
        let meta = MessageMeta::new(
            MessageId::new(ProcessId::new(0), 7),
            ProcessId::new(1),
            DependencyVector::from_raw(vec![1, 0]),
        );
        let s = Message::new(meta, Payload::empty()).to_string();
        assert!(s.contains("p1"), "{s}");
        assert!(s.contains("(1, 0)"), "{s}");
    }
}
