//! Equivalence of the bitset-based merge reporting against a reference
//! implementation: `DependencyVector::merge_from` must report exactly the
//! same updated set, and produce the same final vector, as the obvious
//! `Vec<ProcessId>`-collecting merge it replaced — across system sizes
//! that exercise the inline representation (n ≤ 16), the heap spill, and
//! the `UpdateSet` high-bit spill (n > 128).

use proptest::prelude::*;

use rdt_base::{DependencyVector, ProcessId, UpdateSet};

/// The pre-optimization reference: componentwise max, updates collected
/// into a vector in ascending process order.
fn reference_merge(mine: &mut [usize], theirs: &[usize]) -> Vec<ProcessId> {
    assert_eq!(mine.len(), theirs.len());
    let mut updated = Vec::new();
    for (i, (m, t)) in mine.iter_mut().zip(theirs).enumerate() {
        if *t > *m {
            *m = *t;
            updated.push(ProcessId::new(i));
        }
    }
    updated
}

fn vec_pair(n: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::vec(0usize..64, n),
        prop::collection::vec(0usize..64, n),
    )
}

fn check_equivalence(a: Vec<usize>, b: Vec<usize>) {
    let mut reference = a.clone();
    let expected_updates = reference_merge(&mut reference, &b);

    let mut dv = DependencyVector::from_raw(a);
    let other = DependencyVector::from_raw(b);
    let updated = dv.merge_from(&other);

    assert_eq!(dv.to_raw(), reference, "merged vectors diverged");
    assert_eq!(updated.to_vec(), expected_updates, "update sets diverged");
    assert_eq!(updated.len(), expected_updates.len());
    assert_eq!(updated.is_empty(), expected_updates.is_empty());
    for p in &expected_updates {
        assert!(updated.contains(*p));
    }
    // The reusable-buffer variant reports identically.
    let mut dv2 = DependencyVector::from_raw(reference.clone());
    let mut scratch: UpdateSet = [ProcessId::new(0)].into_iter().collect();
    dv2.merge_from_into(&other, &mut scratch);
    assert!(scratch.is_empty(), "re-merge must clear the scratch set");
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inline representation (n ≤ 16).
    #[test]
    fn bitset_merge_matches_reference_inline(pair in vec_pair(7)) {
        check_equivalence(pair.0, pair.1);
    }

    /// Heap representation, single bitset word (16 < n ≤ 128).
    #[test]
    fn bitset_merge_matches_reference_heap(pair in vec_pair(40)) {
        check_equivalence(pair.0, pair.1);
    }

    /// Spilled bitset (n > 128).
    #[test]
    fn bitset_merge_matches_reference_spill(pair in vec_pair(150)) {
        check_equivalence(pair.0, pair.1);
    }
}
