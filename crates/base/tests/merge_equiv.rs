//! Equivalence of the bitset-based merge reporting against a reference
//! implementation: `DependencyVector::merge_from` must report exactly the
//! same updated set, and produce the same final vector, as the obvious
//! `Vec<ProcessId>`-collecting merge it replaced — across system sizes
//! that exercise the inline representation (n ≤ 16), the heap spill, and
//! the `UpdateSet` high-bit spill (n > 128).

use proptest::prelude::*;

use rdt_base::{DependencyVector, ProcessId, UpdateSet};

/// The pre-optimization reference: componentwise max, updates collected
/// into a vector in ascending process order.
fn reference_merge(mine: &mut [usize], theirs: &[usize]) -> Vec<ProcessId> {
    assert_eq!(mine.len(), theirs.len());
    let mut updated = Vec::new();
    for (i, (m, t)) in mine.iter_mut().zip(theirs).enumerate() {
        if *t > *m {
            *m = *t;
            updated.push(ProcessId::new(i));
        }
    }
    updated
}

fn vec_pair(n: usize) -> impl Strategy<Value = (Vec<usize>, Vec<usize>)> {
    (
        prop::collection::vec(0usize..64, n),
        prop::collection::vec(0usize..64, n),
    )
}

fn check_equivalence(a: Vec<usize>, b: Vec<usize>) {
    let mut reference = a.clone();
    let expected_updates = reference_merge(&mut reference, &b);

    let mut dv = DependencyVector::from_raw(a);
    let other = DependencyVector::from_raw(b);
    let updated = dv.merge_from(&other);

    assert_eq!(dv.to_raw(), reference, "merged vectors diverged");
    assert_eq!(updated.to_vec(), expected_updates, "update sets diverged");
    assert_eq!(updated.len(), expected_updates.len());
    assert_eq!(updated.is_empty(), expected_updates.is_empty());
    for p in &expected_updates {
        assert!(updated.contains(*p));
    }
    // The reusable-buffer variant reports identically.
    let mut dv2 = DependencyVector::from_raw(reference.clone());
    let mut scratch: UpdateSet = [ProcessId::new(0)].into_iter().collect();
    dv2.merge_from_into(&other, &mut scratch);
    assert!(scratch.is_empty(), "re-merge must clear the scratch set");
}

/// Unpacked reference model for the packed-word kernels: entries as plain
/// `(u32 incarnation, usize interval)` pairs compared lexicographically —
/// exactly the pre-packing `DvEntry` struct. The packed `u64` kernels
/// (`merge_from_into`, `dominated_by`, `would_learn_from`, `join`) must
/// agree with this model entry for entry.
mod unpacked {
    pub type Entry = (u32, usize);

    pub fn merge(mine: &mut [Entry], theirs: &[Entry]) -> Vec<usize> {
        let mut updated = Vec::new();
        for (i, (m, t)) in mine.iter_mut().zip(theirs).enumerate() {
            // Lexicographic: tuple Ord.
            if *t > *m {
                *m = *t;
                updated.push(i);
            }
        }
        updated
    }

    pub fn dominated_by(a: &[Entry], b: &[Entry]) -> bool {
        a.iter().zip(b).all(|(x, y)| x <= y)
    }

    pub fn would_learn(mine: &[Entry], theirs: &[Entry]) -> bool {
        mine.iter().zip(theirs).any(|(m, t)| t > m)
    }

    pub fn join(a: &[Entry], b: &[Entry]) -> Vec<Entry> {
        a.iter().zip(b).map(|(x, y)| *x.max(y)).collect()
    }
}

/// Cross-incarnation entry pairs: small incarnations and intervals so the
/// two components actually interact (newer incarnation at lower interval).
type LineagePair = (Vec<(u32, usize)>, Vec<(u32, usize)>);

fn lineage_pair(n: usize) -> impl Strategy<Value = LineagePair> {
    (
        prop::collection::vec((0u32..4, 0usize..16), n),
        prop::collection::vec((0u32..4, 0usize..16), n),
    )
}

fn check_packed_against_unpacked(a: Vec<(u32, usize)>, b: Vec<(u32, usize)>) {
    let mut reference = a.clone();
    let expected_updates = unpacked::merge(&mut reference, &b);

    let mut dv = DependencyVector::from_lineages(a.clone());
    let other = DependencyVector::from_lineages(b.clone());

    // Pre-merge predicates against the model.
    assert_eq!(
        dv.would_learn_from(&other),
        unpacked::would_learn(&a, &b),
        "would_learn_from diverged"
    );
    assert_eq!(
        dv.dominated_by(&other),
        unpacked::dominated_by(&a, &b),
        "dominated_by diverged"
    );
    assert_eq!(
        other.dominated_by(&dv),
        unpacked::dominated_by(&b, &a),
        "dominated_by diverged (flipped)"
    );
    assert_eq!(
        dv.join(&other).to_raw_lineages(),
        unpacked::join(&a, &b),
        "join diverged"
    );

    // The merge itself: final vector and update report.
    let updated = dv.merge_from(&other);
    assert_eq!(dv.to_raw_lineages(), reference, "merged vectors diverged");
    assert_eq!(
        updated.to_vec(),
        expected_updates
            .iter()
            .map(|&i| ProcessId::new(i))
            .collect::<Vec<_>>(),
        "update sets diverged"
    );

    // Post-merge algebra: the merge result dominates both operands.
    assert!(
        other.dominated_by(&dv),
        "merge result must dominate the merged-in operand"
    );
    assert!(DependencyVector::from_lineages(a).dominated_by(&dv));
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(96))]

    /// Inline representation (n ≤ 16).
    #[test]
    fn bitset_merge_matches_reference_inline(pair in vec_pair(7)) {
        check_equivalence(pair.0, pair.1);
    }

    /// Heap representation, single bitset word (16 < n ≤ 128).
    #[test]
    fn bitset_merge_matches_reference_heap(pair in vec_pair(40)) {
        check_equivalence(pair.0, pair.1);
    }

    /// Spilled bitset (n > 128).
    #[test]
    fn bitset_merge_matches_reference_spill(pair in vec_pair(150)) {
        check_equivalence(pair.0, pair.1);
    }

    /// Packed kernels vs the unpacked model, inline representation — with
    /// cross-incarnation entries, where lexicographic ≠ interval order.
    #[test]
    fn packed_kernels_match_unpacked_model_inline(pair in lineage_pair(5)) {
        check_packed_against_unpacked(pair.0, pair.1);
    }

    /// Packed kernels vs the unpacked model at the inline/heap boundary.
    #[test]
    fn packed_kernels_match_unpacked_model_at_cap(pair in lineage_pair(16)) {
        check_packed_against_unpacked(pair.0, pair.1);
    }

    /// Packed kernels vs the unpacked model, heap representation, spanning
    /// a full update-report word boundary (n > 64).
    #[test]
    fn packed_kernels_match_unpacked_model_heap(pair in lineage_pair(70)) {
        check_packed_against_unpacked(pair.0, pair.1);
    }

    /// Packed kernels vs the unpacked model with a spilled update report
    /// (n > 128).
    #[test]
    fn packed_kernels_match_unpacked_model_spill(pair in lineage_pair(140)) {
        check_packed_against_unpacked(pair.0, pair.1);
    }
}
