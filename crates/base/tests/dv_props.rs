//! Property tests for dependency-vector algebra.

use proptest::prelude::*;
use rdt_base::{DependencyVector, ProcessId};

fn raw_vec(n: usize) -> impl Strategy<Value = Vec<usize>> {
    prop::collection::vec(0usize..32, n)
}

proptest! {
    /// Merging is idempotent: merging the same vector twice changes nothing
    /// the second time.
    #[test]
    fn merge_is_idempotent(a in raw_vec(5), b in raw_vec(5)) {
        let mut x = DependencyVector::from_raw(a);
        let b = DependencyVector::from_raw(b);
        x.merge_from(&b);
        let snapshot = x.clone();
        let updated = x.merge_from(&b);
        prop_assert!(updated.is_empty());
        prop_assert_eq!(x, snapshot);
    }

    /// `join` is the least upper bound: both operands are ≤ the join, and the
    /// join is ≤ any other common upper bound.
    #[test]
    fn join_is_least_upper_bound(a in raw_vec(4), b in raw_vec(4)) {
        let a = DependencyVector::from_raw(a);
        let b = DependencyVector::from_raw(b);
        let j = a.join(&b);
        prop_assert!(a.dominated_by(&j));
        prop_assert!(b.dominated_by(&j));
        // Any common upper bound dominates the join.
        let ub = DependencyVector::from_raw(
            a.to_raw().iter().zip(b.to_raw()).map(|(x, y)| (*x).max(y) + 1).collect(),
        );
        prop_assert!(j.dominated_by(&ub));
    }

    /// `merge_from` makes the receiver equal to the join.
    #[test]
    fn merge_equals_join(a in raw_vec(6), b in raw_vec(6)) {
        let mut x = DependencyVector::from_raw(a.clone());
        let a = DependencyVector::from_raw(a);
        let b = DependencyVector::from_raw(b);
        x.merge_from(&b);
        prop_assert_eq!(x, a.join(&b));
    }

    /// `would_learn_from` is true exactly when a merge would update entries.
    #[test]
    fn would_learn_predicts_merge(a in raw_vec(5), b in raw_vec(5)) {
        let a = DependencyVector::from_raw(a);
        let b = DependencyVector::from_raw(b);
        let mut x = a.clone();
        let updated = x.merge_from(&b);
        prop_assert_eq!(a.would_learn_from(&b), !updated.is_empty());
    }

    /// Equation 2 and Equation 3 agree: the last known checkpoint of `p_j` is
    /// dominated, and the next one is not.
    #[test]
    fn eq2_eq3_agree(raw in raw_vec(5), j in 0usize..5) {
        let dv = DependencyVector::from_raw(raw);
        let j = ProcessId::new(j);
        match dv.last_known(j) {
            Some(last) => {
                prop_assert!(dv.dominates_checkpoint(j, last));
                prop_assert!(!dv.dominates_checkpoint(j, last.next()));
            }
            None => {
                // No checkpoint of p_j precedes this state.
                prop_assert!(!dv.dominates_checkpoint(j, rdt_base::CheckpointIndex::ZERO));
            }
        }
    }

    /// `le` is a partial order: reflexive and antisymmetric on these samples.
    #[test]
    fn le_partial_order(a in raw_vec(4), b in raw_vec(4)) {
        let a = DependencyVector::from_raw(a);
        let b = DependencyVector::from_raw(b);
        prop_assert!(a.dominated_by(&a));
        if a.dominated_by(&b) && b.dominated_by(&a) {
            prop_assert_eq!(a, b);
        }
    }
}
