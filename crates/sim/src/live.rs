//! The shared per-process protocol driver for *live* runtimes (threads,
//! real OS processes) — every delivery path that is not the
//! discrete-event engine funnels through here.
//!
//! A [`LiveNode`] wraps one middleware and speaks the crate-neutral
//! [`WireFrame`] codec: sends produce an encoded frame ready for any
//! [`Transport`](rdt_env::Transport) (or an in-process channel), receives
//! consume raw bytes and reject malformed or alien frames instead of
//! panicking. The threaded runtime and the `rdt serve` workers both drive
//! this type, so the protocol-side handling of a message exists exactly
//! once.
//!
//! Every frame movement also emits a causal span event (`frame_send` /
//! `frame_recv` / `frame_apply`, target `rdt_sim::live`): sends are
//! stamped with the node's causal parent — the identity of the last frame
//! it applied — which travels on the wire in the [`WireFrame`] trace
//! context, and `rdt causal` later stitches the per-process dumps into one
//! happened-before order. The events flow into the process flight recorder
//! unconditionally (when one is installed) and through the normal sink at
//! `debug`; when neither is active the fields are never materialized, so
//! the hot path stays cheap and the deterministic engine is untouched.

use rdt_base::{CheckpointIndex, DependencyVector, ProcessId, Result, SharedDv};
use rdt_core::GcKind;
use rdt_env::{Storage, Volatile, WireFrame};
use rdt_obs::{Event, Level, Value};
use rdt_protocols::{Middleware, Piggyback, ProtocolKind, ReceiveReport};

/// Target for causal span events.
const OBS_TARGET: &str = "rdt_sim::live";

/// Whether causal span events would go anywhere right now.
#[inline]
fn obs_active() -> bool {
    rdt_obs::flight::enabled() || rdt_obs::sink::enabled(Level::Debug)
}

/// Hands one pre-built event to the flight recorder (unfiltered) and the
/// process sink (level-filtered).
fn obs_record(event: &Event) {
    rdt_obs::flight::record(event);
    rdt_obs::sink::emit(event);
}

/// What a delivered frame did to the local middleware.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct DeliverOutcome {
    /// The frame's originating process.
    pub sender: ProcessId,
    /// The sender-local message sequence number.
    pub seq: u64,
    /// The forced checkpoint the receive stored, if the protocol demanded
    /// one.
    pub forced: Option<CheckpointIndex>,
    /// Checkpoints garbage-collected during this receive.
    pub eliminated: usize,
}

/// One process of a live runtime: a middleware plus the wire codec and a
/// reusable receive report (steady-state receives allocate nothing).
#[derive(Debug)]
pub struct LiveNode<S: Storage = Volatile> {
    mw: Middleware<S>,
    scratch: ReceiveReport,
    /// Sender-local sequence of the next outgoing message — the wire
    /// identity peers see; volatile, like the middleware's own counter.
    next_seq: u64,
    /// Causal parent for the next send: the `(origin, seq)` of the last
    /// frame this node applied. Volatile — after a crash the first send
    /// is a causal root again, which is exactly right post-rollback.
    last_applied: Option<(u32, u64)>,
    /// Frame encode/decode timings (`live/encode`, `live/decode`);
    /// disabled by default — see [`set_profiling`](Self::set_profiling).
    prof: rdt_obs::Profiler,
}

impl LiveNode {
    /// A fresh node with volatile storage (the threaded runtime's flavour).
    pub fn new(owner: ProcessId, n: usize, protocol: ProtocolKind, gc: GcKind) -> Self {
        Self::over(Middleware::new(owner, n, protocol, gc))
    }
}

impl<S: Storage> LiveNode<S> {
    /// Wraps an existing middleware (e.g. one rebuilt from durable
    /// storage after a crash).
    pub fn over(mw: Middleware<S>) -> Self {
        Self {
            mw,
            scratch: ReceiveReport::default(),
            next_seq: 0,
            last_applied: None,
            prof: rdt_obs::Profiler::disabled(),
        }
    }

    /// Enables (or disables) frame-path profiling: [`send_frame`]
    /// (`live/encode`) and [`deliver_frame`](Self::deliver_frame)
    /// (`live/decode`) record per-call latencies. Replaces any
    /// previously accumulated timings.
    ///
    /// [`send_frame`]: Self::send_frame
    pub fn set_profiling(&mut self, on: bool) {
        self.prof = rdt_obs::Profiler::new(on);
    }

    /// The accumulated frame-path timings (`Some` iff profiling is on).
    pub fn profile(&self) -> Option<&rdt_obs::ProfileReport> {
        self.prof.report()
    }

    /// Removes and returns the accumulated timings, leaving profiling on.
    pub fn take_profile(&mut self) -> Option<rdt_obs::ProfileReport> {
        let on = self.prof.enabled();
        std::mem::replace(&mut self.prof, rdt_obs::Profiler::new(on)).into_report()
    }

    /// The wrapped middleware.
    pub fn middleware(&self) -> &Middleware<S> {
        &self.mw
    }

    /// The wrapped middleware, mutably (rollback, sink access).
    pub fn middleware_mut(&mut self) -> &mut Middleware<S> {
        &mut self.mw
    }

    /// Unwraps the middleware.
    pub fn into_middleware(self) -> Middleware<S> {
        self.mw
    }

    /// Takes a basic checkpoint; returns the stored index.
    ///
    /// # Errors
    ///
    /// As [`Middleware::basic_checkpoint`].
    pub fn checkpoint(&mut self) -> Result<CheckpointIndex> {
        Ok(self.mw.basic_checkpoint()?.stored)
    }

    /// Performs a send's protocol duties and encodes the piggyback as a
    /// wire frame for the caller to transmit. Returns the frame and the
    /// post-send forced checkpoint (CAS/CASBR), if any.
    ///
    /// # Panics
    ///
    /// Panics while crashed, like [`Middleware::send`].
    pub fn send_frame(&mut self, to: ProcessId) -> (WireFrame, Option<CheckpointIndex>) {
        let t = self.prof.start();
        let seq = self.next_seq;
        self.next_seq += 1;
        let (pb, forced) = self.mw.send_sync();
        let frame = WireFrame {
            sender: self.mw.owner(),
            seq,
            index: pb.index,
            parent: self.last_applied,
            lineages: pb.dv.to_raw_lineages(),
        };
        self.prof.stop("live/encode", t);
        if obs_active() {
            let owner = self.mw.owner();
            let own = self.mw.dv().lineage(owner);
            let mut fields = vec![
                ("process", Value::U64(owner.index() as u64)),
                ("to", Value::U64(to.index() as u64)),
                ("seq", Value::U64(seq)),
                ("inc", Value::U64(u64::from(own.incarnation().value()))),
                ("interval", Value::U64(own.interval().value() as u64)),
            ];
            if let Some((po, ps)) = frame.parent {
                fields.push(("parent_process", Value::U64(u64::from(po))));
                fields.push(("parent_seq", Value::U64(ps)));
            }
            obs_record(&Event {
                level: Level::Debug,
                target: OBS_TARGET,
                name: "frame_send",
                message: String::new(),
                fields,
            });
        }
        (frame, forced.map(|report| report.stored))
    }

    /// Decodes and delivers one received frame. Returns `Ok(None)` for
    /// frames that fail validation — torn datagrams, wrong magic, vectors
    /// of a different system size, overflowing lineages — which a lossy
    /// transport treats as channel noise, not an error.
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::ProcessCrashed`] while crashed.
    pub fn deliver_frame(&mut self, bytes: &[u8]) -> Result<Option<DeliverOutcome>> {
        let t = self.prof.start();
        let outcome = self.deliver_frame_inner(bytes);
        self.prof.stop("live/decode", t);
        outcome
    }

    fn deliver_frame_inner(&mut self, bytes: &[u8]) -> Result<Option<DeliverOutcome>> {
        let Some(frame) = WireFrame::decode(bytes) else {
            return Ok(None);
        };
        if frame.lineages.len() != self.mw.n() || frame.sender.index() >= self.mw.n() {
            return Ok(None);
        }
        let Ok(dv) = DependencyVector::try_from_lineages(&frame.lineages) else {
            return Ok(None);
        };
        let pb = Piggyback::new(SharedDv::new(dv), frame.index);
        let active = obs_active();
        if active {
            let mut fields = vec![
                ("process", Value::U64(self.mw.owner().index() as u64)),
                ("from", Value::U64(frame.sender.index() as u64)),
                ("seq", Value::U64(frame.seq)),
            ];
            if let Some((po, ps)) = frame.parent {
                fields.push(("parent_process", Value::U64(u64::from(po))));
                fields.push(("parent_seq", Value::U64(ps)));
            }
            obs_record(&Event {
                level: Level::Debug,
                target: OBS_TARGET,
                name: "frame_recv",
                message: String::new(),
                fields,
            });
        }
        self.mw.receive_piggyback_into(&pb, &mut self.scratch)?;
        self.last_applied = Some((frame.sender.index() as u32, frame.seq));
        let eliminated = self.scratch.eliminated.len();
        if active {
            // The learned entry for the sender after the merge — must
            // dominate (≥, lexicographic on incarnation then interval)
            // what the frame carried; `rdt causal` checks exactly that.
            let learned = self.mw.dv().lineage(frame.sender);
            obs_record(&Event {
                level: Level::Debug,
                target: OBS_TARGET,
                name: "frame_apply",
                message: String::new(),
                fields: vec![
                    ("process", Value::U64(self.mw.owner().index() as u64)),
                    ("from", Value::U64(frame.sender.index() as u64)),
                    ("seq", Value::U64(frame.seq)),
                    ("inc", Value::U64(u64::from(learned.incarnation().value()))),
                    ("interval", Value::U64(learned.interval().value() as u64)),
                    ("forced", Value::Bool(self.scratch.forced.is_some())),
                    ("eliminated", Value::U64(eliminated as u64)),
                ],
            });
        }
        if eliminated > 0 && (active || rdt_obs::sink::enabled(Level::Info)) {
            // Typed live-GC provenance: which checkpoints went, and which
            // peer entries still pin the survivors (the uc view).
            let mut fields = vec![
                ("process", Value::U64(self.mw.owner().index() as u64)),
                ("from", Value::U64(frame.sender.index() as u64)),
                ("eliminated", Value::U64(eliminated as u64)),
                (
                    "collected",
                    Value::Str(
                        self.scratch
                            .eliminated
                            .iter()
                            .map(|c| c.value().to_string())
                            .collect::<Vec<_>>()
                            .join(","),
                    ),
                ),
            ];
            if let Some(uc) = self.mw.uc_snapshot() {
                let pins: Vec<String> = uc
                    .iter()
                    .enumerate()
                    .filter_map(|(q, c)| c.map(|c| format!("{q}:{}", c.value())))
                    .collect();
                fields.push(("pins", Value::Str(pins.join(","))));
            }
            obs_record(&Event {
                level: Level::Info,
                target: OBS_TARGET,
                name: "gc_collect",
                message: String::new(),
                fields,
            });
        }
        Ok(Some(DeliverOutcome {
            sender: frame.sender,
            seq: frame.seq,
            forced: self.scratch.forced,
            eliminated,
        }))
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn p(i: usize) -> ProcessId {
        ProcessId::new(i)
    }

    #[test]
    fn frames_round_trip_between_nodes() {
        let mut a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut b = LiveNode::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        b.checkpoint().unwrap();
        let (frame, forced) = b.send_frame(p(0));
        assert!(forced.is_none(), "FDAS never forces on send");
        assert_eq!(frame.seq, 0);
        assert_eq!(frame.parent, None, "first send is a causal root");
        let outcome = a
            .deliver_frame(&frame.encode())
            .unwrap()
            .expect("valid frame");
        assert_eq!(outcome.sender, p(1));
        // The receiver learned the sender's interval.
        assert_eq!(a.middleware().dv().entry(p(1)).value(), 2);
    }

    #[test]
    fn wire_send_matches_in_memory_send_effects() {
        // The same scenario through frames and through in-memory messages
        // must leave identical middleware state.
        let mut wire_a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut wire_b = LiveNode::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut mem_a = Middleware::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut mem_b = Middleware::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);

        // a sends, then b checkpoints and sends fresher info back: forced.
        let (f1, _) = wire_a.send_frame(p(1));
        let m1 = mem_a.send(p(1), rdt_base::Payload::empty());
        wire_b.deliver_frame(&f1.encode()).unwrap().unwrap();
        mem_b.receive(&m1).unwrap();
        wire_b.checkpoint().unwrap();
        mem_b.basic_checkpoint().unwrap();
        let (f2, _) = wire_b.send_frame(p(0));
        let m2 = mem_b.send(p(0), rdt_base::Payload::empty());
        let wire_out = wire_a.deliver_frame(&f2.encode()).unwrap().unwrap();
        let mem_out = mem_a.receive(&m2).unwrap();

        assert_eq!(wire_out.forced, mem_out.forced);
        assert_eq!(wire_a.middleware().dv(), mem_a.dv());
        assert_eq!(wire_a.middleware().store().len(), mem_a.store().len());
    }

    #[test]
    fn garbage_and_alien_frames_are_ignored() {
        let mut a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert_eq!(a.deliver_frame(b"not a frame").unwrap(), None);
        // A frame from a 3-process system does not fit a 2-process node.
        let alien = WireFrame {
            sender: p(2),
            seq: 0,
            index: 0,
            parent: None,
            lineages: vec![(0, 1), (0, 0), (0, 0)],
        };
        assert_eq!(a.deliver_frame(&alien.encode()).unwrap(), None);
    }

    #[test]
    fn causal_parent_is_the_last_applied_frame() {
        let mut a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut b = LiveNode::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let (f0, _) = b.send_frame(p(0));
        let (f1, _) = b.send_frame(p(0));
        assert_eq!(f1.parent, None, "sends without any applied frame stay roots");
        a.deliver_frame(&f0.encode()).unwrap().unwrap();
        let (fa, _) = a.send_frame(p(1));
        assert_eq!(fa.parent, Some((1, 0)), "parent is b's frame seq 0");
        a.deliver_frame(&f1.encode()).unwrap().unwrap();
        let (fa2, _) = a.send_frame(p(1));
        assert_eq!(fa2.parent, Some((1, 1)), "parent advances with each apply");
        // The parent survives the wire.
        assert_eq!(WireFrame::decode(&fa2.encode()).unwrap().parent, Some((1, 1)));
    }

    #[test]
    fn crashed_node_rejects_delivery() {
        let mut a = LiveNode::new(p(0), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let mut b = LiveNode::new(p(1), 2, ProtocolKind::Fdas, GcKind::RdtLgc);
        let (frame, _) = b.send_frame(p(0));
        a.middleware_mut().crash();
        assert!(a.deliver_frame(&frame.encode()).is_err());
    }
}
