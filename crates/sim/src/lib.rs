//! Simulators for asynchronous message-passing systems running RDT
//! checkpointing with garbage collection.
//!
//! Three execution engines share the `rdt-protocols` middleware stack,
//! all running over the `rdt-env` runtime abstraction:
//!
//! * [`SimulationBuilder`] / [`Simulation`] — a deterministic, seeded
//!   **discrete-event simulator** over `SimEnv` (virtual clock +
//!   bucket-queue transport) implementing the paper's system model
//!   (Section 2): asynchronous processes, channels with variable delay,
//!   loss and reordering, crash/recover failures with a centralized
//!   recovery manager, and optional coordinator control rounds for the
//!   coordinated baseline collectors.
//! * The **sharded parallel engine** — reached through the same builder
//!   via [`SimulationBuilder::shards`]: processes partitioned across
//!   worker shards, each draining its own bucket queue inside
//!   conservative lookahead windows derived from the channel's
//!   `min_delay`, with cross-shard deliveries exchanged at window
//!   barriers. Output is byte-identical to the sequential engine for a
//!   fixed seed, at any shard count.
//! * [`run_script`] — exact, delivery-placed execution of
//!   [`Script`](rdt_workloads::Script)s, used to reproduce the paper's
//!   worked figures (4 and 5).
//! * [`run_threaded`] — the same middleware driven by OS threads and
//!   crossbeam channels through the [`LiveNode`] wire-frame driver
//!   (shared with the `rdt serve` multi-process runtime), validating
//!   that the algorithm's guarantees do not depend on the simulator's
//!   determinism.
//!
//! ```
//! use rdt_sim::SimulationBuilder;
//! use rdt_workloads::WorkloadSpec;
//!
//! let report = SimulationBuilder::new(WorkloadSpec::uniform_random(5, 200).with_seed(42))
//!     .run()
//!     .expect("simulation runs");
//! // The paper's bound: at most n (+1 transient) retained checkpoints.
//! assert!(report.metrics.max_retained_per_process() <= 6);
//! ```
#![forbid(unsafe_code)]
#![warn(missing_docs)]

mod config;
mod engine;
mod live;
mod metrics;
mod parallel;
mod script;
mod threaded;
mod worker;

pub use config::{ChannelConfig, Partitioning, ShardConfig, SimConfig, ZeroLookaheadFallback};
pub use engine::{Simulation, SimulationBuilder, SimulationReport};
pub use live::{DeliverOutcome, LiveNode};
pub use metrics::{Metrics, ProcessMetrics};
pub use script::{run_script, ScriptRun};
pub use threaded::{run_threaded, ProcessOutcome, ThreadedReport};

// Re-exported so report consumers can name the profile types without
// depending on `rdt-obs` directly.
pub use rdt_obs::{PhaseStats, ProfileReport};
