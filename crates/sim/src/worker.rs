//! One shard worker of the parallel engine: owns a contiguous or strided
//! subset of the middlewares, drains its [`ShardEnv`] inside each
//! conservative lookahead window, and exchanges cross-shard deliveries
//! with its peers at window barriers.
//!
//! Workers never touch the run's [`Metrics`](crate::Metrics), trace or
//! occupancy buffers directly — the exact values of order-sensitive
//! aggregates (`peak_global_retained`, trace order) depend on the *global*
//! event order, which no single shard sees. Instead every observable is
//! logged under its event's global `(at, seq)` key plus an intra-event
//! sub-key; the coordinator merges all logs by key at the end and replays
//! them in sequential-engine order, reproducing the aggregates byte for
//! byte.

use std::sync::Arc;

use crossbeam::channel::{Receiver, Sender};

use rdt_base::{
    CheckpointIndex, DependencyVector, Incarnation, MessageId, Payload, ProcessId, TraceEvent,
};
use rdt_core::{ControlInfo, GcKind};
use rdt_env::ShardEnv;
use rdt_protocols::{Middleware, Piggyback, ProtocolKind, SyncPiggyback};
use rdt_recovery::{
    FaultySet, ProcessView, RecoveryError, RecoveryManager, RecoveryMode, RecoveryPlan,
};

use crate::engine::EventScratch;

/// Global ordering key of one logged observable: the owning event's
/// `(at, seq)` plus an intra-event sub-key.
pub(crate) type LogKey = (u64, u64, u64);

/// Sub-key base for the fragment process `p` contributes to a *global*
/// event (control round or recovery session): the high bit makes every
/// fragment sort after the coordinator's own entries for that event, and
/// the process index orders fragments the way the sequential engine's
/// `for k in 0..n` loops visit them.
pub(crate) fn global_sub(p: ProcessId) -> u64 {
    (1 << 63) | ((p.index() as u64) << 20)
}

/// One metric mutation, replayed by the coordinator in key order. The
/// variants mirror exactly the mutations the sequential engine performs
/// inline; `Sample` is the order-sensitive one (it refreshes
/// `peak_global_retained` from the *current* per-process retained values).
#[derive(Debug, Clone, Copy)]
pub(crate) enum MetricOp {
    Sent(ProcessId),
    Delivered(ProcessId),
    Lost(ProcessId),
    Sample {
        p: ProcessId,
        retained: usize,
        peak: usize,
    },
    ControlRound,
    Session {
        rolled_back: u64,
        degraded: u64,
    },
}

/// Keyed observables accumulated by one worker (or the coordinator).
#[derive(Debug, Default)]
pub(crate) struct EventLogs {
    pub trace: Vec<(LogKey, TraceEvent)>,
    pub occupancy: Vec<(LogKey, (u64, ProcessId, usize))>,
    pub metrics: Vec<(LogKey, MetricOp)>,
}

/// A pre-planned local event, shippable to the worker thread that owns
/// its process. Deliveries are not planned — they are created at send
/// execution (locally or through the barrier exchange), exactly like the
/// sequential engine schedules them; only their `(at, seq)` keys are.
#[derive(Debug, Clone, Copy)]
pub(crate) enum PlannedLocal {
    /// A basic checkpoint of the process.
    Checkpoint(ProcessId),
    /// A send, with every scheduling decision the sequential engine would
    /// draw from the rng resolved by the planning pass.
    Send {
        from: ProcessId,
        to: ProcessId,
        /// The channel lost the message (loss drawn at plan time).
        lost: bool,
        /// A later crash cancels the in-flight delivery; the send itself
        /// still executes (and is traced), but nothing is scheduled — the
        /// coordinator emits the cancellation's `Drop` at the crash.
        cancelled: bool,
        /// Pre-assigned global key of the delivery (meaningful iff
        /// `!lost && !cancelled`).
        delivery: (u64, u64),
    },
}

/// A live event in a worker's queue.
enum LocalEvent {
    Checkpoint(ProcessId),
    Send {
        from: ProcessId,
        to: ProcessId,
        lost: bool,
        cancelled: bool,
        delivery: (u64, u64),
    },
    /// Same-shard delivery: the `Rc`-shared piggyback, like the
    /// sequential engine's queue.
    DeliverLocal {
        to: ProcessId,
        id: MessageId,
        pb: Piggyback,
    },
    /// Cross-shard delivery received through a barrier exchange: the
    /// `Arc`-backed flavour.
    DeliverRemote {
        to: ProcessId,
        id: MessageId,
        pb: SyncPiggyback,
    },
}

/// One cross-shard message in a barrier exchange batch.
pub(crate) type RemoteMsg = (u64, u64, ProcessId, MessageId, SyncPiggyback);

/// Coordinator-to-worker commands, processed strictly in order.
pub(crate) enum Cmd {
    /// Process every owned event with key strictly below `upto`, then
    /// exchange outboxes with every peer shard.
    Advance { upto: (u64, u64) },
    /// Reply with `(p, last_stable, incarnation)` for every owned
    /// process (control rounds of `LastIntervals`-consuming collectors).
    GatherLasts,
    /// Reply with a full [`ProcessView`] per owned process (recovery
    /// planning; `SimpleCoordinated` control rounds).
    GatherViews,
    /// Deliver a control round to every owned process.
    Control {
        at: u64,
        seq: u64,
        info: Option<Arc<ControlInfo>>,
    },
    /// Crash the owned members of `faulty`, then reply with views of
    /// every owned process.
    CrashGather { faulty: Arc<FaultySet> },
    /// Apply a planned recovery session to every owned process.
    ApplyRecovery {
        at: u64,
        seq: u64,
        plan: Arc<RecoveryPlan>,
    },
    /// Reply with final states and the accumulated logs, then exit.
    Finish,
}

/// Worker-to-coordinator replies.
pub(crate) enum Reply {
    Lasts(Vec<(ProcessId, CheckpointIndex, Incarnation)>),
    Views(Vec<ProcessView>),
    Applied(AppliedBatch),
    Done(Box<FinishData>),
}

/// Per-owned-process outcomes of an applied recovery session, or the
/// first error the worker hit.
pub(crate) type AppliedBatch =
    Result<Vec<(ProcessId, Option<CheckpointIndex>, Vec<CheckpointIndex>)>, RecoveryError>;

/// Everything a worker reports at the end of the run.
pub(crate) struct FinishData {
    pub finals: Vec<FinalProcess>,
    pub logs: EventLogs,
    /// This shard's phase timings (`Some` iff profiling was on); the
    /// coordinator merges them under `…/<shard>` keys.
    pub profile: Option<rdt_obs::ProfileReport>,
}

/// Final state of one process, mirroring what
/// `Simulation::into_report` reads off a middleware.
pub(crate) struct FinalProcess {
    pub p: ProcessId,
    pub dv: DependencyVector,
    pub last_stable: CheckpointIndex,
    pub incarnation: Incarnation,
    pub retained_indices: Vec<usize>,
    pub retained: usize,
    pub peak: usize,
    pub total_stored: usize,
    pub total_collected: usize,
    pub basic: u64,
    pub forced: u64,
}

/// Construction parameters for one worker (everything `Send`; the
/// `!Send` middlewares are minted on the worker's own thread).
pub(crate) struct WorkerSetup {
    pub shard: usize,
    pub shards: usize,
    pub n: usize,
    pub owned: Vec<ProcessId>,
    pub shard_of: Arc<Vec<u32>>,
    pub events: Vec<(u64, u64, PlannedLocal)>,
    pub protocol: ProtocolKind,
    pub gc: GcKind,
    pub state_size: usize,
    pub record_trace: bool,
    pub record_occupancy: bool,
    pub profile: bool,
    pub recovery_mode: RecoveryMode,
    pub cmd_rx: Receiver<Cmd>,
    pub reply_tx: Sender<Reply>,
    /// Outbound exchange channels, indexed by destination shard (the own
    /// slot is never used).
    pub out_txs: Vec<Sender<Vec<RemoteMsg>>>,
    /// Inbound exchange channels, indexed by source shard.
    pub in_rxs: Vec<Receiver<Vec<RemoteMsg>>>,
}

/// Runs one shard worker to completion. Exits when the coordinator drops
/// the command channel (error paths included), so a failed run never
/// leaves a worker blocked.
///
/// When profiling, every interval between entry and the `Finish` reply is
/// attributed to a named phase (`shard/setup`, `shard/cmd_wait`,
/// `shard/drain`, `shard/exchange`, `shard/barrier_wait`, `shard/global`,
/// `shard/finish`), and `shard/wall` records the whole span — so the
/// per-shard phases sum to the shard's measured wall-clock (asserted to
/// ±5% by `tests/obs_equiv.rs`).
pub(crate) fn run_worker(setup: WorkerSetup) {
    let WorkerSetup {
        shard,
        shards,
        n,
        owned,
        shard_of,
        events,
        protocol,
        gc,
        state_size,
        record_trace,
        record_occupancy,
        profile,
        recovery_mode,
        cmd_rx,
        reply_tx,
        out_txs,
        in_rxs,
    } = setup;

    let prof = rdt_obs::Profiler::new(profile);
    let wall = prof.start();
    let t_setup = prof.start();

    // Middlewares are minted here, on the worker thread (they are !Send).
    let mut local_idx = vec![u32::MAX; n];
    let mws: Vec<Middleware> = owned
        .iter()
        .enumerate()
        .map(|(i, &p)| {
            local_idx[p.index()] = i as u32;
            let mut mw = Middleware::new(p, n, protocol, gc);
            mw.set_state_size(state_size);
            mw
        })
        .collect();

    let mut env: ShardEnv<LocalEvent> = ShardEnv::new();
    for (at, seq, ev) in events {
        let live = match ev {
            PlannedLocal::Checkpoint(p) => LocalEvent::Checkpoint(p),
            PlannedLocal::Send {
                from,
                to,
                lost,
                cancelled,
                delivery,
            } => LocalEvent::Send {
                from,
                to,
                lost,
                cancelled,
                delivery,
            },
        };
        env.insert(at, seq, live);
    }

    let mut w = Worker {
        shard,
        owned,
        local_idx,
        shard_of,
        mws,
        env,
        logs: EventLogs::default(),
        outboxes: vec![Vec::new(); shards],
        out_txs,
        in_rxs,
        record_trace,
        record_occupancy,
        manager: RecoveryManager::with_mode(recovery_mode),
        key: (0, 0),
        sub: 0,
        prof,
    };
    w.prof.stop("shard/setup", t_setup);

    let mut scratch = EventScratch::default();
    loop {
        // Time blocked on the coordinator (between windows this is the
        // complement of the peers' barrier waits).
        let t_wait = w.prof.start();
        let Ok(cmd) = cmd_rx.recv() else { break };
        w.prof.stop("shard/cmd_wait", t_wait);
        match cmd {
            Cmd::Advance { upto } => w.advance(upto, &mut scratch),
            Cmd::GatherLasts => {
                let t = w.prof.start();
                let lasts = w
                    .owned
                    .iter()
                    .map(|&p| {
                        let mw = &w.mws[w.local(p)];
                        (p, mw.last_stable(), mw.incarnation())
                    })
                    .collect();
                w.reply(&reply_tx, Reply::Lasts(lasts));
                w.prof.stop("shard/global", t);
            }
            Cmd::GatherViews => {
                let t = w.prof.start();
                let views = w.views();
                w.reply(&reply_tx, Reply::Views(views));
                w.prof.stop("shard/global", t);
            }
            Cmd::Control { at, seq, info } => {
                let t = w.prof.start();
                w.control(at, seq, info.as_deref());
                w.prof.stop("shard/global", t);
            }
            Cmd::CrashGather { faulty } => {
                let t = w.prof.start();
                for k in 0..w.owned.len() {
                    if faulty.contains(&w.owned[k]) {
                        w.mws[k].crash();
                    }
                }
                let views = w.views();
                w.reply(&reply_tx, Reply::Views(views));
                w.prof.stop("shard/global", t);
            }
            Cmd::ApplyRecovery { at, seq, plan } => {
                let t = w.prof.start();
                let applied = w.apply_recovery(at, seq, &plan);
                w.reply(&reply_tx, Reply::Applied(applied));
                w.prof.stop("shard/global", t);
            }
            Cmd::Finish => {
                let t = w.prof.start();
                let (finals, logs) = w.finish();
                w.prof.stop("shard/finish", t);
                w.prof.stop("shard/wall", wall);
                let profile = std::mem::take(&mut w.prof).into_report();
                let done = FinishData {
                    finals,
                    logs,
                    profile,
                };
                w.reply(&reply_tx, Reply::Done(Box::new(done)));
                return;
            }
        }
    }
}

struct Worker {
    shard: usize,
    owned: Vec<ProcessId>,
    local_idx: Vec<u32>,
    shard_of: Arc<Vec<u32>>,
    mws: Vec<Middleware>,
    env: ShardEnv<LocalEvent>,
    logs: EventLogs,
    outboxes: Vec<Vec<RemoteMsg>>,
    out_txs: Vec<Sender<Vec<RemoteMsg>>>,
    in_rxs: Vec<Receiver<Vec<RemoteMsg>>>,
    record_trace: bool,
    record_occupancy: bool,
    manager: RecoveryManager,
    /// `(at, seq)` of the event currently being handled.
    key: (u64, u64),
    /// Next intra-event sub-key.
    sub: u64,
    /// Phase timings for this shard (disabled unless the run profiles).
    prof: rdt_obs::Profiler,
}

impl Worker {
    fn local(&self, p: ProcessId) -> usize {
        self.local_idx[p.index()] as usize
    }

    fn reply(&self, tx: &Sender<Reply>, reply: Reply) {
        tx.send(reply).expect("coordinator gone");
    }

    fn next_key(&mut self) -> LogKey {
        let sub = self.sub;
        self.sub += 1;
        (self.key.0, self.key.1, sub)
    }

    fn trace(&mut self, ev: TraceEvent) {
        if self.record_trace {
            let key = self.next_key();
            self.logs.trace.push((key, ev));
        }
    }

    fn trace_collects(&mut self, p: ProcessId, collected: &[CheckpointIndex]) {
        if self.record_trace {
            for &index in collected {
                self.trace(TraceEvent::Collect { process: p, index });
            }
        }
    }

    fn metric(&mut self, op: MetricOp) {
        let key = self.next_key();
        self.logs.metrics.push((key, op));
    }

    /// Mirrors `Simulation::sample`: the occupancy `now` is the handled
    /// event's tick — the sequential engine's `env.now()` at this point.
    fn sample(&mut self, p: ProcessId) {
        let i = self.local(p);
        let store = self.mws[i].store();
        let (len, peak) = (store.len(), store.peak());
        self.metric(MetricOp::Sample {
            p,
            retained: len,
            peak,
        });
        if self.record_occupancy {
            let at = self.key.0;
            let key = self.next_key();
            self.logs.occupancy.push((key, (at, p, len)));
        }
    }

    /// Mirrors `Simulation::tick_process`.
    fn tick_process(&mut self, p: ProcessId) {
        let i = self.local(p);
        let collected = self.mws[i].tick(self.key.0);
        if !collected.is_empty() {
            self.trace_collects(p, &collected);
            self.sample(p);
        }
    }

    fn views(&self) -> Vec<ProcessView> {
        self.mws.iter().map(ProcessView::of).collect()
    }

    fn advance(&mut self, upto: (u64, u64), scratch: &mut EventScratch) {
        let t_drain = self.prof.start();
        while let Some((at, seq, ev)) = self.env.pop_before(upto) {
            self.key = (at, seq);
            self.sub = 0;
            self.handle(ev, scratch);
        }
        self.prof.stop("shard/drain", t_drain);
        // Window barrier: ship this window's cross-shard sends, then take
        // delivery of every peer's. Batches pair up exactly because all
        // workers execute the identical Advance sequence.
        let t_send = self.prof.start();
        for j in 0..self.out_txs.len() {
            if j != self.shard {
                let batch = std::mem::take(&mut self.outboxes[j]);
                self.out_txs[j].send(batch).expect("peer shard gone");
            }
        }
        self.prof.stop("shard/exchange", t_send);
        // The receive half blocks until every peer reaches the same
        // barrier: this is where a load-imbalanced shard waits.
        let t_wait = self.prof.start();
        for j in 0..self.in_rxs.len() {
            if j != self.shard {
                let batch = self.in_rxs[j].recv().expect("peer shard gone");
                for (at, seq, to, id, pb) in batch {
                    self.env
                        .insert(at, seq, LocalEvent::DeliverRemote { to, id, pb });
                }
            }
        }
        self.prof.stop("shard/barrier_wait", t_wait);
    }

    /// Handles one owned event — a byte-exact mirror of the sequential
    /// engine's `handle_app` / `handle_deliver` bodies, with scheduling
    /// decisions read from the plan instead of the rng.
    fn handle(&mut self, ev: LocalEvent, scratch: &mut EventScratch) {
        match ev {
            LocalEvent::Checkpoint(p) => {
                self.tick_process(p);
                let i = self.local(p);
                self.mws[i]
                    .basic_checkpoint_into(&mut scratch.checkpoint)
                    .expect("processes are alive at event boundaries");
                self.trace(TraceEvent::Checkpoint {
                    process: p,
                    forced: false,
                });
                self.trace_collects(p, &scratch.checkpoint.eliminated);
                self.sample(p);
            }
            LocalEvent::Send {
                from,
                to,
                lost,
                cancelled,
                delivery,
            } => {
                self.tick_process(from);
                let i = self.local(from);
                let delivered = !lost && !cancelled;
                let to_shard = self.shard_of[to.index()] as usize;
                // Snapshot minting has no protocol-state effect (it fills
                // a private cache), so only the flavour a delivery will
                // actually consume is minted — before the send, like the
                // sequential engine.
                let pb_local =
                    (delivered && to_shard == self.shard).then(|| self.mws[i].piggyback());
                let pb_remote =
                    (delivered && to_shard != self.shard).then(|| self.mws[i].piggyback_sync());
                let (msg, forced) = self.mws[i].send_reported(to, Payload::empty());
                let id = msg.meta.id;
                self.metric(MetricOp::Sent(from));
                self.trace(TraceEvent::Send { id, to });
                if let Some(ck) = forced {
                    self.trace(TraceEvent::Checkpoint {
                        process: from,
                        forced: true,
                    });
                    self.trace_collects(from, &ck.eliminated);
                    self.sample(from);
                }
                if lost {
                    self.metric(MetricOp::Lost(to));
                    self.trace(TraceEvent::Drop { id });
                } else if let Some(pb) = pb_local {
                    self.env.insert(
                        delivery.0,
                        delivery.1,
                        LocalEvent::DeliverLocal { to, id, pb },
                    );
                } else if let Some(pb) = pb_remote {
                    self.outboxes[to_shard].push((delivery.0, delivery.1, to, id, pb));
                }
            }
            LocalEvent::DeliverLocal { to, id, pb } => {
                self.tick_process(to);
                let i = self.local(to);
                self.mws[i]
                    .receive_piggyback_into(&pb, &mut scratch.receive)
                    .expect("processes are alive at event boundaries");
                self.finish_delivery(to, id, scratch);
            }
            LocalEvent::DeliverRemote { to, id, pb } => {
                self.tick_process(to);
                let i = self.local(to);
                self.mws[i]
                    .receive_sync_piggyback_into(&pb, &mut scratch.receive)
                    .expect("processes are alive at event boundaries");
                self.finish_delivery(to, id, scratch);
            }
        }
    }

    /// The post-receive half of `handle_deliver`, shared by both
    /// piggyback flavours.
    fn finish_delivery(&mut self, to: ProcessId, id: MessageId, scratch: &mut EventScratch) {
        self.metric(MetricOp::Delivered(to));
        if scratch.receive.forced.is_some() {
            self.trace(TraceEvent::Checkpoint {
                process: to,
                forced: true,
            });
        }
        self.trace(TraceEvent::Deliver { id });
        self.trace_collects(to, &scratch.receive.eliminated);
        self.sample(to);
    }

    /// A control round's per-process share, mirroring the sequential
    /// engine's `for k in 0..n` loop for the owned processes. Fragment
    /// sub-keys make the merged logs interleave in exactly that loop's
    /// order.
    fn control(&mut self, at: u64, seq: u64, info: Option<&ControlInfo>) {
        for k in 0..self.owned.len() {
            let p = self.owned[k];
            self.key = (at, seq);
            self.sub = global_sub(p);
            if let Some(info) = info {
                let collected = self.mws[k].control(info);
                self.trace_collects(p, &collected);
            }
            self.sample(p);
        }
    }

    /// Applies a planned recovery session to the owned processes
    /// (ascending, like the sequential engine's apply loop) and samples
    /// them, logging under the session's global-event fragments.
    fn apply_recovery(&mut self, at: u64, seq: u64, plan: &RecoveryPlan) -> AppliedBatch {
        let mut out = Vec::with_capacity(self.owned.len());
        for k in 0..self.owned.len() {
            let p = self.owned[k];
            let applied = self.manager.apply_to(&mut self.mws[k], plan)?;
            out.push((p, applied.rolled_back, applied.eliminated));
        }
        for k in 0..self.owned.len() {
            let p = self.owned[k];
            self.key = (at, seq);
            self.sub = global_sub(p);
            self.sample(p);
        }
        Ok(out)
    }

    fn finish(&mut self) -> (Vec<FinalProcess>, EventLogs) {
        let finals = self
            .mws
            .iter()
            .map(|mw| FinalProcess {
                p: mw.owner(),
                dv: mw.dv().clone(),
                last_stable: mw.last_stable(),
                incarnation: mw.incarnation(),
                retained_indices: mw.store().indices().map(|i| i.value()).collect(),
                retained: mw.store().len(),
                peak: mw.store().peak(),
                total_stored: mw.store().total_stored(),
                total_collected: mw.store().total_collected(),
                basic: mw.basic_count(),
                forced: mw.forced_count(),
            })
            .collect();
        (finals, std::mem::take(&mut self.logs))
    }
}

/// Collects one outcome per worker, panicking with a uniform message when
/// a worker died before reporting — the join boilerplate shared by the
/// threaded runtime (thread join handles) and the sharded engine's
/// coordinator (reply channels).
pub(crate) fn join_outcomes<T, E: std::fmt::Debug>(
    outcomes: impl IntoIterator<Item = std::result::Result<T, E>>,
) -> Vec<T> {
    outcomes
        .into_iter()
        .map(|r| r.expect("worker thread died before reporting its outcome"))
        .collect()
}
