//! The deterministic discrete-event simulator.

use std::cmp::Reverse;
use std::collections::BinaryHeap;

use rand::rngs::StdRng;
use rand::{Rng, SeedableRng};

use rdt_base::{Payload, ProcessId, Result, TraceEvent};
use rdt_core::{ControlInfo, GcKind, LastIntervals};
use rdt_protocols::{Middleware, Piggyback, ProtocolKind};
use rdt_recovery::{RecoveryManager, RecoveryMode, RecoverySessionReport};
use rdt_workloads::{AppOp, WorkloadSpec};

use crate::config::{ChannelConfig, SimConfig};
use crate::metrics::Metrics;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Number of processes.
    pub n: usize,
    /// Final dependency vectors, one per process.
    pub final_dvs: Vec<rdt_base::DependencyVector>,
    /// Final last-stable checkpoint index per process.
    pub final_last_stable: Vec<usize>,
    /// Aggregated measurements.
    pub metrics: Metrics,
    /// The event trace, if [`SimConfig::record_trace`] was set. Crash-free
    /// traces replay into `rdt-ccp` CCPs for oracle validation.
    pub trace: Option<Vec<TraceEvent>>,
    /// Occupancy samples `(time, process, retained)`, if
    /// [`SimConfig::record_occupancy`] was set.
    pub occupancy: Option<Vec<(u64, ProcessId, usize)>>,
    /// One report per recovery session.
    pub recovery_sessions: Vec<RecoverySessionReport>,
    /// Retained checkpoint indices per process at the end of the run.
    pub final_retained: Vec<Vec<usize>>,
}

/// Builder for a simulation run.
///
/// ```
/// use rdt_core::GcKind;
/// use rdt_protocols::ProtocolKind;
/// use rdt_sim::SimulationBuilder;
/// use rdt_workloads::WorkloadSpec;
///
/// let report = SimulationBuilder::new(WorkloadSpec::uniform_random(4, 100).with_seed(3))
///     .protocol(ProtocolKind::Fdas)
///     .garbage_collector(GcKind::RdtLgc)
///     .run()
///     .expect("simulation runs");
/// assert!(report.metrics.max_retained_per_process() <= 5);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    spec: WorkloadSpec,
    protocol: ProtocolKind,
    gc: GcKind,
    config: SimConfig,
    recovery_mode: RecoveryMode,
}

impl SimulationBuilder {
    /// Starts from a workload specification.
    pub fn new(spec: WorkloadSpec) -> Self {
        Self {
            spec,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            config: SimConfig::default(),
            recovery_mode: RecoveryMode::Coordinated,
        }
    }

    /// Selects the checkpointing protocol (default FDAS).
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the garbage collector (default RDT-LGC).
    pub fn garbage_collector(mut self, gc: GcKind) -> Self {
        self.gc = gc;
        self
    }

    /// Sets the full simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the channel behaviour.
    pub fn channel(mut self, channel: ChannelConfig) -> Self {
        self.config.channel = channel;
        self
    }

    /// Enables coordinator control rounds every `ticks` (for the
    /// coordinated baseline collectors).
    pub fn control_every(mut self, ticks: u64) -> Self {
        self.config.control_every = Some(ticks);
        self
    }

    /// Records the event trace for offline replay.
    pub fn record_trace(mut self) -> Self {
        self.config.record_trace = true;
        self
    }

    /// Records per-event occupancy samples for timeline analyses.
    pub fn record_occupancy(mut self) -> Self {
        self.config.record_occupancy = true;
        self
    }

    /// Sets the recovery mode (default coordinated).
    pub fn recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.recovery_mode = mode;
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors; none occur under the simulator's own
    /// scheduling discipline, but the signature keeps the harness honest.
    pub fn run(self) -> Result<SimulationReport> {
        let ops = self.spec.generate();
        let mut sim = Simulation::new(
            self.spec.n,
            self.protocol,
            self.gc,
            self.config,
            self.recovery_mode,
            self.spec.seed,
        );
        sim.schedule_ops(&ops);
        sim.run_to_completion()?;
        Ok(sim.into_report())
    }
}

#[derive(Debug)]
enum EventKind {
    App(AppOp),
    Deliver {
        to: ProcessId,
        id: rdt_base::MessageId,
        pb: Piggyback,
    },
    ControlRound,
}

#[derive(Debug)]
struct Queued {
    at: u64,
    seq: u64,
    kind: EventKind,
}

impl PartialEq for Queued {
    fn eq(&self, other: &Self) -> bool {
        (self.at, self.seq) == (other.at, other.seq)
    }
}
impl Eq for Queued {}
impl PartialOrd for Queued {
    fn partial_cmp(&self, other: &Self) -> Option<std::cmp::Ordering> {
        Some(self.cmp(other))
    }
}
impl Ord for Queued {
    fn cmp(&self, other: &Self) -> std::cmp::Ordering {
        (self.at, self.seq).cmp(&(other.at, other.seq))
    }
}

/// The discrete-event simulation state.
#[derive(Debug)]
pub struct Simulation {
    time: u64,
    seq: u64,
    queue: BinaryHeap<Reverse<Queued>>,
    processes: Vec<Middleware>,
    rng: StdRng,
    config: SimConfig,
    manager: RecoveryManager,
    metrics: Metrics,
    trace: Vec<TraceEvent>,
    occupancy: Vec<(u64, ProcessId, usize)>,
    recovery_sessions: Vec<RecoverySessionReport>,
    /// Time of the last scheduled application op; control rounds stop
    /// rescheduling past it so the event queue drains.
    horizon: u64,
}

impl Simulation {
    /// Creates a simulation over `n` fresh middleware instances.
    pub fn new(
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        config: SimConfig,
        recovery_mode: RecoveryMode,
        seed: u64,
    ) -> Self {
        let mut sim = Self {
            time: 0,
            seq: 0,
            queue: BinaryHeap::new(),
            processes: (0..n)
                .map(|i| {
                    let mut mw = Middleware::new(ProcessId::new(i), n, protocol, gc);
                    mw.set_state_size(config.state_size);
                    mw
                })
                .collect(),
            rng: StdRng::seed_from_u64(seed ^ 0x5eed_c0de),
            config,
            manager: RecoveryManager::with_mode(recovery_mode),
            metrics: Metrics::new(n),
            trace: Vec::new(),
            occupancy: Vec::new(),
            recovery_sessions: Vec::new(),
            horizon: 0,
        };
        if let Some(every) = config.control_every {
            sim.push_at(every, EventKind::ControlRound);
        }
        sim
    }

    /// Schedules an operation stream, one op per
    /// [`ticks_per_op`](SimConfig::ticks_per_op).
    pub fn schedule_ops(&mut self, ops: &[AppOp]) {
        for (k, op) in ops.iter().enumerate() {
            let at = k as u64 * self.config.ticks_per_op;
            self.horizon = self.horizon.max(at);
            self.push_at(at, EventKind::App(*op));
        }
    }

    fn push_at(&mut self, at: u64, kind: EventKind) {
        let seq = self.seq;
        self.seq += 1;
        self.queue.push(Reverse(Queued { at, seq, kind }));
    }

    /// Runs until the event queue drains.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors (none occur under normal scheduling).
    pub fn run_to_completion(&mut self) -> Result<()> {
        while let Some(Reverse(ev)) = self.queue.pop() {
            self.time = ev.at.max(self.time);
            match ev.kind {
                EventKind::App(op) => self.handle_app(op)?,
                EventKind::Deliver { to, id, pb } => self.handle_deliver(to, id, pb)?,
                EventKind::ControlRound => self.handle_control_round(),
            }
        }
        Ok(())
    }

    /// Advances `p`'s garbage-collector clock to the current simulation
    /// time (only the time-based baseline reacts).
    fn tick_process(&mut self, p: ProcessId) {
        let collected = self.processes[p.index()].tick(self.time);
        if !collected.is_empty() {
            self.trace_collects(p, &collected);
            self.sample(p);
        }
    }

    /// Records garbage-collection eliminations in the trace, for the
    /// offline safety audit.
    fn trace_collects(&mut self, p: ProcessId, collected: &[rdt_base::CheckpointIndex]) {
        if self.config.record_trace {
            for &index in collected {
                self.trace.push(TraceEvent::Collect { process: p, index });
            }
        }
    }

    fn handle_app(&mut self, op: AppOp) -> Result<()> {
        match op {
            AppOp::Checkpoint(p) => {
                if self.processes[p.index()].is_crashed() {
                    return Ok(());
                }
                self.tick_process(p);
                let report = self.processes[p.index()].basic_checkpoint()?;
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Checkpoint {
                        process: p,
                        forced: false,
                    });
                }
                self.trace_collects(p, &report.eliminated);
                self.sample(p);
            }
            AppOp::Send { from, to } => {
                if self.processes[from.index()].is_crashed() {
                    return Ok(());
                }
                self.tick_process(from);
                let pb = self.processes[from.index()].piggyback();
                let (msg, post_send_forced) =
                    self.processes[from.index()].send_reported(to, Payload::empty());
                self.metrics.per_process[from.index()].sent += 1;
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Send {
                        id: msg.meta.id,
                        to,
                    });
                    if post_send_forced.is_some() {
                        self.trace.push(TraceEvent::Checkpoint {
                            process: from,
                            forced: true,
                        });
                    }
                }
                if let Some(ck) = post_send_forced {
                    self.trace_collects(from, &ck.eliminated);
                    self.sample(from);
                }
                let lost = self.rng.gen_bool(self.config.channel.loss_rate);
                if lost {
                    self.metrics.per_process[to.index()].lost += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Drop { id: msg.meta.id });
                    }
                } else {
                    let delay = self
                        .rng
                        .gen_range(self.config.channel.min_delay..=self.config.channel.max_delay);
                    let at = self.time + delay;
                    self.push_at(
                        at,
                        EventKind::Deliver {
                            to,
                            id: msg.meta.id,
                            pb,
                        },
                    );
                }
            }
            AppOp::Crash(p) => {
                if self.processes[p.index()].is_crashed() {
                    return Ok(());
                }
                self.run_recovery_session(p)?;
            }
        }
        Ok(())
    }

    fn handle_deliver(
        &mut self,
        to: ProcessId,
        id: rdt_base::MessageId,
        pb: Piggyback,
    ) -> Result<()> {
        if self.processes[to.index()].is_crashed() {
            self.metrics.per_process[to.index()].lost += 1;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Drop { id });
            }
            return Ok(());
        }
        self.tick_process(to);
        let report = self.processes[to.index()].receive_piggyback(&pb)?;
        self.metrics.per_process[to.index()].delivered += 1;
        if self.config.record_trace {
            if report.forced.is_some() {
                self.trace.push(TraceEvent::Checkpoint {
                    process: to,
                    forced: true,
                });
            }
            self.trace.push(TraceEvent::Deliver { id });
        }
        self.trace_collects(to, &report.eliminated);
        self.sample(to);
        Ok(())
    }

    fn handle_control_round(&mut self) {
        self.metrics.control_rounds += 1;
        // Coordinator with reliable control messages: sees everyone's
        // stable-store state (the coordination RDT-LGC does *without*).
        let all: rdt_recovery::FaultySet = (0..self.processes.len()).map(ProcessId::new).collect();
        let line = self.manager.recovery_line(&self.processes, &all);
        let last_stable: Vec<_> = self.processes.iter().map(|m| m.last_stable()).collect();
        let li = LastIntervals::from_last_stable(&last_stable);
        let infos = [
            ControlInfo::GlobalLine(line),
            ControlInfo::LastIntervals(li),
        ];
        for k in 0..self.processes.len() {
            for info in &infos {
                let collected = self.processes[k].control(info);
                self.trace_collects(ProcessId::new(k), &collected);
            }
            self.sample(ProcessId::new(k));
        }
        if let Some(every) = self.config.control_every {
            let at = self.time + every;
            if at <= self.horizon {
                self.push_at(at, EventKind::ControlRound);
            }
        }
    }

    /// A crash of `p` (plus correlated failures): in-transit messages are
    /// lost, the recovery manager stops the world, computes the recovery
    /// line and rolls processes back.
    fn run_recovery_session(&mut self, p: ProcessId) -> Result<()> {
        let mut faulty: rdt_recovery::FaultySet = [p].into_iter().collect();
        if self.config.correlated_crash_prob > 0.0 {
            for q in ProcessId::all(self.processes.len()) {
                if q != p
                    && !self.processes[q.index()].is_crashed()
                    && self.rng.gen_bool(self.config.correlated_crash_prob)
                {
                    faulty.insert(q);
                }
            }
        }
        for &f in &faulty {
            self.processes[f.index()].crash();
            if self.config.record_trace {
                self.trace.push(TraceEvent::Crash { process: f });
            }
        }
        // All in-transit messages are lost (the recovered CCP excludes
        // them, Section 2.2).
        let drained = std::mem::take(&mut self.queue);
        for Reverse(ev) in drained {
            match ev.kind {
                EventKind::Deliver { to, id, .. } => {
                    self.metrics.per_process[to.index()].lost += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Drop { id });
                    }
                }
                other => self.queue.push(Reverse(Queued {
                    at: ev.at,
                    seq: ev.seq,
                    kind: other,
                })),
            }
        }

        let report = self.manager.recover(&mut self.processes, &faulty);
        self.metrics.recovery_sessions += 1;
        self.metrics.total_rolled_back += report.rolled_back.len() as u64;
        if self.config.record_trace {
            for (proc_, to) in &report.rolled_back {
                self.trace.push(TraceEvent::Restore {
                    process: *proc_,
                    to: *to,
                });
            }
        }
        for k in 0..self.processes.len() {
            self.sample(ProcessId::new(k));
        }
        self.recovery_sessions.push(report);
        Ok(())
    }

    fn sample(&mut self, p: ProcessId) {
        let store = self.processes[p.index()].store();
        let (len, peak) = (store.len(), store.peak());
        self.metrics.sample(p, len, peak);
        if self.config.record_occupancy {
            self.occupancy.push((self.time, p, len));
        }
    }

    /// Finalizes counters and produces the report.
    pub fn into_report(mut self) -> SimulationReport {
        self.metrics.ticks = self.time;
        for (k, mw) in self.processes.iter().enumerate() {
            let m = &mut self.metrics.per_process[k];
            m.retained = mw.store().len();
            m.peak_retained = m.peak_retained.max(mw.store().peak());
            m.total_stored = mw.store().total_stored();
            m.total_collected = mw.store().total_collected();
            m.basic = mw.basic_count();
            m.forced = mw.forced_count();
        }
        SimulationReport {
            n: self.processes.len(),
            final_dvs: self.processes.iter().map(|mw| mw.dv().clone()).collect(),
            final_last_stable: self
                .processes
                .iter()
                .map(|mw| mw.last_stable().value())
                .collect(),
            final_retained: self
                .processes
                .iter()
                .map(|mw| mw.store().indices().map(|i| i.value()).collect())
                .collect(),
            metrics: self.metrics,
            trace: if self.config.record_trace {
                Some(self.trace)
            } else {
                None
            },
            occupancy: if self.config.record_occupancy {
                Some(self.occupancy)
            } else {
                None
            },
            recovery_sessions: self.recovery_sessions,
        }
    }

    /// Read access to the processes (for integration tests).
    pub fn processes(&self) -> &[Middleware] {
        &self.processes
    }
}
