//! The deterministic discrete-event simulator.

use rdt_base::{Incarnation, Payload, ProcessId, Result, TraceEvent};
use rdt_core::{ControlInfo, GcKind, LastIntervals};
use rdt_env::{Rng as _, SimEnv};
use rdt_protocols::{CheckpointReport, Middleware, Piggyback, ProtocolKind, ReceiveReport};
use rdt_recovery::{RecoveryManager, RecoveryMode, RecoverySessionReport};
use rdt_workloads::{AppOp, WorkloadSpec};

use crate::config::{ChannelConfig, SimConfig};
use crate::metrics::Metrics;

/// Outcome of a simulation run.
#[derive(Debug, Clone)]
pub struct SimulationReport {
    /// Number of processes.
    pub n: usize,
    /// Final dependency vectors, one per process.
    pub final_dvs: Vec<rdt_base::DependencyVector>,
    /// Final last-stable checkpoint index per process.
    pub final_last_stable: Vec<usize>,
    /// Aggregated measurements.
    pub metrics: Metrics,
    /// The event trace, if [`SimConfig::record_trace`] was set. Crash-free
    /// traces replay into `rdt-ccp` CCPs for oracle validation.
    pub trace: Option<Vec<TraceEvent>>,
    /// Occupancy samples `(time, process, retained)`, if
    /// [`SimConfig::record_occupancy`] was set.
    pub occupancy: Option<Vec<(u64, ProcessId, usize)>>,
    /// One report per recovery session.
    pub recovery_sessions: Vec<RecoverySessionReport>,
    /// Retained checkpoint indices per process at the end of the run.
    pub final_retained: Vec<Vec<usize>>,
    /// Final incarnation number per process (number of rollbacks survived).
    pub final_incarnations: Vec<Incarnation>,
    /// Phase timings and counters, if [`SimConfig::profile`] (or
    /// `RDT_PROFILE`) was set. Deliberately excluded from the canonical
    /// replay-golden dump: wall-clock observations are not part of the
    /// deterministic output.
    pub profile: Option<rdt_obs::ProfileReport>,
}

/// Builder for a simulation run.
///
/// ```
/// use rdt_core::GcKind;
/// use rdt_protocols::ProtocolKind;
/// use rdt_sim::SimulationBuilder;
/// use rdt_workloads::WorkloadSpec;
///
/// let report = SimulationBuilder::new(WorkloadSpec::uniform_random(4, 100).with_seed(3))
///     .protocol(ProtocolKind::Fdas)
///     .garbage_collector(GcKind::RdtLgc)
///     .run()
///     .expect("simulation runs");
/// assert!(report.metrics.max_retained_per_process() <= 5);
/// ```
#[derive(Debug, Clone)]
pub struct SimulationBuilder {
    pub(crate) spec: WorkloadSpec,
    pub(crate) protocol: ProtocolKind,
    pub(crate) gc: GcKind,
    pub(crate) config: SimConfig,
    pub(crate) recovery_mode: RecoveryMode,
}

impl SimulationBuilder {
    /// Starts from a workload specification.
    pub fn new(spec: WorkloadSpec) -> Self {
        Self {
            spec,
            protocol: ProtocolKind::Fdas,
            gc: GcKind::RdtLgc,
            config: SimConfig::default(),
            recovery_mode: RecoveryMode::Coordinated,
        }
    }

    /// Selects the checkpointing protocol (default FDAS).
    pub fn protocol(mut self, protocol: ProtocolKind) -> Self {
        self.protocol = protocol;
        self
    }

    /// Selects the garbage collector (default RDT-LGC).
    pub fn garbage_collector(mut self, gc: GcKind) -> Self {
        self.gc = gc;
        self
    }

    /// Sets the full simulator configuration.
    pub fn config(mut self, config: SimConfig) -> Self {
        self.config = config;
        self
    }

    /// Sets the channel behaviour.
    pub fn channel(mut self, channel: ChannelConfig) -> Self {
        self.config.channel = channel;
        self
    }

    /// Enables coordinator control rounds every `ticks` (for the
    /// coordinated baseline collectors).
    pub fn control_every(mut self, ticks: u64) -> Self {
        self.config.control_every = Some(ticks);
        self
    }

    /// Records the event trace for offline replay.
    pub fn record_trace(mut self) -> Self {
        self.config.record_trace = true;
        self
    }

    /// Records per-event occupancy samples for timeline analyses.
    pub fn record_occupancy(mut self) -> Self {
        self.config.record_occupancy = true;
        self
    }

    /// Collects phase timings into the report (see [`SimConfig::profile`]).
    pub fn profile(mut self) -> Self {
        self.config.profile = true;
        self
    }

    /// Sets the recovery mode (default coordinated).
    pub fn recovery_mode(mut self, mode: RecoveryMode) -> Self {
        self.recovery_mode = mode;
        self
    }

    /// Partitions the run across `shards` worker shards (default 1 = the
    /// sequential engine). Output is byte-identical for a fixed seed
    /// regardless of the count; if the channel's `min_delay` is 0 the
    /// lookahead window is empty and the run falls back to the sequential
    /// engine loudly ([`crate::ZeroLookaheadFallback`]).
    pub fn shards(mut self, shards: usize) -> Self {
        self.config.shard.shards = shards;
        self
    }

    /// Chooses the process-to-shard assignment (default contiguous).
    pub fn partitioning(mut self, partitioning: crate::Partitioning) -> Self {
        self.config.shard.partitioning = partitioning;
        self
    }

    /// Runs the simulation to completion.
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::InvalidConfig`] if the configuration fails
    /// [`SimConfig::validate`] — caught here, before construction, instead
    /// of panicking mid-run inside the channel RNG. Otherwise propagates
    /// middleware errors; none occur under the simulator's own scheduling
    /// discipline, but the signature keeps the harness honest.
    pub fn run(self) -> Result<SimulationReport> {
        self.config.validate()?;
        let shards = self.config.shard.shards.min(self.spec.n);
        if shards > 1 {
            if self.config.channel.min_delay == 0 {
                // Zero cross-shard lookahead: every window would be a
                // single tick (lockstep barriers). Degrade loudly to the
                // sequential engine instead.
                let warning = crate::ZeroLookaheadFallback { shards };
                rdt_obs::warn("rdt_sim::engine", "zero_lookahead_fallback")
                    .message(warning)
                    .u64("shards", shards as u64)
                    .u64("min_delay", self.config.channel.min_delay)
                    .emit();
                let mut report = self.run_sequential()?;
                report.metrics.sequential_fallbacks = 1;
                return Ok(report);
            }
            return crate::parallel::run_sharded(self, shards);
        }
        self.run_sequential()
    }

    /// The single-threaded engine, shard dispatch already resolved.
    pub(crate) fn run_sequential(self) -> Result<SimulationReport> {
        let ops = self.spec.generate();
        let mut sim = Simulation::new(
            self.spec.n,
            self.protocol,
            self.gc,
            self.config,
            self.recovery_mode,
            self.spec.seed,
        );
        sim.schedule_ops(&ops);
        sim.run_to_completion()?;
        Ok(sim.into_report())
    }
}

/// Reports reused across every event of a run (cleared, never
/// reallocated). Shared with the shard workers of the parallel engine,
/// whose handlers mirror the sequential ones event for event.
#[derive(Debug, Default)]
pub(crate) struct EventScratch {
    pub(crate) receive: ReceiveReport,
    pub(crate) checkpoint: CheckpointReport,
}

#[derive(Debug)]
enum EventKind {
    App(AppOp),
    Deliver {
        to: ProcessId,
        id: rdt_base::MessageId,
        /// The sender's piggyback; the vector inside is `Rc`-shared with
        /// the sender's snapshot, so queueing a delivery copies a pointer
        /// and bumps a non-atomic counter — no entries, no atomics.
        pb: Piggyback,
    },
    ControlRound,
}

/// The discrete-event simulation state.
///
/// Scheduling, virtual time and randomness live in a
/// [`SimEnv`](rdt_env::SimEnv) — the engine is a driver over the
/// environment abstraction, and a fixed seed reproduces the exact event
/// and rng stream of the pre-abstraction engine (replay-golden).
#[derive(Debug)]
pub struct Simulation {
    env: SimEnv<EventKind>,
    processes: Vec<Middleware>,
    config: SimConfig,
    manager: RecoveryManager,
    metrics: Metrics,
    trace: Vec<TraceEvent>,
    occupancy: Vec<(u64, ProcessId, usize)>,
    recovery_sessions: Vec<RecoverySessionReport>,
    /// Time of the last scheduled application op; control rounds stop
    /// rescheduling past it so the event queue drains.
    horizon: u64,
    /// Phase timings ([`SimConfig::profile`]); a disabled profiler never
    /// reads the clock, so the default run pays one branch per event.
    profiler: rdt_obs::Profiler,
}

impl Simulation {
    /// Creates a simulation over `n` fresh middleware instances.
    ///
    /// # Panics
    ///
    /// Panics if `config` fails [`SimConfig::validate`] (e.g. a
    /// hand-built or deserialized `loss_rate` outside `[0, 1]`) — better
    /// a clear panic at construction than a cryptic one mid-run. Fallible
    /// callers should validate first or go through
    /// [`SimulationBuilder::run`], which returns a typed error instead.
    pub fn new(
        n: usize,
        protocol: ProtocolKind,
        gc: GcKind,
        config: SimConfig,
        recovery_mode: RecoveryMode,
        seed: u64,
    ) -> Self {
        if let Err(e) = config.validate() {
            panic!("invalid simulator configuration: {e}");
        }
        let mut sim = Self {
            // The seed salt predates the environment split; keeping it on
            // this side of the boundary keeps historical seeds stable.
            env: SimEnv::new(seed ^ 0x5eed_c0de),
            processes: (0..n)
                .map(|i| {
                    let mut mw = Middleware::new(ProcessId::new(i), n, protocol, gc);
                    mw.set_state_size(config.state_size);
                    mw
                })
                .collect(),
            config,
            manager: RecoveryManager::with_mode(recovery_mode),
            metrics: Metrics::new(n),
            trace: Vec::new(),
            occupancy: Vec::new(),
            recovery_sessions: Vec::new(),
            horizon: 0,
            profiler: rdt_obs::Profiler::new(config.profile || rdt_obs::profile::env_enabled()),
        };
        if let Some(every) = config.control_every {
            sim.push_at(every, EventKind::ControlRound);
        }
        sim
    }

    /// Schedules an operation stream, one op per
    /// [`ticks_per_op`](SimConfig::ticks_per_op), pre-sizing the recording
    /// buffers from the op count so the hot loop never reallocates them.
    pub fn schedule_ops(&mut self, ops: &[AppOp]) {
        if self.config.record_trace {
            // Sends dominate: send + deliver + occasional forced
            // checkpoint/collect per op. 3x covers every observed mix.
            self.trace.reserve(ops.len() * 3 + 16);
        }
        if self.config.record_occupancy {
            // One sample per handled event: app op + delivery.
            self.occupancy.reserve(ops.len() * 2 + 16);
        }
        for (k, op) in ops.iter().enumerate() {
            let at = k as u64 * self.config.ticks_per_op;
            self.horizon = self.horizon.max(at);
            self.push_at(at, EventKind::App(*op));
        }
    }

    fn push_at(&mut self, at: u64, kind: EventKind) {
        self.env.schedule(at, kind);
    }

    /// Runs until the event queue drains.
    ///
    /// # Errors
    ///
    /// Propagates middleware errors (none occur under normal scheduling).
    pub fn run_to_completion(&mut self) -> Result<()> {
        // One report of each kind serves the whole run: the middleware's
        // `_into` entry points clear and refill them, so the per-event loop
        // performs no report allocation.
        let mut scratch = EventScratch::default();
        let wall = self.profiler.start();
        while let Some((_at, _seq, kind)) = self.env.pop() {
            match kind {
                EventKind::App(op) => {
                    // A crash op runs a whole recovery session; everything
                    // else is ordinary queue drain.
                    let phase = if matches!(op, AppOp::Crash(_)) {
                        "engine/recovery"
                    } else {
                        "engine/drain"
                    };
                    let t = self.profiler.start();
                    self.handle_app(op, &mut scratch)?;
                    self.profiler.stop(phase, t);
                }
                EventKind::Deliver { to, id, pb } => {
                    let t = self.profiler.start();
                    self.handle_deliver(to, id, pb, &mut scratch)?;
                    self.profiler.stop("engine/drain", t);
                }
                EventKind::ControlRound => {
                    let t = self.profiler.start();
                    self.handle_control_round()?;
                    self.profiler.stop("engine/control_round", t);
                }
            }
        }
        self.profiler.stop("engine/run", wall);
        Ok(())
    }

    /// Advances `p`'s garbage-collector clock to the current simulation
    /// time (only the time-based baseline reacts).
    fn tick_process(&mut self, p: ProcessId) {
        let collected = self.processes[p.index()].tick(self.env.now());
        if !collected.is_empty() {
            self.trace_collects(p, &collected);
            self.sample(p);
        }
    }

    /// Records garbage-collection eliminations in the trace, for the
    /// offline safety audit.
    fn trace_collects(&mut self, p: ProcessId, collected: &[rdt_base::CheckpointIndex]) {
        if self.config.record_trace {
            for &index in collected {
                self.trace.push(TraceEvent::Collect { process: p, index });
            }
        }
    }

    fn handle_app(&mut self, op: AppOp, scratch: &mut EventScratch) -> Result<()> {
        match op {
            AppOp::Checkpoint(p) => {
                if self.processes[p.index()].is_crashed() {
                    return Ok(());
                }
                self.tick_process(p);
                self.processes[p.index()].basic_checkpoint_into(&mut scratch.checkpoint)?;
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Checkpoint {
                        process: p,
                        forced: false,
                    });
                }
                self.trace_collects(p, &scratch.checkpoint.eliminated);
                self.sample(p);
            }
            AppOp::Send { from, to } => {
                if self.processes[from.index()].is_crashed() {
                    return Ok(());
                }
                self.tick_process(from);
                let pb = self.processes[from.index()].piggyback();
                let (msg, post_send_forced) =
                    self.processes[from.index()].send_reported(to, Payload::empty());
                self.metrics.per_process[from.index()].sent += 1;
                if self.config.record_trace {
                    self.trace.push(TraceEvent::Send {
                        id: msg.meta.id,
                        to,
                    });
                    if post_send_forced.is_some() {
                        self.trace.push(TraceEvent::Checkpoint {
                            process: from,
                            forced: true,
                        });
                    }
                }
                if let Some(ck) = post_send_forced {
                    self.trace_collects(from, &ck.eliminated);
                    self.sample(from);
                }
                let lost = self.env.rng().chance(self.config.channel.loss_rate);
                if lost {
                    self.metrics.per_process[to.index()].lost += 1;
                    if self.config.record_trace {
                        self.trace.push(TraceEvent::Drop { id: msg.meta.id });
                    }
                } else {
                    let delay = self
                        .env
                        .rng()
                        .between(self.config.channel.min_delay, self.config.channel.max_delay);
                    let at = self.env.now() + delay;
                    self.push_at(
                        at,
                        EventKind::Deliver {
                            to,
                            id: msg.meta.id,
                            pb,
                        },
                    );
                }
            }
            AppOp::Crash(p) => {
                if self.processes[p.index()].is_crashed() {
                    return Ok(());
                }
                self.run_recovery_session(p)?;
            }
        }
        Ok(())
    }

    fn handle_deliver(
        &mut self,
        to: ProcessId,
        id: rdt_base::MessageId,
        pb: Piggyback,
        scratch: &mut EventScratch,
    ) -> Result<()> {
        if self.processes[to.index()].is_crashed() {
            self.metrics.per_process[to.index()].lost += 1;
            if self.config.record_trace {
                self.trace.push(TraceEvent::Drop { id });
            }
            return Ok(());
        }
        self.tick_process(to);
        self.processes[to.index()].receive_piggyback_into(&pb, &mut scratch.receive)?;
        self.metrics.per_process[to.index()].delivered += 1;
        if self.config.record_trace {
            if scratch.receive.forced.is_some() {
                self.trace.push(TraceEvent::Checkpoint {
                    process: to,
                    forced: true,
                });
            }
            self.trace.push(TraceEvent::Deliver { id });
        }
        self.trace_collects(to, &scratch.receive.eliminated);
        self.sample(to);
        Ok(())
    }

    fn handle_control_round(&mut self) -> Result<()> {
        self.metrics.control_rounds += 1;
        // Coordinator with reliable control messages: sees everyone's
        // stable-store state (the coordination RDT-LGC does *without*).
        // Each ControlInfo variant is built once per round — and only when
        // the configured collector actually consumes it — then delivered to
        // every process by reference.
        let gc_kind = self.processes[0].gc_kind();
        let info = if gc_kind.needs_control_messages() {
            match gc_kind {
                GcKind::SimpleCoordinated => {
                    let all: rdt_recovery::FaultySet =
                        (0..self.processes.len()).map(ProcessId::new).collect();
                    Some(ControlInfo::GlobalLine(
                        self.manager
                            .recovery_line(&self.processes, &all)
                            .map_err(rdt_base::Error::from)?,
                    ))
                }
                _ => {
                    let components: Vec<_> = self
                        .processes
                        .iter()
                        .map(|m| (m.last_stable(), m.incarnation()))
                        .collect();
                    Some(ControlInfo::LastIntervals(LastIntervals::from_components(
                        &components,
                    )))
                }
            }
        } else {
            None
        };
        for k in 0..self.processes.len() {
            if let Some(info) = &info {
                let collected = self.processes[k].control(info);
                self.trace_collects(ProcessId::new(k), &collected);
            }
            self.sample(ProcessId::new(k));
        }
        if let Some(every) = self.config.control_every {
            let at = self.env.now() + every;
            if at <= self.horizon {
                self.push_at(at, EventKind::ControlRound);
            }
        }
        Ok(())
    }

    /// A crash of `p` (plus correlated failures): in-transit messages are
    /// lost, the recovery manager stops the world, computes the recovery
    /// line and rolls processes back.
    fn run_recovery_session(&mut self, p: ProcessId) -> Result<()> {
        let mut faulty: rdt_recovery::FaultySet = [p].into_iter().collect();
        if self.config.correlated_crash_prob > 0.0 {
            for q in ProcessId::all(self.processes.len()) {
                if q != p
                    && !self.processes[q.index()].is_crashed()
                    && self.env.rng().chance(self.config.correlated_crash_prob)
                {
                    faulty.insert(q);
                }
            }
        }
        for &f in &faulty {
            self.processes[f.index()].crash();
            if self.config.record_trace {
                self.trace.push(TraceEvent::Crash { process: f });
            }
        }
        // All in-transit messages are lost (the recovered CCP excludes
        // them, Section 2.2): an in-place retain over the bucket queue,
        // dropping deliveries in deterministic (at, seq) order. No queue
        // rebuild, no re-pushes.
        let metrics = &mut self.metrics;
        let trace = &mut self.trace;
        let record_trace = self.config.record_trace;
        self.env.cancel(
            |kind| !matches!(kind, EventKind::Deliver { .. }),
            |_, kind| {
                if let EventKind::Deliver { to, id, .. } = kind {
                    metrics.per_process[to.index()].lost += 1;
                    if record_trace {
                        trace.push(TraceEvent::Drop { id });
                    }
                }
            },
        );

        let report = self
            .manager
            .recover(&mut self.processes, &faulty)
            .map_err(rdt_base::Error::from)?;
        self.metrics.recovery_sessions += 1;
        self.metrics.total_rolled_back += report.rolled_back.len() as u64;
        self.metrics.degraded_lines += report.degraded.len() as u64;
        if self.config.record_trace {
            for (proc_, to) in &report.rolled_back {
                self.trace.push(TraceEvent::Restore {
                    process: *proc_,
                    to: *to,
                });
            }
        }
        for k in 0..self.processes.len() {
            self.sample(ProcessId::new(k));
        }
        self.recovery_sessions.push(report);
        Ok(())
    }

    fn sample(&mut self, p: ProcessId) {
        let store = self.processes[p.index()].store();
        let (len, peak) = (store.len(), store.peak());
        self.metrics.sample(p, len, peak);
        if self.config.record_occupancy {
            self.occupancy.push((self.env.now(), p, len));
        }
    }

    /// Finalizes counters and produces the report.
    pub fn into_report(mut self) -> SimulationReport {
        self.metrics.ticks = self.env.now();
        for (k, mw) in self.processes.iter().enumerate() {
            let m = &mut self.metrics.per_process[k];
            m.retained = mw.store().len();
            m.peak_retained = m.peak_retained.max(mw.store().peak());
            m.total_stored = mw.store().total_stored();
            m.total_collected = mw.store().total_collected();
            m.basic = mw.basic_count();
            m.forced = mw.forced_count();
        }
        SimulationReport {
            n: self.processes.len(),
            final_dvs: self.processes.iter().map(|mw| mw.dv().clone()).collect(),
            final_last_stable: self
                .processes
                .iter()
                .map(|mw| mw.last_stable().value())
                .collect(),
            final_retained: self
                .processes
                .iter()
                .map(|mw| mw.store().indices().map(|i| i.value()).collect())
                .collect(),
            final_incarnations: self.processes.iter().map(|mw| mw.incarnation()).collect(),
            metrics: self.metrics,
            trace: if self.config.record_trace {
                Some(self.trace)
            } else {
                None
            },
            occupancy: if self.config.record_occupancy {
                Some(self.occupancy)
            } else {
                None
            },
            recovery_sessions: self.recovery_sessions,
            profile: self.profiler.into_report(),
        }
    }

    /// Read access to the processes (for integration tests).
    pub fn processes(&self) -> &[Middleware] {
        &self.processes
    }
}
