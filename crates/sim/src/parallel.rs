//! The sharded parallel engine: conservative-lookahead parallel
//! discrete-event simulation whose output is byte-identical to the
//! sequential engine for a fixed seed.
//!
//! # How determinism survives parallelism
//!
//! The sequential engine's behaviour is a pure function of the workload,
//! the configuration and the seed: randomness is drawn at exactly two
//! kinds of event (a send's loss/delay, a crash's correlated faulty set),
//! and every draw happens at a deterministic point of the event stream.
//! A **planning pass** therefore replays the exact schedule/pop/draw
//! sequence of the sequential engine over a payload-free event kind —
//! same `SimEnv`, same seed salt, same rng stream — without doing any
//! middleware work. The pass resolves, ahead of time:
//!
//! - every event's global `(tick, sequence)` key, including the key each
//!   delivery will carry — so cross-shard deliveries are inserted at the
//!   receiver with their *final* position, and per-process event order is
//!   identical to the sequential run;
//! - which sends are lost, and which in-flight deliveries a later crash
//!   cancels (the sharded run never materializes those at all — a
//!   *static* crash cut);
//! - the global events (control rounds, recovery sessions) that need the
//!   whole system stopped;
//! - the **barrier schedule**: a cut before every global event, plus the
//!   minimum set of cuts that guarantees every cross-shard delivery is
//!   exchanged before the receiver's window reaches it. The distance
//!   between a send and its earliest possible delivery is bounded below
//!   by the channel's `min_delay` — the conservative lookahead that makes
//!   the windows non-trivial (and why `min_delay == 0` falls back to the
//!   sequential engine).
//!
//! Between cuts, each worker shard drains its own bucket queue with no
//! synchronization whatsoever; at a cut, workers exchange outboxes over
//! bounded channels (an all-to-all with one batch per directed pair) and
//! the coordinator runs any global event. Per-process state transitions
//! are byte-exact mirrors of the sequential handlers, and every
//! order-sensitive observable (trace, occupancy, metric mutations) is
//! logged under its global event key and replayed in key order at the
//! end — see [`crate::worker`].

use std::collections::BTreeSet;
use std::ops::Bound::{Excluded, Included};
use std::sync::Arc;

use crossbeam::channel::{bounded, unbounded, Receiver, Sender};

use rdt_base::{CheckpointId, CheckpointIndex, MessageId, ProcessId, Result, TraceEvent};
use rdt_core::{ControlInfo, GcKind, LastIntervals};
use rdt_env::{Rng as _, SimEnv};
use rdt_recovery::{FaultySet, ProcessView, RecoveryError, RecoveryManager};
use rdt_workloads::AppOp;

use crate::engine::{SimulationBuilder, SimulationReport};
use crate::metrics::Metrics;
use crate::worker::{
    join_outcomes, run_worker, Cmd, EventLogs, FinalProcess, MetricOp, PlannedLocal, RemoteMsg,
    Reply, WorkerSetup,
};

/// Event kind of the planning pass: the sequential engine's
/// `EventKind` with every payload stripped to what scheduling needs.
/// Scheduled in the same order as the sequential engine schedules its
/// events, so the `(at, seq)` keys and the rng stream line up exactly.
#[derive(Debug)]
enum PlanKind {
    App(AppOp),
    Deliver { send_idx: usize },
    ControlRound,
}

/// Everything the planning pass learns about one send.
#[derive(Debug, Clone, Copy)]
struct SendCell {
    from: ProcessId,
    to: ProcessId,
    /// The id the sender's middleware will mint (per-sender counter,
    /// reconstructed by the plan) — needed for crash-cancellation traces
    /// that the coordinator emits without seeing the message.
    id: MessageId,
    lost: bool,
    cancelled: bool,
    send_key: (u64, u64),
    delivery: (u64, u64),
}

/// Placeholder for a local event while send outcomes are still being
/// resolved; materialized into [`PlannedLocal`] after the pass.
#[derive(Debug, Clone, Copy)]
enum LocalSlot {
    Checkpoint(ProcessId),
    Send(usize),
}

/// A pre-planned global (all-shards) event.
#[derive(Debug)]
enum GlobalPlan {
    Control,
    Crash {
        /// The faulty set, ascending (correlated draws resolved).
        faulty: Vec<ProcessId>,
        /// In-flight deliveries the crash cancels, in the deterministic
        /// `(at, seq)` order the sequential engine's queue-retain visits
        /// them.
        drops: Vec<(ProcessId, MessageId)>,
    },
}

/// The complete pre-computed run structure.
struct RunPlan {
    /// Process → shard map.
    shard_of: Vec<u32>,
    /// Per-shard local events (checkpoints and sends), each with its
    /// global key.
    locals: Vec<Vec<(u64, u64, PlannedLocal)>>,
    /// Global events in key order.
    globals: Vec<(u64, u64, GlobalPlan)>,
    /// The barrier schedule (always ends with the drain-everything cut).
    cuts: BTreeSet<(u64, u64)>,
    /// Final simulated time (the planning env's clock after the drain).
    ticks: u64,
}

/// Runs the planning pass: an event-for-event, draw-for-draw replay of
/// the sequential engine's scheduling skeleton.
fn build_plan(builder: &SimulationBuilder, ops: &[AppOp], shards: usize) -> RunPlan {
    let n = builder.spec.n;
    let config = &builder.config;
    let shard_of: Vec<u32> = (0..n)
        .map(|p| config.shard.partitioning.shard_of(p, n, shards) as u32)
        .collect();

    let mut env: SimEnv<PlanKind> = SimEnv::new(builder.spec.seed ^ 0x5eed_c0de);
    if let Some(every) = config.control_every {
        env.schedule(every, PlanKind::ControlRound);
    }
    let mut horizon = 0u64;
    for (k, op) in ops.iter().enumerate() {
        let at = k as u64 * config.ticks_per_op;
        horizon = horizon.max(at);
        env.schedule(at, PlanKind::App(*op));
    }

    let mut sends: Vec<SendCell> = Vec::new();
    let mut slots: Vec<Vec<(u64, u64, LocalSlot)>> = vec![Vec::new(); shards];
    let mut globals: Vec<(u64, u64, GlobalPlan)> = Vec::new();
    // Mirrors each middleware's per-sender message counter: incremented on
    // every executed send, exactly like `begin_send`.
    let mut send_seq = vec![0u64; n];

    while let Some((at, seq, kind)) = env.pop() {
        match kind {
            PlanKind::App(AppOp::Checkpoint(p)) => {
                slots[shard_of[p.index()] as usize].push((at, seq, LocalSlot::Checkpoint(p)));
            }
            PlanKind::App(AppOp::Send { from, to }) => {
                let id = MessageId::new(from, send_seq[from.index()]);
                send_seq[from.index()] += 1;
                let idx = sends.len();
                slots[shard_of[from.index()] as usize].push((at, seq, LocalSlot::Send(idx)));
                // Same draw order as the sequential send handler: loss
                // first, then (only if delivered) the delay.
                let lost = env.rng().chance(config.channel.loss_rate);
                if !lost {
                    let delay = env
                        .rng()
                        .between(config.channel.min_delay, config.channel.max_delay);
                    let d_at = env.now() + delay;
                    env.schedule(d_at, PlanKind::Deliver { send_idx: idx });
                }
                sends.push(SendCell {
                    from,
                    to,
                    id,
                    lost,
                    cancelled: false,
                    send_key: (at, seq),
                    delivery: (0, 0),
                });
            }
            PlanKind::Deliver { send_idx } => {
                sends[send_idx].delivery = (at, seq);
            }
            PlanKind::App(AppOp::Crash(p)) => {
                let mut faulty: FaultySet = [p].into_iter().collect();
                if config.correlated_crash_prob > 0.0 {
                    for q in ProcessId::all(n) {
                        if q != p && env.rng().chance(config.correlated_crash_prob) {
                            faulty.insert(q);
                        }
                    }
                }
                let mut drops = Vec::new();
                env.cancel(
                    |kind| !matches!(kind, PlanKind::Deliver { .. }),
                    |_, kind| {
                        if let PlanKind::Deliver { send_idx } = kind {
                            let cell = &mut sends[send_idx];
                            cell.cancelled = true;
                            drops.push((cell.to, cell.id));
                        }
                    },
                );
                globals.push((
                    at,
                    seq,
                    GlobalPlan::Crash {
                        faulty: faulty.into_iter().collect(),
                        drops,
                    },
                ));
            }
            PlanKind::ControlRound => {
                globals.push((at, seq, GlobalPlan::Control));
                if let Some(every) = config.control_every {
                    let next = env.now() + every;
                    if next <= horizon {
                        env.schedule(next, PlanKind::ControlRound);
                    }
                }
            }
        }
    }
    let ticks = env.now();

    // Barrier schedule. Every global event needs a cut (all shards
    // stopped at its key); every surviving cross-shard delivery needs
    // *some* cut in (send, delivery] so the exchange at that cut carries
    // it before the receiver's window reaches the delivery key. Greedy
    // over deliveries in key order, reusing existing cuts, yields the
    // minimal such schedule.
    let mut cuts: BTreeSet<(u64, u64)> = globals.iter().map(|&(at, seq, _)| (at, seq)).collect();
    let mut crossings: Vec<((u64, u64), (u64, u64))> = sends
        .iter()
        .filter(|c| !c.lost && !c.cancelled && shard_of[c.from.index()] != shard_of[c.to.index()])
        .map(|c| (c.send_key, c.delivery))
        .collect();
    crossings.sort_unstable_by_key(|&(_, d)| d);
    for (s, d) in crossings {
        if cuts.range((Excluded(s), Included(d))).next().is_none() {
            cuts.insert(d);
        }
    }
    cuts.insert((u64::MAX, u64::MAX));

    let locals: Vec<Vec<(u64, u64, PlannedLocal)>> = slots
        .into_iter()
        .map(|shard_slots| {
            shard_slots
                .into_iter()
                .map(|(at, seq, slot)| {
                    let ev = match slot {
                        LocalSlot::Checkpoint(p) => PlannedLocal::Checkpoint(p),
                        LocalSlot::Send(idx) => {
                            let c = &sends[idx];
                            PlannedLocal::Send {
                                from: c.from,
                                to: c.to,
                                lost: c.lost,
                                cancelled: c.cancelled,
                                delivery: c.delivery,
                            }
                        }
                    };
                    (at, seq, ev)
                })
                .collect()
        })
        .collect();

    RunPlan {
        shard_of,
        locals,
        globals,
        cuts,
        ticks,
    }
}

/// Runs the simulation across `shards` worker shards (callers guarantee
/// `shards > 1` and `min_delay > 0`; [`SimulationBuilder::run`] dispatches
/// accordingly).
pub(crate) fn run_sharded(builder: SimulationBuilder, shards: usize) -> Result<SimulationReport> {
    let profiling = builder.config.profile || rdt_obs::profile::env_enabled();
    let mut prof = rdt_obs::Profiler::new(profiling);
    let wall = prof.start();

    let ops = builder.spec.generate();
    let t_plan = prof.start();
    let mut plan = build_plan(&builder, &ops, shards);
    prof.stop("shard/plan", t_plan);
    let n = builder.spec.n;

    let shard_of = Arc::new(std::mem::take(&mut plan.shard_of));
    let mut owned: Vec<Vec<ProcessId>> = vec![Vec::new(); shards];
    for p in 0..n {
        owned[shard_of[p] as usize].push(ProcessId::new(p));
    }

    // Control plane: one command and one reply channel per worker.
    let mut cmd_txs = Vec::with_capacity(shards);
    let mut cmd_rxs = Vec::with_capacity(shards);
    let mut reply_txs = Vec::with_capacity(shards);
    let mut reply_rxs = Vec::with_capacity(shards);
    for _ in 0..shards {
        let (ct, cr) = unbounded();
        cmd_txs.push(ct);
        cmd_rxs.push(cr);
        let (rt, rr) = unbounded();
        reply_txs.push(rt);
        reply_rxs.push(rr);
    }
    // Exchange plane: a bounded channel per directed shard pair. Capacity
    // 2 keeps a fast sender at most one barrier ahead; no deadlock, since
    // a worker whose send would block has a peer that is itself inside
    // (or entering) the same barrier's receive phase. The self-pair is
    // allocated but never used.
    let mut out_rows: Vec<Vec<Sender<Vec<RemoteMsg>>>> = (0..shards).map(|_| Vec::new()).collect();
    let mut in_rows: Vec<Vec<Receiver<Vec<RemoteMsg>>>> = (0..shards).map(|_| Vec::new()).collect();
    for out_row in &mut out_rows {
        for in_row in &mut in_rows {
            let (t, r) = bounded(2);
            out_row.push(t);
            in_row.push(r);
        }
    }

    let mut setups: Vec<WorkerSetup> = Vec::with_capacity(shards);
    {
        let mut cmd_rxs = cmd_rxs.into_iter();
        let mut reply_txs = reply_txs.into_iter();
        let mut out_rows = out_rows.into_iter();
        let mut in_rows = in_rows.into_iter();
        let mut locals = std::mem::take(&mut plan.locals).into_iter();
        for (shard, owned) in owned.into_iter().enumerate() {
            setups.push(WorkerSetup {
                shard,
                shards,
                n,
                owned,
                shard_of: shard_of.clone(),
                events: locals.next().expect("one local list per shard"),
                protocol: builder.protocol,
                gc: builder.gc,
                state_size: builder.config.state_size,
                record_trace: builder.config.record_trace,
                record_occupancy: builder.config.record_occupancy,
                profile: profiling,
                recovery_mode: builder.recovery_mode,
                cmd_rx: cmd_rxs.next().expect("one cmd channel per shard"),
                reply_tx: reply_txs.next().expect("one reply channel per shard"),
                out_txs: out_rows.next().expect("one outbox row per shard"),
                in_rxs: in_rows.next().expect("one inbox row per shard"),
            });
        }
    }

    // Workers run on the shared scoped pool; the coordinator runs right
    // here on the calling thread. The pool never queues a scope job
    // behind another (it overflows to a fresh thread instead), which is
    // what lets all shards rendezvous at exchange barriers even when the
    // pool is smaller than the shard count.
    let mut report = rayon::global_pool().scope(|scope| {
        for setup in setups {
            scope.spawn(move || run_worker(setup));
        }
        let outcome = coordinate(&builder, plan, cmd_txs, &reply_rxs, n, &mut prof);
        // On error the command senders are already dropped, so every
        // worker sees a disconnect and exits before the scope joins.
        outcome
    })?;
    prof.stop("shard/run_wall", wall);
    report.profile = prof.into_report();
    Ok(report)
}

/// Drives the run: advances all shards cut by cut, executes global
/// events between windows, then merges worker logs into the report.
fn coordinate(
    builder: &SimulationBuilder,
    plan: RunPlan,
    cmd_txs: Vec<Sender<Cmd>>,
    reply_rxs: &[Receiver<Reply>],
    n: usize,
    prof: &mut rdt_obs::Profiler,
) -> Result<SimulationReport> {
    let manager = RecoveryManager::with_mode(builder.recovery_mode);
    let record_trace = builder.config.record_trace;
    let mut logs = EventLogs::default();
    let mut recovery_sessions = Vec::new();
    let mut globals = plan.globals.into_iter().peekable();

    for &cut in &plan.cuts {
        for tx in &cmd_txs {
            tx.send(Cmd::Advance { upto: cut })
                .expect("shard worker gone");
        }
        // Every global event's key is a cut, so at most one fires here.
        while globals.peek().is_some_and(|&(at, seq, _)| (at, seq) == cut) {
            let (at, seq, global) = globals.next().expect("peeked");
            let t = prof.start();
            match global {
                GlobalPlan::Control => control_round(
                    builder, &manager, at, seq, &cmd_txs, reply_rxs, &mut logs, n,
                )?,
                GlobalPlan::Crash { faulty, drops } => crash_session(
                    &manager,
                    at,
                    seq,
                    faulty,
                    drops,
                    &cmd_txs,
                    reply_rxs,
                    &mut logs,
                    record_trace,
                    n,
                    &mut recovery_sessions,
                )?,
            }
            prof.stop("shard/coordinate_global", t);
        }
    }

    for tx in &cmd_txs {
        tx.send(Cmd::Finish).expect("shard worker gone");
    }
    let mut finals: Vec<Option<FinalProcess>> = (0..n).map(|_| None).collect();
    for (shard, reply) in join_outcomes(reply_rxs.iter().map(|rx| rx.recv()))
        .into_iter()
        .enumerate()
    {
        let Reply::Done(data) = reply else {
            panic!("worker sent a non-final reply to Finish");
        };
        let data = *data;
        logs.trace.extend(data.logs.trace);
        logs.occupancy.extend(data.logs.occupancy);
        logs.metrics.extend(data.logs.metrics);
        for f in data.finals {
            let k = f.p.index();
            finals[k] = Some(f);
        }
        // Namespace each worker's phases under its shard index: the
        // `reply_rxs` slice is in shard order, so `shard` is the sender.
        if let (Some(merged), Some(worker)) = (prof.report_mut(), &data.profile) {
            merged.merge_suffixed(worker, &shard.to_string());
        }
    }
    let finals: Vec<FinalProcess> = finals
        .into_iter()
        .map(|f| f.expect("final state for every process"))
        .collect();

    // Replay the merged logs in global key order: this reproduces the
    // sequential engine's trace, occupancy and metric mutation order —
    // including the order-sensitive `peak_global_retained` — exactly.
    let t_merge = prof.start();
    let EventLogs {
        mut trace,
        mut occupancy,
        metrics: mut metric_ops,
    } = logs;
    trace.sort_unstable_by_key(|e| e.0);
    occupancy.sort_unstable_by_key(|e| e.0);
    metric_ops.sort_unstable_by_key(|e| e.0);

    let mut metrics = Metrics::new(n);
    for (_, op) in metric_ops {
        match op {
            MetricOp::Sent(p) => metrics.per_process[p.index()].sent += 1,
            MetricOp::Delivered(p) => metrics.per_process[p.index()].delivered += 1,
            MetricOp::Lost(p) => metrics.per_process[p.index()].lost += 1,
            MetricOp::Sample { p, retained, peak } => metrics.sample(p, retained, peak),
            MetricOp::ControlRound => metrics.control_rounds += 1,
            MetricOp::Session {
                rolled_back,
                degraded,
            } => {
                metrics.recovery_sessions += 1;
                metrics.total_rolled_back += rolled_back;
                metrics.degraded_lines += degraded;
            }
        }
    }
    metrics.ticks = plan.ticks;
    for f in &finals {
        let m = &mut metrics.per_process[f.p.index()];
        m.retained = f.retained;
        m.peak_retained = m.peak_retained.max(f.peak);
        m.total_stored = f.total_stored;
        m.total_collected = f.total_collected;
        m.basic = f.basic;
        m.forced = f.forced;
    }
    prof.stop("shard/merge", t_merge);

    Ok(SimulationReport {
        n,
        final_dvs: finals.iter().map(|f| f.dv.clone()).collect(),
        final_last_stable: finals.iter().map(|f| f.last_stable.value()).collect(),
        final_retained: finals.iter().map(|f| f.retained_indices.clone()).collect(),
        final_incarnations: finals.iter().map(|f| f.incarnation).collect(),
        metrics,
        trace: builder
            .config
            .record_trace
            .then(|| trace.into_iter().map(|(_, e)| e).collect()),
        occupancy: builder
            .config
            .record_occupancy
            .then(|| occupancy.into_iter().map(|(_, s)| s).collect()),
        recovery_sessions,
        // Filled by `run_sharded` from the merged coordinator+worker
        // profilers after the scope joins.
        profile: None,
    })
}

/// Broadcasts `mk()` to every worker and merges the `Views` replies into
/// process-id order.
fn gather_views(
    cmd_txs: &[Sender<Cmd>],
    reply_rxs: &[Receiver<Reply>],
    mk: impl Fn() -> Cmd,
    n: usize,
) -> Vec<ProcessView> {
    for tx in cmd_txs {
        tx.send(mk()).expect("shard worker gone");
    }
    let mut slots: Vec<Option<ProcessView>> = (0..n).map(|_| None).collect();
    for reply in join_outcomes(reply_rxs.iter().map(|rx| rx.recv())) {
        let Reply::Views(views) = reply else {
            panic!("worker sent a non-view reply to a gather");
        };
        for v in views {
            let k = v.owner.index();
            slots[k] = Some(v);
        }
    }
    slots
        .into_iter()
        .map(|v| v.expect("view for every process"))
        .collect()
}

/// A control round, mirroring `Simulation::handle_control_round`: the
/// coordinator builds the `ControlInfo` from gathered state and
/// broadcasts it; each worker delivers it to its owned processes.
#[allow(clippy::too_many_arguments)]
fn control_round(
    builder: &SimulationBuilder,
    manager: &RecoveryManager,
    at: u64,
    seq: u64,
    cmd_txs: &[Sender<Cmd>],
    reply_rxs: &[Receiver<Reply>],
    logs: &mut EventLogs,
    n: usize,
) -> Result<()> {
    logs.metrics.push(((at, seq, 0), MetricOp::ControlRound));
    let gc = builder.gc;
    let info = if gc.needs_control_messages() {
        match gc {
            GcKind::SimpleCoordinated => {
                let views = gather_views(cmd_txs, reply_rxs, || Cmd::GatherViews, n);
                let all: FaultySet = (0..n).map(ProcessId::new).collect();
                let line = manager
                    .recovery_line(&views, &all)
                    .map_err(rdt_base::Error::from)?;
                Some(Arc::new(ControlInfo::GlobalLine(line)))
            }
            _ => {
                for tx in cmd_txs {
                    tx.send(Cmd::GatherLasts).expect("shard worker gone");
                }
                let mut components: Vec<Option<_>> = (0..n).map(|_| None).collect();
                for reply in join_outcomes(reply_rxs.iter().map(|rx| rx.recv())) {
                    let Reply::Lasts(lasts) = reply else {
                        panic!("worker sent a non-lasts reply to a gather");
                    };
                    for (p, last_stable, incarnation) in lasts {
                        components[p.index()] = Some((last_stable, incarnation));
                    }
                }
                let components: Vec<_> = components
                    .into_iter()
                    .map(|c| c.expect("component for every process"))
                    .collect();
                Some(Arc::new(ControlInfo::LastIntervals(
                    LastIntervals::from_components(&components),
                )))
            }
        }
    } else {
        None
    };
    for tx in cmd_txs {
        tx.send(Cmd::Control {
            at,
            seq,
            info: info.clone(),
        })
        .expect("shard worker gone");
    }
    Ok(())
}

/// A recovery session, mirroring `Simulation::run_recovery_session`:
/// crash the faulty set on their owning workers, gather views, plan at
/// the coordinator, apply on the workers, merge outcomes into the report.
/// The crash-cancelled deliveries were never materialized (static cut);
/// only their observable side effects — `Drop` traces and lost counts —
/// are emitted here, in the sequential engine's cancellation order.
#[allow(clippy::too_many_arguments)]
fn crash_session(
    manager: &RecoveryManager,
    at: u64,
    seq: u64,
    faulty: Vec<ProcessId>,
    drops: Vec<(ProcessId, MessageId)>,
    cmd_txs: &[Sender<Cmd>],
    reply_rxs: &[Receiver<Reply>],
    logs: &mut EventLogs,
    record_trace: bool,
    n: usize,
    recovery_sessions: &mut Vec<rdt_recovery::RecoverySessionReport>,
) -> Result<()> {
    let mut sub = 0u64;
    if record_trace {
        for &f in &faulty {
            logs.trace
                .push(((at, seq, sub), TraceEvent::Crash { process: f }));
            sub += 1;
        }
    }
    let faulty: Arc<FaultySet> = Arc::new(faulty.into_iter().collect());
    let views = gather_views(
        cmd_txs,
        reply_rxs,
        || Cmd::CrashGather {
            faulty: faulty.clone(),
        },
        n,
    );
    for (to, id) in drops {
        logs.metrics.push(((at, seq, sub), MetricOp::Lost(to)));
        sub += 1;
        if record_trace {
            logs.trace.push(((at, seq, sub), TraceEvent::Drop { id }));
            sub += 1;
        }
    }

    let plan = Arc::new(
        manager
            .plan(&views, &faulty)
            .map_err(rdt_base::Error::from)?,
    );
    for tx in cmd_txs {
        tx.send(Cmd::ApplyRecovery {
            at,
            seq,
            plan: plan.clone(),
        })
        .expect("shard worker gone");
    }
    let mut applied: Vec<Option<(Option<CheckpointIndex>, Vec<CheckpointIndex>)>> =
        (0..n).map(|_| None).collect();
    let mut first_err: Option<RecoveryError> = None;
    for reply in join_outcomes(reply_rxs.iter().map(|rx| rx.recv())) {
        let Reply::Applied(batch) = reply else {
            panic!("worker sent a non-apply reply to a recovery");
        };
        match batch {
            Ok(list) => {
                for (p, rolled, eliminated) in list {
                    applied[p.index()] = Some((rolled, eliminated));
                }
            }
            Err(e) => {
                // Keep the error of the lowest-id process, matching the
                // sequential apply loop's first failure.
                let proc_of = |e: &RecoveryError| match e {
                    RecoveryError::LineExhausted { process, .. }
                    | RecoveryError::Storage { process, .. } => *process,
                };
                if first_err.as_ref().is_none_or(|f| proc_of(&e) < proc_of(f)) {
                    first_err = Some(e);
                }
            }
        }
    }
    if let Some(e) = first_err {
        return Err(rdt_base::Error::from(e));
    }

    let mut rolled_back = Vec::new();
    let mut eliminated = Vec::new();
    for (k, outcome) in applied.into_iter().enumerate() {
        let p = ProcessId::new(k);
        let (rolled, elim) = outcome.expect("apply outcome for every process");
        if let Some(component) = rolled {
            rolled_back.push((p, component));
        }
        eliminated.extend(elim.into_iter().map(|idx| CheckpointId::new(p, idx)));
    }
    let report = manager.report(&faulty, (*plan).clone(), rolled_back, eliminated, |p| {
        plan.components[p.index()].1
    });
    logs.metrics.push((
        (at, seq, sub),
        MetricOp::Session {
            rolled_back: report.rolled_back.len() as u64,
            degraded: report.degraded.len() as u64,
        },
    ));
    sub += 1;
    if record_trace {
        for &(process, to) in &report.rolled_back {
            logs.trace
                .push(((at, seq, sub), TraceEvent::Restore { process, to }));
            sub += 1;
        }
    }
    recovery_sessions.push(report);
    Ok(())
}
