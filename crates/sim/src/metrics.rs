//! Measurement of the quantities the paper's analysis bounds.

use serde::{Deserialize, Serialize};

use rdt_base::ProcessId;

/// Per-process counters.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct ProcessMetrics {
    /// Checkpoints currently in stable storage.
    pub retained: usize,
    /// Peak simultaneous occupancy (the `n + 1` bound's subject).
    pub peak_retained: usize,
    /// Checkpoints written over the run.
    pub total_stored: usize,
    /// Checkpoints eliminated over the run.
    pub total_collected: usize,
    /// Basic checkpoints taken.
    pub basic: u64,
    /// Forced checkpoints taken.
    pub forced: u64,
    /// Messages sent / delivered to this process / lost en route to it.
    pub sent: u64,
    /// Messages delivered.
    pub delivered: u64,
    /// Messages lost.
    pub lost: u64,
    /// Sum of retained-count samples (one per processed event) for
    /// time-averaging.
    pub retained_sum: u64,
    /// Number of samples in `retained_sum`.
    pub samples: u64,
}

impl ProcessMetrics {
    /// Average retained checkpoints over the run (sampled per event).
    pub fn avg_retained(&self) -> f64 {
        if self.samples == 0 {
            self.retained as f64
        } else {
            self.retained_sum as f64 / self.samples as f64
        }
    }
}

/// Whole-run metrics.
#[derive(Debug, Clone, Default, PartialEq, Serialize, Deserialize)]
pub struct Metrics {
    /// Per-process counters, indexed by process id.
    pub per_process: Vec<ProcessMetrics>,
    /// Peak of the *global* retained total across event samples.
    pub peak_global_retained: usize,
    /// Recovery sessions run.
    pub recovery_sessions: u64,
    /// Total checkpoints rolled back across all sessions.
    pub total_rolled_back: u64,
    /// Control rounds executed by the coordinator.
    pub control_rounds: u64,
    /// Simulated ticks elapsed.
    pub ticks: u64,
    /// Recovery-line components that degraded to the oldest surviving
    /// checkpoint because an unsafe (time-based) collector had eliminated
    /// every unblocked one. Always `0` for safe collectors — they error out
    /// instead of degrading (Lemma-1 totality).
    pub degraded_lines: u64,
    /// Times a requested multi-shard run fell back to the sequential
    /// engine because the topology admits zero lookahead
    /// ([`ZeroLookaheadFallback`](crate::ZeroLookaheadFallback)). `0` or
    /// `1` per run; summable across sweeps. `serde(default)` keeps
    /// metrics serialized before this field existed deserializable.
    #[serde(default)]
    pub sequential_fallbacks: u64,
}

impl Metrics {
    /// Creates zeroed metrics for `n` processes.
    pub fn new(n: usize) -> Self {
        Self {
            per_process: vec![ProcessMetrics::default(); n],
            ..Self::default()
        }
    }

    /// The per-process metrics for `p`.
    pub fn process(&self, p: ProcessId) -> &ProcessMetrics {
        &self.per_process[p.index()]
    }

    /// Highest retained-checkpoint count observed on any single process —
    /// the paper bounds this by `n` (+1 transiently) for RDT-LGC.
    pub fn max_retained_per_process(&self) -> usize {
        self.per_process
            .iter()
            .map(|m| m.peak_retained)
            .max()
            .unwrap_or(0)
    }

    /// Current total retained across processes.
    pub fn total_retained(&self) -> usize {
        self.per_process.iter().map(|m| m.retained).sum()
    }

    /// Average of per-process time-averaged retention.
    pub fn avg_retained(&self) -> f64 {
        if self.per_process.is_empty() {
            return 0.0;
        }
        self.per_process
            .iter()
            .map(|m| m.avg_retained())
            .sum::<f64>()
            / self.per_process.len() as f64
    }

    /// Total forced checkpoints across processes.
    pub fn total_forced(&self) -> u64 {
        self.per_process.iter().map(|m| m.forced).sum()
    }

    /// Total basic checkpoints across processes.
    pub fn total_basic(&self) -> u64 {
        self.per_process.iter().map(|m| m.basic).sum()
    }

    /// Total checkpoints collected across processes.
    pub fn total_collected(&self) -> usize {
        self.per_process.iter().map(|m| m.total_collected).sum()
    }

    /// Total messages delivered.
    pub fn total_delivered(&self) -> u64 {
        self.per_process.iter().map(|m| m.delivered).sum()
    }

    /// Records a retained-count sample for `p` and refreshes the global
    /// peak.
    pub fn sample(&mut self, p: ProcessId, retained: usize, peak: usize) {
        let m = &mut self.per_process[p.index()];
        m.retained = retained;
        m.peak_retained = m.peak_retained.max(peak);
        m.retained_sum += retained as u64;
        m.samples += 1;
        let total = self.total_retained();
        self.peak_global_retained = self.peak_global_retained.max(total);
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn sample_tracks_peaks_and_averages() {
        let mut m = Metrics::new(2);
        m.sample(ProcessId::new(0), 3, 3);
        m.sample(ProcessId::new(0), 1, 3);
        m.sample(ProcessId::new(1), 2, 2);
        assert_eq!(m.max_retained_per_process(), 3);
        assert_eq!(m.total_retained(), 3); // 1 + 2
        assert_eq!(m.peak_global_retained, 3);
        assert!((m.process(ProcessId::new(0)).avg_retained() - 2.0).abs() < f64::EPSILON);
    }

    #[test]
    fn empty_metrics_are_zero() {
        let m = Metrics::new(3);
        assert_eq!(m.max_retained_per_process(), 0);
        assert_eq!(m.avg_retained(), 0.0);
        assert_eq!(m.total_retained(), 0);
    }

    #[test]
    fn totals_sum_over_processes() {
        let mut m = Metrics::new(2);
        m.per_process[0].forced = 3;
        m.per_process[1].forced = 4;
        m.per_process[0].basic = 1;
        assert_eq!(m.total_forced(), 7);
        assert_eq!(m.total_basic(), 1);
    }
}
