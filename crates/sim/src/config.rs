//! Simulation configuration.

use serde::{Deserialize, Serialize};

/// Network channel behaviour: per-message delay, loss and (through variable
/// delays) reordering — the paper's asynchronous system model, in which
/// messages "can be lost or delivered out of order" (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Minimum delivery delay, in ticks.
    pub min_delay: u64,
    /// Maximum delivery delay, in ticks (inclusive). Delays are drawn
    /// uniformly from `[min_delay, max_delay]`; unequal delays reorder
    /// messages naturally.
    pub max_delay: u64,
    /// Probability that a message is lost in transit.
    pub loss_rate: f64,
}

impl ChannelConfig {
    /// A reliable, reordering channel with delays in `[1, 20]`.
    pub fn reliable() -> Self {
        Self {
            min_delay: 1,
            max_delay: 20,
            loss_rate: 0.0,
        }
    }

    /// A lossy variant of [`reliable`](Self::reliable).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ loss_rate ≤ 1.0`.
    pub fn lossy(loss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate out of range");
        Self {
            loss_rate,
            ..Self::reliable()
        }
    }

    /// Instant delivery (delay 0, no loss): useful for deterministic tests.
    pub fn instant() -> Self {
        Self {
            min_delay: 0,
            max_delay: 0,
            loss_rate: 0.0,
        }
    }

    /// Validates the channel parameters. Hand-built and deserialized
    /// configs bypass the checked constructors, and an out-of-range
    /// `loss_rate` would otherwise panic deep inside the engine's RNG
    /// mid-run; this turns it into a typed error at construction time.
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::InvalidConfig`] if `loss_rate` is not a
    /// probability (NaN included) or `min_delay > max_delay`.
    pub fn validate(&self) -> rdt_base::Result<()> {
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "channel loss_rate {} is not a probability in [0, 1]",
                self.loss_rate
            )));
        }
        if self.min_delay > self.max_delay {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "channel min_delay {} exceeds max_delay {}",
                self.min_delay, self.max_delay
            )));
        }
        Ok(())
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::reliable()
    }
}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Channel behaviour.
    pub channel: ChannelConfig,
    /// Ticks between consecutive application operations.
    pub ticks_per_op: u64,
    /// If set, a coordinator runs a control round every this many ticks,
    /// feeding the coordinated baseline collectors (`SimpleCoordinated`,
    /// `WangGlobal`). Asynchronous collectors ignore control rounds.
    pub control_every: Option<u64>,
    /// When a crash occurs, every *other* process also crashes with this
    /// probability — correlated failures exercising multi-process faulty
    /// sets in one recovery session.
    pub correlated_crash_prob: f64,
    /// Record a full event trace for offline (oracle) replay.
    pub record_trace: bool,
    /// Record one `(time, process, retained)` occupancy sample per processed
    /// event, for storage-timeline analyses.
    pub record_occupancy: bool,
    /// Application state-snapshot size in bytes recorded with each stored
    /// checkpoint (storage-space accounting).
    pub state_size: usize,
}

impl SimConfig {
    /// The fault-heavy preset used by the repeated-recovery stress runs and
    /// the CI smoke step: lossy channel, correlated multi-process faulty
    /// sets on every crash. Combine with a workload whose `crash_prob` is
    /// nonzero — this preset only shapes what a crash *does*, not how often
    /// one happens.
    pub fn fault_heavy() -> Self {
        Self {
            channel: ChannelConfig::lossy(0.05),
            correlated_crash_prob: 0.3,
            ..Self::default()
        }
    }

    /// Validates the whole configuration (channel included) — see
    /// [`ChannelConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::InvalidConfig`] for any out-of-range field.
    pub fn validate(&self) -> rdt_base::Result<()> {
        self.channel.validate()?;
        if !(0.0..=1.0).contains(&self.correlated_crash_prob) {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "correlated_crash_prob {} is not a probability in [0, 1]",
                self.correlated_crash_prob
            )));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            channel: ChannelConfig::default(),
            ticks_per_op: 10,
            control_every: None,
            correlated_crash_prob: 0.0,
            record_trace: false,
            record_occupancy: false,
            state_size: 0,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_has_no_loss() {
        assert_eq!(ChannelConfig::reliable().loss_rate, 0.0);
    }

    #[test]
    fn instant_is_deterministic_delay() {
        let c = ChannelConfig::instant();
        assert_eq!((c.min_delay, c.max_delay), (0, 0));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn lossy_validates_probability() {
        let _ = ChannelConfig::lossy(1.5);
    }

    #[test]
    fn default_config_records_nothing() {
        let c = SimConfig::default();
        assert!(!c.record_trace);
        assert!(c.control_every.is_none());
    }

    #[test]
    fn validate_accepts_every_preset() {
        for c in [
            ChannelConfig::reliable(),
            ChannelConfig::instant(),
            ChannelConfig::lossy(1.0),
        ] {
            c.validate().unwrap();
        }
        SimConfig::default().validate().unwrap();
        SimConfig::fault_heavy().validate().unwrap();
    }

    #[test]
    fn validate_rejects_hand_built_out_of_range_configs() {
        let bad_loss = ChannelConfig {
            loss_rate: 1.5,
            ..ChannelConfig::reliable()
        };
        assert!(bad_loss.validate().is_err());
        let nan_loss = ChannelConfig {
            loss_rate: f64::NAN,
            ..ChannelConfig::reliable()
        };
        assert!(nan_loss.validate().is_err());
        let inverted = ChannelConfig {
            min_delay: 9,
            max_delay: 3,
            ..ChannelConfig::reliable()
        };
        assert!(inverted.validate().is_err());
        let bad_corr = SimConfig {
            correlated_crash_prob: -0.1,
            ..SimConfig::default()
        };
        assert!(bad_corr.validate().is_err());
    }
}
