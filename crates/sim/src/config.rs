//! Simulation configuration.

use std::fmt;

use serde::{Deserialize, Serialize};

/// Network channel behaviour: per-message delay, loss and (through variable
/// delays) reordering — the paper's asynchronous system model, in which
/// messages "can be lost or delivered out of order" (Section 2).
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct ChannelConfig {
    /// Minimum delivery delay, in ticks.
    pub min_delay: u64,
    /// Maximum delivery delay, in ticks (inclusive). Delays are drawn
    /// uniformly from `[min_delay, max_delay]`; unequal delays reorder
    /// messages naturally.
    pub max_delay: u64,
    /// Probability that a message is lost in transit.
    pub loss_rate: f64,
}

impl ChannelConfig {
    /// A reliable, reordering channel with delays in `[1, 20]`.
    pub fn reliable() -> Self {
        Self {
            min_delay: 1,
            max_delay: 20,
            loss_rate: 0.0,
        }
    }

    /// A lossy variant of [`reliable`](Self::reliable).
    ///
    /// # Panics
    ///
    /// Panics unless `0.0 ≤ loss_rate ≤ 1.0`.
    pub fn lossy(loss_rate: f64) -> Self {
        assert!((0.0..=1.0).contains(&loss_rate), "loss rate out of range");
        Self {
            loss_rate,
            ..Self::reliable()
        }
    }

    /// Instant delivery (delay 0, no loss): useful for deterministic tests.
    pub fn instant() -> Self {
        Self {
            min_delay: 0,
            max_delay: 0,
            loss_rate: 0.0,
        }
    }

    /// Validates the channel parameters. Hand-built and deserialized
    /// configs bypass the checked constructors, and an out-of-range
    /// `loss_rate` would otherwise panic deep inside the engine's RNG
    /// mid-run; this turns it into a typed error at construction time.
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::InvalidConfig`] if `loss_rate` is not a
    /// probability (NaN included) or `min_delay > max_delay`.
    pub fn validate(&self) -> rdt_base::Result<()> {
        if !(0.0..=1.0).contains(&self.loss_rate) {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "channel loss_rate {} is not a probability in [0, 1]",
                self.loss_rate
            )));
        }
        if self.min_delay > self.max_delay {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "channel min_delay {} exceeds max_delay {}",
                self.min_delay, self.max_delay
            )));
        }
        Ok(())
    }
}

impl Default for ChannelConfig {
    fn default() -> Self {
        Self::reliable()
    }
}

/// How processes map onto shards of the parallel engine.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize, Default)]
pub enum Partitioning {
    /// Balanced contiguous blocks: processes `[k·n/s, (k+1)·n/s)` on
    /// shard `k`. Keeps ring/chain neighbours together, so patterns with
    /// local communication cross shards rarely.
    #[default]
    Contiguous,
    /// Round-robin: process `p` on shard `p mod s`. Spreads hot spots at
    /// the cost of making every neighbour link cross-shard.
    Strided,
}

impl Partitioning {
    /// The shard owning process `p` under this partitioning of `n`
    /// processes into `shards` shards.
    pub fn shard_of(self, p: usize, n: usize, shards: usize) -> usize {
        match self {
            Partitioning::Contiguous => p * shards / n,
            Partitioning::Strided => p % shards,
        }
    }
}

impl fmt::Display for Partitioning {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            Partitioning::Contiguous => write!(f, "contiguous"),
            Partitioning::Strided => write!(f, "strided"),
        }
    }
}

/// Parallel-engine knobs. The default (`shards = 1`) is the sequential
/// engine; any higher count runs the conservative-lookahead sharded
/// engine, whose output is byte-identical for a fixed seed.
#[derive(Debug, Clone, Copy, PartialEq, Eq, Serialize, Deserialize)]
pub struct ShardConfig {
    /// Worker shards to partition the processes across. Clamped to the
    /// process count; `0` is rejected by validation.
    pub shards: usize,
    /// Process-to-shard assignment.
    pub partitioning: Partitioning,
}

impl Default for ShardConfig {
    fn default() -> Self {
        Self {
            shards: 1,
            partitioning: Partitioning::default(),
        }
    }
}

/// Why a multi-shard run degraded to the sequential engine: the channel's
/// `min_delay` is 0, so a cross-shard message can be delivered in the tick
/// it was sent and the conservative lookahead window is empty. Surfaced
/// loudly (a structured `zero_lookahead_fallback` warning through the
/// `rdt_obs` sink and counted in
/// [`Metrics::sequential_fallbacks`](crate::Metrics::sequential_fallbacks))
/// rather than silently degrading to lockstep barriers every tick.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct ZeroLookaheadFallback {
    /// The shard count that was requested.
    pub shards: usize,
}

impl fmt::Display for ZeroLookaheadFallback {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "channel min_delay is 0: conservative lookahead is empty, so the requested {} shards \
             fall back to the sequential engine (set min_delay >= 1 to run sharded)",
            self.shards
        )
    }
}

impl std::error::Error for ZeroLookaheadFallback {}

/// Full simulator configuration.
#[derive(Debug, Clone, Copy, PartialEq, Serialize, Deserialize)]
pub struct SimConfig {
    /// Channel behaviour.
    pub channel: ChannelConfig,
    /// Ticks between consecutive application operations.
    pub ticks_per_op: u64,
    /// If set, a coordinator runs a control round every this many ticks,
    /// feeding the coordinated baseline collectors (`SimpleCoordinated`,
    /// `WangGlobal`). Asynchronous collectors ignore control rounds.
    pub control_every: Option<u64>,
    /// When a crash occurs, every *other* process also crashes with this
    /// probability — correlated failures exercising multi-process faulty
    /// sets in one recovery session.
    pub correlated_crash_prob: f64,
    /// Record a full event trace for offline (oracle) replay.
    pub record_trace: bool,
    /// Record one `(time, process, retained)` occupancy sample per processed
    /// event, for storage-timeline analyses.
    pub record_occupancy: bool,
    /// Application state-snapshot size in bytes recorded with each stored
    /// checkpoint (storage-space accounting).
    pub state_size: usize,
    /// Parallel-engine knobs (defaults to the sequential engine). The
    /// `serde(default)` keeps configs serialized before this field existed
    /// deserializable.
    #[serde(default)]
    pub shard: ShardConfig,
    /// Collect a phase-timing [`ProfileReport`](rdt_obs::ProfileReport)
    /// into the run's report. Profiling observes wall-clock time around the
    /// deterministic core — it draws no randomness and reorders no events,
    /// so enabling it leaves the simulation output byte-identical (asserted
    /// by `tests/obs_equiv.rs`). The `RDT_PROFILE` environment variable
    /// also enables it without touching the config. `serde(default)` keeps
    /// earlier serialized configs deserializable.
    #[serde(default)]
    pub profile: bool,
}

impl SimConfig {
    /// The fault-heavy preset used by the repeated-recovery stress runs and
    /// the CI smoke step: lossy channel, correlated multi-process faulty
    /// sets on every crash. Combine with a workload whose `crash_prob` is
    /// nonzero — this preset only shapes what a crash *does*, not how often
    /// one happens.
    pub fn fault_heavy() -> Self {
        Self {
            channel: ChannelConfig::lossy(0.05),
            correlated_crash_prob: 0.3,
            ..Self::default()
        }
    }

    /// Validates the whole configuration (channel included) — see
    /// [`ChannelConfig::validate`].
    ///
    /// # Errors
    ///
    /// [`rdt_base::Error::InvalidConfig`] for any out-of-range field.
    pub fn validate(&self) -> rdt_base::Result<()> {
        self.channel.validate()?;
        if !(0.0..=1.0).contains(&self.correlated_crash_prob) {
            return Err(rdt_base::Error::InvalidConfig(format!(
                "correlated_crash_prob {} is not a probability in [0, 1]",
                self.correlated_crash_prob
            )));
        }
        if self.shard.shards == 0 {
            return Err(rdt_base::Error::InvalidConfig(
                "shard count must be at least 1".into(),
            ));
        }
        Ok(())
    }
}

impl Default for SimConfig {
    fn default() -> Self {
        Self {
            channel: ChannelConfig::default(),
            ticks_per_op: 10,
            control_every: None,
            correlated_crash_prob: 0.0,
            record_trace: false,
            record_occupancy: false,
            state_size: 0,
            shard: ShardConfig::default(),
            profile: false,
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn reliable_has_no_loss() {
        assert_eq!(ChannelConfig::reliable().loss_rate, 0.0);
    }

    #[test]
    fn instant_is_deterministic_delay() {
        let c = ChannelConfig::instant();
        assert_eq!((c.min_delay, c.max_delay), (0, 0));
    }

    #[test]
    #[should_panic(expected = "loss rate")]
    fn lossy_validates_probability() {
        let _ = ChannelConfig::lossy(1.5);
    }

    #[test]
    fn default_config_records_nothing() {
        let c = SimConfig::default();
        assert!(!c.record_trace);
        assert!(c.control_every.is_none());
    }

    #[test]
    fn validate_accepts_every_preset() {
        for c in [
            ChannelConfig::reliable(),
            ChannelConfig::instant(),
            ChannelConfig::lossy(1.0),
        ] {
            c.validate().unwrap();
        }
        SimConfig::default().validate().unwrap();
        SimConfig::fault_heavy().validate().unwrap();
    }

    #[test]
    fn validate_rejects_hand_built_out_of_range_configs() {
        let bad_loss = ChannelConfig {
            loss_rate: 1.5,
            ..ChannelConfig::reliable()
        };
        assert!(bad_loss.validate().is_err());
        let nan_loss = ChannelConfig {
            loss_rate: f64::NAN,
            ..ChannelConfig::reliable()
        };
        assert!(nan_loss.validate().is_err());
        let inverted = ChannelConfig {
            min_delay: 9,
            max_delay: 3,
            ..ChannelConfig::reliable()
        };
        assert!(inverted.validate().is_err());
        let bad_corr = SimConfig {
            correlated_crash_prob: -0.1,
            ..SimConfig::default()
        };
        assert!(bad_corr.validate().is_err());
        let no_shards = SimConfig {
            shard: ShardConfig {
                shards: 0,
                ..ShardConfig::default()
            },
            ..SimConfig::default()
        };
        assert!(no_shards.validate().is_err());
    }

    #[test]
    fn partitionings_cover_every_process() {
        for partitioning in [Partitioning::Contiguous, Partitioning::Strided] {
            for n in 1..12 {
                for shards in 1..=n {
                    let mut sizes = vec![0usize; shards];
                    for p in 0..n {
                        let s = partitioning.shard_of(p, n, shards);
                        assert!(s < shards, "{partitioning}: {p}/{n} landed on {s}");
                        sizes[s] += 1;
                    }
                    let (min, max) = (*sizes.iter().min().unwrap(), *sizes.iter().max().unwrap());
                    assert!(
                        max - min <= 1,
                        "{partitioning}: unbalanced {sizes:?} for n={n} shards={shards}"
                    );
                }
            }
        }
    }

    #[test]
    fn contiguous_blocks_are_contiguous() {
        let shard: Vec<usize> = (0..10)
            .map(|p| Partitioning::Contiguous.shard_of(p, 10, 4))
            .collect();
        let mut sorted = shard.clone();
        sorted.sort_unstable();
        assert_eq!(shard, sorted, "block assignment must be monotone");
    }
}
