//! A threaded runtime: the same middleware stack driven by real OS threads
//! and crossbeam channels instead of the discrete-event scheduler.
//!
//! Nothing here is deterministic — that is the point. The paper's
//! guarantees (safety, the `n`/`n+1` retention bounds) are properties of
//! the algorithm, not of a particular schedule; this runtime lets the test
//! suite exercise them under genuine concurrency and message reordering.
//!
//! # Send-safety
//!
//! [`Middleware`](rdt_protocols::Middleware) is deliberately `!Send` (its
//! interned piggyback snapshot is a thread-local `Rc`, so the
//! single-threaded hot path never pays an atomic refcount). This runtime
//! therefore keeps every middleware on its own thread, wrapped in a
//! [`LiveNode`], and what crosses threads is the same encoded
//! [`WireFrame`](rdt_env::WireFrame) bytes the real-process runtime puts on
//! loopback sockets — plain `Send` data. Delivery decoding and protocol
//! handling live in [`LiveNode`], shared with `rdt serve`, so the threaded
//! runtime has no delivery path of its own. What comes back at join time is
//! a [`ProcessOutcome`] — the stable store plus counters.
//!
//! Crash/recovery is not modelled here (a stop-the-world recovery manager
//! needs the very synchrony this runtime omits); use the discrete-event
//! simulator for failure experiments, or `rdt serve --chaos` for real
//! kill-9 recovery.

use crossbeam::channel::{unbounded, Receiver, Sender};

use rdt_base::ProcessId;
use rdt_core::{CheckpointStore, GcKind};
use rdt_protocols::{Middleware, ProtocolKind};
use rdt_workloads::AppOp;

use crate::live::LiveNode;

/// What travels between process threads: `Send` by construction.
enum Envelope {
    /// An encoded [`WireFrame`](rdt_env::WireFrame) — the same bytes the
    /// real-process runtime transmits.
    App(Vec<u8>),
    /// End-of-stream marker, one per peer, sent at shutdown.
    Farewell,
}

/// Commands from the driver to a process thread.
enum Command {
    Checkpoint,
    Send(ProcessId),
    Stop,
}

/// The `Send` summary a process thread returns at join time: everything the
/// (`!Send`) middleware knows that outlives the run.
#[derive(Debug)]
pub struct ProcessOutcome {
    owner: ProcessId,
    store: CheckpointStore,
    forced_count: u64,
    basic_count: u64,
    crashed: bool,
}

impl ProcessOutcome {
    fn of(mw: &Middleware) -> Self {
        Self {
            owner: mw.owner(),
            store: mw.store().clone(),
            forced_count: mw.forced_count(),
            basic_count: mw.basic_count(),
            crashed: mw.is_crashed(),
        }
    }

    /// The owning process.
    pub fn owner(&self) -> ProcessId {
        self.owner
    }

    /// The stable store as of the end of the run.
    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    /// Forced checkpoints taken during the run.
    pub fn forced_count(&self) -> u64 {
        self.forced_count
    }

    /// Basic checkpoints taken during the run (including `s^0`).
    pub fn basic_count(&self) -> u64 {
        self.basic_count
    }

    /// Whether the process ended the run crashed (never, here: crash ops
    /// are not modelled).
    pub fn is_crashed(&self) -> bool {
        self.crashed
    }
}

/// Outcome of a threaded run.
#[derive(Debug)]
pub struct ThreadedReport {
    /// Per-process outcomes after the run, in process-id order.
    pub processes: Vec<ProcessOutcome>,
}

impl ThreadedReport {
    /// Highest retained-checkpoint peak across processes.
    pub fn max_peak_retained(&self) -> usize {
        self.processes
            .iter()
            .map(|p| p.store().peak())
            .max()
            .unwrap_or(0)
    }
}

/// Runs an [`AppOp`] stream over `n` process threads connected by
/// crossbeam channels. Each op is dispatched to its process's thread;
/// message delivery order is whatever the scheduler produces.
///
/// [`AppOp::Crash`] ops are ignored (see module docs).
///
/// # Panics
///
/// Panics if a process thread panics (middleware invariant violation).
pub fn run_threaded(n: usize, ops: &[AppOp], protocol: ProtocolKind, gc: GcKind) -> ThreadedReport {
    assert!(n > 0, "a system needs at least one process");
    let (msg_txs, msg_rxs): (Vec<Sender<Envelope>>, Vec<Receiver<Envelope>>) =
        (0..n).map(|_| unbounded()).unzip();
    let (cmd_txs, cmd_rxs): (Vec<Sender<Command>>, Vec<Receiver<Command>>) =
        (0..n).map(|_| unbounded()).unzip();

    let handles: Vec<std::thread::JoinHandle<ProcessOutcome>> = (0..n)
        .map(|i| {
            let me = ProcessId::new(i);
            let msg_rx = msg_rxs[i].clone();
            let cmd_rx = cmd_rxs[i].clone();
            let peers: Vec<Sender<Envelope>> = msg_txs.clone();
            std::thread::spawn(move || {
                // The node is minted on this thread and stays here: its
                // middleware is !Send, and only the ProcessOutcome summary
                // leaves.
                let mut node = LiveNode::new(me, n, protocol, gc);
                let mut farewells = 0usize;
                let mut stopped = false;
                loop {
                    if stopped && farewells == n - 1 {
                        return ProcessOutcome::of(node.middleware());
                    }
                    crossbeam::channel::select! {
                        recv(msg_rx) -> env => match env.expect("peers outlive messages") {
                            Envelope::App(bytes) => {
                                node.deliver_frame(&bytes).expect("process is alive");
                            }
                            Envelope::Farewell => farewells += 1,
                        },
                        recv(cmd_rx) -> cmd => match cmd.expect("driver outlives commands") {
                            Command::Checkpoint => {
                                node.checkpoint().expect("process is alive");
                            }
                            Command::Send(to) => {
                                // Message-free send: the frame carries the
                                // piggyback, which is the whole payload here.
                                let (frame, _forced) = node.send_frame(to);
                                peers[to.index()]
                                    .send(Envelope::App(frame.encode()))
                                    .expect("peer inbox open");
                            }
                            Command::Stop => {
                                for (k, peer) in peers.iter().enumerate() {
                                    if k != me.index() {
                                        peer.send(Envelope::Farewell).expect("peer inbox open");
                                    }
                                }
                                stopped = true;
                            }
                        },
                    }
                }
            })
        })
        .collect();

    for op in ops {
        match *op {
            AppOp::Checkpoint(p) => cmd_txs[p.index()]
                .send(Command::Checkpoint)
                .expect("thread alive"),
            AppOp::Send { from, to } => cmd_txs[from.index()]
                .send(Command::Send(to))
                .expect("thread alive"),
            AppOp::Crash(_) => {} // not modelled here
        }
    }
    for tx in &cmd_txs {
        tx.send(Command::Stop).expect("thread alive");
    }

    let processes = crate::worker::join_outcomes(handles.into_iter().map(|h| h.join()));
    ThreadedReport { processes }
}

#[cfg(test)]
mod tests {
    use super::*;
    use rdt_workloads::{Pattern, WorkloadSpec};

    #[test]
    fn threaded_run_respects_retention_bounds() {
        let n = 4;
        let ops = WorkloadSpec::uniform_random(n, 400)
            .with_seed(11)
            .generate();
        let report = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert_eq!(report.processes.len(), n);
        for p in &report.processes {
            assert!(p.store().len() <= n, "{}", p.owner());
            assert!(p.store().peak() <= n + 1, "{}", p.owner());
        }
    }

    #[test]
    fn threaded_run_processes_all_commands() {
        let n = 3;
        let ops = WorkloadSpec::uniform_random(n, 150)
            .with_pattern(Pattern::Ring)
            .with_seed(2)
            .generate();
        let sends = ops
            .iter()
            .filter(|op| matches!(op, AppOp::Send { .. }))
            .count() as u64;
        let report = run_threaded(n, &ops, ProtocolKind::Cbr, GcKind::RdtLgc);
        let sent: u64 = report
            .processes
            .iter()
            .map(|p| {
                // Every send advanced the per-sender sequence; recover the
                // count from forced+basic is not possible, so check stores
                // indirectly: all messages were delivered (unbounded
                // reliable channels), so every process heard from its ring
                // predecessor.
                u64::from(p.store().total_stored() > 0)
            })
            .sum();
        assert_eq!(sent, n as u64);
        let _ = sends;
    }

    #[test]
    fn crash_ops_are_ignored() {
        let n = 2;
        let ops = vec![
            AppOp::Crash(ProcessId::new(0)),
            AppOp::Checkpoint(ProcessId::new(0)),
        ];
        let report = run_threaded(n, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert!(!report.processes[0].is_crashed());
    }

    #[test]
    fn single_process_system_terminates() {
        let ops = vec![AppOp::Checkpoint(ProcessId::new(0))];
        let report = run_threaded(1, &ops, ProtocolKind::Fdas, GcKind::RdtLgc);
        assert_eq!(report.processes[0].store().len(), 1);
    }

    #[test]
    fn outcome_reports_counters() {
        let n = 2;
        let ops = vec![
            AppOp::Checkpoint(ProcessId::new(0)),
            AppOp::Send {
                from: ProcessId::new(0),
                to: ProcessId::new(1),
            },
        ];
        let report = run_threaded(n, &ops, ProtocolKind::Cas, GcKind::RdtLgc);
        let p0 = &report.processes[0];
        assert_eq!(p0.owner(), ProcessId::new(0));
        assert_eq!(p0.basic_count(), 2, "s^0 plus the explicit checkpoint");
        assert_eq!(p0.forced_count(), 1, "CAS forces after the send");
    }
}
